//! Regression test for the engine's re-analysis fixpoint (§V: JITBULL
//! runs inside `OptimizeMIR`, so a recompile-with-passes-disabled is
//! itself analyzed again).
//!
//! The fixture function carries *two* buggy-transform triggers: an
//! `Array.pop` (CVE-2019-11707, check elimination at slot 11) and an
//! offset index `arr[i + 4]` (CVE-2020-26952, linear-arithmetic folding
//! at slot 26). On the fully vulnerable engine the 11707 transform
//! removes the check first, so the 26952 transform finds nothing — its
//! signature only surfaces on the *recompiled* pipeline where slot 11 is
//! disabled. Without the fixpoint (or without the fuzzer crate's
//! iterated extraction), disabling slot 11 alone would leave the
//! function exploitable through the unshadowed 26952 path.

use jitbull::{CompareConfig, DnaDatabase, Guard};
use jitbull_fuzzer::harness::{campaign_engine, install_until_neutralized};
use jitbull_fuzzer::Find;
use jitbull_jit::engine::Engine;
use jitbull_jit::{CveId, VulnConfig};
use jitbull_vdc::dna::extract_program_dna;
use jitbull_vdc::validate::run_script;
use jitbull_vdc::VdcOutcome;

const TWO_VULN_SOURCE: &str = r#"
function hot(arr, i, v) {
  var t = 0;
  arr.pop();
  arr.length = 12;
  t = t + arr[i + 4];
  arr[i] = v;
  return t;
}
var data = new Array(12);
for (var s = 0; s < 12; s++) { data[s] = s; }
var sink = 0;
for (var w = 0; w < 20; w++) { sink = hot(data, 2, w); }
sink = hot(data, 100000, 7);
print(sink);
"#;

fn two_vulns() -> VulnConfig {
    VulnConfig::with([CveId::Cve2019_11707, CveId::Cve2020_26952])
}

#[test]
fn fixture_is_exploitable_unprotected() {
    let mut engine = Engine::new(campaign_engine(two_vulns()));
    let outcome = run_script(TWO_VULN_SOURCE, &mut engine).unwrap();
    assert!(outcome.is_compromised(), "{outcome:?}");
}

#[test]
fn single_shot_dna_misses_the_shadowed_vulnerability() {
    // DNA extracted from the plain vulnerable pipeline only carries the
    // 11707 signature (26952 was shadowed), so one install round is not
    // enough…
    let vulns = two_vulns();
    let mut db = DnaDatabase::new();
    for (function, dna) in extract_program_dna(TWO_VULN_SOURCE, &vulns).unwrap() {
        db.install("FIXTURE", function, dna);
    }
    let mut guarded = Engine::with_guard(
        campaign_engine(vulns),
        Guard::new(db, CompareConfig::default()),
    );
    let outcome = run_script(TWO_VULN_SOURCE, &mut guarded).unwrap();
    // The guard does flag and disable the first signature…
    assert!(guarded.nr_disjit() + guarded.nr_nojit() > 0);
    // …but the recompiled pipeline unshadows the second bug. (If this
    // ever starts passing, the extractor learned to see shadowed
    // signatures in one shot — update the docs and drop the triage loop's
    // extra rounds.)
    assert!(
        outcome.is_compromised(),
        "expected the shadowed 26952 path to still fire: {outcome:?}"
    );
}

#[test]
fn iterated_extraction_reaches_a_protective_fixpoint() {
    let vulns = two_vulns();
    let mut db = DnaDatabase::new();
    let find = Find {
        seed: 0,
        source: TWO_VULN_SOURCE.to_string(),
        outcome: VdcOutcome::Crashed(String::new()),
    };
    let neutralized = install_until_neutralized(&mut db, &find, &vulns, 6).unwrap();
    assert!(neutralized, "triage loop failed to converge");
    // The final database carries more than the first round's entries.
    assert!(
        db.len() >= 2,
        "expected signatures from ≥2 rounds, got {}",
        db.len()
    );
    // And a fresh engine with that database is safe.
    let mut guarded = Engine::with_guard(
        campaign_engine(vulns),
        Guard::new(db, CompareConfig::default()),
    );
    let outcome = run_script(TWO_VULN_SOURCE, &mut guarded).unwrap();
    assert!(!outcome.is_compromised(), "{outcome:?}");
    // Both buggy slots ended up disabled on the hot function.
    let program = jitbull_frontend::parse_program(TWO_VULN_SOURCE).unwrap();
    let module = jitbull_vm::compile_program(&program).unwrap();
    let stats = guarded.function_stats(&module);
    let hot = stats.iter().find(|f| f.name == "hot").unwrap();
    assert!(
        hot.disabled_slots
            .contains(&CveId::Cve2019_11707.pass_slot()),
        "slot {} missing from {:?}",
        CveId::Cve2019_11707.pass_slot(),
        hot.disabled_slots
    );
    assert!(
        hot.disabled_slots
            .contains(&CveId::Cve2020_26952.pass_slot()),
        "slot {} missing from {:?}",
        CveId::Cve2020_26952.pass_slot(),
        hot.disabled_slots
    );
}

//! Differential lockdown of the incremental Δ extractor.
//!
//! `jitbull::extract_dna` / `jitbull::extract_delta` are the normative
//! Algorithm 1 implementation; `jitbull::IncrementalExtractor` (edge-diff
//! fast path, cached enumeration, interned run windows) must return
//! chain-for-chain identical DNA on every trace. These tests sweep seeded
//! random MIR snapshot pairs — including renumberings, no-op passes,
//! pathological high-fanout graphs that bind the chain caps, and
//! chained records sharing snapshots — the full VDC catalog, the workload
//! suite at engine level, and fail on the first divergence.

use std::sync::Arc;

use jitbull::{extract_delta, extract_dna, IncrementalExtractor};
use jitbull_mir::{MirSnapshot, PassRecord, PassTrace, SnapInstr};
use jitbull_prng::Rng;

const LABELS: &[&str] = &[
    "add",
    "mul",
    "sub",
    "constant:number",
    "parameter0",
    "parameter1",
    "loadelement",
    "storeelement",
    "boundscheck",
    "initializedlength",
    "unbox:array",
    "return",
    "phi",
    "guardshape",
];

const PASS_NAMES: &[&str] = &[
    "TypeSpecialization",
    "GVN",
    "LICM",
    "BoundsCheckElimination",
    "EliminateRedundantChecks",
    "FoldLinearArithmetic",
];

const SLOTS: usize = 16;

fn instr(rng: &mut Rng, id: u32, prior: &[u32]) -> SnapInstr {
    let n_ops = rng.gen_range(0..3usize);
    let operands = (0..n_ops)
        .map(|_| {
            if !prior.is_empty() && rng.gen_bool(0.85) {
                *rng.pick(prior)
            } else {
                // Dangling or forward reference: the extractor must
                // treat unknown ids exactly like the reference ("?").
                rng.gen_range(0..40u32)
            }
        })
        .collect();
    SnapInstr {
        id,
        label: Arc::from(*rng.pick(LABELS)),
        operands,
    }
}

fn random_snapshot(rng: &mut Rng, max_instrs: usize) -> MirSnapshot {
    let n = rng.gen_range(1..max_instrs.max(2));
    let mut ids: Vec<u32> = Vec::new();
    let mut instrs = Vec::new();
    let mut next = 0u32;
    for _ in 0..n {
        next += rng.gen_range(1..3u32); // occasional id gaps
        instrs.push(instr(rng, next, &ids));
        ids.push(next);
    }
    MirSnapshot { instrs }
}

/// A dense layered graph wide and deep enough that the reference
/// extractor's MAX_CHAINS / MAX_CHAIN_LEN caps bind — the regime where
/// enumeration *order* becomes observable and any ordering drift in the
/// incremental path would change the emitted set.
fn pathological_snapshot(rng: &mut Rng) -> MirSnapshot {
    let width = rng.gen_range(3..6usize);
    let depth = rng.gen_range(4..8usize);
    let mut instrs = Vec::new();
    for layer in 0..depth {
        for lane in 0..width {
            let id = (layer * width + lane) as u32;
            let operands = if layer == 0 {
                Vec::new()
            } else {
                ((layer - 1) * width..layer * width)
                    .map(|p| p as u32)
                    .collect()
            };
            instrs.push(SnapInstr {
                id,
                label: Arc::from(*rng.pick(LABELS)),
                operands,
            });
        }
    }
    MirSnapshot { instrs }
}

/// Derives `after` from `before` the way a pass would: a few removals,
/// insertions, rewires, relabels — or a pure renumbering / no-op, the
/// cases the incremental fast path must prove empty without enumerating.
fn mutate(rng: &mut Rng, before: &MirSnapshot) -> MirSnapshot {
    let mut after = before.clone();
    match rng.gen_range(0..10u32) {
        0 => {} // no-op pass: identical snapshot
        1 => {
            // Pure renumbering: same label structure, shifted ids.
            let shift = rng.gen_range(1..50u32);
            for i in &mut after.instrs {
                i.id += shift;
                for o in &mut i.operands {
                    *o += shift;
                }
            }
        }
        _ => {
            for _ in 0..rng.gen_range(1..4usize) {
                if after.instrs.is_empty() {
                    break;
                }
                match rng.gen_range(0..4u32) {
                    0 => {
                        let at = rng.gen_range(0..after.instrs.len());
                        after.instrs.remove(at);
                    }
                    1 => {
                        let prior: Vec<u32> = after.instrs.iter().map(|i| i.id).collect();
                        let id = prior.iter().max().unwrap_or(&0) + rng.gen_range(1..4u32);
                        let ins = instr(rng, id, &prior);
                        let at = rng.gen_range(0..after.instrs.len() + 1);
                        after.instrs.insert(at, ins);
                    }
                    2 => {
                        let at = rng.gen_range(0..after.instrs.len());
                        after.instrs[at].label = Arc::from(*rng.pick(LABELS));
                    }
                    _ => {
                        let at = rng.gen_range(0..after.instrs.len());
                        if !after.instrs[at].operands.is_empty() {
                            let o = rng.gen_range(0..after.instrs[at].operands.len());
                            after.instrs[at].operands[o] = rng.gen_range(0..40u32);
                        }
                    }
                }
            }
        }
    }
    after
}

/// Builds a trace of `n_records` passes. With probability ~0.7 each
/// record's `before` is the previous record's `after` (the shape a real
/// pipeline produces, exercising the enumeration-reuse path); otherwise
/// it is a fresh snapshot.
fn random_trace(rng: &mut Rng, n_records: usize, pathological: bool) -> PassTrace {
    let mut records = Vec::new();
    let mut current = if pathological {
        pathological_snapshot(rng)
    } else {
        random_snapshot(rng, 14)
    };
    for _ in 0..n_records {
        let before = if !records.is_empty() && rng.gen_bool(0.3) {
            if pathological {
                pathological_snapshot(rng)
            } else {
                random_snapshot(rng, 14)
            }
        } else {
            current.clone()
        };
        let after = mutate(rng, &before);
        records.push(PassRecord {
            slot: rng.gen_range(0..SLOTS),
            // Not auto-deref: the explicit `*` pins `pick`'s element
            // type to `&str` (clippy's suggestion fails inference).
            #[allow(clippy::explicit_auto_deref)]
            name: *rng.pick(PASS_NAMES),
            before: before.clone(),
            after: after.clone(),
        });
        current = after;
    }
    PassTrace {
        function: "f".into(),
        records,
    }
}

/// Runs seeded random traces through both extractors and asserts
/// chain-for-chain identical DNA (whole-trace) and identical per-pass
/// deltas (pairwise). One `IncrementalExtractor` persists across the
/// whole sweep so the interner, run-window cache, and enumeration cache
/// carry real cross-case state. Returns snapshot pairs checked.
fn sweep(seed: u64, traces: usize) -> usize {
    let mut rng = Rng::seed_from_u64(seed);
    let mut incremental = IncrementalExtractor::new();
    let mut pairs = 0;
    for case in 0..traces {
        let pathological = rng.gen_bool(0.05);
        let n_records = rng.gen_range(1..5usize);
        let trace = random_trace(&mut rng, n_records, pathological);
        pairs += trace.records.len();
        let expected = extract_dna(&trace, SLOTS);
        let (got, receipt) = incremental.extract_dna(&trace, SLOTS);
        assert_eq!(
            got, expected,
            "whole-trace divergence: seed={seed} case={case} pathological={pathological} receipt={receipt:?}"
        );
        for (i, r) in trace.records.iter().enumerate() {
            let expected = extract_delta(&r.before, &r.after);
            let got = incremental.extract_delta(&r.before, &r.after);
            assert_eq!(
                got, expected,
                "per-pass divergence: seed={seed} case={case} record={i}"
            );
        }
    }
    let stats = incremental.stats();
    assert!(
        stats.passes_skipped > 0 && stats.passes_enumerated > 0,
        "sweep never exercised both the fast path and the slow path: {stats:?}"
    );
    pairs
}

/// The headline differential: ≥10k seeded random snapshot pairs, zero
/// divergences between the incremental extractor and the Algorithm 1
/// oracle.
#[test]
fn random_sweep_finds_zero_divergences() {
    let pairs = sweep(0xE0_7C47, 4200);
    assert!(pairs >= 10_000, "only {pairs} snapshot pairs checked");
}

/// Large release-profile sweep, run by the CI `--ignored` job.
#[test]
#[ignore = "large sweep; run with --release -- --ignored"]
fn large_random_sweep_finds_zero_divergences() {
    let pairs = sweep(0x05EE_DE47, 21_000);
    assert!(pairs >= 50_000, "only {pairs} snapshot pairs checked");
}

/// Every VDC in the catalog: the trace a protected engine would take
/// (each VDC compiled on an engine carrying its own CVE) must extract
/// identically under both implementations.
#[test]
fn full_vdc_catalog_extracts_identically() {
    use jitbull_frontend::parse_program;
    use jitbull_jit::pipeline::{optimize, OptimizeOptions, N_SLOTS};
    use jitbull_jit::VulnConfig;
    use jitbull_mir::build_mir;
    use jitbull_vm::compile_program;

    let mut incremental = IncrementalExtractor::new();
    for v in jitbull_vdc::all_vdcs() {
        let program = parse_program(&v.source).unwrap();
        let module = compile_program(&program).unwrap();
        for name in &v.trigger_functions {
            let fid = module.function_id(name).unwrap();
            let mir = build_mir(&module, fid).unwrap();
            let result = optimize(
                mir,
                &VulnConfig::with([v.cve]),
                &OptimizeOptions {
                    trace: true,
                    ..Default::default()
                },
            );
            let expected = extract_dna(&result.trace, N_SLOTS);
            let (got, _) = incremental.extract_dna(&result.trace, N_SLOTS);
            assert_eq!(got, expected, "divergence: vdc={} fn={name}", v.name);
        }
    }
}

/// Engine level: the whole workload serving mix, run end-to-end under
/// each `ExtractorMode` against a full VDC database, must print the same
/// output and reach the same tier/verdict counts.
#[test]
fn engine_runs_agree_across_extractor_modes() {
    use jitbull::ExtractorMode;
    use jitbull_jit::engine::{Engine, EngineConfig};
    use jitbull_jit::{CveId, VulnConfig};

    let db = jitbull_vdc::build_database(&jitbull_vdc::all_vdcs()).unwrap();
    for w in jitbull_workloads::serving_mix() {
        let mut runs = Vec::new();
        for mode in [ExtractorMode::Reference, ExtractorMode::Incremental] {
            let config = EngineConfig {
                vulns: VulnConfig::with([CveId::Cve2019_17026]),
                extractor: mode,
                ..EngineConfig::fast_test()
            };
            let guard =
                jitbull::Guard::new(db.clone(), jitbull::CompareConfig { thr: 1, ratio: 0.5 });
            let mut engine = Engine::with_guard(config, guard);
            runs.push(engine.run_source_with(&w.source).unwrap());
        }
        let (a, b) = (&runs[0], &runs[1]);
        assert_eq!(a.outcome.printed, b.outcome.printed, "{}", w.name);
        assert_eq!(a.nr_jit, b.nr_jit, "{}", w.name);
        assert_eq!(a.nr_disjit, b.nr_disjit, "{}", w.name);
        assert_eq!(a.nr_nojit, b.nr_nojit, "{}", w.name);
        for (sa, sb) in a.stats.iter().zip(&b.stats) {
            assert_eq!(sa.matched, sb.matched, "{}", w.name);
        }
    }
}

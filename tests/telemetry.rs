//! Telemetry integration: invariants the event stream and metrics must
//! satisfy over full workload runs.

use std::cell::RefCell;
use std::rc::Rc;

use jitbull::DnaDatabase;
use jitbull_bench::figures::db_with;
use jitbull_jit::engine::EngineConfig;
use jitbull_telemetry::{Event, Recorder, Tier};
use jitbull_workloads::{microbenches, run_workload, run_workload_observed};

fn recorder() -> Rc<RefCell<Recorder>> {
    // Generous capacity so no event is dropped and counters can be
    // cross-checked against the raw stream.
    Rc::new(RefCell::new(Recorder::with_capacity(1 << 16)))
}

#[test]
fn ion_promotions_match_ion_compiles_on_a_clean_engine() {
    for w in microbenches() {
        let rec = recorder();
        let m = run_workload_observed(&w, EngineConfig::default(), None, rec.clone())
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        let rec = rec.borrow();
        let met = rec.metrics();
        // No guard, harmless code: every optimizing compile promotes.
        assert_eq!(
            met.counter("engine.compile.ion"),
            met.counter("engine.promoted.ion"),
            "{}",
            w.name
        );
        assert_eq!(met.counter("engine.promoted.ion"), m.nr_jit as u64);
        assert_eq!(met.counter("runs.clean"), 1);
        // Counters agree with the raw event stream.
        assert_eq!(rec.events().dropped(), 0);
        let promoted_events = rec
            .events()
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    Event::TierPromoted {
                        tier: Tier::Ion,
                        ..
                    }
                )
            })
            .count() as u64;
        assert_eq!(promoted_events, met.counter("engine.promoted.ion"));
    }
}

#[test]
fn verdicts_partition_analyses_under_jitbull() {
    let (db, vulns) = db_with(4);
    for w in microbenches() {
        let rec = recorder();
        run_workload_observed(
            &w,
            EngineConfig {
                vulns: vulns.clone(),
                ..Default::default()
            },
            Some(db.clone()),
            rec.clone(),
        )
        .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        let rec = rec.borrow();
        let met = rec.metrics();
        let analyses = met.counter("guard.analyses");
        assert!(analyses > 0, "{}: guard never ran", w.name);
        // Exactly one policy verdict per guard analysis, one analysis per
        // optimizing compile round.
        assert_eq!(
            met.counter("policy.go")
                + met.counter("policy.recompile")
                + met.counter("policy.nojit"),
            analyses,
            "{}",
            w.name
        );
        assert_eq!(analyses, met.counter("engine.compile.ion"), "{}", w.name);
        // Per-slot attribution covers the whole pipeline charge.
        let slot_total: u64 = rec.slot_stats().iter().map(|s| s.cycles).sum();
        assert_eq!(slot_total, met.counter("pipeline.cycles"), "{}", w.name);
    }
}

#[test]
fn empty_db_observation_is_cycle_neutral_and_guard_silent() {
    let benches = microbenches();
    let plain = run_workload(&benches[0], EngineConfig::default(), None).unwrap();
    let rec = recorder();
    let observed = run_workload_observed(
        &benches[0],
        EngineConfig::default(),
        Some(DnaDatabase::new()),
        rec.clone(),
    )
    .unwrap();
    // Attaching a recorder must not perturb the simulated cycle model —
    // the paper's zero-overhead empty-DB property survives observation.
    assert_eq!(plain.cycles, observed.cycles);
    let rec = rec.borrow();
    let met = rec.metrics();
    // With no VDCs installed the guard and policy never run.
    assert_eq!(met.counter("guard.analyses"), 0);
    assert_eq!(
        met.counter("policy.go") + met.counter("policy.recompile") + met.counter("policy.nojit"),
        0
    );
    assert!(rec.events().iter().all(|e| !matches!(
        e,
        Event::GuardAnalyzed { .. } | Event::PolicyDecision { .. }
    )));
}

//! Golden-DNA corpus: the exact Δ DNA of every workload-suite function
//! and every VDC catalog entry, serialised via `Dna::to_text` and checked
//! into `tests/golden/`. Any change to the frontend, the MIR builder, the
//! pass pipeline, or the Δ extractor that perturbs even one sub-chain
//! fails these tests with a readable line diff.
//!
//! Extraction runs through `Guard::extract` — the normative Algorithm 1
//! reference path — so the corpus *is* the reference oracle's output and
//! passes unchanged under `ExtractorMode::Reference`; the incremental
//! extractor is held to the same output by `tests/extract_differential.rs`.
//!
//! Regenerate after an intentional change with:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test --test golden_dna
//! ```
//!
//! and review the diff like any other source change.

use std::fmt::Write as _;
use std::path::PathBuf;

use jitbull::Dna;
use jitbull_jit::pipeline::N_SLOTS;
use jitbull_jit::VulnConfig;
use jitbull_vdc::{all_vdcs, extract_dna, extract_program_dna};

/// One golden file: a stem under `tests/golden/` and the named DNAs it
/// locks down, in extraction order.
struct GoldenFile {
    stem: String,
    entries: Vec<(String, Dna)>,
}

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

/// Every function of every workload in the suite (micro-benchmarks,
/// Octane analogues, and the pool serving mix), extracted on a fully
/// patched engine — the DNA a clean compile produces.
fn workload_corpus() -> Vec<GoldenFile> {
    let mut workloads = jitbull_workloads::all_workloads();
    workloads.extend(jitbull_workloads::serving_mix());
    workloads
        .iter()
        .map(|w| GoldenFile {
            stem: format!("workload_{}", w.name.to_lowercase()),
            entries: extract_program_dna(&w.source, &VulnConfig::none())
                .unwrap_or_else(|e| panic!("{}: {e}", w.name)),
        })
        .collect()
}

/// Every VDC catalog entry's trigger functions, extracted on an engine
/// vulnerable to that VDC's own CVE — exactly the DNA `build_database`
/// installs during the vulnerability window.
fn vdc_corpus() -> Vec<GoldenFile> {
    all_vdcs()
        .iter()
        .map(|v| GoldenFile {
            stem: format!("vdc_{}", v.name),
            entries: extract_dna(v, &VulnConfig::with([v.cve]))
                .unwrap_or_else(|e| panic!("{}: {e}", v.name)),
        })
        .collect()
}

fn render(file: &GoldenFile) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# golden DNA corpus — {} (regenerate: UPDATE_GOLDEN=1 cargo test --test golden_dna)",
        file.stem
    );
    for (name, dna) in &file.entries {
        let _ = writeln!(out, "# function: {name}");
        out.push_str(&dna.to_text());
    }
    out
}

/// A readable line diff: every differing line with its number, plus
/// lines present on only one side.
fn line_diff(expected: &str, actual: &str) -> String {
    let e: Vec<&str> = expected.lines().collect();
    let a: Vec<&str> = actual.lines().collect();
    let mut out = String::new();
    for i in 0..e.len().max(a.len()) {
        match (e.get(i), a.get(i)) {
            (Some(x), Some(y)) if x == y => {}
            (x, y) => {
                let _ = writeln!(
                    out,
                    "  line {}: golden `{}` vs extracted `{}`",
                    i + 1,
                    x.copied().unwrap_or("<missing>"),
                    y.copied().unwrap_or("<missing>")
                );
            }
        }
    }
    out
}

fn check_corpus(files: &[GoldenFile]) {
    let dir = golden_dir();
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(&dir).expect("create tests/golden");
        for f in files {
            std::fs::write(dir.join(format!("{}.dna", f.stem)), render(f))
                .unwrap_or_else(|e| panic!("write {}: {e}", f.stem));
        }
        return;
    }
    let mut failures = String::new();
    for f in files {
        let path = dir.join(format!("{}.dna", f.stem));
        let golden = std::fs::read_to_string(&path).unwrap_or_else(|_| {
            panic!(
                "missing golden file {} — regenerate with UPDATE_GOLDEN=1 cargo test --test golden_dna",
                path.display()
            )
        });
        let actual = render(f);
        if golden != actual {
            let _ = writeln!(
                failures,
                "{}.dna diverged from the extracted DNA:\n{}",
                f.stem,
                line_diff(&golden, &actual)
            );
        }
    }
    assert!(
        failures.is_empty(),
        "golden DNA mismatch (intentional change? regenerate with UPDATE_GOLDEN=1):\n{failures}"
    );
}

#[test]
fn workload_suite_dna_matches_golden_corpus() {
    check_corpus(&workload_corpus());
}

#[test]
fn vdc_catalog_dna_matches_golden_corpus() {
    check_corpus(&vdc_corpus());
}

/// `Dna::from_text(Dna::to_text(d))` is the identity for every corpus
/// entry — including trivial DNAs (whose text is empty) and DNAs with
/// empty slots interleaved between populated ones.
#[test]
fn golden_corpus_round_trips_through_text() {
    let mut checked = 0;
    let mut trivial = 0;
    for file in workload_corpus().into_iter().chain(vdc_corpus()) {
        for (name, dna) in &file.entries {
            let text = dna.to_text();
            let parsed = Dna::from_text(&text, N_SLOTS)
                .unwrap_or_else(|e| panic!("{}/{name}: {e}", file.stem));
            assert_eq!(parsed, *dna, "{}/{name} fails to round-trip", file.stem);
            assert_eq!(
                parsed.structural_hash(),
                dna.structural_hash(),
                "{}/{name} hash drifts across round-trip",
                file.stem
            );
            if dna.is_trivial() {
                trivial += 1;
                assert!(text.is_empty(), "trivial DNA must serialise to nothing");
            }
            checked += 1;
        }
    }
    assert!(checked > 20, "corpus unexpectedly small: {checked}");
    assert!(trivial > 0, "corpus should include trivial-DNA edge cases");
}

/// The comment framing (`# function: …` headers) must be transparent to
/// the parser: parsing a whole golden *file* yields the union of its
/// entries' deltas.
#[test]
fn golden_file_comments_are_transparent_to_the_parser() {
    let file = vdc_corpus().into_iter().next().expect("catalog non-empty");
    let merged = Dna::from_text(&render(&file), N_SLOTS).expect("golden file parses");
    let mut expected = Dna::with_slots(N_SLOTS);
    for (_, dna) in &file.entries {
        for (slot, d) in dna.deltas.iter().enumerate() {
            expected.deltas[slot]
                .removed
                .extend(d.removed.iter().cloned());
            expected.deltas[slot].added.extend(d.added.iter().cloned());
        }
    }
    assert_eq!(merged, expected);
}

//! Three-way differential: interpreter vs MIR-executor tier vs the full
//! LIR backend (lowering, out-of-SSA, register allocation) must agree on
//! every workload and every demonstrator outcome.

use jitbull_jit::engine::{Backend, Engine, EngineConfig};
use jitbull_jit::{CveId, VulnConfig};
use jitbull_vdc::validate::run_script;
use jitbull_vdc::vdc;
use jitbull_workloads::all_workloads;

fn run(source: &str, jit: bool, backend: Backend) -> Vec<String> {
    Engine::run_source(
        source,
        EngineConfig {
            jit_enabled: jit,
            backend,
            ..Default::default()
        },
    )
    .map(|o| o.outcome.printed)
    .unwrap_or_else(|e| vec![format!("error: {e}")])
}

#[test]
fn all_workloads_agree_across_backends() {
    for w in all_workloads() {
        let interp = run(&w.source, false, Backend::Lir);
        let mir = run(&w.source, true, Backend::Mir);
        let lir = run(&w.source, true, Backend::Lir);
        assert_eq!(interp, mir, "{}: MIR backend diverged", w.name);
        assert_eq!(interp, lir, "{}: LIR backend diverged", w.name);
    }
}

#[test]
fn exploits_work_through_both_backends() {
    for cve in CveId::security_set() {
        let poc = vdc(cve);
        for backend in [Backend::Mir, Backend::Lir] {
            let mut engine = Engine::new(EngineConfig {
                vulns: VulnConfig::with([cve]),
                backend,
                ..Default::default()
            });
            let outcome = run_script(&poc.source, &mut engine).unwrap();
            assert!(
                outcome.matches(poc.expected),
                "{} on {backend:?}: {outcome:?}",
                poc.name
            );
        }
    }
}

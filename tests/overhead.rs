//! Figure-5/6 reproduction bounds: JITBULL's overhead properties.

use jitbull::ComparatorMode;
use jitbull_bench::figures::{db_with, fig5, fig6, fig6_comparator};
use jitbull_jit::engine::EngineConfig;
use jitbull_workloads::{octane_analogues, run_workload};

#[test]
fn fig5_overhead_shapes_match_paper() {
    let rows = fig5();
    for r in &rows {
        // Paper §VI-C: an empty DB costs nothing.
        assert_eq!(
            r.jitbull_0, r.jit,
            "{}: empty-DB JITBULL must be free",
            r.name
        );
        // JITBULL's overhead (1-20 % in the paper; we allow a bit of
        // headroom) is far below disabling the JIT.
        let o1 = r.overhead_pct(r.jitbull_1);
        let o4 = r.overhead_pct(r.jitbull_4);
        assert!(
            (0.0..30.0).contains(&o1),
            "{}: #1 overhead {o1:.1}%",
            r.name
        );
        assert!(
            (-5.0..35.0).contains(&o4),
            "{}: #4 overhead {o4:.1}%",
            r.name
        );
        let nojit = r.overhead_pct(r.nojit);
        assert!(
            nojit > 45.0,
            "{}: NoJIT should be drastically slower, got {nojit:.1}%",
            r.name
        );
        assert!(
            nojit > 3.0 * o4.max(1.0),
            "{}: JITBULL ({o4:.1}%) must beat NoJIT ({nojit:.1}%) clearly",
            r.name
        );
    }
}

#[test]
fn fig6_overhead_flattens_with_db_size() {
    // Run the scalability sweep on a subset to keep the test fast.
    let workloads: Vec<_> = octane_analogues()
        .into_iter()
        .filter(|w| matches!(w.name, "Splay" | "Richards" | "Crypto"))
        .collect();
    let rows = fig6(&workloads);
    for r in &rows {
        let o1 = r.overhead_pct(1);
        let o8 = r.overhead_pct(8);
        // Paper: max 22 %, growth flattens beyond #4.
        assert!(o8 < 35.0, "{}: #8 overhead {o8:.1}%", r.name);
        assert!(
            o8 >= o1 - 6.0,
            "{}: overhead collapsed unexpectedly",
            r.name
        );
        let o4 = r.overhead_pct(4);
        let tail_growth = o8 - o4;
        assert!(
            tail_growth.abs() < 10.0,
            "{}: overhead did not stabilize beyond #4 ({tail_growth:.1}%)",
            r.name
        );
    }
}

#[test]
fn db_construction_is_deterministic() {
    let (a, _) = db_with(4);
    let (b, _) = db_with(4);
    assert_eq!(a, b);
}

/// The indexed comparator must beat the naive reference loop once the
/// database is non-trivial (acceptance: DB >= 8 entries), while producing
/// the exact same verdicts and program output.
#[test]
fn indexed_comparator_beats_reference_at_db8() {
    let (db, vulns) = db_with(8);
    for w in &octane_analogues() {
        let run = |mode: ComparatorMode| {
            run_workload(
                w,
                EngineConfig {
                    vulns: vulns.clone(),
                    comparator: mode,
                    ..Default::default()
                },
                Some(db.clone()),
            )
            .expect("workload runs")
        };
        let reference = run(ComparatorMode::Reference);
        let indexed = run(ComparatorMode::Indexed);
        // Same verdict mix and same execution, cheaper analysis.
        assert_eq!(reference.nr_jit, indexed.nr_jit, "{}", w.name);
        assert_eq!(reference.nr_disjit, indexed.nr_disjit, "{}", w.name);
        assert_eq!(reference.nr_nojit, indexed.nr_nojit, "{}", w.name);
        assert_eq!(reference.ops, indexed.ops, "{}", w.name);
        assert!(
            indexed.analysis_cycles < reference.analysis_cycles,
            "{}: indexed {} >= reference {} analysis cycles",
            w.name,
            indexed.analysis_cycles,
            reference.analysis_cycles
        );
    }
}

/// Release-profile smoke run of the full Figure-6 comparator sweep (the
/// CI `--ignored` job): indexed must win at every workload for DB >= 8.
#[test]
#[ignore = "slow: full fig6 comparator sweep, run via cargo test --release -- --ignored"]
fn fig6_comparator_sweep_smoke() {
    let sizes = [1usize, 2, 4, 8];
    let rows = fig6_comparator(&octane_analogues(), &sizes);
    assert!(!rows.is_empty());
    for r in &rows {
        let (reference, indexed) = r.cycles[sizes.len() - 1];
        assert!(
            indexed < reference,
            "{}: indexed {indexed} >= reference {reference} at #8",
            r.name
        );
        // Speedup grows (or at least does not regress badly) with DB size.
        assert!(r.speedup(sizes.len() - 1) > 1.0, "{}", r.name);
    }
}

//! Figure-5/6 reproduction bounds: JITBULL's overhead properties.

use jitbull_bench::figures::{db_with, fig5, fig6};
use jitbull_workloads::octane_analogues;

#[test]
fn fig5_overhead_shapes_match_paper() {
    let rows = fig5();
    for r in &rows {
        // Paper §VI-C: an empty DB costs nothing.
        assert_eq!(
            r.jitbull_0, r.jit,
            "{}: empty-DB JITBULL must be free",
            r.name
        );
        // JITBULL's overhead (1-20 % in the paper; we allow a bit of
        // headroom) is far below disabling the JIT.
        let o1 = r.overhead_pct(r.jitbull_1);
        let o4 = r.overhead_pct(r.jitbull_4);
        assert!(
            (0.0..30.0).contains(&o1),
            "{}: #1 overhead {o1:.1}%",
            r.name
        );
        assert!(
            (-5.0..35.0).contains(&o4),
            "{}: #4 overhead {o4:.1}%",
            r.name
        );
        let nojit = r.overhead_pct(r.nojit);
        assert!(
            nojit > 45.0,
            "{}: NoJIT should be drastically slower, got {nojit:.1}%",
            r.name
        );
        assert!(
            nojit > 3.0 * o4.max(1.0),
            "{}: JITBULL ({o4:.1}%) must beat NoJIT ({nojit:.1}%) clearly",
            r.name
        );
    }
}

#[test]
fn fig6_overhead_flattens_with_db_size() {
    // Run the scalability sweep on a subset to keep the test fast.
    let workloads: Vec<_> = octane_analogues()
        .into_iter()
        .filter(|w| matches!(w.name, "Splay" | "Richards" | "Crypto"))
        .collect();
    let rows = fig6(&workloads);
    for r in &rows {
        let o1 = r.overhead_pct(1);
        let o8 = r.overhead_pct(8);
        // Paper: max 22 %, growth flattens beyond #4.
        assert!(o8 < 35.0, "{}: #8 overhead {o8:.1}%", r.name);
        assert!(
            o8 >= o1 - 6.0,
            "{}: overhead collapsed unexpectedly",
            r.name
        );
        let o4 = r.overhead_pct(4);
        let tail_growth = o8 - o4;
        assert!(
            tail_growth.abs() < 10.0,
            "{}: overhead did not stabilize beyond #4 ({tail_growth:.1}%)",
            r.name
        );
    }
}

#[test]
fn db_construction_is_deterministic() {
    let (a, _) = db_with(4);
    let (b, _) = db_with(4);
    assert_eq!(a, b);
}

//! Differential lockdown of the indexed Δ comparator.
//!
//! `jitbull::compare::reference` is the normative Algorithm 2
//! implementation; every configuration of the indexed comparator
//! (`jitbull::index::ComparatorIndex` — interned, prefiltered, cached,
//! optionally sharded) must return byte-identical verdicts. These tests
//! sweep seeded random DNA pairs, the full VDC catalog, and adversarial
//! near-threshold constructions, and fail on the first divergence.

use std::collections::BTreeSet;
use std::sync::Arc;

use jitbull::compare::{reference, CompareConfig};
use jitbull::index::EntryMatches;
use jitbull::{Chain, ComparatorIndex, Dna, DnaDatabase, IndexConfig};
use jitbull_prng::Rng;
use jitbull_vdc::{all_vdcs, build_database, extract_dna};

const LABELS: &[&str] = &[
    "add",
    "mul",
    "sub",
    "constant:number",
    "parameter0",
    "parameter1",
    "loadelement",
    "storeelement",
    "boundscheck",
    "initializedlength",
    "unbox:array",
    "return",
    "phi",
    "guardshape",
];

const SLOTS: usize = 8;

fn random_chain(rng: &mut Rng) -> Chain {
    (0..rng.gen_range(1..5usize))
        .map(|_| Arc::from(*rng.pick(LABELS)))
        .collect()
}

fn random_set(rng: &mut Rng, max: usize) -> BTreeSet<Chain> {
    (0..rng.gen_range(0..max))
        .map(|_| random_chain(rng))
        .collect()
}

fn random_dna(rng: &mut Rng) -> Dna {
    let mut dna = Dna::with_slots(SLOTS);
    for delta in &mut dna.deltas {
        if rng.gen_bool(0.4) {
            delta.removed = random_set(rng, 6);
        }
        if rng.gen_bool(0.4) {
            delta.added = random_set(rng, 6);
        }
    }
    dna
}

fn random_config(rng: &mut Rng) -> CompareConfig {
    CompareConfig {
        thr: rng.gen_range(0..5usize),
        ratio: rng.gen_range(0..101u32) as f64 / 100.0,
    }
}

/// The oracle: per-entry dangerous slots via the naive normative loop,
/// in the same shape `ComparatorIndex::query` reports.
fn reference_matches(db: &DnaDatabase, query: &Dna, config: &CompareConfig) -> EntryMatches {
    db.entries()
        .iter()
        .enumerate()
        .filter_map(|(i, e)| {
            let slots = reference(query, &e.dna, config);
            (!slots.is_empty()).then_some((i, slots))
        })
        .collect()
}

/// Three index configurations that must all agree with the oracle:
/// default (cached, sequential), cache disabled, and forced-parallel.
fn index_variants() -> Vec<(&'static str, IndexConfig)> {
    vec![
        ("default", IndexConfig::default()),
        (
            "uncached",
            IndexConfig {
                max_cache_entries: 0,
                ..IndexConfig::default()
            },
        ),
        (
            "parallel",
            IndexConfig {
                parallel_threshold: 0,
                max_shards: 4,
                max_cache_entries: 64,
            },
        ),
    ]
}

/// Runs `cases` queries against databases derived from `seed`, checking
/// every index variant against the oracle. Returns the case count.
fn sweep(seed: u64, databases: usize, cases_per_db: usize) -> usize {
    let mut rng = Rng::seed_from_u64(seed);
    let mut checked = 0;
    for db_i in 0..databases {
        let mut db = DnaDatabase::new();
        for e in 0..rng.gen_range(1..6usize) {
            db.install(
                format!("CVE-{db_i}-{e}"),
                format!("f{e}"),
                random_dna(&mut rng),
            );
        }
        let mut indexes: Vec<(&str, ComparatorIndex)> = index_variants()
            .into_iter()
            .map(|(name, cfg)| (name, ComparatorIndex::new(cfg)))
            .collect();
        let config = random_config(&mut rng);
        // Pre-generate a small pool so repeats exercise the cache.
        let pool: Vec<Dna> = (0..8).map(|_| random_dna(&mut rng)).collect();
        for _ in 0..cases_per_db {
            let query = if rng.gen_bool(0.5) {
                rng.pick(&pool).clone()
            } else {
                random_dna(&mut rng)
            };
            let expected = reference_matches(&db, &query, &config);
            for (name, index) in &mut indexes {
                index.ensure(&db);
                let (got, _) = index.query(&query, &config);
                assert_eq!(
                    *got, expected,
                    "divergence: variant={name} db={db_i} seed={seed} config={config:?}\nquery:\n{}",
                    query.to_text()
                );
                checked += 1;
            }
        }
    }
    checked
}

/// The main differential sweep: ≥10k indexed-vs-reference comparisons
/// across random databases, configurations, and all index variants.
#[test]
fn random_sweep_finds_zero_divergences() {
    let checked = sweep(0xD1FF, 56, 60);
    assert!(checked >= 10_000, "only {checked} cases checked");
}

/// Large release-profile sweep, run by the CI `--ignored` job.
#[test]
#[ignore = "large sweep; run with --release -- --ignored"]
fn large_random_sweep_finds_zero_divergences() {
    let checked = sweep(0xB16_5EED, 160, 110);
    assert!(checked >= 50_000, "only {checked} cases checked");
}

/// Every VDC in the catalog, queried with every catalog DNA (including
/// its own — the paper's self-match case) under the paper's default
/// thresholds and several degenerate ones.
#[test]
fn full_vdc_catalog_agrees() {
    let vdcs = all_vdcs();
    let db = build_database(&vdcs).unwrap();
    assert!(!db.is_empty());
    // Query with exactly the DNA a protected engine would extract: each
    // VDC's trigger functions compiled on an engine carrying its CVE.
    let queries: Vec<(String, Dna)> = vdcs
        .iter()
        .flat_map(|v| {
            let vulns = jitbull_jit::VulnConfig::with([v.cve]);
            extract_dna(v, &vulns).unwrap_or_else(|e| panic!("{}: {e}", v.name))
        })
        .collect();
    let configs = [
        CompareConfig::default(),
        CompareConfig { thr: 1, ratio: 0.5 },
        CompareConfig { thr: 0, ratio: 0.0 },
        CompareConfig { thr: 2, ratio: 1.0 },
    ];
    for config in &configs {
        for (name, idx_cfg) in index_variants() {
            let mut index = ComparatorIndex::new(idx_cfg);
            index.ensure(&db);
            for (fname, query) in &queries {
                let expected = reference_matches(&db, query, config);
                let (got, _) = index.query(query, config);
                assert_eq!(
                    *got, expected,
                    "divergence: variant={name} query={fname} config={config:?}"
                );
            }
        }
    }
    // At the permissive threshold, each trigger function's own DNA must
    // match its own database entry — the detection property the whole
    // mechanism rests on.
    let cfg = CompareConfig { thr: 1, ratio: 0.5 };
    let mut index = ComparatorIndex::new(IndexConfig::default());
    index.ensure(&db);
    for (fname, query) in &queries {
        if query.is_trivial() {
            continue; // trivial DNA is never installed, so never matches
        }
        let (got, _) = index.query(query, &cfg);
        assert!(
            !got.is_empty(),
            "trigger {fname} did not match its own database entry"
        );
    }
}

/// Chains `c0..cn` shared between both sides plus per-side unique
/// filler, letting tests place `eq` exactly on a threshold boundary.
fn boundary_sets(
    shared: usize,
    a_extra: usize,
    b_extra: usize,
) -> (BTreeSet<Chain>, BTreeSet<Chain>) {
    let mk = |tag: &str, i: usize| -> Chain {
        vec![Arc::from(format!("{tag}{i}").as_str()), Arc::from("x")]
    };
    let mut a: BTreeSet<Chain> = (0..shared).map(|i| mk("c", i)).collect();
    let mut b = a.clone();
    for i in 0..a_extra {
        a.insert(mk("a", i));
    }
    for i in 0..b_extra {
        b.insert(mk("b", i));
    }
    (a, b)
}

fn dna_from_set(set: &BTreeSet<Chain>, slot: usize, removed_side: bool) -> Dna {
    let mut dna = Dna::with_slots(SLOTS);
    if removed_side {
        dna.deltas[slot].removed = set.clone();
    } else {
        dna.deltas[slot].added = set.clone();
    }
    dna
}

/// Near-threshold constructions: `eq == thr` exactly, one below, and
/// `eq` straddling `⌈ratio · min⌉` by ±1. Both comparators must draw the
/// same line in every case.
#[test]
fn threshold_boundaries_agree() {
    let mut cases: Vec<(usize, usize, usize, CompareConfig)> = Vec::new();
    // eq == thr and eq == thr - 1 at ratio 0 (ratio never binds).
    for thr in 1..6usize {
        cases.push((thr, 2, 2, CompareConfig { thr, ratio: 0.0 }));
        cases.push((thr - 1, 2, 2, CompareConfig { thr, ratio: 0.0 }));
    }
    // eq == ⌈ratio·min⌉ ± 1 with thr == 1 (ratio is the binding edge).
    for min_len in 2..10usize {
        for num in 1..4u32 {
            let ratio = f64::from(num) / 4.0;
            let needed = (ratio * min_len as f64).ceil() as usize;
            for eq in [needed.saturating_sub(1), needed, (needed + 1).min(min_len)] {
                if eq > min_len {
                    continue;
                }
                // a has exactly min_len chains (eq shared + filler),
                // b is strictly larger so min(|a|,|b|) == |a|.
                cases.push((
                    eq,
                    min_len - eq,
                    min_len - eq + 3,
                    CompareConfig { thr: 1, ratio },
                ));
            }
        }
    }
    // Also the paper's default thresholds at the eq == 3 boundary.
    for eq in [2, 3, 4] {
        cases.push((eq, 6 - eq, 8 - eq, CompareConfig::default()));
    }
    for (case_i, (shared, a_extra, b_extra, config)) in cases.into_iter().enumerate() {
        let (a, b) = boundary_sets(shared, a_extra, b_extra);
        for removed_side in [true, false] {
            for slot in [0, SLOTS - 1] {
                let query = dna_from_set(&a, slot, removed_side);
                let entry = dna_from_set(&b, slot, removed_side);
                let mut db = DnaDatabase::new();
                db.install("CVE-B", "f", entry.clone());
                let expected = reference_matches(&db, &query, &config);
                for (name, idx_cfg) in index_variants() {
                    let mut index = ComparatorIndex::new(idx_cfg);
                    index.ensure(&db);
                    let (got, _) = index.query(&query, &config);
                    assert_eq!(
                        *got, expected,
                        "divergence: case={case_i} variant={name} shared={shared} \
                         a_extra={a_extra} b_extra={b_extra} config={config:?} \
                         removed_side={removed_side} slot={slot}"
                    );
                }
            }
        }
    }
}

/// Trivial and empty shapes: empty DNA, one-sided deltas, and databases
/// whose entries cover fewer slots than the query.
#[test]
fn degenerate_shapes_agree() {
    let mut rng = Rng::seed_from_u64(7);
    let shapes: Vec<Dna> = vec![
        Dna::with_slots(SLOTS),                            // fully trivial
        Dna::with_slots(0),                                // zero slots
        dna_from_set(&boundary_sets(3, 0, 0).0, 0, true),  // removed only
        dna_from_set(&boundary_sets(3, 0, 0).0, 0, false), // added only
        {
            let mut d = Dna::with_slots(2); // shorter than the query
            d.deltas[1].removed = random_set(&mut rng, 5);
            d
        },
    ];
    let configs = [
        CompareConfig::default(),
        CompareConfig { thr: 0, ratio: 0.0 },
        CompareConfig { thr: 1, ratio: 0.5 },
    ];
    for config in &configs {
        for entry in &shapes {
            let mut db = DnaDatabase::new();
            db.install("CVE-D", "f", entry.clone());
            // Trivial entries are skipped at install; an empty DB is
            // itself a degenerate case worth sweeping.
            for query in &shapes {
                let expected = reference_matches(&db, query, config);
                for (name, idx_cfg) in index_variants() {
                    let mut index = ComparatorIndex::new(idx_cfg);
                    index.ensure(&db);
                    let (got, _) = index.query(query, config);
                    assert_eq!(*got, expected, "variant={name} config={config:?}");
                }
            }
        }
    }
}

/// The engine-level wiring agrees too: running every VDC exploit on a
/// vulnerable engine with the full-catalog database yields the same
/// protection outcome and the same per-function tier statistics whether
/// the guard runs the indexed or the reference comparator.
#[test]
fn engine_outcomes_identical_across_comparator_modes() {
    use jitbull::{ComparatorMode, Guard};
    use jitbull_jit::engine::{Engine, EngineConfig};
    use jitbull_jit::VulnConfig;
    use jitbull_vdc::validate::run_script;

    let vdcs = all_vdcs();
    let db = build_database(&vdcs).unwrap();
    for poc in &vdcs {
        let run = |mode: ComparatorMode| {
            let config = EngineConfig {
                vulns: VulnConfig::all(),
                comparator: mode,
                ..Default::default()
            };
            let guard = Guard::new(db.clone(), CompareConfig::default());
            let mut engine = Engine::with_guard(config, guard);
            let outcome = run_script(&poc.source, &mut engine)
                .unwrap_or_else(|e| panic!("{}: {e}", poc.name));
            let stats: Vec<(usize, usize, usize)> =
                vec![(engine.nr_jit(), engine.nr_disjit(), engine.nr_nojit())];
            (outcome, stats)
        };
        let (out_idx, stats_idx) = run(ComparatorMode::Indexed);
        let (out_ref, stats_ref) = run(ComparatorMode::Reference);
        assert!(!out_idx.is_compromised(), "{}: {out_idx:?}", poc.name);
        assert_eq!(
            out_idx.is_compromised(),
            out_ref.is_compromised(),
            "{}",
            poc.name
        );
        assert_eq!(stats_idx, stats_ref, "{}", poc.name);
    }
}

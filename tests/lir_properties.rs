//! Randomized tests over the LIR backend, driven by the fuzz generator's
//! program space: every generated program's functions must (a) lower to
//! valid LIR, (b) receive a register allocation with no two overlapping
//! live intervals sharing a register, and (c) execute identically on the
//! LIR and MIR backends. Seeds are fixed, so every run checks the same
//! programs.

use jitbull_frontend::parse_program;
use jitbull_fuzzer::gen::{generate_complete, GenConfig};
use jitbull_jit::engine::{Backend, Engine, EngineConfig};
use jitbull_jit::pipeline::{optimize, OptimizeOptions};
use jitbull_jit::VulnConfig;
use jitbull_lir::regalloc::{allocate, verify};
use jitbull_lir::{compile, lower};
use jitbull_mir::build_mir;
use jitbull_vm::compile_program;

fn source_for(seed: u64) -> String {
    generate_complete(&GenConfig {
        seed,
        warmup: 12,
        body_len: 6,
    })
}

#[test]
fn lowering_and_allocation_are_sound() {
    for seed in 0..64u64 {
        let source = source_for(seed * 1_543);
        let program = parse_program(&source).expect("generated source parses");
        let module = compile_program(&program).expect("compiles");
        for i in 0..module.functions.len() {
            let fid = jitbull_vm::bytecode::FuncId(i as u32);
            let mir = build_mir(&module, fid).expect("mir builds");
            let optimized = optimize(mir, &VulnConfig::none(), &OptimizeOptions::default());
            assert!(optimized.broken.is_none(), "seed {seed}");
            // Lower + allocate, then check the allocator invariant.
            let lowered = lower(&optimized.mir);
            assert_eq!(lowered.validate(), Ok(()), "seed {seed}:\n{lowered}");
            let allocation = allocate(&lowered);
            assert!(
                verify(&lowered, &allocation),
                "allocation overlap for seed {seed} fn {i}:\n{lowered}"
            );
            // The full backend pipeline also ends valid.
            let compiled = compile(&optimized.mir);
            assert_eq!(compiled.validate(), Ok(()), "seed {seed}:\n{compiled}");
        }
    }
}

#[test]
fn lir_and_mir_backends_agree() {
    for seed in 0..64u64 {
        let source = source_for(seed * 7_919 + 1);
        let run = |backend: Backend| {
            Engine::run_source(
                &source,
                EngineConfig {
                    backend,
                    baseline_threshold: 3,
                    ion_threshold: 6,
                    fuel: 2_000_000,
                    ..Default::default()
                },
            )
            .map(|o| o.outcome.printed)
            .map_err(|e| format!("{e}"))
        };
        assert_eq!(
            run(Backend::Mir),
            run(Backend::Lir),
            "seed {seed}, source:\n{source}"
        );
    }
}

//! Chaos-recovery integration: every self-healing mechanism holds its
//! guarantee under deterministic fault injection, and arming the
//! injector without firing it is cycle-neutral.
//!
//! The `#[ignore]` soak at the bottom sweeps many seeds at production
//! fault rates (CI runs it in release via `-- --ignored`).

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Duration;

use jitbull::{CompareConfig, DnaDatabase, Guard, LoadMode};
use jitbull_bench::chaos_bench;
use jitbull_chaos::retry::RetryPolicy;
use jitbull_chaos::{BreakerConfig, FaultInjector, FaultKind, FaultPlan, FaultSite, Quarantine};
use jitbull_jit::engine::{Engine, EngineConfig, TierStats};
use jitbull_jit::pipeline::N_SLOTS;
use jitbull_jit::CveId;
use jitbull_pool::{Pool, PoolConfig, Request, Ticket};
use jitbull_telemetry::Recorder;
use jitbull_vdc::{build_database, vdc};

/// Same hot loop as the engine's own tier tests: `work` crosses the
/// fast-test Ion threshold and the script prints `15`.
const HOT: &str = "
    function work(a) { var t = 0; for (var i = 0; i < a.length; i++) { t = t + a[i]; } return t; }
    var arr = [1, 2, 3, 4, 5];
    var total = 0;
    for (var r = 0; r < 50; r++) { total = work(arr); }
    print(total);
";

const PERMISSIVE: CompareConfig = CompareConfig { thr: 1, ratio: 0.5 };

fn db_17026() -> DnaDatabase {
    build_database(&[vdc(CveId::Cve2019_17026)]).expect("vdc database builds")
}

fn serving_source(name: &str) -> String {
    jitbull_workloads::serving_mix()
        .iter()
        .find(|w| w.name == name)
        .expect("serving-mix workload")
        .source
        .clone()
}

// ---------------------------------------------------------------------
// No-fault overhead: the CI `no-fault-overhead` check.
// ---------------------------------------------------------------------

/// An injector that is armed (rules installed on every site, so each
/// hot-path check walks the rule list) but can never fire must leave the
/// simulated cycle counts bit-identical — plain and guarded.
#[test]
fn armed_idle_injector_is_cycle_neutral_over_serving_mix() {
    for p in chaos_bench::injector_overhead() {
        assert_eq!(
            p.disabled_cycles, p.armed_cycles,
            "{}: armed-idle injector perturbed plain engine cycles",
            p.workload
        );
        assert_eq!(
            p.guarded_disabled_cycles, p.guarded_armed_cycles,
            "{}: armed-idle injector perturbed guarded engine cycles",
            p.workload
        );
    }
}

// ---------------------------------------------------------------------
// Quarantine.
// ---------------------------------------------------------------------

/// Two compile panics strike the function into quarantine; it finishes
/// the run in a lower tier with the right answer, and a later engine
/// sharing the same quarantine never re-attempts the compile.
#[test]
fn two_compile_panics_quarantine_and_pin_no_go() {
    let inj = FaultInjector::from_plan(FaultPlan::new(9).script(
        FaultSite::PassRun,
        FaultKind::PassPanic,
        0,
        2,
    ));
    let quarantine = Quarantine::default();
    let out = Engine::new(EngineConfig {
        faults: inj.clone(),
        quarantine: quarantine.clone(),
        ..EngineConfig::fast_test()
    })
    .run_source_with(HOT)
    .expect("script still serves");
    assert_eq!(out.outcome.printed, vec!["15"]);
    assert_eq!(out.compile_failures, 2);
    assert_eq!(quarantine.strikes("work"), 2);
    assert!(quarantine.is_quarantined("work"));
    assert_eq!(inj.occurrences(FaultSite::PassRun), 2);

    // The pin outlives the engine: a fresh engine with a fully-armed
    // panic plan never reaches the pass (no occurrences consumed).
    let rearmed = FaultInjector::from_plan(FaultPlan::new(9).script(
        FaultSite::PassRun,
        FaultKind::PassPanic,
        0,
        u64::MAX,
    ));
    let again = Engine::new(EngineConfig {
        faults: rearmed.clone(),
        quarantine: quarantine.clone(),
        ..EngineConfig::fast_test()
    })
    .run_source_with(HOT)
    .expect("quarantined function serves without compiling");
    assert_eq!(again.outcome.printed, vec!["15"]);
    assert_eq!(again.compile_failures, 0);
    assert_eq!(rearmed.occurrences(FaultSite::PassRun), 0);
}

/// Strikes only grow: recovery never un-quarantines within a process.
#[test]
fn quarantine_is_monotonic() {
    let q = Quarantine::with_threshold(2);
    assert_eq!(q.strike("f"), 1);
    assert!(!q.is_quarantined("f"));
    assert_eq!(q.strike("f"), 2);
    assert!(q.is_quarantined("f"));
    q.strike("f");
    assert!(q.is_quarantined("f"));
    assert_eq!(q.quarantined(), vec!["f".to_string()]);
}

// ---------------------------------------------------------------------
// Watchdog.
// ---------------------------------------------------------------------

/// A stalled pass (250k extra work units) is charged at most the 25k
/// budget, the function is pinned interpreter-only, and the run still
/// prints the right answer.
#[test]
fn watchdog_caps_runaway_compilation_and_pins_interpreter() {
    let clean = Engine::run_source(HOT, EngineConfig::fast_test())
        .expect("clean run")
        .outcome
        .cycles;
    let budget = 25_000u64;
    let inj = FaultInjector::from_plan(FaultPlan::new(9).script(
        FaultSite::PassRun,
        FaultKind::PassStall {
            extra_work: 250_000,
        },
        0,
        1,
    ));
    let out = Engine::new(EngineConfig {
        faults: inj,
        watchdog_budget: Some(budget),
        ..EngineConfig::fast_test()
    })
    .run_source_with(HOT)
    .expect("script still serves");
    assert_eq!(out.outcome.printed, vec!["15"]);
    assert_eq!(out.watchdog_expiries, 1);
    let pinned = out
        .stats
        .iter()
        .find(|s| s.name == "work")
        .expect("work stats");
    assert_eq!(pinned.tier, TierStats::Interpreter);
    // The stall itself (250k) must not be charged — only the budget,
    // plus the slower interpreter-only execution of the pinned function.
    // A generous envelope that an uncapped charge would blow through:
    assert!(
        out.outcome.cycles < clean + budget + 200_000,
        "stalled run charged {} cycles vs {} clean — stall not capped",
        out.outcome.cycles,
        clean
    );
}

// ---------------------------------------------------------------------
// IR corruption.
// ---------------------------------------------------------------------

/// An injected IR corruption is caught by the post-pass coherency check;
/// the broken graph is abandoned before execution and the function runs
/// in a safe tier.
#[test]
fn ir_corruption_is_caught_before_execution() {
    let inj = FaultInjector::from_plan(FaultPlan::new(9).script(
        FaultSite::PassRun,
        FaultKind::IrCorrupt,
        0,
        1,
    ));
    let out = Engine::new(EngineConfig {
        faults: inj,
        ..EngineConfig::fast_test()
    })
    .run_source_with(HOT)
    .expect("script still serves");
    assert_eq!(out.outcome.printed, vec!["15"]);
    assert_eq!(out.compile_failures, 1);
    let stats = out
        .stats
        .iter()
        .find(|s| s.name == "work")
        .expect("work stats");
    assert_eq!(stats.tier, TierStats::NoIon);
}

// ---------------------------------------------------------------------
// Circuit breaker (pool).
// ---------------------------------------------------------------------

/// Two failing requests trip a tight breaker; cooldown admissions serve
/// degraded; the half-open probe succeeds and re-arms the JIT.
#[test]
fn breaker_trips_cools_down_probes_and_rearms() {
    let inj = FaultInjector::from_plan(FaultPlan::new(9).script(
        FaultSite::PassRun,
        FaultKind::PassPanic,
        0,
        4,
    ));
    let pool = Pool::new(
        PoolConfig {
            workers: 1,
            capacity: 16,
            faults: inj,
            breaker: BreakerConfig {
                window: 8,
                threshold: 2,
                cooldown: 3,
            },
            ..PoolConfig::default()
        },
        DnaDatabase::new(),
    );
    let hot = |name: &str| {
        format!(
            "function {name}(a) {{ var t = 0; for (var i = 0; i < 10; i++) {{ t = t + a; }} return t; }}
             var r = 0; for (var k = 0; k < 30; k++) {{ r = {name}(2); }} print(r);"
        )
    };
    let serve = |src: String| {
        pool.submit(Request::new(src).with_config(EngineConfig::fast_test()))
            .and_then(Ticket::wait)
            .expect("request serves")
    };
    // Each burst request panics twice (retry, then quarantine) and
    // reports one failure; the second report crosses the threshold.
    let a = serve(hot("ha"));
    let b = serve(hot("hb"));
    assert_eq!(a.compile_failures, 2);
    assert_eq!(b.compile_failures, 2);
    assert_eq!(a.printed, vec!["20"]);
    // Cooldown: exactly three degraded admissions.
    for _ in 0..3 {
        let r = serve(hot("hc"));
        assert!(r.breaker_degraded && r.degraded);
        assert_eq!(r.printed, vec!["20"], "degraded run must still be correct");
    }
    // The probe compiles cleanly (the panic window is spent) and re-arms.
    let probe = serve(hot("hd"));
    assert!(!probe.breaker_degraded);
    assert_eq!(probe.compile_failures, 0);
    let bstats = pool.breaker_stats();
    assert_eq!(bstats.state, "closed");
    assert_eq!((bstats.trips, bstats.probes, bstats.rearms), (1, 1, 1));
    assert_eq!(pool.quarantined(), vec!["ha".to_string(), "hb".to_string()]);
    let stats = pool.shutdown();
    assert_eq!(stats.breaker_degraded, 3);
}

// ---------------------------------------------------------------------
// DB reload retry (pool).
// ---------------------------------------------------------------------

/// Two transient I/O faults are retried away with seeded backoff; the
/// third attempt publishes.
#[test]
fn reload_retry_recovers_transient_faults() {
    let inj = FaultInjector::from_plan(FaultPlan::new(9).script(
        FaultSite::DbLoad,
        FaultKind::DbIo,
        0,
        2,
    ));
    let pool = Pool::new(
        PoolConfig {
            workers: 1,
            capacity: 8,
            compare: PERMISSIVE,
            faults: inj,
            ..PoolConfig::default()
        },
        DnaDatabase::new(),
    );
    let update = db_17026().to_text();
    let policy = RetryPolicy {
        base_micros: 20,
        seed: 9,
        ..RetryPolicy::default()
    };
    let (epoch, report) = pool
        .reload_with_retry(&update, N_SLOTS, LoadMode::Strict, &policy)
        .expect("third attempt lands");
    assert_eq!(epoch, 2);
    assert!(report.is_clean());
    let r = pool
        .submit(Request::new(serving_source("ServeArray")).with_config(EngineConfig::fast_test()))
        .and_then(Ticket::wait)
        .expect("serves after recovered reload");
    assert_eq!(r.db_epoch, 2);
    assert!(r.matched_cves.iter().any(|c| c == "CVE-2019-17026"));
    pool.shutdown();
}

/// A persistent parse fault exhausts the retry policy; nothing partial
/// is ever published and the last good snapshot keeps serving verdicts.
#[test]
fn exhausted_reload_retry_never_publishes_partial() {
    let inj = FaultInjector::from_plan(FaultPlan::new(9).script(
        FaultSite::DbLoad,
        FaultKind::DbParse,
        0,
        u64::MAX,
    ));
    let pool = Pool::new(
        PoolConfig {
            workers: 1,
            capacity: 8,
            compare: PERMISSIVE,
            faults: inj,
            ..PoolConfig::default()
        },
        db_17026(),
    );
    let (epoch_before, snapshot_before) = pool.published();
    let generation_before = snapshot_before.generation();
    let err = pool
        .reload_with_retry(
            &db_17026().to_text(),
            N_SLOTS,
            LoadMode::Strict,
            &RetryPolicy {
                base_micros: 20,
                seed: 9,
                ..RetryPolicy::default()
            },
        )
        .expect_err("persistent fault exhausts the policy");
    assert_eq!(err.kind(), "parse");
    assert_eq!(pool.epoch(), epoch_before, "partial state was published");
    assert_eq!(pool.published().1.generation(), generation_before);
    let r = pool
        .submit(Request::new(serving_source("ServeArray")).with_config(EngineConfig::fast_test()))
        .and_then(Ticket::wait)
        .expect("old snapshot still serves");
    assert!(r.matched_cves.iter().any(|c| c == "CVE-2019-17026"));
    pool.shutdown();
}

// ---------------------------------------------------------------------
// Torn reads and partial salvage.
// ---------------------------------------------------------------------

/// Strict mode refuses a torn (truncated mid-write) update outright.
#[test]
fn strict_mode_refuses_torn_update() {
    let inj = FaultInjector::from_plan(FaultPlan::new(9).script(
        FaultSite::DbLoad,
        FaultKind::DbTruncate,
        0,
        1,
    ));
    let text = db_17026().to_text();
    let err = DnaDatabase::from_text_faulted(&text, N_SLOTS, LoadMode::Strict, &inj)
        .expect_err("torn update refused");
    assert_eq!(err.kind(), "parse");
}

/// Partial mode salvages the well-formed entries of a corrupt update and
/// pins every skip to an absolute file line.
#[test]
fn partial_mode_skips_malformed_entries_with_line_numbers() {
    let text = build_database(&[vdc(CveId::Cve2019_17026), vdc(CveId::Cve2019_9810)])
        .expect("vdc database builds")
        .to_text();
    let mut lines: Vec<&str> = text.lines().collect();
    let second_header = lines
        .iter()
        .position(|l| l.starts_with("@entry"))
        .and_then(|first| {
            lines[first + 1..]
                .iter()
                .position(|l| l.starts_with("@entry"))
                .map(|off| first + 1 + off)
        })
        .expect("two entries");
    lines.insert(second_header + 1, "12 & torn garbage");
    let garbage_line = second_header + 2; // 1-based line of the insert
    let mangled = lines.join("\n");

    // Strict refuses the whole update...
    assert!(DnaDatabase::from_text_checked(&mangled, N_SLOTS, LoadMode::Strict).is_err());
    // ...partial salvages the intact entry and pins the warning.
    let (db, report) = DnaDatabase::from_text_checked(&mangled, N_SLOTS, LoadMode::Partial)
        .expect("partial mode salvages");
    assert_eq!(db.len(), 1);
    assert_eq!((report.loaded, report.skipped), (1, 1));
    assert!(!report.is_clean());
    assert_eq!(report.warnings.len(), 1);
    assert!(
        report.warnings[0]
            .to_string()
            .contains(&format!("line {garbage_line}")),
        "warning `{}` should name line {garbage_line}",
        report.warnings[0]
    );
}

// ---------------------------------------------------------------------
// Comparator cache poisoning.
// ---------------------------------------------------------------------

/// A poisoned verdict cache is detected by the generation check, purged,
/// and rebuilt — the poisoned sentinel verdict is never served.
#[test]
fn cache_poison_is_purged_not_served() {
    let rec = Rc::new(RefCell::new(Recorder::new()));
    let inj = FaultInjector::from_plan(FaultPlan::new(9).script(
        FaultSite::ComparatorQuery,
        FaultKind::CachePoison,
        0,
        1,
    ));
    let mut engine = Engine::with_guard(
        EngineConfig {
            faults: inj.clone(),
            ..EngineConfig::fast_test()
        },
        Guard::new(db_17026(), PERMISSIVE),
    );
    engine.set_collector(rec.clone());
    let out = engine
        .run_source_with(&serving_source("ServeArray"))
        .expect("script still serves");
    assert_eq!(inj.tally().get("cache_poison"), 1);
    assert!(
        rec.borrow()
            .metrics()
            .counter("recovery.cache_poison_purged")
            >= 1,
        "purge never recorded"
    );
    // The honest ServeArray false positive still matches: the sentinel
    // verdict did not leak.
    assert!(out
        .stats
        .iter()
        .any(|s| s.matched.iter().any(|(c, _)| c == "CVE-2019-17026")));
}

// ---------------------------------------------------------------------
// Graceful drain.
// ---------------------------------------------------------------------

/// `shutdown_with_deadline` stops accepting, drains the queue, and
/// resolves every already-accepted ticket.
#[test]
fn graceful_drain_resolves_every_ticket() {
    let pool = Pool::new(
        PoolConfig {
            workers: 1,
            capacity: 32,
            ..PoolConfig::default()
        },
        DnaDatabase::new(),
    );
    let src = serving_source("ServeArith");
    let tickets: Vec<Ticket> = (0..8)
        .map(|_| {
            pool.submit(Request::new(src.clone()).with_config(EngineConfig::fast_test()))
                .expect("capacity")
        })
        .collect();
    let stats = pool.shutdown_with_deadline(Duration::ZERO);
    assert_eq!(stats.served, 8);
    for t in tickets {
        let r = t
            .try_wait()
            .expect("ticket resolved by drain")
            .expect("drained request serves");
        assert!(!r.printed.is_empty());
    }
}

// ---------------------------------------------------------------------
// Ladder determinism and the seeded sweep.
// ---------------------------------------------------------------------

/// The full fault ladder is a pure function of its seed: same seed, same
/// faults, same tallies, same evidence.
#[test]
fn fault_ladder_is_deterministic_and_fully_recovered() {
    let first = chaos_bench::ladder(5);
    let second = chaos_bench::ladder(5);
    assert!(first.injected() > 0);
    assert!(first.all_recovered(), "unrecovered: {:#?}", first.steps);
    assert_eq!(first, second, "same seed must replay identically");
}

/// Property-style sweep: at production-ish fault rates, across seeds, no
/// ticket is ever lost, no verdict is ever served from a snapshot older
/// than the one current at submit time, quarantine only grows, and the
/// breaker is never left stuck open without its cooldown accounting.
#[test]
fn seeded_sweep_holds_recovery_invariants() {
    for seed in [11u64, 23, 37] {
        sweep(seed, 60);
    }
}

fn sweep(seed: u64, requests: usize) {
    let inj = FaultInjector::from_plan(
        FaultPlan::new(seed)
            .random(FaultSite::WorkerServe, FaultKind::DeadlineBlowout, 0.05)
            .random(FaultSite::PassRun, FaultKind::PassPanic, 0.02)
            .script(FaultSite::DbLoad, FaultKind::DbIo, 0, 1),
    );
    let pool = Pool::new(
        PoolConfig {
            workers: 2,
            capacity: requests.max(1),
            compare: PERMISSIVE,
            faults: inj.clone(),
            ..PoolConfig::default()
        },
        DnaDatabase::new(),
    );
    let mix = jitbull_workloads::serving_mix();
    let mut tickets: Vec<(u64, Ticket)> = Vec::new();
    let mut quarantined_midway = Vec::new();
    for i in 0..requests {
        if i == requests / 2 {
            // Mid-traffic reload rides out the scripted transient I/O
            // fault via retry.
            let (epoch, report) = pool
                .reload_with_retry(
                    &db_17026().to_text(),
                    N_SLOTS,
                    LoadMode::Strict,
                    &RetryPolicy {
                        base_micros: 10,
                        seed,
                        ..RetryPolicy::default()
                    },
                )
                .expect("transient reload fault retried away");
            assert_eq!(epoch, 2);
            assert!(report.is_clean());
            quarantined_midway = pool.quarantined();
        }
        let w = &mix[i % mix.len()];
        let submit_epoch = pool.epoch();
        let t = pool
            .submit(Request::new(w.source.clone()).with_config(EngineConfig::fast_test()))
            .expect("capacity sized to the sweep");
        tickets.push((submit_epoch, t));
    }
    let total = tickets.len();
    let mut served = 0usize;
    for (submit_epoch, t) in tickets {
        // No lost tickets: wait always resolves, Ok or typed error.
        if let Ok(r) = t.wait() {
            served += 1;
            assert!(r.min_epoch >= submit_epoch, "seed {seed}: epoch went back");
            assert!(r.db_epoch >= r.min_epoch, "seed {seed}: stale verdict");
            assert!(!r.printed.is_empty(), "seed {seed}: lost output");
        }
    }
    // Quarantine is monotonic across the run.
    let quarantined_final = pool.quarantined();
    for f in &quarantined_midway {
        assert!(
            quarantined_final.contains(f),
            "seed {seed}: {f} left quarantine"
        );
    }
    let bstats = pool.breaker_stats();
    assert!(
        bstats.rearms <= bstats.trips,
        "seed {seed}: rearm without trip"
    );
    // Every re-arm is a successful probe report. (`probes` may exceed
    // `trips`: a probe admission that ends up deadline-degraded cancels
    // its permit, freeing the half-open slot for another probe.)
    assert!(
        bstats.rearms <= bstats.probes,
        "seed {seed}: rearm without probe"
    );
    // A breaker that tripped and is closed again must have re-armed
    // through a successful probe — there is no other path back.
    assert!(
        bstats.trips == 0 || bstats.state != "closed" || bstats.rearms > 0,
        "seed {seed}: breaker closed again without a re-arm"
    );
    let stats = pool.shutdown();
    assert_eq!(
        stats.served as usize, served,
        "seed {seed}: served mismatch"
    );
    assert_eq!(
        served, total,
        "seed {seed}: PassPanic faults quarantine, never kill requests"
    );
}

/// Release-profile chaos soak: the sweep invariants at scale — many
/// seeds, hundreds of requests each, reloads mid-traffic.
#[test]
#[ignore = "chaos soak; run with --release -- --ignored"]
fn chaos_soak_sweeps_many_seeds() {
    for seed in 0..96u64 {
        sweep(seed * 7 + 1, 8000);
    }
    // And the ladder stays deterministic under repetition.
    let reference = chaos_bench::ladder(99);
    for _ in 0..3 {
        assert_eq!(chaos_bench::ladder(99), reference);
    }
}

//! End-to-end reproduction of the paper's §VI-B security evaluation:
//! every exploit variant must compromise the unprotected vulnerable
//! engine and be neutralized (with detection) once the base PoC's DNA is
//! in JITBULL's database.

use jitbull::{CompareConfig, Guard};
use jitbull_jit::engine::{Engine, EngineConfig};
use jitbull_jit::{CveId, VulnConfig};
use jitbull_vdc::validate::run_script;
use jitbull_vdc::{
    alternate_implementation, build_database, generate, vdc, ExploitKind, VariantKind, Vdc,
    VdcOutcome,
};

fn vulnerable(cve: CveId) -> EngineConfig {
    EngineConfig {
        vulns: VulnConfig::with([cve]),
        ..Default::default()
    }
}

fn run_unprotected(script: &Vdc, cve: CveId) -> VdcOutcome {
    let mut engine = Engine::new(vulnerable(cve));
    run_script(&script.source, &mut engine).expect("script runs")
}

fn run_protected(script: &Vdc, base: &Vdc, cve: CveId) -> (VdcOutcome, bool) {
    let db = build_database(std::slice::from_ref(base)).expect("db builds");
    let mut engine = Engine::with_guard(vulnerable(cve), Guard::new(db, CompareConfig::default()));
    let outcome = run_script(&script.source, &mut engine).expect("script runs");
    let detected = engine.nr_disjit() + engine.nr_nojit() > 0;
    (outcome, detected)
}

#[test]
fn all_variants_of_all_security_cves_are_neutralized() {
    for cve in CveId::security_set() {
        let base = vdc(cve);
        let mut cases = vec![base.clone()];
        cases.extend(VariantKind::all().iter().map(|k| generate(&base, *k)));
        for case in &cases {
            let unprotected = run_unprotected(case, cve);
            assert!(
                unprotected.matches(case.expected),
                "{}: expected {:?} unprotected, got {unprotected:?}",
                case.name,
                case.expected
            );
            let (protected, detected) = run_protected(case, &base, cve);
            assert!(
                !protected.is_compromised(),
                "{}: still compromised under JITBULL: {protected:?}",
                case.name
            );
            assert!(detected, "{}: JITBULL did not flag anything", case.name);
        }
    }
}

#[test]
fn cross_implementation_detection_for_cve_2019_17026() {
    // The paper's only real two-implementation case: install impl 1's
    // DNA, run impl 2.
    let cve = CveId::Cve2019_17026;
    let base = vdc(cve);
    let alt = alternate_implementation(cve).expect("second implementation exists");
    assert_eq!(
        run_unprotected(&alt, cve),
        VdcOutcome::ShellcodeExecuted,
        "impl2 must exploit the unprotected engine"
    );
    let (protected, detected) = run_protected(&alt, &base, cve);
    assert!(!protected.is_compromised(), "{protected:?}");
    assert!(detected);
}

#[test]
fn crash_cves_crash_and_payload_cves_spray() {
    // §VI-B: first two CVEs crash, last two execute a payload.
    let expectations = [
        (CveId::Cve2019_9791, ExploitKind::Crash),
        (CveId::Cve2019_9810, ExploitKind::Crash),
        (CveId::Cve2019_11707, ExploitKind::Shellcode),
        (CveId::Cve2019_17026, ExploitKind::Shellcode),
    ];
    for (cve, kind) in expectations {
        let base = vdc(cve);
        assert_eq!(base.expected, kind);
        let outcome = run_unprotected(&base, cve);
        assert!(outcome.matches(kind), "{}: {outcome:?}", base.name);
    }
}

#[test]
fn scalability_cves_also_neutralize() {
    // The four §VI-D vulnerabilities (re-implemented from Bugzilla
    // descriptions in the paper) get the same end-to-end treatment.
    for cve in [
        CveId::Cve2019_9792,
        CveId::Cve2019_9795,
        CveId::Cve2019_9813,
        CveId::Cve2020_26952,
    ] {
        let base = vdc(cve);
        let unprotected = run_unprotected(&base, cve);
        assert!(
            unprotected.is_compromised(),
            "{}: {unprotected:?}",
            base.name
        );
        let (protected, detected) = run_protected(&base, &base, cve);
        assert!(!protected.is_compromised(), "{}: {protected:?}", base.name);
        assert!(detected, "{}", base.name);
    }
}

#[test]
fn patch_lifecycle_removes_protection_overhead_and_detection() {
    // DB lifecycle: install on disclosure -> detects; remove on patch ->
    // stops matching (and the patched engine is safe anyway).
    let cve = CveId::Cve2019_17026;
    let base = vdc(cve);
    let db = build_database(std::slice::from_ref(&base)).expect("db");
    let mut guard = Guard::new(db, CompareConfig::default());
    assert!(guard.enabled());
    // Patch lands: DNA removed, engine fixed.
    assert!(guard.db_mut().remove_cve(cve.name()) > 0);
    assert!(!guard.enabled());
    let mut engine = Engine::with_guard(EngineConfig::default(), guard);
    let outcome = run_script(&base.source, &mut engine).expect("runs");
    assert!(!outcome.is_compromised());
    assert_eq!(engine.nr_disjit() + engine.nr_nojit(), 0);
    assert_eq!(engine.analysis_cycles, 0, "empty DB must cost nothing");
}

#[test]
fn no_jit_engine_is_immune_but_thats_the_expensive_mitigation() {
    // The strawman the paper argues against: disabling the JIT entirely
    // does stop the exploit...
    let cve = CveId::Cve2019_17026;
    let base = vdc(cve);
    let mut engine = Engine::new(EngineConfig {
        jit_enabled: false,
        vulns: VulnConfig::with([cve]),
        ..Default::default()
    });
    let outcome = run_script(&base.source, &mut engine).expect("runs");
    assert!(!outcome.is_compromised());
}

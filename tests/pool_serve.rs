//! End-to-end lockdown of the `jitbull-pool` serving runtime.
//!
//! The pool's three guarantees, exercised from the outside:
//!
//! 1. **No lost responses** — every accepted ticket resolves, even when
//!    the serving worker panics or the pool shuts down with the queue
//!    non-empty.
//! 2. **No stale verdicts** — every response's `db_epoch >= min_epoch`,
//!    and the response's generation and matched CVEs are exactly those
//!    of the snapshot published at that epoch.
//! 3. **Graceful degradation** — overload rejects fast with
//!    [`PoolError::Overload`], deadline-lapsed requests fall back to
//!    interpreter-only execution, and a panicking worker is respawned.
//!
//! The `#[ignore]` soak at the bottom runs all three at once for ~2000
//! requests with hot-swaps and fault injection mid-traffic (CI runs it
//! in release via `-- --ignored`).

use std::collections::BTreeMap;
use std::time::Duration;

use jitbull::{CompareConfig, DnaDatabase};
use jitbull_jit::engine::EngineConfig;
use jitbull_jit::pipeline::N_SLOTS;
use jitbull_jit::CveId;
use jitbull_pool::{Pool, PoolConfig, PoolError, Request, Ticket};
use jitbull_vdc::{build_database, vdc};

/// The repo's test-convention thresholds: guaranteed self-matches, so a
/// served ServeArray request flags every database entry carrying
/// CVE-2019-17026's DNA.
const PERMISSIVE: CompareConfig = CompareConfig { thr: 1, ratio: 0.5 };

fn config(workers: usize, capacity: usize) -> PoolConfig {
    PoolConfig {
        workers,
        capacity,
        compare: PERMISSIVE,
        ..PoolConfig::default()
    }
}

/// A ServeArray request under the fast tier thresholds — hot enough to
/// reach the optimizing tier (and therefore DNA analysis) in one run.
fn serve_array() -> Request {
    let mix = jitbull_workloads::serving_mix();
    let w = mix.iter().find(|w| w.name == "ServeArray").unwrap();
    Request::new(w.source.clone()).with_config(EngineConfig::fast_test())
}

/// A script heavy enough to pin a worker for tens of milliseconds.
fn heavy() -> Request {
    Request::new(
        r#"
var t = 0;
for (var i = 0; i < 400; i++) {
  for (var j = 0; j < 1000; j++) { t = t + i * j; }
}
print(t);
"#,
    )
}

/// The CVE-2019-17026 donor DNA, reinstalled under fresh CVE names so
/// matched-CVE sets encode which snapshot served a request.
fn donor() -> DnaDatabase {
    build_database(&[vdc(CveId::Cve2019_17026)]).expect("vdc database builds")
}

fn install_round(pool: &Pool, round: usize) -> u64 {
    let mut epoch = 0;
    for e in donor().entries() {
        epoch = pool.install(
            format!("CVE-SWAP-{round}"),
            e.function.clone(),
            e.dna.clone(),
        );
    }
    epoch
}

/// Epoch → (generation, sorted CVE names) for every snapshot this test
/// published; the single test thread is the only publisher, so reading
/// `published()` right after a publish observes exactly that snapshot.
fn map_entry(pool: &Pool, map: &mut BTreeMap<u64, (u64, Vec<String>)>) {
    let (epoch, snap) = pool.published();
    let mut cves: Vec<String> = snap.cves().into_iter().map(str::to_owned).collect();
    cves.sort();
    cves.dedup();
    map.insert(epoch, (snap.generation(), cves));
}

#[test]
fn every_ticket_resolves_when_pool_drops_with_queued_work() {
    let pool = Pool::new(config(2, 32), DnaDatabase::new());
    let tickets: Vec<Ticket> = (0..12)
        .map(|_| pool.submit(serve_array()).expect("capacity 32"))
        .collect();
    // Drop with most of the queue unserved: close() drains, so every
    // ticket must still resolve (with a real response, not an error).
    drop(pool);
    for t in tickets {
        let r = t.wait().expect("drained request serves");
        assert!(!r.printed.is_empty());
    }
}

#[test]
fn workers_share_one_dna_memo_across_requests_and_hotswaps() {
    use jitbull::DnaMemo;
    let memo = DnaMemo::default();
    let cfg = PoolConfig {
        memo: memo.clone(),
        ..config(2, 32)
    };
    let pool = Pool::new(cfg, donor());
    // Same script, compiled repeatedly: after the first extraction the
    // shared memo must serve every worker, whichever one dequeues.
    for _ in 0..6 {
        let r = pool.submit(serve_array()).unwrap().wait().unwrap();
        assert!(!r.printed.is_empty());
    }
    let warm = memo.stats();
    assert!(warm.lookups >= 6, "every Ion compile consults the memo");
    assert!(warm.hits >= 4, "repeat compiles hit the shared store");
    // A hot swap changes the database, not the extraction: the memo
    // keeps its entries and keeps hitting.
    install_round(&pool, 0);
    let r = pool.submit(serve_array()).unwrap().wait().unwrap();
    assert!(!r.printed.is_empty());
    assert!(memo.stats().hits > warm.hits, "memo survives the hot swap");
    pool.shutdown();
}

#[test]
fn overload_rejects_immediately_with_depth() {
    let pool = Pool::new(config(1, 2), DnaDatabase::new());
    let slow = pool.submit(heavy()).expect("first request fits");
    // Give the single worker time to dequeue the heavy request; the
    // queue is then empty and refills while the worker is pinned.
    std::thread::sleep(Duration::from_millis(20));
    let queued: Vec<Ticket> = (0..2)
        .filter_map(|_| pool.submit(serve_array()).ok())
        .collect();
    assert_eq!(queued.len(), 2, "capacity-2 queue accepts two");
    let mut rejections = 0;
    for _ in 0..4 {
        match pool.submit(serve_array()) {
            Err(PoolError::Overload { depth }) => {
                assert_eq!(depth, 2, "rejection reports the full depth");
                rejections += 1;
            }
            Ok(t) => drop(t.wait()),
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert!(rejections >= 1, "full queue never rejected");
    slow.wait().expect("heavy request still serves");
    for t in queued {
        t.wait().expect("queued requests still serve");
    }
    let stats = pool.shutdown();
    assert_eq!(stats.rejected, rejections);
    assert_eq!(stats.submitted + stats.rejected, 3 + 4);
}

#[test]
fn lapsed_deadline_degrades_to_interpreter_only() {
    let pool = Pool::new(config(1, 8), donor());
    let on_time = pool
        .submit(serve_array())
        .unwrap()
        .wait()
        .expect("serves cleanly");
    assert!(!on_time.degraded);
    assert!(on_time.nr_jit >= 1, "fast thresholds reach the JIT");
    assert!(
        on_time.matched_cves.iter().any(|c| c == "CVE-2019-17026"),
        "permissive thresholds flag the honest false positive"
    );
    // A zero deadline has always lapsed by dequeue time: same script,
    // interpreter-only — no JIT tiers, no DNA analysis, still a result.
    let late = pool
        .submit(serve_array().with_deadline(Duration::ZERO))
        .unwrap()
        .wait()
        .expect("degraded request still serves");
    assert!(late.degraded);
    assert_eq!(late.nr_jit, 0);
    assert_eq!(late.matched_cves, Vec::<String>::new());
    assert_eq!(late.printed, on_time.printed, "same answer either way");
    let stats = pool.shutdown();
    assert_eq!(stats.degraded, 1);
}

#[test]
fn panicking_worker_is_isolated_and_respawned() {
    let pool = Pool::new(config(1, 8), DnaDatabase::new());
    // The single worker panics mid-service; the ticket must not hang.
    let err = pool
        .submit(Request::new("print(1);").with_chaos_panic())
        .unwrap()
        .wait()
        .expect_err("chaos request cannot succeed");
    assert!(matches!(err, PoolError::Panicked));
    // The supervisor respawned the only worker: the pool still serves.
    let after = pool.submit(serve_array()).unwrap().wait().unwrap();
    assert!(!after.printed.is_empty());
    let stats = pool.shutdown();
    assert_eq!(stats.worker_restarts, 1);
    assert_eq!(stats.served, 1, "the chaos request is not counted served");
}

#[test]
fn hot_swap_serves_no_stale_verdicts() {
    let pool = Pool::new(config(2, 64), DnaDatabase::new());
    let mut map: BTreeMap<u64, (u64, Vec<String>)> = BTreeMap::new();
    map_entry(&pool, &mut map); // epoch 1: empty database
    let mut tickets: Vec<(u64, Ticket)> = Vec::new();
    for round in 0..5 {
        for _ in 0..4 {
            let submit_epoch = pool.epoch();
            tickets.push((submit_epoch, pool.submit(serve_array()).unwrap()));
        }
        install_round(&pool, round);
        map_entry(&pool, &mut map);
    }
    for (submit_epoch, t) in tickets {
        let r = t.wait().expect("serves cleanly");
        // The no-stale-verdict guarantee, end to end.
        assert!(r.min_epoch >= submit_epoch);
        assert!(
            r.db_epoch >= r.min_epoch,
            "stale snapshot: served epoch {} < submit-time epoch {}",
            r.db_epoch,
            r.min_epoch
        );
        let (generation, cves) = map
            .get(&r.db_epoch)
            .unwrap_or_else(|| panic!("unknown epoch {}", r.db_epoch));
        assert_eq!(
            r.db_generation, *generation,
            "epoch {} served content from a different generation",
            r.db_epoch
        );
        // Every installed entry carries the same donor DNA, so the
        // matched set must be exactly the snapshot's CVE list.
        assert_eq!(&r.matched_cves, cves, "epoch {}", r.db_epoch);
    }
    let stats = pool.shutdown();
    assert_eq!(stats.served, 20);
    assert_eq!(stats.hotswaps, 5);
}

/// Release-profile soak: ~2000 requests across 4 workers with a hot-swap
/// every 120 requests, fault injection, and zero-deadline stragglers.
/// Every ticket must resolve; every response must satisfy the epoch and
/// content checks of [`hot_swap_serves_no_stale_verdicts`].
#[test]
#[ignore = "pool soak; run with --release -- --ignored"]
fn soak_hot_swaps_chaos_and_deadlines_for_2000_requests() {
    const ROUNDS: usize = 16;
    const PER_ROUND: usize = 120;
    const CHAOS_PER_ROUND: usize = 2;
    const LATE_PER_ROUND: usize = 3;

    let pool = Pool::new(config(4, 4096), DnaDatabase::new());
    let mut map: BTreeMap<u64, (u64, Vec<String>)> = BTreeMap::new();
    map_entry(&pool, &mut map);
    // (submit-time epoch, had a deadline, ticket); chaos tracked apart.
    let mut normal: Vec<(u64, bool, Ticket)> = Vec::new();
    let mut chaos: Vec<Ticket> = Vec::new();
    for round in 0..ROUNDS {
        for i in 0..PER_ROUND {
            let late = i % (PER_ROUND / LATE_PER_ROUND) == 7;
            let request = if late {
                serve_array().with_deadline(Duration::ZERO)
            } else {
                serve_array()
            };
            normal.push((pool.epoch(), late, pool.submit(request).expect("capacity")));
        }
        for _ in 0..CHAOS_PER_ROUND {
            chaos.push(
                pool.submit(Request::new("print(0);").with_chaos_panic())
                    .expect("capacity"),
            );
        }
        install_round(&pool, round);
        map_entry(&pool, &mut map);
    }

    let total = normal.len();
    for (submit_epoch, late, t) in normal {
        let r = t.wait().expect("every non-chaos request serves");
        assert!(r.min_epoch >= submit_epoch);
        assert!(r.db_epoch >= r.min_epoch, "stale snapshot served");
        let (generation, cves) = map
            .get(&r.db_epoch)
            .unwrap_or_else(|| panic!("unknown epoch {}", r.db_epoch));
        assert_eq!(r.db_generation, *generation);
        if r.degraded {
            assert_eq!(r.matched_cves, Vec::<String>::new());
        } else {
            assert_eq!(&r.matched_cves, cves);
        }
        assert!(r.degraded || !late || !r.printed.is_empty());
    }
    for t in chaos {
        let err = t.wait().expect_err("chaos requests fail");
        assert!(matches!(err, PoolError::Panicked));
    }

    let stats = pool.shutdown();
    assert_eq!(stats.served, total as u64, "lost responses");
    assert_eq!(stats.worker_restarts, (ROUNDS * CHAOS_PER_ROUND) as u64);
    assert_eq!(stats.hotswaps, ROUNDS as u64);
    assert_eq!(stats.rejected, 0);
    // All four workers actually shared the load.
    assert!(stats.worker_cycles.iter().all(|&c| c > 0));
}

#[test]
fn failed_reload_keeps_the_old_database_serving() {
    let pool = Pool::new(config(1, 8), donor());
    let epoch_before = pool.epoch();
    let err = pool
        .reload_from_text("@entry CVE-X f\n0 ? bad-sign\n", N_SLOTS)
        .expect_err("malformed update is refused");
    assert_eq!(err.kind(), "parse");
    assert_eq!(pool.epoch(), epoch_before, "failed reload must not publish");
    let r = pool.submit(serve_array()).unwrap().wait().unwrap();
    assert!(
        r.matched_cves.iter().any(|c| c == "CVE-2019-17026"),
        "old database still serving after the refused update"
    );
    // A well-formed update in the same wire format goes through.
    let epoch = pool
        .reload_from_text(&DnaDatabase::new().to_text(), N_SLOTS)
        .expect("empty update is well-formed");
    assert_eq!(epoch, epoch_before + 1);
    let r = pool.submit(serve_array()).unwrap().wait().unwrap();
    assert_eq!(r.matched_cves, Vec::<String>::new());
    assert!(r.db_epoch >= epoch);
}

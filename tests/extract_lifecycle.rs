//! Lifecycle lockdown of the DNA memo cache: the shared memo must speed
//! up repeat compilations without *ever* serving a stale, corrupt, or
//! quarantine-bypassing extraction.
//!
//! Invalidation in the memo is by construction — the key is (pre-pipeline
//! MIR, executed pass schedule, slot count, vulnerability-set
//! fingerprint) — so these tests drive the engine end-to-end through the
//! scenarios where a cache bug would be exploitable: recompile rounds
//! that change the pass schedule, chaos-corrupted compilations, poisoned
//! stores, and quarantined functions.

use jitbull::{CompareConfig, DnaMemo, Guard};
use jitbull_chaos::{FaultInjector, FaultKind, FaultPlan, FaultSite, Quarantine};
use jitbull_jit::engine::{Engine, EngineConfig, TierStats};
use jitbull_jit::{CveId, VulnConfig};
use jitbull_vdc::{build_database, vdc};

/// Guaranteed self-matches under the repo's test-convention thresholds.
const PERMISSIVE: CompareConfig = CompareConfig { thr: 1, ratio: 0.5 };

/// The ServeArray workload: hot enough under fast-test thresholds to
/// reach Ion, and a guaranteed CVE-2019-17026 match against the VDC
/// database — so every run takes the analyze → Recompile → re-analyze
/// path, executing two different pass schedules per compiled function.
fn serve_array_source() -> String {
    jitbull_workloads::serving_mix()
        .into_iter()
        .find(|w| w.name == "ServeArray")
        .unwrap()
        .source
}

fn vulnerable_config(memo: &DnaMemo) -> EngineConfig {
    EngineConfig {
        vulns: VulnConfig::with([CveId::Cve2019_17026]),
        memo: memo.clone(),
        ..EngineConfig::fast_test()
    }
}

fn guarded_engine(config: EngineConfig) -> Engine {
    let db = build_database(&[vdc(CveId::Cve2019_17026)]).unwrap();
    Engine::with_guard(config, Guard::new(db, PERMISSIVE))
}

#[test]
fn recompile_after_schedule_change_misses_then_repeat_run_hits() {
    let memo = DnaMemo::default();
    let src = serve_array_source();

    // First run: the initial compile matches, the verdict is Recompile,
    // and the retry runs a *different* pass schedule (dangerous slots
    // disabled). Both analyses must miss the memo — same function, same
    // pre-MIR, different schedule ⇒ different key.
    let mut engine = guarded_engine(vulnerable_config(&memo));
    let first = engine.run_source_with(&src).unwrap();
    assert!(first.nr_disjit > 0, "the recompile path must be exercised");
    let cold = memo.stats();
    assert!(cold.lookups >= 2, "both compile rounds consult the memo");
    assert_eq!(cold.hits, 0, "a schedule change must never hit");
    assert_eq!(
        memo.len() as u64,
        cold.insertions,
        "every round memoizes under its own schedule key"
    );

    // Second run, fresh engine, same memo: both rounds replay the same
    // schedules, so both hit — and the verdicts are identical, proving
    // the memoized DNA is the one the oracle would re-extract.
    let mut engine = guarded_engine(vulnerable_config(&memo));
    let second = engine.run_source_with(&src).unwrap();
    let warm = memo.stats();
    assert_eq!(warm.hits, cold.lookups, "repeat run hits on every round");
    assert_eq!(second.outcome.printed, first.outcome.printed);
    assert_eq!(second.nr_disjit, first.nr_disjit);
    assert_eq!(second.nr_nojit, first.nr_nojit);
    assert!(
        second.analysis_cycles < first.analysis_cycles,
        "memo hits must make the repeat analysis cheaper ({} vs {})",
        second.analysis_cycles,
        first.analysis_cycles
    );
}

#[test]
fn vuln_context_change_cannot_serve_a_stale_extraction() {
    let memo = DnaMemo::default();
    let src = serve_array_source();
    let mut engine = guarded_engine(vulnerable_config(&memo));
    engine.run_source_with(&src).unwrap();
    let before = memo.stats();
    assert!(before.insertions > 0);

    // Same program on a *patched* engine: the vulnerability fingerprint
    // keys the memo, so nothing extracted on the vulnerable engine may be
    // served — the patched pipeline produces different deltas.
    let mut patched = guarded_engine(EngineConfig {
        vulns: VulnConfig::none(),
        memo: memo.clone(),
        ..EngineConfig::fast_test()
    });
    let out = patched.run_source_with(&src).unwrap();
    assert!(!out.outcome.printed.is_empty());
    let after = memo.stats();
    assert_eq!(
        after.hits, before.hits,
        "a changed vulnerability context must never hit"
    );
    assert!(
        after.insertions > before.insertions,
        "the patched run re-extracts and memoizes under its own context"
    );
}

#[test]
fn ir_corrupt_compilation_never_reaches_the_memo() {
    let memo = DnaMemo::default();
    let src = serve_array_source();

    // Corrupt the IR on every pass run: the coherency check abandons the
    // compilation before analysis, so the extractor never runs and the
    // memo must stay empty — no corrupt trace is ever memoized.
    let mut config = vulnerable_config(&memo);
    config.faults = FaultInjector::from_plan(FaultPlan::new(7).script(
        FaultSite::PassRun,
        FaultKind::IrCorrupt,
        0,
        u64::MAX,
    ));
    let mut engine = guarded_engine(config);
    let broken = engine.run_source_with(&src).unwrap();
    assert!(!broken.outcome.printed.is_empty(), "the run still answers");
    assert!(engine.compile_failures > 0, "the corruption must fire");
    let stats = memo.stats();
    assert_eq!(stats.lookups, 0, "no analysis ⇒ no memo traffic");
    assert_eq!(stats.insertions, 0, "a broken compile must not memoize");
    assert!(memo.is_empty());

    // A clean engine sharing the memo starts from scratch — misses, then
    // extracts fresh and reaches the normal verdicts.
    let mut clean = guarded_engine(vulnerable_config(&memo));
    let out = clean.run_source_with(&src).unwrap();
    assert_eq!(memo.stats().hits, 0, "nothing stale to serve");
    assert!(memo.stats().insertions > 0);
    assert!(out.nr_disjit > 0, "clean run reaches the recompile verdict");
}

#[test]
fn quarantined_functions_never_compile_hence_never_touch_the_memo() {
    let memo = DnaMemo::default();
    let quarantine = Quarantine::default(); // two strikes
    let src = serve_array_source();

    // Every compilation panics: the function earns its strikes and lands
    // in quarantine without a single successful extraction.
    let mut config = vulnerable_config(&memo);
    config.quarantine = quarantine.clone();
    config.faults = FaultInjector::from_plan(FaultPlan::new(11).script(
        FaultSite::PassRun,
        FaultKind::PassPanic,
        0,
        u64::MAX,
    ));
    let mut engine = guarded_engine(config);
    engine.run_source_with(&src).unwrap();
    engine.run_source_with(&src).unwrap();
    assert!(
        !quarantine.quarantined().is_empty(),
        "repeated panics must quarantine the function"
    );
    assert_eq!(memo.stats().lookups, 0, "no extraction ever completed");

    // A healthy engine sharing the quarantine list refuses to compile the
    // pinned function at all — so the memo still sees zero traffic for
    // it, and no stale DNA can possibly be served.
    let mut config = vulnerable_config(&memo);
    config.quarantine = quarantine.clone();
    let mut healthy = guarded_engine(config);
    let out = healthy.run_source_with(&src).unwrap();
    assert!(!out.outcome.printed.is_empty());
    assert_eq!(
        memo.stats().lookups,
        0,
        "a quarantined function must never reach the extractor"
    );
    for name in quarantine.quarantined() {
        let stats = out
            .stats
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("no stats for quarantined fn {name}"));
        assert!(
            !matches!(stats.tier, TierStats::Ion | TierStats::IonPassesDisabled),
            "{name} is quarantined yet reached the optimizing tier"
        );
        assert!(stats.matched.is_empty(), "{name} produced DNA while pinned");
    }
    assert!(
        out.nr_nojit >= 1,
        "the hot quarantined function is pinned no-go"
    );
}

#[test]
fn extract_query_poison_recovers_with_telemetry_and_correct_verdicts() {
    use jitbull_telemetry::Recorder;
    use std::cell::RefCell;
    use std::rc::Rc;

    let memo = DnaMemo::default();
    let src = serve_array_source();

    // Warm the memo with a clean run.
    let mut engine = guarded_engine(vulnerable_config(&memo));
    let clean = engine.run_source_with(&src).unwrap();
    let warm = memo.stats();
    assert!(warm.insertions >= 2);

    // Poison the store on the first extractor query of the next run: the
    // purge-before-serve path must discard every entry, re-extract, and
    // reach the same verdicts — reported through telemetry.
    let mut config = vulnerable_config(&memo);
    config.faults = FaultInjector::from_plan(FaultPlan::new(13).script(
        FaultSite::ExtractQuery,
        FaultKind::CachePoison,
        0,
        1,
    ));
    let mut poisoned = guarded_engine(config);
    let rec = Rc::new(RefCell::new(Recorder::new()));
    poisoned.set_collector(rec.clone());
    let out = poisoned.run_source_with(&src).unwrap();
    assert_eq!(out.outcome.printed, clean.outcome.printed);
    assert_eq!(out.nr_disjit, clean.nr_disjit, "verdicts survive the purge");
    let stats = memo.stats();
    assert_eq!(stats.poison_purges, 1, "exactly one purge");
    assert_eq!(
        stats.hits, warm.hits,
        "a poisoned store must re-extract, never serve garbage"
    );
    let rec = rec.borrow();
    assert_eq!(
        rec.metrics().counter("recovery.extract_memo_purged"),
        1,
        "the purge surfaces in recovery telemetry"
    );
    assert!(rec.metrics().counter("extract.queries") >= 2);
}

//! Multithreaded differential lockdown of the Δ comparator.
//!
//! Four reader threads each keep a *persistent* [`ComparatorIndex`] —
//! interned labels, prefilter, verdict cache and all — while a publisher
//! hot-swaps the shared database through an [`EpochCell`], exactly the
//! shape `jitbull-pool` workers run in production. Every verdict from
//! every thread must be byte-identical to the single-threaded normative
//! comparator (`jitbull::compare::reference`) evaluated on the same
//! snapshot. A stale verdict cache surviving a generation change, a torn
//! epoch/snapshot pair, or any non-`Sync` sharing bug shows up here as a
//! divergence.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use jitbull::compare::{reference, CompareConfig};
use jitbull::index::EntryMatches;
use jitbull::{Chain, ComparatorIndex, Dna, DnaDatabase, IndexConfig};
use jitbull_pool::EpochCell;
use jitbull_prng::Rng;

const LABELS: &[&str] = &[
    "add",
    "mul",
    "sub",
    "constant:number",
    "parameter0",
    "loadelement",
    "storeelement",
    "boundscheck",
    "unbox:array",
    "phi",
    "guardshape",
];

const SLOTS: usize = 8;
const READERS: usize = 4;
const PUBLISHES: u64 = 40;

fn random_chain(rng: &mut Rng) -> Chain {
    (0..rng.gen_range(1..5usize))
        .map(|_| Arc::from(*rng.pick(LABELS)))
        .collect()
}

fn random_set(rng: &mut Rng, max: usize) -> BTreeSet<Chain> {
    (0..rng.gen_range(0..max))
        .map(|_| random_chain(rng))
        .collect()
}

fn random_dna(rng: &mut Rng) -> Dna {
    let mut dna = Dna::with_slots(SLOTS);
    for delta in &mut dna.deltas {
        if rng.gen_bool(0.4) {
            delta.removed = random_set(rng, 6);
        }
        if rng.gen_bool(0.4) {
            delta.added = random_set(rng, 6);
        }
    }
    dna
}

fn random_db(rng: &mut Rng, tag: u64) -> DnaDatabase {
    let mut db = DnaDatabase::new();
    for e in 0..rng.gen_range(1..6usize) {
        db.install(format!("CVE-{tag}-{e}"), format!("f{e}"), random_dna(rng));
    }
    db
}

/// The oracle, evaluated on the identical snapshot the index saw.
fn reference_matches(db: &DnaDatabase, query: &Dna, config: &CompareConfig) -> EntryMatches {
    db.entries()
        .iter()
        .enumerate()
        .filter_map(|(i, e)| {
            let slots = reference(query, &e.dna, config);
            (!slots.is_empty()).then_some((i, slots))
        })
        .collect()
}

/// 4 readers × persistent indexes × a publisher swapping 40 databases:
/// zero divergences from the reference comparator, and every reader must
/// actually observe multiple generations (i.e. the cache-invalidation
/// path runs mid-flight, not just at startup).
#[test]
fn indexed_comparator_agrees_with_reference_across_threads_and_hot_swaps() {
    let mut seed_rng = Rng::seed_from_u64(0xC0C0);
    let cell = Arc::new(EpochCell::new(random_db(&mut seed_rng, 0).snapshot()));
    let done = Arc::new(AtomicBool::new(false));

    let publisher = {
        let cell = Arc::clone(&cell);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let mut rng = Rng::seed_from_u64(0x5EED_5EED);
            for tag in 1..=PUBLISHES {
                cell.publish(random_db(&mut rng, tag).snapshot());
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            done.store(true, Ordering::Release);
        })
    };

    let readers: Vec<_> = (0..READERS)
        .map(|reader| {
            let cell = Arc::clone(&cell);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut rng = Rng::seed_from_u64(0xBEEF + reader as u64);
                // Persistent across hot-swaps — the production shape.
                let mut index = ComparatorIndex::new(IndexConfig::default());
                let mut generations = BTreeSet::new();
                let mut checked = 0usize;
                let mut last_epoch = 0;
                loop {
                    let finish = done.load(Ordering::Acquire);
                    let (epoch, db) = cell.load();
                    assert!(epoch >= last_epoch, "epoch went backwards");
                    last_epoch = epoch;
                    generations.insert(db.generation());
                    index.ensure(&db);
                    let config = CompareConfig {
                        thr: rng.gen_range(0..4usize),
                        ratio: rng.gen_range(0..101u32) as f64 / 100.0,
                    };
                    // A small pool so repeats hit the verdict cache; the
                    // cache must still never outlive its generation.
                    let pool: Vec<Dna> = (0..4).map(|_| random_dna(&mut rng)).collect();
                    for _ in 0..12 {
                        let query = if rng.gen_bool(0.5) {
                            rng.pick(&pool).clone()
                        } else {
                            random_dna(&mut rng)
                        };
                        let expected = reference_matches(&db, &query, &config);
                        let (got, _) = index.query(&query, &config);
                        assert_eq!(
                            *got, expected,
                            "reader {reader} diverged at epoch {epoch} config {config:?}\nquery:\n{}",
                            query.to_text()
                        );
                        checked += 1;
                    }
                    if finish {
                        return (checked, generations.len());
                    }
                }
            })
        })
        .collect();

    publisher.join().unwrap();
    let mut total = 0;
    for r in readers {
        let (checked, distinct_generations) = r.join().unwrap();
        total += checked;
        assert!(
            distinct_generations > 1,
            "reader never saw a hot-swap; the concurrent path went untested"
        );
    }
    assert!(total >= 1_000, "only {total} cross-thread comparisons ran");
}

//! Figure-4 reproduction bounds: false-positive behaviour of JITBULL on
//! the harmless workload corpus.

use jitbull_bench::figures::{db_with, fig4};
use jitbull_jit::engine::EngineConfig;
use jitbull_workloads::{all_workloads, run_workload};

#[test]
fn fig4_false_positive_shapes_match_paper() {
    let rows = fig4();
    assert_eq!(rows.len(), 12);
    for r in &rows {
        // Paper: with 1 VDC in the DB, FP is 0-5 % "for most scripts"
        // and the JIT is never disabled entirely.
        assert!(
            r.with_1.1 <= 25.0,
            "{}: #1 %PassDis {} too high",
            r.name,
            r.with_1.1
        );
        assert_eq!(r.with_1.2, 0.0, "{}: #1 disabled the JIT entirely", r.name);
        // With 4 VDCs the FP rate may be large (paper: up to 65 %), but
        // it never exceeds the JITed-function count and never reaches a
        // global JIT kill either.
        assert!(r.with_4.1 <= 100.0);
        assert!(
            r.with_4.1 >= r.with_1.1 - 1e-9,
            "{}: more VDCs cannot lower the FP rate",
            r.name
        );
    }
    // At least one benchmark shows the #1-DB match the paper saw on
    // TypeScript, and several show #4 FPs.
    assert!(rows.iter().any(|r| r.with_1.1 > 0.0));
    assert!(rows.iter().filter(|r| r.with_4.1 > 0.0).count() >= 5);
}

#[test]
fn protected_workloads_still_compute_correct_results() {
    // Even with the full DB installed and a fully vulnerable engine, the
    // protected engine must produce exactly the interpreter's outputs.
    let (db, vulns) = db_with(8);
    for w in all_workloads() {
        let interp = run_workload(
            &w,
            EngineConfig {
                jit_enabled: false,
                ..Default::default()
            },
            None,
        )
        .unwrap();
        let protected = run_workload(
            &w,
            EngineConfig {
                vulns: vulns.clone(),
                ..Default::default()
            },
            Some(db.clone()),
        )
        .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        assert_eq!(
            interp.printed, protected.printed,
            "{}: protected run diverged",
            w.name
        );
    }
}

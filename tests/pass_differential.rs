//! Per-pass differential testing: disabling any single (disableable)
//! pipeline slot must never change program behaviour — optimization
//! passes are semantics-preserving, and the go/no-go policy relies on
//! recompile-without-pass being a safe fallback.

use jitbull_frontend::parse_program;
use jitbull_fuzzer::gen::{generate_complete, GenConfig};
use jitbull_jit::engine::{Engine, EngineConfig};
use jitbull_jit::pipeline::{slot_disableable, N_SLOTS};
use jitbull_workloads::workload;

fn run(source: &str, disabled: &[usize]) -> Vec<String> {
    Engine::run_source(
        source,
        EngineConfig {
            baseline_threshold: 3,
            ion_threshold: 6,
            fuel: 3_000_000,
            disabled_slots: disabled.iter().copied().collect(),
            ..Default::default()
        },
    )
    .map(|o| o.outcome.printed)
    .unwrap_or_else(|e| vec![format!("error: {e}")])
}

#[test]
fn disabling_any_single_slot_preserves_generated_program_behaviour() {
    for seed in [1u64, 9, 23, 47, 101, 500] {
        let source = generate_complete(&GenConfig {
            seed,
            warmup: 12,
            body_len: 6,
        });
        parse_program(&source).expect("generated source parses");
        let baseline = run(&source, &[]);
        for slot in 0..N_SLOTS {
            if !slot_disableable(slot) {
                continue;
            }
            let got = run(&source, &[slot]);
            assert_eq!(
                baseline, got,
                "seed {seed}: disabling slot {slot} changed behaviour\n{source}"
            );
        }
    }
}

#[test]
fn disabling_every_disableable_slot_preserves_workload_behaviour() {
    // The most pessimistic recompile outcome: everything optional off.
    let all_optional: Vec<usize> = (0..N_SLOTS).filter(|s| slot_disableable(*s)).collect();
    for name in ["Crypto", "Splay", "Gameboy", "Microbench2"] {
        let w = workload(name).expect("workload exists");
        let full = run(&w.source, &[]);
        let stripped = run(&w.source, &all_optional);
        assert_eq!(full, stripped, "{name}: stripped pipeline diverged");
    }
}

#[test]
fn stripped_pipeline_is_slower_but_still_beats_no_jit() {
    let all_optional: Vec<usize> = (0..N_SLOTS).filter(|s| slot_disableable(*s)).collect();
    let w = workload("Crypto").expect("workload exists");
    let cycles = |disabled: &[usize], jit: bool| {
        Engine::run_source(
            &w.source,
            EngineConfig {
                jit_enabled: jit,
                disabled_slots: disabled.iter().copied().collect(),
                ..Default::default()
            },
        )
        .unwrap()
        .outcome
        .cycles
    };
    let full = cycles(&[], true);
    let stripped = cycles(&all_optional, true);
    let nojit = cycles(&[], false);
    assert!(
        full <= stripped,
        "optimizations must help ({full} vs {stripped})"
    );
    assert!(
        stripped < nojit,
        "even a stripped JIT beats the interpreter ({stripped} vs {nojit})"
    );
}

//! Randomized differential testing: generated minijs programs must print
//! exactly the same output on the interpreter and on the fully optimizing
//! engine (this is the test class that caught the GVN global-merging
//! miscompilation during development). Driven by the repo's seeded PRNG:
//! deterministic, reproducible by seed.

use jitbull_jit::engine::{Engine, EngineConfig};
use jitbull_jit::VulnConfig;
use jitbull_prng::Rng;

#[derive(Debug, Clone)]
enum E {
    A,
    B,
    T,
    V(u8),
    Lit(i8),
    Arr(Box<E>),
    Bin(u8, Box<E>, Box<E>),
    Neg(Box<E>),
    Floor(Box<E>),
}

#[derive(Debug, Clone)]
enum S {
    SetV(u8, Box<E>),
    SetT(Box<E>),
    SetArr(Box<E>, Box<E>),
    If(Box<E>, Vec<S>, Vec<S>),
    For(u8, Vec<S>),
}

fn gen_expr(rng: &mut Rng, depth: u32) -> E {
    if depth == 0 || rng.gen_bool(0.35) {
        return match rng.gen_range(0..5u32) {
            0 => E::A,
            1 => E::B,
            2 => E::T,
            3 => E::V(rng.gen_range(0..4u8)),
            _ => E::Lit(rng.gen_range(-9i8..10)),
        };
    }
    let d = depth - 1;
    match rng.gen_range(0..4u32) {
        0 => E::Arr(Box::new(gen_expr(rng, d))),
        1 => E::Bin(
            rng.gen_range(0..10u8),
            Box::new(gen_expr(rng, d)),
            Box::new(gen_expr(rng, d)),
        ),
        2 => E::Neg(Box::new(gen_expr(rng, d))),
        _ => E::Floor(Box::new(gen_expr(rng, d))),
    }
}

fn gen_stmts(rng: &mut Rng, depth: u32, lo: usize, hi: usize) -> Vec<S> {
    (0..rng.gen_range(lo..hi))
        .map(|_| gen_stmt(rng, depth))
        .collect()
}

fn gen_stmt(rng: &mut Rng, depth: u32) -> S {
    if depth == 0 || rng.gen_bool(0.5) {
        return match rng.gen_range(0..3u32) {
            0 => S::SetV(rng.gen_range(0..4u8), Box::new(gen_expr(rng, 3))),
            1 => S::SetT(Box::new(gen_expr(rng, 3))),
            _ => S::SetArr(Box::new(gen_expr(rng, 3)), Box::new(gen_expr(rng, 3))),
        };
    }
    let d = depth - 1;
    if rng.gen_bool(0.5) {
        S::If(
            Box::new(gen_expr(rng, 3)),
            gen_stmts(rng, d, 1, 3),
            gen_stmts(rng, d, 0, 3),
        )
    } else {
        S::For(rng.gen_range(1..5u8), gen_stmts(rng, d, 1, 3))
    }
}

fn render_expr(e: &E, out: &mut String) {
    match e {
        E::A => out.push('a'),
        E::B => out.push('b'),
        E::T => out.push('t'),
        E::V(v) => out.push_str(&format!("v{}", v % 4)),
        E::Lit(n) => out.push_str(&format!("({n})")),
        E::Arr(i) => {
            out.push_str("arr[(");
            render_expr(i, out);
            out.push_str(") & 7]");
        }
        E::Bin(op, x, y) => {
            let sym = ["+", "-", "*", "/", "%", "&", "|", "^", "<", "=="][*op as usize % 10];
            out.push('(');
            render_expr(x, out);
            out.push_str(&format!(" {sym} "));
            render_expr(y, out);
            out.push(')');
        }
        E::Neg(x) => {
            out.push_str("(0 - ");
            render_expr(x, out);
            out.push(')');
        }
        E::Floor(x) => {
            out.push_str("Math.floor(");
            render_expr(x, out);
            out.push(')');
        }
    }
}

fn render_stmt(s: &S, out: &mut String, loop_counter: &mut u32) {
    match s {
        S::SetV(v, e) => {
            out.push_str(&format!("v{} = ", v % 4));
            render_expr(e, out);
            out.push_str(";\n");
        }
        S::SetT(e) => {
            out.push_str("t = t + ");
            render_expr(e, out);
            out.push_str(";\n");
        }
        S::SetArr(i, v) => {
            out.push_str("arr[(");
            render_expr(i, out);
            out.push_str(") & 7] = ");
            render_expr(v, out);
            out.push_str(";\n");
        }
        S::If(c, a, b) => {
            out.push_str("if ((");
            render_expr(c, out);
            out.push_str(") % 2) {\n");
            for s in a {
                render_stmt(s, out, loop_counter);
            }
            out.push_str("} else {\n");
            for s in b {
                render_stmt(s, out, loop_counter);
            }
            out.push_str("}\n");
        }
        S::For(n, body) => {
            let k = *loop_counter;
            *loop_counter += 1;
            out.push_str(&format!("for (var k{k} = 0; k{k} < {n}; k{k}++) {{\n"));
            for s in body {
                render_stmt(s, out, loop_counter);
            }
            out.push_str("}\n");
        }
    }
}

fn render_program(stmts: &[S]) -> String {
    let mut body = String::new();
    let mut loop_counter = 0;
    for s in stmts {
        render_stmt(s, &mut body, &mut loop_counter);
    }
    format!(
        "function f(a, b, arr) {{\n\
         var t = 0;\n\
         var v0 = a; var v1 = b; var v2 = a - b; var v3 = 1;\n\
         {body}\
         return t + v0 + v1 + v2 + v3;\n\
         }}\n\
         var arr = [1, 2, 3, 4, 5, 6, 7, 8];\n\
         var out = 0;\n\
         for (var i = 0; i < 40; i++) {{ out = f(i, (i * 3) % 7, arr); }}\n\
         print(out);\n\
         var chk = 0;\n\
         for (var j = 0; j < 8; j++) {{ chk = chk + arr[j] * (j + 1); }}\n\
         print(chk);\n"
    )
}

fn gen_program(seed: u64, max_stmts: usize) -> String {
    let mut rng = Rng::seed_from_u64(seed);
    let stmts = gen_stmts(&mut rng, 2, 1, max_stmts);
    render_program(&stmts)
}

fn run(source: &str, jit: bool, vulns: VulnConfig) -> Vec<String> {
    Engine::run_source(
        source,
        EngineConfig {
            jit_enabled: jit,
            vulns,
            fuel: 5_000_000,
            ..EngineConfig::fast_test()
        },
    )
    .map(|o| o.outcome.printed)
    .unwrap_or_else(|e| vec![format!("error: {e}")])
}

/// Optimized execution must match interpretation exactly.
#[test]
fn jit_matches_interpreter() {
    for seed in 0..48u64 {
        let source = gen_program(seed, 6);
        let interp = run(&source, false, VulnConfig::none());
        let jit = run(&source, true, VulnConfig::none());
        assert_eq!(interp, jit, "seed {seed}, source:\n{source}");
    }
}

/// A fully vulnerable engine must still run *benign* generated code
/// correctly: all accesses are masked in-bounds, so even incorrectly
/// removed checks cannot change behaviour.
#[test]
fn vulnerable_engine_is_correct_on_benign_code() {
    for seed in 1000..1048u64 {
        let source = gen_program(seed, 5);
        let interp = run(&source, false, VulnConfig::none());
        let vulnerable = run(&source, true, VulnConfig::all());
        assert_eq!(interp, vulnerable, "seed {seed}, source:\n{source}");
    }
}

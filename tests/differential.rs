//! Property-based differential testing: randomly generated minijs
//! programs must print exactly the same output on the interpreter and on
//! the fully optimizing engine (this is the test class that caught the
//! GVN global-merging miscompilation during development).

use proptest::prelude::*;

use jitbull_jit::engine::{Engine, EngineConfig};
use jitbull_jit::VulnConfig;

#[derive(Debug, Clone)]
enum E {
    A,
    B,
    T,
    V(u8),
    Lit(i8),
    Arr(Box<E>),
    Bin(u8, Box<E>, Box<E>),
    Neg(Box<E>),
    Floor(Box<E>),
}

#[derive(Debug, Clone)]
enum S {
    SetV(u8, Box<E>),
    SetT(Box<E>),
    SetArr(Box<E>, Box<E>),
    If(Box<E>, Vec<S>, Vec<S>),
    For(u8, Vec<S>),
}

fn expr_strategy() -> impl Strategy<Value = E> {
    let leaf = prop_oneof![
        Just(E::A),
        Just(E::B),
        Just(E::T),
        (0u8..4).prop_map(E::V),
        (-9i8..10).prop_map(E::Lit),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| E::Arr(Box::new(e))),
            (0u8..10, inner.clone(), inner.clone()).prop_map(|(op, a, b)| E::Bin(
                op,
                Box::new(a),
                Box::new(b)
            )),
            inner.clone().prop_map(|e| E::Neg(Box::new(e))),
            inner.prop_map(|e| E::Floor(Box::new(e))),
        ]
    })
}

fn stmt_strategy() -> impl Strategy<Value = S> {
    let simple = prop_oneof![
        (0u8..4, expr_strategy()).prop_map(|(v, e)| S::SetV(v, Box::new(e))),
        expr_strategy().prop_map(|e| S::SetT(Box::new(e))),
        (expr_strategy(), expr_strategy()).prop_map(|(i, v)| S::SetArr(Box::new(i), Box::new(v))),
    ];
    simple.prop_recursive(2, 12, 4, |inner| {
        prop_oneof![
            (
                expr_strategy(),
                prop::collection::vec(inner.clone(), 1..3),
                prop::collection::vec(inner.clone(), 0..3)
            )
                .prop_map(|(c, a, b)| S::If(Box::new(c), a, b)),
            ((1u8..5), prop::collection::vec(inner, 1..3)).prop_map(|(n, b)| S::For(n, b)),
        ]
    })
}

fn render_expr(e: &E, out: &mut String) {
    match e {
        E::A => out.push('a'),
        E::B => out.push('b'),
        E::T => out.push('t'),
        E::V(v) => out.push_str(&format!("v{}", v % 4)),
        E::Lit(n) => out.push_str(&format!("({n})")),
        E::Arr(i) => {
            out.push_str("arr[(");
            render_expr(i, out);
            out.push_str(") & 7]");
        }
        E::Bin(op, x, y) => {
            let sym = ["+", "-", "*", "/", "%", "&", "|", "^", "<", "=="][*op as usize % 10];
            out.push('(');
            render_expr(x, out);
            out.push_str(&format!(" {sym} "));
            render_expr(y, out);
            out.push(')');
        }
        E::Neg(x) => {
            out.push_str("(0 - ");
            render_expr(x, out);
            out.push(')');
        }
        E::Floor(x) => {
            out.push_str("Math.floor(");
            render_expr(x, out);
            out.push(')');
        }
    }
}

fn render_stmt(s: &S, out: &mut String, loop_counter: &mut u32) {
    match s {
        S::SetV(v, e) => {
            out.push_str(&format!("v{} = ", v % 4));
            render_expr(e, out);
            out.push_str(";\n");
        }
        S::SetT(e) => {
            out.push_str("t = t + ");
            render_expr(e, out);
            out.push_str(";\n");
        }
        S::SetArr(i, v) => {
            out.push_str("arr[(");
            render_expr(i, out);
            out.push_str(") & 7] = ");
            render_expr(v, out);
            out.push_str(";\n");
        }
        S::If(c, a, b) => {
            out.push_str("if ((");
            render_expr(c, out);
            out.push_str(") % 2) {\n");
            for s in a {
                render_stmt(s, out, loop_counter);
            }
            out.push_str("} else {\n");
            for s in b {
                render_stmt(s, out, loop_counter);
            }
            out.push_str("}\n");
        }
        S::For(n, body) => {
            let k = *loop_counter;
            *loop_counter += 1;
            out.push_str(&format!("for (var k{k} = 0; k{k} < {n}; k{k}++) {{\n"));
            for s in body {
                render_stmt(s, out, loop_counter);
            }
            out.push_str("}\n");
        }
    }
}

fn render_program(stmts: &[S]) -> String {
    let mut body = String::new();
    let mut loop_counter = 0;
    for s in stmts {
        render_stmt(s, &mut body, &mut loop_counter);
    }
    format!(
        "function f(a, b, arr) {{\n\
         var t = 0;\n\
         var v0 = a; var v1 = b; var v2 = a - b; var v3 = 1;\n\
         {body}\
         return t + v0 + v1 + v2 + v3;\n\
         }}\n\
         var arr = [1, 2, 3, 4, 5, 6, 7, 8];\n\
         var out = 0;\n\
         for (var i = 0; i < 40; i++) {{ out = f(i, (i * 3) % 7, arr); }}\n\
         print(out);\n\
         var chk = 0;\n\
         for (var j = 0; j < 8; j++) {{ chk = chk + arr[j] * (j + 1); }}\n\
         print(chk);\n"
    )
}

fn run(source: &str, jit: bool, vulns: VulnConfig) -> Vec<String> {
    Engine::run_source(
        source,
        EngineConfig {
            jit_enabled: jit,
            vulns,
            fuel: 5_000_000,
            ..EngineConfig::fast_test()
        },
    )
    .map(|o| o.outcome.printed)
    .unwrap_or_else(|e| vec![format!("error: {e}")])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Optimized execution must match interpretation exactly.
    #[test]
    fn jit_matches_interpreter(stmts in prop::collection::vec(stmt_strategy(), 1..6)) {
        let source = render_program(&stmts);
        let interp = run(&source, false, VulnConfig::none());
        let jit = run(&source, true, VulnConfig::none());
        prop_assert_eq!(&interp, &jit, "source:\n{}", source);
    }

    /// A fully vulnerable engine must still run *benign* generated code
    /// correctly: all accesses are masked in-bounds, so even incorrectly
    /// removed checks cannot change behaviour.
    #[test]
    fn vulnerable_engine_is_correct_on_benign_code(stmts in prop::collection::vec(stmt_strategy(), 1..5)) {
        let source = render_program(&stmts);
        let interp = run(&source, false, VulnConfig::none());
        let vulnerable = run(&source, true, VulnConfig::all());
        prop_assert_eq!(&interp, &vulnerable, "source:\n{}", source);
    }
}

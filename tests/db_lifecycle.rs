//! The maintainer-update workflow (§IV-C): DNA is extracted by the
//! maintainer, shipped to users as a compact text update, preloaded at
//! runtime start, and removed when the patch is applied.

use jitbull::{CompareConfig, DnaDatabase, Guard};
use jitbull_jit::engine::{Engine, EngineConfig};
use jitbull_jit::pipeline::N_SLOTS;
use jitbull_jit::{CveId, VulnConfig};
use jitbull_vdc::validate::run_script;
use jitbull_vdc::{build_database, vdc};

#[test]
fn dna_update_survives_the_wire_and_still_protects() {
    // Maintainer side: extract and serialize.
    let cve = CveId::Cve2019_17026;
    let poc = vdc(cve);
    let db = build_database(std::slice::from_ref(&poc)).unwrap();
    let update_text = db.to_text();
    assert!(update_text.starts_with("@entry CVE-2019-17026"));
    // The update is compact — kilobytes, not the demonstrator itself
    // (which would hand users a weapon, §IV-C).
    assert!(update_text.len() < 8 * 1024, "{} bytes", update_text.len());
    assert!(
        !update_text.contains("shrink_smash(prey"),
        "the update must not embed the exploit source"
    );

    // User side: parse, preload, protected.
    let user_db = DnaDatabase::from_text(&update_text, N_SLOTS).unwrap();
    assert_eq!(user_db, db);
    let mut engine = Engine::with_guard(
        EngineConfig {
            vulns: VulnConfig::with([cve]),
            ..Default::default()
        },
        Guard::new(user_db, CompareConfig::default()),
    );
    let outcome = run_script(&poc.source, &mut engine).unwrap();
    assert!(!outcome.is_compromised(), "{outcome:?}");
}

#[test]
fn database_file_workflow() {
    let dir = std::env::temp_dir().join("jitbull-update-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("window.dnadb");

    // Two vulnerabilities are in their windows.
    let vdcs = [vdc(CveId::Cve2019_9810), vdc(CveId::Cve2019_9813)];
    let db = build_database(&vdcs).unwrap();
    db.save_to(&path).unwrap();

    // Next browser start: preload from disk.
    let mut loaded = DnaDatabase::load_from(&path, N_SLOTS).unwrap();
    assert_eq!(loaded.cves().len(), 2);

    // One patch lands; its entries are dropped and the file rewritten.
    assert!(loaded.remove_cve("CVE-2019-9810") > 0);
    loaded.save_to(&path).unwrap();
    let reloaded = DnaDatabase::load_from(&path, N_SLOTS).unwrap();
    assert_eq!(reloaded.cves(), vec!["CVE-2019-9813"]);

    std::fs::remove_file(&path).ok();
}

/// The comparator cache must never serve a verdict from a previous
/// database state: install → query → remove → query must see the removal
/// immediately, and re-install must see the new entry.
#[test]
fn comparator_cache_never_goes_stale_across_installs_and_removals() {
    let vdcs = [vdc(CveId::Cve2019_9810), vdc(CveId::Cve2019_9813)];
    let db = build_database(&vdcs).unwrap();
    let entry_9810: Vec<_> = db
        .entries()
        .iter()
        .filter(|e| e.cve == "CVE-2019-9810")
        .cloned()
        .collect();
    assert!(!entry_9810.is_empty());
    // Query DNA: one of 9810's own entries (guaranteed self-match at the
    // permissive threshold).
    let query = entry_9810[0].dna.clone();
    let cfg = CompareConfig { thr: 1, ratio: 0.5 };
    let mut guard = Guard::new(db, cfg);

    let matched_cves = |guard: &Guard, dna: &jitbull::Dna| -> Vec<String> {
        let entries = guard.db().entries();
        let mut cves: Vec<String> = entries
            .iter()
            .filter(|e| !jitbull::compare::reference(dna, &e.dna, guard.config()).is_empty())
            .map(|e| e.cve.clone())
            .collect();
        cves.dedup();
        cves
    };
    // Before the patch: the 9810 DNA matches its own entry.
    assert!(matched_cves(&guard, &query).contains(&"CVE-2019-9810".to_string()));

    // One *persistent* index across the whole lifecycle — the same
    // object the guard keeps internally — so a stale cached verdict
    // would actually be observable.
    let mut index = jitbull::ComparatorIndex::new(jitbull::IndexConfig::default());
    let query_hits = |guard: &Guard, index: &mut jitbull::ComparatorIndex| -> bool {
        index.ensure(guard.db());
        let entries = guard.db().entries();
        let (hits, _) = index.query(&query, guard.config());
        hits.iter().any(|(i, _)| entries[*i].cve == "CVE-2019-9810")
    };
    // Query twice so the verdict is definitely cached.
    assert!(query_hits(&guard, &mut index));
    assert!(query_hits(&guard, &mut index));
    assert_eq!(index.stats().cache_hits, 1);

    // Patch lands: remove the CVE. The next query must not resurrect it.
    let g_before = guard.db().generation();
    assert!(guard.db_mut().remove_cve("CVE-2019-9810") > 0);
    assert!(guard.db().generation() > g_before, "generation must move");
    assert!(!query_hits(&guard, &mut index));

    // Re-install the same entries: the cache must pick the entry back up.
    for e in &entry_9810 {
        guard
            .db_mut()
            .install(e.cve.clone(), e.function.clone(), e.dna.clone());
    }
    assert!(query_hits(&guard, &mut index));
}

/// Closing the `db_mut` hazard: a mutation that *bypasses*
/// `install`/`remove_cve` (wholesale replacement through the mutable
/// borrow) must still invalidate cached verdicts. `Guard::db_mut` bumps
/// the generation when its borrow drops, so the bypass is impossible.
#[test]
fn bypass_mutation_through_db_mut_cannot_leave_stale_verdicts() {
    let vdcs = [vdc(CveId::Cve2019_9810)];
    let db = build_database(&vdcs).unwrap();
    let query = db
        .entries()
        .iter()
        .find(|e| e.cve == "CVE-2019-9810")
        .unwrap()
        .dna
        .clone();
    let cfg = CompareConfig { thr: 1, ratio: 0.5 };
    let mut guard = Guard::new(db, cfg);

    let mut index = jitbull::ComparatorIndex::new(jitbull::IndexConfig::default());
    let query_hits = |guard: &Guard, index: &mut jitbull::ComparatorIndex| -> bool {
        index.ensure(guard.db());
        let (hits, _) = index.query(&query, guard.config());
        !hits.is_empty()
    };
    // Cache the verdict.
    assert!(query_hits(&guard, &mut index));
    assert!(query_hits(&guard, &mut index));
    assert_eq!(index.stats().cache_hits, 1);

    // Bypass mutation: replace the whole database through the borrow,
    // never calling install/remove_cve. A clone carries the *donor's*
    // generation, so without the drop bump the index could keep serving
    // the pre-replacement verdict.
    let empty = DnaDatabase::new();
    *guard.db_mut() = empty.clone();
    assert!(
        guard.db().generation() != empty.generation(),
        "the drop bump must move the generation past the donor's"
    );
    assert!(
        !query_hits(&guard, &mut index),
        "stale verdict served after a bypass replacement"
    );

    // Even a borrow that mutates nothing invalidates (conservative, and
    // what makes the guarantee unconditional).
    let g = guard.db().generation();
    let _ = guard.db_mut();
    assert!(guard.db().generation() > g);
}

/// Load failures are typed: an unreadable file reports `io`, malformed
/// content reports `parse` with the offending line — the serving pool's
/// reload path routes these to separate telemetry counters.
#[test]
fn load_failures_are_typed() {
    use jitbull::DbError;
    let dir = std::env::temp_dir().join("jitbull-dberr-test");
    std::fs::create_dir_all(&dir).unwrap();

    let missing = dir.join("does-not-exist.dnadb");
    let err = DnaDatabase::load_from(&missing, N_SLOTS).unwrap_err();
    assert_eq!(err.kind(), "io");

    let corrupt = dir.join("corrupt.dnadb");
    std::fs::write(&corrupt, "@entry CVE-X f\n0 ? bad-sign\n").unwrap();
    let err = DnaDatabase::load_from(&corrupt, N_SLOTS).unwrap_err();
    assert_eq!(err.kind(), "parse");
    match err {
        DbError::Parse { line, ref msg } => {
            assert_eq!(
                line, 2,
                "entry-body errors are rebased to absolute file lines"
            );
            assert!(msg.contains("bad sign"), "{msg}");
        }
        DbError::Io(_) => panic!("expected a parse error"),
    }
    std::fs::remove_file(&corrupt).ok();
}

/// Database generations are strictly monotonic across a lifecycle and
/// only move on actual content changes.
#[test]
fn database_generation_is_monotonic_over_the_lifecycle() {
    let vdcs = [vdc(CveId::Cve2019_9810), vdc(CveId::Cve2019_9813)];
    let full = build_database(&vdcs).unwrap();
    let mut db = DnaDatabase::new();
    let mut seen = vec![db.generation()];
    for e in full.entries() {
        db.install(e.cve.clone(), e.function.clone(), e.dna.clone());
        seen.push(db.generation());
    }
    assert_eq!(db.remove_cve("CVE-not-installed"), 0);
    assert_eq!(
        db.generation(),
        *seen.last().unwrap(),
        "no-op removal must not bump the generation"
    );
    assert!(db.remove_cve("CVE-2019-9810") > 0);
    seen.push(db.generation());
    assert!(db.remove_cve("CVE-2019-9813") > 0);
    seen.push(db.generation());
    for pair in seen.windows(2) {
        assert!(pair[0] < pair[1], "generations not monotonic: {seen:?}");
    }
    // Round-tripping through the wire format yields a *fresh* database
    // state with its own generation — never one that could collide with a
    // cached verdict from the original.
    let text = full.to_text();
    let back = DnaDatabase::from_text(&text, N_SLOTS).unwrap();
    assert_eq!(back, full);
    assert_ne!(back.generation(), full.generation());
}

#[test]
fn multiple_windows_protect_simultaneously() {
    // Both 9810 and 9813 are open (the paper's 2019 overlap); one DB
    // protects against both exploits at once.
    let vdcs = [vdc(CveId::Cve2019_9810), vdc(CveId::Cve2019_9813)];
    let db = build_database(&vdcs).unwrap();
    let vulns = VulnConfig::with([CveId::Cve2019_9810, CveId::Cve2019_9813]);
    for poc in &vdcs {
        let mut engine = Engine::with_guard(
            EngineConfig {
                vulns: vulns.clone(),
                ..Default::default()
            },
            Guard::new(db.clone(), CompareConfig::default()),
        );
        let outcome = run_script(&poc.source, &mut engine).unwrap();
        assert!(!outcome.is_compromised(), "{}: {outcome:?}", poc.name);
    }
}

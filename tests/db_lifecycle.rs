//! The maintainer-update workflow (§IV-C): DNA is extracted by the
//! maintainer, shipped to users as a compact text update, preloaded at
//! runtime start, and removed when the patch is applied.

use jitbull::{CompareConfig, DnaDatabase, Guard};
use jitbull_jit::engine::{Engine, EngineConfig};
use jitbull_jit::pipeline::N_SLOTS;
use jitbull_jit::{CveId, VulnConfig};
use jitbull_vdc::validate::run_script;
use jitbull_vdc::{build_database, vdc};

#[test]
fn dna_update_survives_the_wire_and_still_protects() {
    // Maintainer side: extract and serialize.
    let cve = CveId::Cve2019_17026;
    let poc = vdc(cve);
    let db = build_database(std::slice::from_ref(&poc)).unwrap();
    let update_text = db.to_text();
    assert!(update_text.starts_with("@entry CVE-2019-17026"));
    // The update is compact — kilobytes, not the demonstrator itself
    // (which would hand users a weapon, §IV-C).
    assert!(update_text.len() < 8 * 1024, "{} bytes", update_text.len());
    assert!(
        !update_text.contains("shrink_smash(prey"),
        "the update must not embed the exploit source"
    );

    // User side: parse, preload, protected.
    let user_db = DnaDatabase::from_text(&update_text, N_SLOTS).unwrap();
    assert_eq!(user_db, db);
    let mut engine = Engine::with_guard(
        EngineConfig {
            vulns: VulnConfig::with([cve]),
            ..Default::default()
        },
        Guard::new(user_db, CompareConfig::default()),
    );
    let outcome = run_script(&poc.source, &mut engine).unwrap();
    assert!(!outcome.is_compromised(), "{outcome:?}");
}

#[test]
fn database_file_workflow() {
    let dir = std::env::temp_dir().join("jitbull-update-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("window.dnadb");

    // Two vulnerabilities are in their windows.
    let vdcs = [vdc(CveId::Cve2019_9810), vdc(CveId::Cve2019_9813)];
    let db = build_database(&vdcs).unwrap();
    db.save_to(&path).unwrap();

    // Next browser start: preload from disk.
    let mut loaded = DnaDatabase::load_from(&path, N_SLOTS).unwrap();
    assert_eq!(loaded.cves().len(), 2);

    // One patch lands; its entries are dropped and the file rewritten.
    assert!(loaded.remove_cve("CVE-2019-9810") > 0);
    loaded.save_to(&path).unwrap();
    let reloaded = DnaDatabase::load_from(&path, N_SLOTS).unwrap();
    assert_eq!(reloaded.cves(), vec!["CVE-2019-9813"]);

    std::fs::remove_file(&path).ok();
}

#[test]
fn multiple_windows_protect_simultaneously() {
    // Both 9810 and 9813 are open (the paper's 2019 overlap); one DB
    // protects against both exploits at once.
    let vdcs = [vdc(CveId::Cve2019_9810), vdc(CveId::Cve2019_9813)];
    let db = build_database(&vdcs).unwrap();
    let vulns = VulnConfig::with([CveId::Cve2019_9810, CveId::Cve2019_9813]);
    for poc in &vdcs {
        let mut engine = Engine::with_guard(
            EngineConfig {
                vulns: vulns.clone(),
                ..Default::default()
            },
            Guard::new(db.clone(), CompareConfig::default()),
        );
        let outcome = run_script(&poc.source, &mut engine).unwrap();
        assert!(!outcome.is_compromised(), "{}: {outcome:?}", poc.name);
    }
}

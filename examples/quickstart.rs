//! Quickstart: run a minijs program on the tiered engine and inspect what
//! the JIT did.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use jitbull_jit::engine::{Engine, EngineConfig};

fn main() -> Result<(), jitbull_vm::VmError> {
    let source = r#"
        function fib(n) {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
        }
        function sumSquares(limit) {
            var t = 0;
            for (var i = 0; i < limit; i++) { t = t + i * i; }
            return t;
        }
        print(fib(18));
        var total = 0;
        for (var r = 0; r < 2000; r++) { total = sumSquares(50); }
        print(total);
    "#;

    // Default configuration: interpreter -> baseline at 100 calls ->
    // optimizing JIT at 1500 calls (the paper's SpiderMonkey thresholds).
    let outcome = Engine::run_source(source, EngineConfig::default())?;

    println!("program output : {:?}", outcome.outcome.printed);
    println!("simulated time : {} cycles", outcome.outcome.cycles);
    println!("functions seen :");
    for f in &outcome.stats {
        println!(
            "  {:<12} {:>7} invocations  tier: {:?}",
            f.name, f.invocations, f.tier
        );
    }

    // The same program with the JIT off (the paper's NoJIT mitigation)
    // shows why nobody wants that as a security stopgap.
    let nojit = Engine::run_source(
        source,
        EngineConfig {
            jit_enabled: false,
            ..Default::default()
        },
    )?;
    println!(
        "NoJIT slowdown : {:.1}x",
        nojit.outcome.cycles as f64 / outcome.outcome.cycles as f64
    );
    Ok(())
}

//! Inspect a function's JIT DNA: the per-pass removed/added dependency
//! sub-chains the Δ extractor produces (paper §IV-D, Listing 1 /
//! Algorithm 1).
//!
//! ```text
//! cargo run --release --example dna_inspect
//! ```

use jitbull::Guard;
use jitbull_frontend::parse_program;
use jitbull_jit::pipeline::{optimize, OptimizeOptions, N_SLOTS, PIPELINE};
use jitbull_jit::{CveId, VulnConfig};
use jitbull_mir::build_mir;
use jitbull_vm::compile_program;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = r#"
        function hot(arr, idx, v) {
            arr.length = 8;
            arr[idx] = v;
            return arr[0];
        }
    "#;
    let program = parse_program(source)?;
    let module = compile_program(&program)?;
    let fid = module.function_id("hot").expect("declared above");

    // Print the freshly built MIR — the paper's Listing-1 view.
    let mir = build_mir(&module, fid)?;
    println!("== MIR before optimization ==\n{mir}");

    for (label, vulns) in [
        ("patched engine", VulnConfig::none()),
        (
            "engine vulnerable to CVE-2019-17026",
            VulnConfig::with([CveId::Cve2019_17026]),
        ),
    ] {
        let mir = build_mir(&module, fid)?;
        let result = optimize(
            mir,
            &vulns,
            &OptimizeOptions {
                trace: true,
                ..Default::default()
            },
        );
        let dna = Guard::extract(&result.trace, N_SLOTS);
        println!("== JIT DNA on {label} ==");
        for (slot, delta) in dna.deltas.iter().enumerate() {
            if delta.is_empty() {
                continue;
            }
            println!("  pass {slot:2} ({}):", PIPELINE[slot].name);
            for chain in &delta.removed {
                println!("    - {}", chain.join(" -> "));
            }
            for chain in &delta.added {
                println!("    + {}", chain.join(" -> "));
            }
        }
        if !result.triggered.is_empty() {
            println!("  !! incorrect transforms fired: {:?}", result.triggered);
        }
        println!();
    }
    Ok(())
}

//! Run the full harmless-workload corpus under every engine
//! configuration the paper evaluates and print a combined report
//! (Figure 4 + Figure 5 in one table).
//!
//! ```text
//! cargo run --release --example octane_report
//! ```

use jitbull_bench::figures::db_with;
use jitbull_jit::engine::EngineConfig;
use jitbull_workloads::{all_workloads, run_workload};

fn main() -> Result<(), jitbull_vm::VmError> {
    let (db1, vulns1) = db_with(1);
    let (db4, vulns4) = db_with(4);
    println!(
        "{:<13} {:>7} {:>12} {:>9} {:>9} {:>9} {:>8} {:>8}",
        "benchmark", "Nr_JIT", "JIT cycles", "NoJIT", "JB #1", "JB #4", "#1 %dis", "#4 %dis"
    );
    for w in all_workloads() {
        let jit = run_workload(&w, EngineConfig::default(), None)?;
        let nojit = run_workload(
            &w,
            EngineConfig {
                jit_enabled: false,
                ..Default::default()
            },
            None,
        )?;
        let one = run_workload(
            &w,
            EngineConfig {
                vulns: vulns1.clone(),
                ..Default::default()
            },
            Some(db1.clone()),
        )?;
        let four = run_workload(
            &w,
            EngineConfig {
                vulns: vulns4.clone(),
                ..Default::default()
            },
            Some(db4.clone()),
        )?;
        let pct = |c: u64| (c as f64 - jit.cycles as f64) * 100.0 / jit.cycles as f64;
        println!(
            "{:<13} {:>7} {:>12} {:>8.0}% {:>8.1}% {:>8.1}% {:>7.1}% {:>7.1}%",
            w.name,
            jit.nr_jit,
            jit.cycles,
            pct(nojit.cycles),
            pct(one.cycles),
            pct(four.cycles),
            one.pct_pass_disabled(),
            four.pct_pass_disabled(),
        );
    }
    Ok(())
}

//! The paper's fuzzer-integration story (§IV-A threat model):
//!
//! > "one way to use JITBULL is to feed the output of JIT fuzzers
//! > directly to its database. In this way, as soon as a crashing code
//! > example is detected, JITBULL will be able to automatically prevent
//! > similar exploit codes from running."
//!
//! Runs a seeded fuzz campaign against an engine carrying all eight
//! modeled vulnerabilities, minimizes the first few finds, feeds their
//! DNA into a shared database (with the iterated triage loop for
//! multi-vulnerability finds), and shows every find bouncing off the
//! resulting protection.
//!
//! ```text
//! cargo run --release --example fuzzer_to_db
//! ```

use jitbull::{CompareConfig, DnaDatabase, Guard};
use jitbull_fuzzer::harness::campaign_engine;
use jitbull_fuzzer::{install_until_neutralized, minimize, run_campaign};
use jitbull_jit::engine::Engine;
use jitbull_jit::VulnConfig;
use jitbull_vdc::validate::run_script;

fn main() -> Result<(), jitbull_vm::VmError> {
    let vulns = VulnConfig::all();

    println!("fuzzing 256 seeds against the vulnerable engine…");
    let report = run_campaign(0, 256, &vulns)?;
    println!(
        "  {} programs ran, {} security-relevant finds\n",
        report.executed,
        report.finds.len()
    );

    let mut db = DnaDatabase::new();
    for find in report.finds.iter().take(6) {
        let min = minimize(find, &vulns);
        println!(
            "seed {:>4}: {:?}; minimized {} -> {} bytes",
            find.seed,
            find.outcome,
            find.source.len(),
            min.source.len()
        );
        let neutralized = install_until_neutralized(&mut db, &min, &vulns, 6)?;
        println!(
            "           DNA installed (db now {} entries); triage loop: {}",
            db.len(),
            if neutralized { "neutralized" } else { "EVADES" }
        );
    }

    println!("\nre-running every find under the fuzz-built database:");
    let guard = Guard::new(db, CompareConfig::default());
    let mut bounced = 0;
    for find in &report.finds {
        let mut engine = Engine::with_guard(campaign_engine(vulns.clone()), guard.clone());
        let outcome = run_script(&find.source, &mut engine)?;
        if !outcome.is_compromised() {
            bounced += 1;
        }
    }
    println!(
        "  {} / {} finds neutralized by DNA from just the first 6",
        bounced,
        report.finds.len()
    );
    Ok(())
}

//! # jitbull-repro — workspace facade
//!
//! Re-exports all crates of the JITBULL (DSN 2024) reproduction so that the
//! workspace-level examples and integration tests can reach every subsystem
//! through one dependency. See `README.md` for the repository tour and
//! `DESIGN.md` for the system inventory.

pub use jitbull;
pub use jitbull_frontend as frontend;
pub use jitbull_fuzzer as fuzzer;
pub use jitbull_jit as jit;
pub use jitbull_lir as lir;
pub use jitbull_mir as mir;
pub use jitbull_vdc as vdc;
pub use jitbull_vm as vm;
pub use jitbull_workloads as workloads;

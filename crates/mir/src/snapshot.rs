//! Engine-agnostic IR snapshots.
//!
//! A [`MirSnapshot`] is what the JITBULL core consumes: a flat list of
//! `(id, label, operands)` triples taken from the IR between optimization
//! passes. Labels are opcode mnemonics *without* literal values or
//! variable/property names, so DNA comparisons key on the structural shape
//! of the optimization — exactly what lets the paper's system recognise a
//! renamed/minified exploit variant.

use std::sync::Arc;

use crate::graph::MirFunction;

/// One instruction in a snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SnapInstr {
    /// The instruction's SSA id at snapshot time.
    pub id: u32,
    /// Opcode label (e.g. `boundscheck`, `compare:lt`, `constant:number`).
    pub label: Arc<str>,
    /// Operand ids.
    pub operands: Vec<u32>,
}

/// A flat snapshot of a function's IR between two optimization passes.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MirSnapshot {
    /// All instructions, in block order (phis first within each block).
    pub instrs: Vec<SnapInstr>,
}

impl MirSnapshot {
    /// Number of instructions captured.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the snapshot is empty.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }
}

/// The record of one optimization pass's effect: the IR immediately before
/// and immediately after the pass ran.
#[derive(Debug, Clone, PartialEq)]
pub struct PassRecord {
    /// Pipeline slot index (`i` in the paper's `Δ_i`), `0..n`.
    pub slot: usize,
    /// Human-readable pass name (`"GVN"`, `"LICM"`, …).
    pub name: &'static str,
    /// IR before the pass (`IR_{i-1}`).
    pub before: MirSnapshot,
    /// IR after the pass (`IR_i`).
    pub after: MirSnapshot,
}

/// The full per-compilation trace a JIT engine hands to JITBULL: one
/// [`PassRecord`] per executed pipeline slot. This is the engine-agnostic
/// interface of the paper's Δ extractor input.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PassTrace {
    /// Name of the function being compiled (diagnostics).
    pub function: String,
    /// One record per pass, in pipeline order.
    pub records: Vec<PassRecord>,
}

/// Takes a snapshot of the current IR.
pub fn snapshot(f: &MirFunction) -> MirSnapshot {
    let mut instrs = Vec::with_capacity(f.instr_count());
    for b in &f.blocks {
        for i in b.iter_all() {
            instrs.push(SnapInstr {
                id: i.id.0,
                label: Arc::from(i.op.mnemonic().as_str()),
                operands: i.operands.iter().map(|o| o.0).collect(),
            });
        }
    }
    MirSnapshot { instrs }
}

impl MirFunction {
    /// Convenience: [`snapshot`] as a method.
    pub fn snapshot(&self) -> MirSnapshot {
        snapshot(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_mir;
    use jitbull_frontend::parse_program;
    use jitbull_vm::compile_program;

    #[test]
    fn snapshot_strips_values_but_keeps_structure() {
        let p1 = parse_program("function f(a, i) { return a[i] + 1; }").unwrap();
        let p2 = parse_program("function f(zz, qq) { return zz[qq] + 99; }").unwrap();
        let m1 = compile_program(&p1).unwrap();
        let m2 = compile_program(&p2).unwrap();
        let s1 = build_mir(&m1, m1.function_id("f").unwrap())
            .unwrap()
            .snapshot();
        let s2 = build_mir(&m2, m2.function_id("f").unwrap())
            .unwrap()
            .snapshot();
        // Renaming variables and changing literals leaves identical labels.
        let l1: Vec<_> = s1.instrs.iter().map(|i| i.label.clone()).collect();
        let l2: Vec<_> = s2.instrs.iter().map(|i| i.label.clone()).collect();
        assert_eq!(l1, l2);
        assert!(l1.iter().any(|l| &**l == "boundscheck"));
    }

    #[test]
    fn snapshot_preserves_operand_edges() {
        let p = parse_program("function f(a) { return a + a; }").unwrap();
        let m = compile_program(&p).unwrap();
        let s = build_mir(&m, m.function_id("f").unwrap())
            .unwrap()
            .snapshot();
        let add = s.instrs.iter().find(|i| &*i.label == "add").unwrap();
        assert_eq!(add.operands.len(), 2);
        assert_eq!(add.operands[0], add.operands[1]); // both operands are `a`
    }

    #[test]
    fn empty_snapshot() {
        let s = MirSnapshot::default();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }
}

//! MIR opcodes.
//!
//! Names mirror IonMonkey's MIR where a counterpart exists (`boundscheck`,
//! `initializedlength`, `loadelement`, …) so that printed IR reads like the
//! paper's Listing 1.

use std::fmt;
use std::rc::Rc;

use jitbull_vm::bytecode::{FuncId, IntrinsicMethod, MathFn};

use crate::graph::BlockId;

/// Comparison operators (MIR `compare` variants).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    Eq,
    Ne,
    StrictEq,
    StrictNe,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    /// Short mnemonic used in printed IR and DNA labels.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CmpOp::Eq => "eq",
            CmpOp::Ne => "ne",
            CmpOp::StrictEq => "stricteq",
            CmpOp::StrictNe => "strictne",
            CmpOp::Lt => "lt",
            CmpOp::Le => "le",
            CmpOp::Gt => "gt",
            CmpOp::Ge => "ge",
        }
    }
}

/// A compile-time constant value.
#[derive(Debug, Clone, PartialEq)]
pub enum ConstVal {
    Number(f64),
    Str(Rc<str>),
    Bool(bool),
    Undefined,
    Null,
    /// Reference to a function in the module.
    Func(FuncId),
}

impl ConstVal {
    /// The kind tag used in DNA labels (`constant:number` etc. — the value
    /// itself is deliberately excluded so variants with different literals
    /// still match).
    pub fn kind(&self) -> &'static str {
        match self {
            ConstVal::Number(_) => "number",
            ConstVal::Str(_) => "string",
            ConstVal::Bool(_) => "bool",
            ConstVal::Undefined => "undefined",
            ConstVal::Null => "null",
            ConstVal::Func(_) => "function",
        }
    }
}

/// Runtime type hints used by [`MOpcode::TypeGuard`] / [`MOpcode::Unbox`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TypeHint {
    Number,
    Int32,
    Bool,
    Str,
    Array,
    Object,
}

impl TypeHint {
    /// Lowercase mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            TypeHint::Number => "number",
            TypeHint::Int32 => "int32",
            TypeHint::Bool => "bool",
            TypeHint::Str => "string",
            TypeHint::Array => "array",
            TypeHint::Object => "object",
        }
    }
}

/// A MIR opcode. Operand counts/roles are documented per variant; operands
/// themselves live on [`crate::instr::Instruction`].
#[derive(Debug, Clone, PartialEq)]
pub enum MOpcode {
    /// Formal parameter `i`. No operands.
    Parameter(u8),
    /// The `this` receiver. No operands.
    This,
    /// A literal. No operands.
    Constant(ConstVal),
    /// SSA phi; operand `j` flows from predecessor `phi_preds[j]` of the
    /// containing block.
    Phi,

    // --- control flow (block terminators) ---
    /// Unconditional edge. No value operands.
    Goto(BlockId),
    /// Conditional edge: operand 0 is the condition.
    Test {
        /// Successor when the condition is truthy.
        then_block: BlockId,
        /// Successor when the condition is falsy.
        else_block: BlockId,
    },
    /// Function return: operand 0 is the value.
    Return,

    // --- arithmetic / logic (operands: lhs, rhs unless noted) ---
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Compare(CmpOp),
    BitAnd,
    BitOr,
    BitXor,
    Lsh,
    Rsh,
    Ursh,
    /// Bitwise not; 1 operand.
    BitNot,
    /// Arithmetic negation; 1 operand.
    Neg,
    /// Logical not; 1 operand.
    Not,
    /// Numeric coercion (`+x`); 1 operand.
    ToNumber,
    /// `typeof`; 1 operand.
    TypeOf,

    // --- calls (operands: callee, then args; CallMethod: base, callee, args) ---
    Call(u8),
    CallMethod(u8),
    New(u8),

    // --- allocation ---
    /// Operands: the `n` initial elements.
    NewArray(u16),
    /// Operand 0: requested length.
    NewArrayN,
    /// No operands.
    NewObject,

    // --- guards ---
    /// Operands: (index, length). Yields the index; optimized element
    /// accesses whose index flows through a live `BoundsCheck` take the
    /// safe path on failure. **Removing this instruction incorrectly is
    /// exactly the CVE-2019-17026 bug class.**
    BoundsCheck,
    /// Type guard inserted by the type-specialization pass. Operand 0:
    /// guarded value; yields it.
    TypeGuard(TypeHint),
    /// Unbox-with-check (IonMonkey `unbox`). Operand 0: boxed value.
    Unbox(TypeHint),

    // --- memory ---
    /// Operand 0: array. Yields the initialized length (used by element
    /// access guards, as in the paper's Listing 1).
    InitializedLength,
    /// Operand 0: array/string. Yields `.length`.
    ArrayLength,
    /// Operands: (array, new length).
    SetArrayLength,
    /// Operands: (base, index). Raw element read when guarded-ok.
    LoadElement,
    /// Operands: (base, index, value).
    StoreElement,
    /// Operand 0: base.
    LoadProperty(Rc<str>),
    /// Operands: (base, value).
    StoreProperty(Rc<str>),
    /// No operands.
    LoadGlobal(u16),
    /// Operand 0: value.
    StoreGlobal(u16),

    // --- intrinsics ---
    /// Operand 0: value to print.
    Print,
    /// Operands: the intrinsic's arguments.
    MathFunction(MathFn),
    /// Operands: receiver, then args.
    Intrinsic(IntrinsicMethod, u8),
    /// Operand 0: char code.
    FromCharCode,
}

impl MOpcode {
    /// Whether the instruction is a block terminator.
    pub fn is_terminator(&self) -> bool {
        matches!(
            self,
            MOpcode::Goto(_) | MOpcode::Test { .. } | MOpcode::Return
        )
    }

    /// Whether the instruction has observable side effects (writes, I/O,
    /// calls) and therefore must not be removed or duplicated.
    pub fn is_effectful(&self) -> bool {
        matches!(
            self,
            MOpcode::Call(_)
                | MOpcode::CallMethod(_)
                | MOpcode::New(_)
                | MOpcode::StoreElement
                | MOpcode::StoreProperty(_)
                | MOpcode::StoreGlobal(_)
                | MOpcode::SetArrayLength
                | MOpcode::Print
                | MOpcode::Intrinsic(_, _)
                | MOpcode::MathFunction(MathFn::Random)
        )
    }

    /// Whether the instruction is a guard: value-transparent, but its
    /// execution is what keeps a subsequent raw access safe. Guards may
    /// only be removed when *provably* redundant — the injected
    /// vulnerability models break exactly this rule.
    pub fn is_guard(&self) -> bool {
        matches!(
            self,
            MOpcode::BoundsCheck | MOpcode::TypeGuard(_) | MOpcode::Unbox(_)
        )
    }

    /// Whether the instruction reads mutable memory (so it may not be
    /// hoisted/merged across writes without alias reasoning).
    pub fn reads_memory(&self) -> bool {
        matches!(
            self,
            MOpcode::LoadElement
                | MOpcode::LoadProperty(_)
                | MOpcode::LoadGlobal(_)
                | MOpcode::InitializedLength
                | MOpcode::ArrayLength
        )
    }

    /// Whether the instruction is a candidate for value numbering: pure,
    /// deterministic, and congruent when opcodes+operands match.
    pub fn is_movable(&self) -> bool {
        matches!(
            self,
            MOpcode::Constant(_)
                | MOpcode::Parameter(_)
                | MOpcode::This
                | MOpcode::Add
                | MOpcode::Sub
                | MOpcode::Mul
                | MOpcode::Div
                | MOpcode::Mod
                | MOpcode::Compare(_)
                | MOpcode::BitAnd
                | MOpcode::BitOr
                | MOpcode::BitXor
                | MOpcode::Lsh
                | MOpcode::Rsh
                | MOpcode::Ursh
                | MOpcode::BitNot
                | MOpcode::Neg
                | MOpcode::Not
                | MOpcode::ToNumber
                | MOpcode::TypeOf
                | MOpcode::FromCharCode
        )
    }

    /// The lowercase mnemonic, matching printed IR (and, where one exists,
    /// IonMonkey's own spelling).
    pub fn mnemonic(&self) -> String {
        match self {
            MOpcode::Parameter(i) => format!("parameter{i}"),
            MOpcode::This => "this".into(),
            MOpcode::Constant(c) => format!("constant:{}", c.kind()),
            MOpcode::Phi => "phi".into(),
            MOpcode::Goto(_) => "goto".into(),
            MOpcode::Test { .. } => "test".into(),
            MOpcode::Return => "return".into(),
            MOpcode::Add => "add".into(),
            MOpcode::Sub => "sub".into(),
            MOpcode::Mul => "mul".into(),
            MOpcode::Div => "div".into(),
            MOpcode::Mod => "mod".into(),
            MOpcode::Compare(op) => format!("compare:{}", op.mnemonic()),
            MOpcode::BitAnd => "bitand".into(),
            MOpcode::BitOr => "bitor".into(),
            MOpcode::BitXor => "bitxor".into(),
            MOpcode::Lsh => "lsh".into(),
            MOpcode::Rsh => "rsh".into(),
            MOpcode::Ursh => "ursh".into(),
            MOpcode::BitNot => "bitnot".into(),
            MOpcode::Neg => "neg".into(),
            MOpcode::Not => "not".into(),
            MOpcode::ToNumber => "tonumber".into(),
            MOpcode::TypeOf => "typeof".into(),
            MOpcode::Call(_) => "call".into(),
            MOpcode::CallMethod(_) => "callmethod".into(),
            MOpcode::New(_) => "newcall".into(),
            MOpcode::NewArray(_) => "newarray".into(),
            MOpcode::NewArrayN => "newarrayn".into(),
            MOpcode::NewObject => "newobject".into(),
            MOpcode::BoundsCheck => "boundscheck".into(),
            MOpcode::TypeGuard(h) => format!("typeguard:{}", h.mnemonic()),
            MOpcode::Unbox(h) => format!("unbox:{}", h.mnemonic()),
            MOpcode::InitializedLength => "initializedlength".into(),
            MOpcode::ArrayLength => "arraylength".into(),
            MOpcode::SetArrayLength => "setarraylength".into(),
            MOpcode::LoadElement => "loadelement".into(),
            MOpcode::StoreElement => "storeelement".into(),
            MOpcode::LoadProperty(_) => "loadproperty".into(),
            MOpcode::StoreProperty(_) => "storeproperty".into(),
            MOpcode::LoadGlobal(_) => "loadglobal".into(),
            MOpcode::StoreGlobal(_) => "storeglobal".into(),
            MOpcode::Print => "print".into(),
            MOpcode::MathFunction(mf) => format!("math:{mf:?}").to_lowercase(),
            MOpcode::Intrinsic(m, _) => format!("intrinsic:{m:?}").to_lowercase(),
            MOpcode::FromCharCode => "fromcharcode".into(),
        }
    }
}

impl fmt::Display for MOpcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_is_consistent() {
        assert!(MOpcode::StoreElement.is_effectful());
        assert!(!MOpcode::LoadElement.is_effectful());
        assert!(MOpcode::LoadElement.reads_memory());
        assert!(MOpcode::BoundsCheck.is_guard());
        assert!(!MOpcode::BoundsCheck.is_effectful());
        assert!(MOpcode::Add.is_movable());
        assert!(!MOpcode::Call(0).is_movable());
        assert!(MOpcode::Goto(BlockId(0)).is_terminator());
        assert!(!MOpcode::Add.is_terminator());
        // Math.random is effectful (consumes RNG state), other math is not.
        assert!(MOpcode::MathFunction(MathFn::Random).is_effectful());
        assert!(!MOpcode::MathFunction(MathFn::Sqrt).is_effectful());
    }

    #[test]
    fn mnemonics() {
        assert_eq!(MOpcode::BoundsCheck.mnemonic(), "boundscheck");
        assert_eq!(
            MOpcode::Constant(ConstVal::Number(1.0)).mnemonic(),
            "constant:number"
        );
        assert_eq!(MOpcode::Compare(CmpOp::Lt).mnemonic(), "compare:lt");
        assert_eq!(MOpcode::Unbox(TypeHint::Array).mnemonic(), "unbox:array");
        assert_eq!(MOpcode::MathFunction(MathFn::Sqrt).mnemonic(), "math:sqrt");
    }
}

//! The MIR control-flow graph: blocks of instructions.

use std::fmt;

use jitbull_vm::bytecode::FuncId;

use crate::instr::{InstrId, Instruction};
use crate::opcode::MOpcode;

/// A basic block id (index into [`MirFunction::blocks`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "block{}", self.0)
    }
}

/// A basic block: leading phis, then straight-line instructions, ending in
/// a terminator.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Block {
    /// Phi instructions; operand `j` of each phi flows in from
    /// `phi_preds[j]`.
    pub phis: Vec<Instruction>,
    /// Predecessor order for phi operands.
    pub phi_preds: Vec<BlockId>,
    /// Non-phi instructions, last one a terminator.
    pub instrs: Vec<Instruction>,
}

impl Block {
    /// The block's terminator, if the block is well-formed.
    pub fn terminator(&self) -> Option<&Instruction> {
        self.instrs.last().filter(|i| i.op.is_terminator())
    }

    /// Successor blocks, from the terminator.
    pub fn successors(&self) -> Vec<BlockId> {
        match self.terminator().map(|t| &t.op) {
            Some(MOpcode::Goto(b)) => vec![*b],
            Some(MOpcode::Test {
                then_block,
                else_block,
            }) => vec![*then_block, *else_block],
            _ => Vec::new(),
        }
    }

    /// Iterates phis then body instructions.
    pub fn iter_all(&self) -> impl Iterator<Item = &Instruction> {
        self.phis.iter().chain(self.instrs.iter())
    }
}

/// A function's MIR: the unit the optimization pipeline transforms and the
/// Δ extractor snapshots.
#[derive(Debug, Clone, PartialEq)]
pub struct MirFunction {
    /// Source-level function name (diagnostics only).
    pub name: String,
    /// The VM function this MIR was built from.
    pub func: FuncId,
    /// Basic blocks; entry is block 0.
    pub blocks: Vec<Block>,
    next_id: u32,
}

impl MirFunction {
    /// Creates an empty function shell.
    pub fn new(name: impl Into<String>, func: FuncId) -> Self {
        MirFunction {
            name: name.into(),
            func,
            blocks: Vec::new(),
            next_id: 0,
        }
    }

    /// Number of blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Total instruction count (phis included).
    pub fn instr_count(&self) -> usize {
        self.blocks
            .iter()
            .map(|b| b.phis.len() + b.instrs.len())
            .sum()
    }

    /// Allocates a fresh instruction id.
    pub fn fresh_id(&mut self) -> InstrId {
        let id = InstrId(self.next_id);
        self.next_id += 1;
        id
    }

    /// One past the largest id ever allocated (dense after renumbering).
    pub fn id_bound(&self) -> u32 {
        self.next_id
    }

    /// Overrides the id counter (used by the renumbering pass).
    pub fn set_id_bound(&mut self, bound: u32) {
        self.next_id = bound;
    }

    /// Immutable block access.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.0 as usize]
    }

    /// Mutable block access.
    pub fn block_mut(&mut self, id: BlockId) -> &mut Block {
        &mut self.blocks[id.0 as usize]
    }

    /// All block ids in index order.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> {
        (0..self.blocks.len() as u32).map(BlockId)
    }

    /// Predecessor lists for every block.
    pub fn predecessors(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for (i, b) in self.blocks.iter().enumerate() {
            for s in b.successors() {
                preds[s.0 as usize].push(BlockId(i as u32));
            }
        }
        preds
    }

    /// Looks up an instruction by id (linear scan; fine for pass-internal
    /// assertions and tests).
    pub fn find_instr(&self, id: InstrId) -> Option<&Instruction> {
        self.blocks
            .iter()
            .flat_map(|b| b.iter_all())
            .find(|i| i.id == id)
    }

    /// Structural well-formedness check used by tests and debug assertions
    /// between passes: terminators present, operand references defined,
    /// phi arity matches `phi_preds`.
    pub fn validate(&self) -> Result<(), String> {
        use std::collections::HashSet;
        let mut defined = HashSet::new();
        for b in &self.blocks {
            for i in b.iter_all() {
                if !defined.insert(i.id) {
                    return Err(format!("duplicate instruction id {}", i.id));
                }
            }
        }
        for (bi, b) in self.blocks.iter().enumerate() {
            match b.terminator() {
                Some(_) => {}
                None => return Err(format!("block{bi} has no terminator")),
            }
            for (pos, i) in b.instrs.iter().enumerate() {
                if i.op.is_terminator() && pos + 1 != b.instrs.len() {
                    return Err(format!("block{bi} has a terminator mid-block"));
                }
            }
            for phi in &b.phis {
                if !matches!(phi.op, MOpcode::Phi) {
                    return Err(format!("block{bi} has a non-phi in its phi list"));
                }
                if phi.operands.len() != b.phi_preds.len() {
                    return Err(format!(
                        "block{bi} phi {} arity {} != preds {}",
                        phi.id,
                        phi.operands.len(),
                        b.phi_preds.len()
                    ));
                }
            }
            for i in b.iter_all() {
                for op in &i.operands {
                    if !defined.contains(op) {
                        return Err(format!(
                            "instruction {} references undefined operand {}",
                            i.id, op
                        ));
                    }
                }
            }
            for s in b.successors() {
                if s.0 as usize >= self.blocks.len() {
                    return Err(format!("block{bi} jumps to missing {s}"));
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for MirFunction {
    /// Prints in the paper's Listing-1 style: numbered instructions grouped
    /// by block.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "mir function `{}` ({})", self.name, self.func)?;
        for (i, b) in self.blocks.iter().enumerate() {
            writeln!(f, "block{i}:")?;
            for phi in &b.phis {
                writeln!(f, "  {phi}")?;
            }
            for instr in &b.instrs {
                writeln!(f, "  {instr}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opcode::{ConstVal, MOpcode};

    fn simple_fn() -> MirFunction {
        let mut f = MirFunction::new("t", FuncId(0));
        let c = f.fresh_id();
        let r = f.fresh_id();
        f.blocks.push(Block {
            phis: vec![],
            phi_preds: vec![],
            instrs: vec![
                Instruction::new(c, MOpcode::Constant(ConstVal::Number(1.0)), vec![]),
                Instruction::new(r, MOpcode::Return, vec![c]),
            ],
        });
        f
    }

    #[test]
    fn validate_accepts_well_formed() {
        assert_eq!(simple_fn().validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_missing_terminator() {
        let mut f = simple_fn();
        f.blocks[0].instrs.pop();
        assert!(f.validate().is_err());
    }

    #[test]
    fn validate_rejects_undefined_operand() {
        let mut f = simple_fn();
        f.blocks[0].instrs[1].operands[0] = InstrId(99);
        assert!(f.validate().is_err());
    }

    #[test]
    fn validate_rejects_duplicate_ids() {
        let mut f = simple_fn();
        let dup = f.blocks[0].instrs[0].clone();
        f.blocks[0].instrs.insert(0, dup);
        assert!(f.validate().is_err());
    }

    #[test]
    fn successors_from_terminators() {
        let f = simple_fn();
        assert!(f.blocks[0].successors().is_empty());
        let mut g = MirFunction::new("g", FuncId(0));
        let id = g.fresh_id();
        g.blocks.push(Block {
            phis: vec![],
            phi_preds: vec![],
            instrs: vec![Instruction::new(id, MOpcode::Goto(BlockId(1)), vec![])],
        });
        let c = g.fresh_id();
        let r = g.fresh_id();
        g.blocks.push(Block {
            phis: vec![],
            phi_preds: vec![],
            instrs: vec![
                Instruction::new(c, MOpcode::Constant(ConstVal::Undefined), vec![]),
                Instruction::new(r, MOpcode::Return, vec![c]),
            ],
        });
        assert_eq!(g.blocks[0].successors(), vec![BlockId(1)]);
        assert_eq!(g.predecessors()[1], vec![BlockId(0)]);
        assert_eq!(g.validate(), Ok(()));
    }
}

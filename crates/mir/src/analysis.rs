//! CFG analyses used by the optimization passes: reverse postorder,
//! dominator tree, and natural-loop detection.

use std::collections::HashSet;

use crate::graph::{BlockId, MirFunction};

/// Blocks in reverse postorder starting from the entry (unreachable blocks
/// excluded).
pub fn reverse_postorder(f: &MirFunction) -> Vec<BlockId> {
    let n = f.block_count();
    let mut visited = vec![false; n];
    let mut post = Vec::with_capacity(n);
    // Iterative DFS with an explicit phase marker.
    let mut stack = vec![(BlockId(0), false)];
    while let Some((b, processed)) = stack.pop() {
        if processed {
            post.push(b);
            continue;
        }
        if visited[b.0 as usize] {
            continue;
        }
        visited[b.0 as usize] = true;
        stack.push((b, true));
        for s in f.block(b).successors() {
            if !visited[s.0 as usize] {
                stack.push((s, false));
            }
        }
    }
    post.reverse();
    post
}

/// Immediate dominators computed with the classic iterative algorithm
/// (Cooper, Harvey, Kennedy). `idom[entry] == entry`; unreachable blocks
/// get `None`.
pub fn immediate_dominators(f: &MirFunction) -> Vec<Option<BlockId>> {
    let n = f.block_count();
    let rpo = reverse_postorder(f);
    let mut rpo_index = vec![usize::MAX; n];
    for (i, b) in rpo.iter().enumerate() {
        rpo_index[b.0 as usize] = i;
    }
    let preds = f.predecessors();
    let mut idom: Vec<Option<BlockId>> = vec![None; n];
    idom[0] = Some(BlockId(0));
    let mut changed = true;
    while changed {
        changed = false;
        for &b in rpo.iter().skip(1) {
            let bi = b.0 as usize;
            let mut new_idom: Option<BlockId> = None;
            for &p in &preds[bi] {
                if idom[p.0 as usize].is_none() {
                    continue;
                }
                new_idom = Some(match new_idom {
                    None => p,
                    Some(cur) => intersect(p, cur, &idom, &rpo_index),
                });
            }
            if let Some(ni) = new_idom {
                if idom[bi] != Some(ni) {
                    idom[bi] = Some(ni);
                    changed = true;
                }
            }
        }
    }
    idom
}

fn intersect(
    mut a: BlockId,
    mut b: BlockId,
    idom: &[Option<BlockId>],
    rpo_index: &[usize],
) -> BlockId {
    while a != b {
        while rpo_index[a.0 as usize] > rpo_index[b.0 as usize] {
            a = idom[a.0 as usize].expect("processed block has idom");
        }
        while rpo_index[b.0 as usize] > rpo_index[a.0 as usize] {
            b = idom[b.0 as usize].expect("processed block has idom");
        }
    }
    a
}

/// Whether `a` dominates `b` (reflexive).
pub fn dominates(a: BlockId, b: BlockId, idom: &[Option<BlockId>]) -> bool {
    let mut cur = b;
    loop {
        if cur == a {
            return true;
        }
        match idom[cur.0 as usize] {
            Some(d) if d != cur => cur = d,
            _ => return false,
        }
    }
}

/// A natural loop: its header plus the set of member blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NaturalLoop {
    /// The loop header (dominates every member).
    pub header: BlockId,
    /// All blocks in the loop, header included.
    pub members: HashSet<BlockId>,
}

impl NaturalLoop {
    /// Whether the block belongs to the loop.
    pub fn contains(&self, b: BlockId) -> bool {
        self.members.contains(&b)
    }
}

/// Finds all natural loops: for every back edge `t → h` where `h`
/// dominates `t`, collect the blocks that reach `t` without passing
/// through `h`. Loops sharing a header are merged.
pub fn natural_loops(f: &MirFunction) -> Vec<NaturalLoop> {
    let idom = immediate_dominators(f);
    let preds = f.predecessors();
    let mut loops: Vec<NaturalLoop> = Vec::new();
    for b in f.block_ids() {
        if idom[b.0 as usize].is_none() {
            continue;
        }
        for s in f.block(b).successors() {
            if dominates(s, b, &idom) {
                // Back edge b -> s; walk predecessors from b up to s.
                let mut members = HashSet::new();
                members.insert(s);
                let mut work = vec![b];
                while let Some(x) = work.pop() {
                    if members.insert(x) {
                        for &p in &preds[x.0 as usize] {
                            work.push(p);
                        }
                    }
                }
                if let Some(existing) = loops.iter_mut().find(|l| l.header == s) {
                    existing.members.extend(members);
                } else {
                    loops.push(NaturalLoop { header: s, members });
                }
            }
        }
    }
    loops
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_mir;
    use jitbull_frontend::parse_program;
    use jitbull_vm::compile_program;

    fn mir_of(src: &str, name: &str) -> MirFunction {
        let p = parse_program(src).unwrap();
        let m = compile_program(&p).unwrap();
        build_mir(&m, m.function_id(name).unwrap()).unwrap()
    }

    #[test]
    fn rpo_starts_at_entry_and_covers_all_reachable() {
        let f = mir_of("function f(c) { if (c) { return 1; } return 2; }", "f");
        let rpo = reverse_postorder(&f);
        assert_eq!(rpo[0], BlockId(0));
        assert_eq!(rpo.len(), f.block_count());
    }

    #[test]
    fn entry_dominates_everything() {
        let f = mir_of(
            "function f(n) { var t = 0; for (var i = 0; i < n; i++) { t += i; } return t; }",
            "f",
        );
        let idom = immediate_dominators(&f);
        for b in f.block_ids() {
            assert!(dominates(BlockId(0), b, &idom), "entry must dominate {b}");
        }
    }

    #[test]
    fn loop_detection_finds_for_loop() {
        let f = mir_of(
            "function f(n) { var t = 0; for (var i = 0; i < n; i++) { t += i; } return t; }",
            "f",
        );
        let loops = natural_loops(&f);
        assert_eq!(loops.len(), 1);
        let l = &loops[0];
        assert!(l.members.len() >= 2);
        // Header must have phis (it is a join of entry and back edge).
        assert!(!f.block(l.header).phis.is_empty());
    }

    #[test]
    fn nested_loops_detected_separately() {
        let f = mir_of(
            "function f(n) { var t = 0; for (var i = 0; i < n; i++) { for (var j = 0; j < n; j++) { t += j; } } return t; }",
            "f",
        );
        let loops = natural_loops(&f);
        assert_eq!(loops.len(), 2);
        // One loop strictly contains the other.
        let (a, b) = (&loops[0], &loops[1]);
        let (outer, inner) = if a.members.len() > b.members.len() {
            (a, b)
        } else {
            (b, a)
        };
        assert!(inner.members.iter().all(|m| outer.members.contains(m)));
    }

    #[test]
    fn straight_line_has_no_loops() {
        let f = mir_of("function f(a) { return a + 1; }", "f");
        assert!(natural_loops(&f).is_empty());
    }

    #[test]
    fn idom_of_join_is_branch_block() {
        let f = mir_of(
            "function f(c) { var x; if (c) { x = 1; } else { x = 2; } return x; }",
            "f",
        );
        let idom = immediate_dominators(&f);
        // Find the join (2 preds) and the branch (Test terminator).
        let preds = f.predecessors();
        let join = f
            .block_ids()
            .find(|b| preds[b.0 as usize].len() == 2)
            .unwrap();
        let branch = f
            .block_ids()
            .find(|b| f.block(*b).successors().len() == 2)
            .unwrap();
        assert_eq!(idom[join.0 as usize], Some(branch));
    }
}

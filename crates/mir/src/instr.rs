//! MIR instructions.

use std::fmt;

use crate::opcode::MOpcode;

/// An SSA value / instruction number. Unique within a [`crate::graph::MirFunction`]
/// (the renumbering pass keeps ids dense).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstrId(pub u32);

impl fmt::Display for InstrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// One MIR instruction: an opcode plus operand references (other
/// instructions' ids), in SSA form.
#[derive(Debug, Clone, PartialEq)]
pub struct Instruction {
    /// This instruction's SSA id.
    pub id: InstrId,
    /// The operation.
    pub op: MOpcode,
    /// Operand instruction ids (roles documented on [`MOpcode`]).
    pub operands: Vec<InstrId>,
}

impl Instruction {
    /// Creates an instruction.
    pub fn new(id: InstrId, op: MOpcode, operands: Vec<InstrId>) -> Self {
        Instruction { id, op, operands }
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.id, self.op.mnemonic())?;
        for operand in &self.operands {
            write!(f, " {operand}")?;
        }
        match &self.op {
            MOpcode::Goto(b) => write!(f, " -> block{}", b.0)?,
            MOpcode::Test {
                then_block,
                else_block,
            } => write!(f, " ? block{} : block{}", then_block.0, else_block.0)?,
            _ => {}
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::BlockId;
    use crate::opcode::{ConstVal, MOpcode};

    #[test]
    fn display_matches_listing_shape() {
        let i = Instruction::new(
            InstrId(8),
            MOpcode::BoundsCheck,
            vec![InstrId(2), InstrId(7)],
        );
        assert_eq!(i.to_string(), "8 boundscheck 2 7");
        let c = Instruction::new(InstrId(1), MOpcode::Constant(ConstVal::Null), vec![]);
        assert_eq!(c.to_string(), "1 constant:null");
        let g = Instruction::new(InstrId(9), MOpcode::Goto(BlockId(2)), vec![]);
        assert_eq!(g.to_string(), "9 goto -> block2");
    }
}

//! Bytecode → MIR construction (the paper's step ③).
//!
//! The builder abstractly interprets the stack bytecode: the operand stack
//! and local slots are tracked as vectors of SSA ids, blocks are cut at
//! jump targets, and phi instructions are created at every join and loop
//! header for each live local and stack slot.
//!
//! Element accesses are emitted in the guarded form the paper's Listing 1
//! shows for IonMonkey:
//!
//! ```text
//!   n   unbox:array <array>
//!   n+1 initializedlength <n>
//!   n+2 boundscheck <index> <n+1>
//!   n+3 loadelement <n> <n+2>
//! ```
//!
//! so that a pass which (incorrectly) removes the `boundscheck` leaves a
//! raw, exploitable `loadelement`/`storeelement` behind.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::error::Error;
use std::fmt;

use jitbull_frontend::ast::{BinOp, UnOp};
use jitbull_vm::bytecode::{FuncId, Module, Op};

use crate::graph::{Block, BlockId, MirFunction};
use crate::instr::{InstrId, Instruction};
use crate::opcode::{CmpOp, ConstVal, MOpcode, TypeHint};

/// An error during MIR construction. These indicate internal inconsistencies
/// (unbalanced stacks, malformed bytecode) and should not occur for
/// compiler-produced modules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MirBuildError(String);

impl fmt::Display for MirBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mir build error: {}", self.0)
    }
}

impl Error for MirBuildError {}

/// Builds the MIR for one function of a module.
///
/// # Errors
///
/// Returns [`MirBuildError`] on malformed bytecode (unbalanced stacks at
/// joins, jumps out of range).
pub fn build_mir(module: &Module, func: FuncId) -> Result<MirFunction, MirBuildError> {
    Builder::new(module, func)?.run()
}

#[derive(Clone, Debug, PartialEq)]
struct AbstractState {
    locals: Vec<InstrId>,
    stack: Vec<InstrId>,
}

struct Builder<'m> {
    module: &'m Module,
    func: FuncId,
    /// Sorted bytecode offsets at which blocks begin (reachable only).
    starts: Vec<usize>,
    /// Bytecode offset → MIR block id.
    block_of: HashMap<usize, BlockId>,
    /// Per block: does it need phis (join point or loop header)?
    needs_phis: Vec<bool>,
    mir: MirFunction,
    /// Entry state per block, set when the first edge arrives.
    entry_state: Vec<Option<AbstractState>>,
}

impl<'m> Builder<'m> {
    fn new(module: &'m Module, func: FuncId) -> Result<Self, MirBuildError> {
        let f = module.function(func);
        let code = &f.code;
        // 1. Block boundaries.
        let mut starts: BTreeSet<usize> = BTreeSet::new();
        starts.insert(0);
        for (pc, op) in code.iter().enumerate() {
            match op {
                Op::Jump(t) | Op::JumpIfFalse(t) | Op::JumpIfTrue(t) => {
                    let t = *t as usize;
                    if t >= code.len() {
                        return Err(MirBuildError(format!("jump target {t} out of range")));
                    }
                    starts.insert(t);
                    if pc + 1 < code.len() {
                        starts.insert(pc + 1);
                    }
                }
                Op::Return if pc + 1 < code.len() => {
                    starts.insert(pc + 1);
                }
                _ => {}
            }
        }
        let all_starts: Vec<usize> = starts.iter().copied().collect();
        // 2. Bytecode-level successor map and reachability.
        let range_end = |i: usize| all_starts.get(i + 1).copied().unwrap_or(code.len());
        let succs_of = |i: usize| -> Vec<usize> {
            let end = range_end(i);
            let last = &code[end - 1];
            match last {
                Op::Jump(t) => vec![*t as usize],
                Op::JumpIfFalse(t) | Op::JumpIfTrue(t) => {
                    let mut v = vec![*t as usize];
                    if end < code.len() {
                        v.push(end);
                    }
                    v
                }
                Op::Return => vec![],
                _ => {
                    if end < code.len() {
                        vec![end]
                    } else {
                        vec![]
                    }
                }
            }
        };
        let index_of: BTreeMap<usize, usize> = all_starts
            .iter()
            .enumerate()
            .map(|(i, &s)| (s, i))
            .collect();
        let mut reachable = vec![false; all_starts.len()];
        let mut work = vec![0usize];
        while let Some(i) = work.pop() {
            if reachable[i] {
                continue;
            }
            reachable[i] = true;
            for s in succs_of(i) {
                work.push(index_of[&s]);
            }
        }
        // 3. Keep reachable blocks, in pc order.
        let kept: Vec<usize> = all_starts
            .iter()
            .enumerate()
            .filter(|(i, _)| reachable[*i])
            .map(|(_, &s)| s)
            .collect();
        let block_of: HashMap<usize, BlockId> = kept
            .iter()
            .enumerate()
            .map(|(i, &s)| (s, BlockId(i as u32)))
            .collect();
        // 4. Predecessor counts and back-edge detection (on reachable set).
        let mut pred_count = vec![0usize; kept.len()];
        let mut has_back_edge = vec![false; kept.len()];
        for (i, &start) in kept.iter().enumerate() {
            let orig = index_of[&start];
            for s in succs_of(orig) {
                if let Some(target) = block_of.get(&s) {
                    pred_count[target.0 as usize] += 1;
                    if s <= start {
                        has_back_edge[target.0 as usize] = true;
                    }
                }
            }
            let _ = i;
        }
        let needs_phis: Vec<bool> = (0..kept.len())
            .map(|i| i != 0 && (pred_count[i] > 1 || has_back_edge[i]))
            .collect();
        let mut mir = MirFunction::new(f.name.clone(), func);
        mir.blocks = vec![Block::default(); kept.len()];
        let entry_state = vec![None; kept.len()];
        Ok(Builder {
            module,
            func,
            starts: kept,
            block_of,
            needs_phis,
            mir,
            entry_state,
        })
    }

    fn run(mut self) -> Result<MirFunction, MirBuildError> {
        let f = self.module.function(self.func);
        // Seed the entry block: parameters then an undefined constant for
        // the remaining locals.
        let mut locals = Vec::with_capacity(f.n_locals as usize);
        let mut entry_instrs = Vec::new();
        for i in 0..f.arity {
            let id = self.mir.fresh_id();
            entry_instrs.push(Instruction::new(id, MOpcode::Parameter(i), vec![]));
            locals.push(id);
        }
        if f.n_locals as usize > f.arity as usize {
            let id = self.mir.fresh_id();
            entry_instrs.push(Instruction::new(
                id,
                MOpcode::Constant(ConstVal::Undefined),
                vec![],
            ));
            for _ in f.arity as usize..f.n_locals as usize {
                locals.push(id);
            }
        }
        self.entry_state[0] = Some(AbstractState {
            locals,
            stack: Vec::new(),
        });
        self.mir.blocks[0].instrs = entry_instrs;

        for bi in 0..self.starts.len() {
            self.process_block(bi)?;
        }
        debug_assert_eq!(self.mir.validate(), Ok(()));
        Ok(self.mir)
    }

    fn process_block(&mut self, bi: usize) -> Result<(), MirBuildError> {
        let start = self.starts[bi];
        let end = self
            .starts
            .get(bi + 1)
            .copied()
            .unwrap_or(self.module.function(self.func).code.len());
        let mut state = match &self.entry_state[bi] {
            Some(s) => s.clone(),
            None => {
                return Err(MirBuildError(format!(
                    "block at pc {start} processed before any edge arrived"
                )))
            }
        };
        // Instructions emitted into this block (appended after any seeded
        // parameter instructions in the entry block).
        let mut out: Vec<Instruction> = std::mem::take(&mut self.mir.blocks[bi].instrs);
        let code = self.module.function(self.func).code.clone();
        let mut pc = start;
        let mut terminated = false;
        macro_rules! emit {
            ($op:expr, $operands:expr) => {{
                let id = self.mir.fresh_id();
                out.push(Instruction::new(id, $op, $operands));
                id
            }};
        }
        macro_rules! pop {
            () => {
                state
                    .stack
                    .pop()
                    .ok_or_else(|| MirBuildError(format!("stack underflow at pc {pc}")))?
            };
        }
        while pc < end {
            let op = &code[pc];
            match op {
                Op::ConstNum(n) => {
                    let id = emit!(MOpcode::Constant(ConstVal::Number(*n)), vec![]);
                    state.stack.push(id);
                }
                Op::ConstStr(s) => {
                    let id = emit!(MOpcode::Constant(ConstVal::Str(s.clone())), vec![]);
                    state.stack.push(id);
                }
                Op::ConstBool(b) => {
                    let id = emit!(MOpcode::Constant(ConstVal::Bool(*b)), vec![]);
                    state.stack.push(id);
                }
                Op::ConstUndefined => {
                    let id = emit!(MOpcode::Constant(ConstVal::Undefined), vec![]);
                    state.stack.push(id);
                }
                Op::ConstNull => {
                    let id = emit!(MOpcode::Constant(ConstVal::Null), vec![]);
                    state.stack.push(id);
                }
                Op::LoadFunc(fid) => {
                    let id = emit!(MOpcode::Constant(ConstVal::Func(*fid)), vec![]);
                    state.stack.push(id);
                }
                Op::Pop => {
                    pop!();
                }
                Op::Dup => {
                    let top = *state
                        .stack
                        .last()
                        .ok_or_else(|| MirBuildError(format!("dup underflow at pc {pc}")))?;
                    state.stack.push(top);
                }
                Op::LoadLocal(s) => state.stack.push(state.locals[*s as usize]),
                Op::StoreLocal(s) => {
                    let v = pop!();
                    state.locals[*s as usize] = v;
                }
                Op::LoadGlobal(s) => {
                    let id = emit!(MOpcode::LoadGlobal(*s), vec![]);
                    state.stack.push(id);
                }
                Op::StoreGlobal(s) => {
                    let v = pop!();
                    emit!(MOpcode::StoreGlobal(*s), vec![v]);
                }
                Op::LoadThis => {
                    let id = emit!(MOpcode::This, vec![]);
                    state.stack.push(id);
                }
                Op::Bin(op) => {
                    let b = pop!();
                    let a = pop!();
                    let id = emit!(lower_binop(*op), vec![a, b]);
                    state.stack.push(id);
                }
                Op::Un(op) => {
                    let a = pop!();
                    let id = emit!(lower_unop(*op), vec![a]);
                    state.stack.push(id);
                }
                Op::Call(argc) => {
                    let mut args = split(&mut state.stack, *argc as usize, pc)?;
                    let callee = pop!();
                    let mut operands = vec![callee];
                    operands.append(&mut args);
                    let id = emit!(MOpcode::Call(*argc), operands);
                    state.stack.push(id);
                }
                Op::CallMethod(argc) => {
                    let mut args = split(&mut state.stack, *argc as usize, pc)?;
                    let callee = pop!();
                    let base = pop!();
                    let mut operands = vec![base, callee];
                    operands.append(&mut args);
                    let id = emit!(MOpcode::CallMethod(*argc), operands);
                    state.stack.push(id);
                }
                Op::New(argc) => {
                    let mut args = split(&mut state.stack, *argc as usize, pc)?;
                    let callee = pop!();
                    let mut operands = vec![callee];
                    operands.append(&mut args);
                    let id = emit!(MOpcode::New(*argc), operands);
                    state.stack.push(id);
                }
                Op::NewArray(n) => {
                    let items = split(&mut state.stack, *n as usize, pc)?;
                    let id = emit!(MOpcode::NewArray(*n), items);
                    state.stack.push(id);
                }
                Op::NewArrayN => {
                    let len = pop!();
                    let id = emit!(MOpcode::NewArrayN, vec![len]);
                    state.stack.push(id);
                }
                Op::NewObject => {
                    let id = emit!(MOpcode::NewObject, vec![]);
                    state.stack.push(id);
                }
                Op::GetElem => {
                    let idx = pop!();
                    let base = pop!();
                    let unboxed = emit!(MOpcode::Unbox(TypeHint::Array), vec![base]);
                    let len = emit!(MOpcode::InitializedLength, vec![unboxed]);
                    let ck = emit!(MOpcode::BoundsCheck, vec![idx, len]);
                    let v = emit!(MOpcode::LoadElement, vec![unboxed, ck]);
                    state.stack.push(v);
                }
                Op::SetElem => {
                    let val = pop!();
                    let idx = pop!();
                    let base = pop!();
                    let unboxed = emit!(MOpcode::Unbox(TypeHint::Array), vec![base]);
                    let len = emit!(MOpcode::InitializedLength, vec![unboxed]);
                    let ck = emit!(MOpcode::BoundsCheck, vec![idx, len]);
                    emit!(MOpcode::StoreElement, vec![unboxed, ck, val]);
                    state.stack.push(val);
                }
                Op::GetProp(name) => {
                    let base = pop!();
                    let id = emit!(MOpcode::LoadProperty(name.clone()), vec![base]);
                    state.stack.push(id);
                }
                Op::SetProp(name) => {
                    let val = pop!();
                    let base = pop!();
                    emit!(MOpcode::StoreProperty(name.clone()), vec![base, val]);
                    state.stack.push(val);
                }
                Op::GetMethod(name) => {
                    let base = *state
                        .stack
                        .last()
                        .ok_or_else(|| MirBuildError(format!("method underflow at pc {pc}")))?;
                    let id = emit!(MOpcode::LoadProperty(name.clone()), vec![base]);
                    state.stack.push(id);
                }
                Op::GetLength => {
                    let base = pop!();
                    let id = emit!(MOpcode::ArrayLength, vec![base]);
                    state.stack.push(id);
                }
                Op::SetLength => {
                    let val = pop!();
                    let base = pop!();
                    emit!(MOpcode::SetArrayLength, vec![base, val]);
                    state.stack.push(val);
                }
                Op::Print => {
                    let v = pop!();
                    emit!(MOpcode::Print, vec![v]);
                }
                Op::FromCharCode => {
                    let v = pop!();
                    let id = emit!(MOpcode::FromCharCode, vec![v]);
                    state.stack.push(id);
                }
                Op::Math(mf) => {
                    let args = split(&mut state.stack, mf.arity() as usize, pc)?;
                    let id = emit!(MOpcode::MathFunction(*mf), args);
                    state.stack.push(id);
                }
                Op::Intrinsic(m, argc) => {
                    let mut args = split(&mut state.stack, *argc as usize, pc)?;
                    let recv = pop!();
                    let mut operands = vec![recv];
                    operands.append(&mut args);
                    let id = emit!(MOpcode::Intrinsic(*m, *argc), operands);
                    state.stack.push(id);
                }
                Op::Jump(t) => {
                    let target = self.block_of[&(*t as usize)];
                    emit!(MOpcode::Goto(target), vec![]);
                    self.edge(BlockId(bi as u32), target, &state)?;
                    terminated = true;
                    break;
                }
                Op::JumpIfFalse(t) | Op::JumpIfTrue(t) => {
                    let cond = pop!();
                    let target = self.block_of[&(*t as usize)];
                    let fall = self.block_of[&end];
                    let (then_block, else_block) = if matches!(op, Op::JumpIfFalse(_)) {
                        (fall, target)
                    } else {
                        (target, fall)
                    };
                    emit!(
                        MOpcode::Test {
                            then_block,
                            else_block
                        },
                        vec![cond]
                    );
                    self.edge(BlockId(bi as u32), target, &state)?;
                    self.edge(BlockId(bi as u32), fall, &state)?;
                    terminated = true;
                    break;
                }
                Op::Return => {
                    let v = pop!();
                    emit!(MOpcode::Return, vec![v]);
                    terminated = true;
                    break;
                }
            }
            pc += 1;
        }
        if !terminated {
            // Fell off the end of the block: implicit goto to the next one.
            let fall = self.block_of[&end];
            let id = self.mir.fresh_id();
            out.push(Instruction::new(id, MOpcode::Goto(fall), vec![]));
            self.mir.blocks[bi].instrs = out;
            self.edge(BlockId(bi as u32), fall, &state)?;
        } else {
            self.mir.blocks[bi].instrs = out;
        }
        Ok(())
    }

    /// Records a CFG edge, creating/extending phis or propagating state.
    fn edge(
        &mut self,
        from: BlockId,
        to: BlockId,
        exit: &AbstractState,
    ) -> Result<(), MirBuildError> {
        let ti = to.0 as usize;
        if self.needs_phis[ti] {
            if self.entry_state[ti].is_none() {
                // First arrival: create one phi per local and stack slot.
                let mut locals = Vec::with_capacity(exit.locals.len());
                let mut stack = Vec::with_capacity(exit.stack.len());
                for _ in 0..exit.locals.len() {
                    let id = self.mir.fresh_id();
                    self.mir.blocks[ti]
                        .phis
                        .push(Instruction::new(id, MOpcode::Phi, vec![]));
                    locals.push(id);
                }
                for _ in 0..exit.stack.len() {
                    let id = self.mir.fresh_id();
                    self.mir.blocks[ti]
                        .phis
                        .push(Instruction::new(id, MOpcode::Phi, vec![]));
                    stack.push(id);
                }
                self.entry_state[ti] = Some(AbstractState { locals, stack });
            }
            let entry = self.entry_state[ti].clone().expect("phi entry just set");
            if entry.locals.len() != exit.locals.len() || entry.stack.len() != exit.stack.len() {
                return Err(MirBuildError(format!(
                    "unbalanced join into {to}: {}+{} vs {}+{}",
                    entry.locals.len(),
                    entry.stack.len(),
                    exit.locals.len(),
                    exit.stack.len()
                )));
            }
            let block = &mut self.mir.blocks[ti];
            block.phi_preds.push(from);
            for (slot, phi) in block.phis.iter_mut().enumerate() {
                let incoming = if slot < exit.locals.len() {
                    exit.locals[slot]
                } else {
                    exit.stack[slot - exit.locals.len()]
                };
                phi.operands.push(incoming);
            }
            Ok(())
        } else {
            match &self.entry_state[ti] {
                None => {
                    self.entry_state[ti] = Some(exit.clone());
                    Ok(())
                }
                Some(existing) if existing == exit => Ok(()),
                Some(_) => Err(MirBuildError(format!(
                    "block {to} received conflicting states but was not a join"
                ))),
            }
        }
    }
}

fn split(stack: &mut Vec<InstrId>, n: usize, pc: usize) -> Result<Vec<InstrId>, MirBuildError> {
    if stack.len() < n {
        return Err(MirBuildError(format!("argument underflow at pc {pc}")));
    }
    Ok(stack.split_off(stack.len() - n))
}

fn lower_binop(op: BinOp) -> MOpcode {
    match op {
        BinOp::Add => MOpcode::Add,
        BinOp::Sub => MOpcode::Sub,
        BinOp::Mul => MOpcode::Mul,
        BinOp::Div => MOpcode::Div,
        BinOp::Mod => MOpcode::Mod,
        BinOp::Eq => MOpcode::Compare(CmpOp::Eq),
        BinOp::Ne => MOpcode::Compare(CmpOp::Ne),
        BinOp::StrictEq => MOpcode::Compare(CmpOp::StrictEq),
        BinOp::StrictNe => MOpcode::Compare(CmpOp::StrictNe),
        BinOp::Lt => MOpcode::Compare(CmpOp::Lt),
        BinOp::Le => MOpcode::Compare(CmpOp::Le),
        BinOp::Gt => MOpcode::Compare(CmpOp::Gt),
        BinOp::Ge => MOpcode::Compare(CmpOp::Ge),
        BinOp::BitAnd => MOpcode::BitAnd,
        BinOp::BitOr => MOpcode::BitOr,
        BinOp::BitXor => MOpcode::BitXor,
        BinOp::Shl => MOpcode::Lsh,
        BinOp::Shr => MOpcode::Rsh,
        BinOp::Ushr => MOpcode::Ursh,
    }
}

fn lower_unop(op: UnOp) -> MOpcode {
    match op {
        UnOp::Neg => MOpcode::Neg,
        UnOp::Not => MOpcode::Not,
        UnOp::BitNot => MOpcode::BitNot,
        UnOp::Plus => MOpcode::ToNumber,
        UnOp::Typeof => MOpcode::TypeOf,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jitbull_frontend::parse_program;
    use jitbull_vm::compile_program;

    fn mir_of(src: &str, name: &str) -> MirFunction {
        let p = parse_program(src).unwrap();
        let m = compile_program(&p).unwrap();
        let fid = m.function_id(name).unwrap();
        build_mir(&m, fid).unwrap()
    }

    #[test]
    fn straight_line_function() {
        let mir = mir_of("function f(a, b) { return a + b; }", "f");
        assert_eq!(mir.block_count(), 1);
        assert_eq!(mir.validate(), Ok(()));
        let text = mir.to_string();
        assert!(text.contains("parameter0"), "{text}");
        assert!(text.contains("add"), "{text}");
        assert!(text.contains("return"), "{text}");
    }

    #[test]
    fn element_access_emits_guarded_pattern() {
        let mir = mir_of("function f(a, i) { return a[i]; }", "f");
        let text = mir.to_string();
        let pos_ub = text.find("unbox:array").unwrap();
        let pos_len = text.find("initializedlength").unwrap();
        let pos_ck = text.find("boundscheck").unwrap();
        let pos_ld = text.find("loadelement").unwrap();
        assert!(
            pos_ub < pos_len && pos_len < pos_ck && pos_ck < pos_ld,
            "{text}"
        );
    }

    #[test]
    fn loop_creates_phis() {
        let mir = mir_of(
            "function f(n) { var t = 0; for (var i = 0; i < n; i++) { t = t + i; } return t; }",
            "f",
        );
        assert_eq!(mir.validate(), Ok(()));
        let phi_count: usize = mir.blocks.iter().map(|b| b.phis.len()).sum();
        assert!(phi_count >= 2, "expected loop phis, got {phi_count}\n{mir}");
        // Loop header phis must have two operands (entry + back edge).
        let header = mir
            .blocks
            .iter()
            .find(|b| !b.phis.is_empty())
            .expect("phi block");
        assert_eq!(header.phi_preds.len(), 2);
        for phi in &header.phis {
            assert_eq!(phi.operands.len(), 2);
        }
    }

    #[test]
    fn if_else_joins_with_phi() {
        let mir = mir_of(
            "function f(c) { var x; if (c) { x = 1; } else { x = 2; } return x; }",
            "f",
        );
        assert_eq!(mir.validate(), Ok(()));
        let join = mir
            .blocks
            .iter()
            .find(|b| b.phi_preds.len() == 2)
            .expect("join block with 2 preds");
        assert!(!join.phis.is_empty());
    }

    #[test]
    fn logical_and_produces_value_phi() {
        // `a && b` merges a stack slot, not a local.
        let mir = mir_of("function f(a, b) { return a && b; }", "f");
        assert_eq!(mir.validate(), Ok(()));
        let phi_count: usize = mir.blocks.iter().map(|b| b.phis.len()).sum();
        assert!(phi_count >= 1, "{mir}");
    }

    #[test]
    fn dead_code_after_return_is_dropped() {
        let mir = mir_of("function f() { return 1; var x = 2; x = x; }", "f");
        assert_eq!(mir.validate(), Ok(()));
        // Unreachable trailing code must not leave invalid blocks behind.
        for b in &mir.blocks {
            assert!(b.terminator().is_some());
        }
    }

    #[test]
    fn while_true_with_break() {
        let mir = mir_of(
            "function f() { var i = 0; while (true) { i++; if (i > 3) { break; } } return i; }",
            "f",
        );
        assert_eq!(mir.validate(), Ok(()));
    }

    #[test]
    fn nested_loops_validate() {
        let mir = mir_of(
            "function f(n) { var t = 0; for (var i = 0; i < n; i++) { for (var j = 0; j < i; j++) { if (j % 2) { t += j; } else { t -= 1; } } } return t; }",
            "f",
        );
        assert_eq!(mir.validate(), Ok(()));
        assert!(mir.block_count() >= 6);
    }

    #[test]
    fn calls_and_methods() {
        let mir = mir_of(
            "function g(x) { return x; } function f(o) { g(1); o.m(2, 3); return new g(4); }",
            "f",
        );
        let text = mir.to_string();
        assert!(text.contains(" call "), "{text}");
        assert!(text.contains("callmethod"), "{text}");
        assert!(text.contains("newcall"), "{text}");
        assert!(text.contains("loadproperty"), "{text}");
    }

    #[test]
    fn main_function_builds() {
        let p =
            parse_program("var x = 1; for (var i = 0; i < 3; i++) { x *= 2; } print(x);").unwrap();
        let m = compile_program(&p).unwrap();
        let mir = build_mir(&m, m.entry).unwrap();
        assert_eq!(mir.validate(), Ok(()));
        assert!(mir.to_string().contains("storeglobal"));
    }

    #[test]
    fn every_compiled_function_in_a_program_builds() {
        let src = r"
            function fib(n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }
            function sum(a) { var t = 0; for (var i = 0; i < a.length; i++) { t += a[i]; } return t; }
            function make(n) { var a = new Array(n); for (var i = 0; i < n; i++) { a[i] = i; } return a; }
            var r = fib(10) + sum(make(20));
            print(r);
        ";
        let p = parse_program(src).unwrap();
        let m = compile_program(&p).unwrap();
        for i in 0..m.functions.len() {
            let mir = build_mir(&m, jitbull_vm::bytecode::FuncId(i as u32)).unwrap();
            assert_eq!(mir.validate(), Ok(()), "function {i} invalid:\n{mir}");
        }
    }
}

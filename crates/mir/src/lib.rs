//! # jitbull-mir — the SSA mid-level intermediate representation
//!
//! This crate reproduces the substrate JITBULL instruments in the paper:
//! IonMonkey's **MIR**, the graph of SSA instructions the optimizing JIT's
//! passes transform. It provides:
//!
//! * [`opcode::MOpcode`] / [`instr::Instruction`] / [`graph::MirFunction`] —
//!   the IR itself: basic blocks of numbered instructions in static
//!   single-assignment form, each referencing its operands by instruction
//!   id (the `num opcode operand1 operand2` shape of the paper's
//!   Listing 1);
//! * [`build`] — construction of MIR from the VM's stack bytecode by
//!   abstract interpretation (the paper's step ③, bytecode → MIR);
//! * [`analysis`] — CFG utilities (reverse postorder, dominators, natural
//!   loops) used by the optimization passes in `jitbull-jit`;
//! * [`snapshot`] — cheap, engine-agnostic IR snapshots
//!   ([`snapshot::MirSnapshot`]): the *only* type the `jitbull` core crate
//!   consumes, keeping JITBULL decoupled from this particular engine just
//!   as the paper argues the approach ports to TurboFan.
//!
//! # Examples
//!
//! ```
//! use jitbull_frontend::parse_program;
//! use jitbull_vm::compile_program;
//! use jitbull_mir::build::build_mir;
//!
//! let program = parse_program("function f(a) { return a + 1; }")?;
//! let module = compile_program(&program)?;
//! let fid = module.function_id("f").unwrap();
//! let mir = build_mir(&module, fid)?;
//! assert!(mir.block_count() >= 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod analysis;
pub mod build;
pub mod graph;
pub mod instr;
pub mod opcode;
pub mod snapshot;

pub use build::build_mir;
pub use graph::{Block, BlockId, MirFunction};
pub use instr::{InstrId, Instruction};
pub use opcode::{CmpOp, ConstVal, MOpcode, TypeHint};
pub use snapshot::{MirSnapshot, PassRecord, PassTrace, SnapInstr};

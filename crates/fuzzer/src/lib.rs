//! # jitbull-fuzzer — fuzzer-to-database integration
//!
//! The paper's threat model (§IV-A) explicitly allows demonstrator codes
//! to come from machines instead of humans:
//!
//! > "VDCs do not need to originate from human experts; one way to use
//! > JITBULL is to feed the output of JIT fuzzers directly to its
//! > database. In this way, as soon as a crashing code example is
//! > detected, JITBULL will be able to automatically prevent similar
//! > exploit codes from running."
//!
//! This crate closes that loop end to end on the simulated substrate:
//!
//! 1. [`gen`] — a seeded generator of JIT-stressing minijs programs
//!    (hot functions, array-length manipulation, pops/pushes, masked and
//!    offset indexes, warm-up-then-outlier call patterns);
//! 2. [`harness`] — a campaign runner that executes each program on a
//!    vulnerable engine and collects the crashing/compromising finds;
//! 3. [`harness::auto_install`] — DNA extraction of every function of a
//!    find and installation into a [`jitbull::DnaDatabase`], after which
//!    re-running the find (or a renamed variant of it) is neutralized.
//!
//! Everything is deterministic per seed, so campaigns are reproducible.

pub mod gen;
pub mod harness;
pub mod minimize;

pub use gen::{generate, GenConfig};
pub use harness::{
    auto_install, install_until_neutralized, install_until_neutralized_observed, run_campaign,
    run_campaign_observed, CampaignReport, Find,
};
pub use minimize::minimize;

//! Campaign running and automatic DNA installation.

use std::collections::HashSet;

use jitbull::{CompareConfig, DnaDatabase, Guard};
use jitbull_jit::engine::{Engine, EngineConfig};
use jitbull_jit::VulnConfig;
use jitbull_telemetry::{Collector, Event, NoopCollector};
use jitbull_vdc::dna::{extract_program_dna, extract_program_dna_with};
use jitbull_vdc::validate::run_script;
use jitbull_vdc::VdcOutcome;
use jitbull_vm::VmError;

use crate::gen::{generate_complete, GenConfig};

/// A crashing/compromising program the campaign found.
#[derive(Debug, Clone)]
pub struct Find {
    /// The seed that produced it.
    pub seed: u64,
    /// The complete program.
    pub source: String,
    /// What it did to the runtime.
    pub outcome: VdcOutcome,
}

/// Campaign results.
#[derive(Debug)]
pub struct CampaignReport {
    /// Seeds executed.
    pub executed: u64,
    /// Programs that ended in a benign script error (interesting but not
    /// security-relevant).
    pub script_errors: u64,
    /// Security-relevant finds.
    pub finds: Vec<Find>,
}

/// Engine configuration used by campaigns: low tier thresholds so every
/// generated program reaches the optimizing JIT quickly, bounded fuel so
/// runaway programs cannot stall the campaign.
pub fn campaign_engine(vulns: VulnConfig) -> EngineConfig {
    EngineConfig {
        baseline_threshold: 4,
        ion_threshold: 8,
        vulns,
        fuel: 2_000_000,
        ..Default::default()
    }
}

/// Runs `count` seeds starting at `first_seed` against an engine with the
/// given vulnerabilities, collecting every find.
///
/// # Errors
///
/// Propagates only harness-level failures (fuel exhaustion is treated as
/// a non-find, parse errors cannot occur for generated programs).
pub fn run_campaign(
    first_seed: u64,
    count: u64,
    vulns: &VulnConfig,
) -> Result<CampaignReport, VmError> {
    run_campaign_observed(first_seed, count, vulns, &mut NoopCollector)
}

/// Like [`run_campaign`], additionally reporting one
/// [`Event::FuzzSeed`] per seed and a closing
/// [`Event::FuzzCampaignFinished`] to `collector`.
///
/// # Errors
///
/// Same as [`run_campaign`].
pub fn run_campaign_observed(
    first_seed: u64,
    count: u64,
    vulns: &VulnConfig,
    collector: &mut dyn Collector,
) -> Result<CampaignReport, VmError> {
    let mut report = CampaignReport {
        executed: 0,
        script_errors: 0,
        finds: Vec::new(),
    };
    for seed in first_seed..first_seed + count {
        let source = generate_complete(&GenConfig {
            seed,
            warmup: 20,
            body_len: 5,
        });
        let mut engine = Engine::new(campaign_engine(vulns.clone()));
        report.executed += 1;
        let (find, script_error) = match run_script(&source, &mut engine) {
            Ok(VdcOutcome::Harmless { error: None }) => (false, false),
            Ok(VdcOutcome::Harmless { error: Some(_) }) => {
                report.script_errors += 1;
                (false, true)
            }
            Ok(outcome) => {
                report.finds.push(Find {
                    seed,
                    source,
                    outcome,
                });
                (true, false)
            }
            Err(VmError::OutOfFuel) => (false, false),
            Err(e) => return Err(e),
        };
        collector.record(Event::FuzzSeed {
            seed,
            find,
            script_error,
        });
    }
    collector.record(Event::FuzzCampaignFinished {
        executed: report.executed,
        finds: report.finds.len() as u64,
        script_errors: report.script_errors,
    });
    Ok(report)
}

/// Extracts the DNA of every function of a find (compiled on the same
/// vulnerable engine the campaign used) and installs the non-trivial
/// entries into the database, tagged by the find's seed — the automated
/// equivalent of a maintainer shipping a VDC update.
///
/// # Errors
///
/// Propagates extraction failures.
pub fn auto_install(
    db: &mut DnaDatabase,
    find: &Find,
    vulns: &VulnConfig,
) -> Result<usize, VmError> {
    let before = db.len();
    for (function, dna) in extract_program_dna(&find.source, vulns)? {
        db.install(format!("FUZZ-{:08}", find.seed), function, dna);
    }
    Ok(db.len() - before)
}

/// Triage loop: install the find's DNA, re-run under protection, and —
/// when the find *still* compromises the runtime because disabling the
/// matched passes unshadowed a second buggy transform further down the
/// pipeline — extract the DNA of the find under the protected engine's
/// actual pipeline configuration and install that too. Repeats until the
/// find is neutralized or `max_rounds` is exhausted.
///
/// Returns `true` when the find ends up neutralized.
///
/// # Errors
///
/// Propagates extraction/harness failures.
pub fn install_until_neutralized(
    db: &mut DnaDatabase,
    find: &Find,
    vulns: &VulnConfig,
    max_rounds: usize,
) -> Result<bool, VmError> {
    install_until_neutralized_observed(db, find, vulns, max_rounds, &mut NoopCollector)
}

/// Like [`install_until_neutralized`], additionally reporting one
/// [`Event::TriageRound`] per protected re-run to `collector`.
///
/// # Errors
///
/// Same as [`install_until_neutralized`].
pub fn install_until_neutralized_observed(
    db: &mut DnaDatabase,
    find: &Find,
    vulns: &VulnConfig,
    max_rounds: usize,
    collector: &mut dyn Collector,
) -> Result<bool, VmError> {
    auto_install(db, find, vulns)?;
    for round in 0..max_rounds {
        let mut guarded = Engine::with_guard(
            campaign_engine(vulns.clone()),
            Guard::new(db.clone(), CompareConfig::default()),
        );
        let outcome = run_script(&find.source, &mut guarded)?;
        let neutralized = !outcome.is_compromised();
        collector.record(Event::TriageRound {
            seed: find.seed,
            round: round as u64,
            db_entries: db.len() as u64,
            neutralized,
        });
        if neutralized {
            return Ok(true);
        }
        // Re-extract with the slots the guard actually disabled; if the
        // protected pipeline surfaced new deltas, they become entries.
        let program = jitbull_frontend::parse_program(&find.source)
            .map_err(|e| VmError::Parse(e.to_string()))?;
        let module = jitbull_vm::compile_program(&program)?;
        let disabled: HashSet<usize> = guarded
            .function_stats(&module)
            .iter()
            .flat_map(|f| f.disabled_slots.iter().copied())
            .collect();
        let before = db.len();
        for (function, dna) in extract_program_dna_with(&find.source, vulns, &disabled)? {
            db.install(format!("FUZZ-{:08}", find.seed), function, dna);
        }
        if db.len() == before {
            // Nothing new to learn; the find evades this database.
            return Ok(false);
        }
    }
    Ok(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jitbull::{CompareConfig, Guard};
    use jitbull_jit::CveId;

    fn first_find(vulns: &VulnConfig, max_seeds: u64) -> Find {
        for start in (0..max_seeds).step_by(64) {
            let report = run_campaign(start, 64, vulns).expect("campaign runs");
            if let Some(f) = report.finds.into_iter().next() {
                return f;
            }
        }
        panic!("no find within {max_seeds} seeds");
    }

    #[test]
    fn campaign_finds_crashers_on_a_vulnerable_engine() {
        let vulns = VulnConfig::all();
        let report = run_campaign(0, 128, &vulns).expect("campaign runs");
        assert_eq!(report.executed, 128);
        assert!(
            !report.finds.is_empty(),
            "a fully vulnerable engine must yield finds ({} script errors)",
            report.script_errors
        );
    }

    #[test]
    fn observed_campaign_counts_match_the_report() {
        use jitbull_telemetry::Recorder;
        let mut rec = Recorder::new();
        let report = run_campaign_observed(0, 64, &VulnConfig::all(), &mut rec).expect("campaign");
        let m = rec.metrics();
        assert_eq!(m.counter("fuzz.seeds"), report.executed);
        assert_eq!(m.counter("fuzz.finds"), report.finds.len() as u64);
        assert_eq!(m.counter("fuzz.script_errors"), report.script_errors);
        assert_eq!(m.counter("fuzz.campaigns"), 1);
    }

    #[test]
    fn campaign_is_quiet_on_a_patched_engine() {
        let report = run_campaign(0, 128, &VulnConfig::none()).expect("campaign runs");
        assert!(
            report.finds.is_empty(),
            "patched engine produced {:?}",
            report.finds.iter().map(|f| f.seed).collect::<Vec<_>>()
        );
    }

    #[test]
    fn triage_loop_neutralizes_finds() {
        let vulns = VulnConfig::all();
        let find = first_find(&vulns, 512);
        let mut db = DnaDatabase::new();
        let ok = install_until_neutralized(&mut db, &find, &vulns, 6).expect("triage");
        assert!(
            ok,
            "seed {} evaded the triage loop:\n{}",
            find.seed, find.source
        );
        // And the final database really does protect a fresh engine.
        let mut guarded = Engine::with_guard(
            campaign_engine(vulns.clone()),
            Guard::new(db, CompareConfig::default()),
        );
        let outcome = run_script(&find.source, &mut guarded).expect("rerun");
        assert!(!outcome.is_compromised(), "{outcome:?}");
        assert!(guarded.nr_disjit() + guarded.nr_nojit() > 0);
    }

    #[test]
    fn multi_vulnerability_find_needs_the_iterated_extraction() {
        // Seed 2 carries (at least) a pop-trigger and an offset-index
        // trigger: disabling the first unshadows the second, so the
        // single-shot install is insufficient but the triage loop wins.
        // (If generator changes ever make this seed single-vuln, the
        // stronger half below still must hold.)
        let vulns = VulnConfig::all();
        let source = generate_complete(&GenConfig {
            seed: 2,
            warmup: 20,
            body_len: 5,
        });
        let find = Find {
            seed: 2,
            source,
            outcome: VdcOutcome::Crashed(String::new()),
        };
        let mut db = DnaDatabase::new();
        let ok = install_until_neutralized(&mut db, &find, &vulns, 6).expect("triage");
        assert!(ok, "triage loop failed on the multi-vuln find");
    }

    #[test]
    fn single_cve_campaign_attributes_to_that_cve() {
        // With only 17026 enabled, any find must involve a length
        // manipulation (the trigger requires setarraylength).
        let vulns = VulnConfig::with([CveId::Cve2019_17026]);
        let report = run_campaign(0, 512, &vulns).expect("campaign runs");
        for f in &report.finds {
            assert!(
                f.source.contains(".length ="),
                "seed {} crashed without the 17026 trigger:\n{}",
                f.seed,
                f.source
            );
        }
    }
}

//! Seeded generation of JIT-stressing minijs programs.
//!
//! Each program declares one hot function over `(arr, i, v)`, warms it
//! past the optimizing-JIT threshold with tame arguments, then makes one
//! *outlier* call with a hostile index — the classic shape of real JIT
//! proof-of-concepts (and of fuzzer corpora distilled from them). The
//! statement pool mixes the dangerous shapes the modeled CVEs key on
//! (length manipulation, `pop`/`push`, masked/offset/induction indexes)
//! with benign arithmetic filler.

use jitbull_prng::Rng;

/// Generator knobs.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// RNG seed (campaigns sweep this).
    pub seed: u64,
    /// Warm-up iterations (should exceed the engine's Ion threshold).
    pub warmup: u32,
    /// Statements in the hot function body.
    pub body_len: usize,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            seed: 0,
            warmup: 20,
            body_len: 5,
        }
    }
}

/// Generates one program.
pub fn generate(config: &GenConfig) -> String {
    let mut rng = Rng::seed_from_u64(config.seed);
    let mut body = String::new();
    body.push_str("  var t = 0;\n");
    for k in 0..config.body_len {
        body.push_str(&statement(&mut rng, k));
    }
    body.push_str("  return t;\n");
    let size = *[8usize, 12, 16]
        .get(rng.gen_range(0..3))
        .expect("size table");
    let hostile: i64 = [64, 900, 5000, 100000][rng.gen_range(0..4)];
    let tame_i = rng.gen_range(0..4);
    format!(
        "function hot(arr, i, v) {{\n{body}}}\n\
         var data = new Array({size});\n\
         for (var s = 0; s < {size}; s++) {{ data[s] = s; }}\n\
         var sink = 0;\n\
         for (var w = 0; w < {warmup}; w++) {{ sink = hot(data, {tame_i}, w); }}\n\
         sink = hot(data, {hostile}, 7);\n\
         print(sink);\n",
        warmup = config.warmup,
    )
}

fn index_expr(rng: &mut Rng) -> String {
    match rng.gen_range(0..5) {
        0 => "i".to_string(),
        1 => format!("i & {}", [7, 15, 255, 1023][rng.gen_range(0..4)]),
        2 => format!("i + {}", rng.gen_range(1..9)),
        3 => "k".to_string(), // loop induction (only valid inside loops)
        _ => format!("{}", rng.gen_range(0..8)),
    }
}

fn statement(rng: &mut Rng, n: usize) -> String {
    match rng.gen_range(0..10) {
        // Dangerous shapes.
        0 => format!("  arr.length = {};\n", [4usize, 8, 16][rng.gen_range(0..3)]),
        1 => "  arr.pop();\n".to_string(),
        2 => "  arr.push(v);\n".to_string(),
        3 => {
            let idx = loop {
                let e = index_expr(rng);
                if e != "k" {
                    break e;
                }
            };
            format!("  arr[{idx}] = v;\n")
        }
        4 => {
            let idx = loop {
                let e = index_expr(rng);
                if e != "k" {
                    break e;
                }
            };
            format!("  t = t + arr[{idx}];\n")
        }
        5 => {
            // A loop with induction reads and an inner call or not.
            let call = if rng.gen_bool(0.5) {
                "    t = t + helper(v);\n"
            } else {
                ""
            };
            format!(
                "  for (var k{n} = 0; k{n} < 4; k{n}++) {{\n{call}    t = t + arr[k{n}];\n  }}\n"
            )
        }
        // Benign filler.
        6 => format!("  t = (t + v * {}) & 65535;\n", rng.gen_range(2..9)),
        7 => format!("  if (t % {} == 0) {{ t = t + 1; }}\n", rng.gen_range(2..5)),
        8 => format!(
            "  var x{n} = Math.floor(t / {});\n  t = t + x{n};\n",
            rng.gen_range(2..5)
        ),
        _ => format!("  t = t ^ (i << {});\n", rng.gen_range(1..4)),
    }
}

/// The helper callee some generated loops invoke (appended once per
/// program by the harness when referenced).
pub const HELPER: &str = "function helper(x) { return (x * 3 + 1) & 255; }\n";

/// Generates a complete, self-contained program (helper included when
/// needed).
pub fn generate_complete(config: &GenConfig) -> String {
    let body = generate(config);
    if body.contains("helper(") {
        format!("{HELPER}{body}")
    } else {
        body
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jitbull_frontend::parse_program;

    #[test]
    fn generated_programs_parse() {
        for seed in 0..200 {
            let src = generate_complete(&GenConfig {
                seed,
                ..Default::default()
            });
            parse_program(&src).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let c = GenConfig {
            seed: 42,
            ..Default::default()
        };
        assert_eq!(generate_complete(&c), generate_complete(&c));
    }

    #[test]
    fn seeds_produce_diverse_programs() {
        let a = generate_complete(&GenConfig {
            seed: 1,
            ..Default::default()
        });
        let b = generate_complete(&GenConfig {
            seed: 2,
            ..Default::default()
        });
        assert_ne!(a, b);
    }
}

//! Test-case minimization: shrink a find to the smallest program that
//! still compromises the runtime (fewer statements → fewer overlapping
//! vulnerabilities → sharper DNA).

use jitbull_frontend::ast::Program;
use jitbull_frontend::{parse_program, print_program};
use jitbull_jit::engine::Engine;
use jitbull_jit::VulnConfig;
use jitbull_vdc::validate::run_script;

use crate::harness::campaign_engine;
use crate::Find;

fn still_compromises(source: &str, vulns: &VulnConfig) -> bool {
    let mut engine = Engine::new(campaign_engine(vulns.clone()));
    match run_script(source, &mut engine) {
        Ok(outcome) => outcome.is_compromised(),
        Err(_) => false,
    }
}

/// All removable statement slots of a program, as (path) indices. We
/// only delete inside function bodies and at the top level, one whole
/// statement at a time — enough granularity for generator output.
fn candidates(program: &Program) -> Vec<(Option<usize>, usize)> {
    let mut out = Vec::new();
    for (fi, f) in program.functions.iter().enumerate() {
        for si in 0..f.body.len() {
            out.push((Some(fi), si));
        }
    }
    for si in 0..program.top_level.len() {
        out.push((None, si));
    }
    out
}

fn remove(program: &Program, site: (Option<usize>, usize)) -> Program {
    let mut p = program.clone();
    match site {
        (Some(fi), si) => {
            p.functions[fi].body.remove(si);
        }
        (None, si) => {
            p.top_level.remove(si);
        }
    }
    p
}

/// Greedy ddmin over whole statements: repeatedly delete any single
/// statement whose removal keeps the program compromising, until no
/// deletion survives. Returns the minimized find (unchanged when nothing
/// can be removed).
///
/// # Panics
///
/// Panics if the find's source no longer parses (harness invariant).
pub fn minimize(find: &Find, vulns: &VulnConfig) -> Find {
    let mut program = parse_program(&find.source).expect("find parses");
    // Certain statements are load-bearing scaffolding the generator
    // always needs (returns keep bodies valid); statement removal that
    // breaks parsing/compiling simply fails the predicate.
    loop {
        let mut improved = false;
        for site in candidates(&program) {
            let trial = remove(&program, site);
            let source = print_program(&trial);
            if parse_program(&source).is_ok() && still_compromises(&source, vulns) {
                program = trial;
                improved = true;
                break;
            }
        }
        if !improved {
            break;
        }
    }
    Find {
        seed: find.seed,
        source: print_program(&program),
        outcome: find.outcome.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate_complete, GenConfig};
    use crate::run_campaign;
    use jitbull_vdc::VdcOutcome;

    #[test]
    fn minimized_find_still_compromises_and_is_smaller_or_equal() {
        let vulns = VulnConfig::all();
        let report = run_campaign(0, 96, &vulns).expect("campaign");
        let find = report.finds.first().expect("at least one find").clone();
        let min = minimize(&find, &vulns);
        assert!(
            still_compromises(&min.source, &vulns),
            "minimized program went benign:\n{}",
            min.source
        );
        assert!(
            min.source.len() <= find.source.len(),
            "minimization grew the program"
        );
    }

    #[test]
    fn minimization_strips_benign_filler() {
        // A hand-made find with obvious filler statements.
        let vulns = VulnConfig::all();
        let source = generate_complete(&GenConfig {
            seed: 2,
            warmup: 20,
            body_len: 5,
        });
        let find = Find {
            seed: 2,
            source,
            outcome: VdcOutcome::Crashed(String::new()),
        };
        let original_stmts = parse_program(&find.source)
            .unwrap()
            .functions
            .iter()
            .map(|f| f.body.len())
            .sum::<usize>();
        let min = minimize(&find, &vulns);
        let min_stmts = parse_program(&min.source)
            .unwrap()
            .functions
            .iter()
            .map(|f| f.body.len())
            .sum::<usize>();
        assert!(
            min_stmts < original_stmts,
            "expected some statement to be removable ({original_stmts} -> {min_stmts})\n{}",
            min.source
        );
    }
}

//! Token definitions for the minijs lexer.

use std::fmt;

/// A half-open byte range into the original source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character of the token.
    pub start: usize,
    /// Byte offset one past the last character of the token.
    pub end: usize,
    /// 1-based line number of the token start (for diagnostics).
    pub line: u32,
}

impl Span {
    /// Creates a new span covering `start..end` on `line`.
    pub fn new(start: usize, end: usize, line: u32) -> Self {
        Span { start, end, line }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}", self.line)
    }
}

/// The kind of a lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    // Literals
    /// Numeric literal (all minijs numbers are IEEE-754 doubles).
    Number(f64),
    /// String literal with escapes already resolved.
    Str(String),
    /// Identifier (variable, function, or property name).
    Ident(String),

    // Keywords
    Var,
    Function,
    Return,
    If,
    Else,
    While,
    For,
    Break,
    Continue,
    True,
    False,
    Undefined,
    Null,
    New,
    This,
    Typeof,
    Delete,

    // Punctuation
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Semicolon,
    Colon,
    Dot,
    Question,

    // Operators
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Assign,
    PlusAssign,
    MinusAssign,
    StarAssign,
    SlashAssign,
    PercentAssign,
    AmpAssign,
    PipeAssign,
    CaretAssign,
    ShlAssign,
    ShrAssign,
    UshrAssign,
    PlusPlus,
    MinusMinus,
    EqEq,
    NotEq,
    EqEqEq,
    NotEqEq,
    Lt,
    Le,
    Gt,
    Ge,
    AmpAmp,
    PipePipe,
    Not,
    Amp,
    Pipe,
    Caret,
    Tilde,
    Shl,
    Shr,
    Ushr,

    /// End of input sentinel.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Number(n) => write!(f, "number {n}"),
            TokenKind::Str(s) => write!(f, "string {s:?}"),
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            other => {
                let text = match other {
                    TokenKind::Var => "var",
                    TokenKind::Function => "function",
                    TokenKind::Return => "return",
                    TokenKind::If => "if",
                    TokenKind::Else => "else",
                    TokenKind::While => "while",
                    TokenKind::For => "for",
                    TokenKind::Break => "break",
                    TokenKind::Continue => "continue",
                    TokenKind::True => "true",
                    TokenKind::False => "false",
                    TokenKind::Undefined => "undefined",
                    TokenKind::Null => "null",
                    TokenKind::New => "new",
                    TokenKind::This => "this",
                    TokenKind::Typeof => "typeof",
                    TokenKind::Delete => "delete",
                    TokenKind::LParen => "(",
                    TokenKind::RParen => ")",
                    TokenKind::LBrace => "{",
                    TokenKind::RBrace => "}",
                    TokenKind::LBracket => "[",
                    TokenKind::RBracket => "]",
                    TokenKind::Comma => ",",
                    TokenKind::Semicolon => ";",
                    TokenKind::Colon => ":",
                    TokenKind::Dot => ".",
                    TokenKind::Question => "?",
                    TokenKind::Plus => "+",
                    TokenKind::Minus => "-",
                    TokenKind::Star => "*",
                    TokenKind::Slash => "/",
                    TokenKind::Percent => "%",
                    TokenKind::Assign => "=",
                    TokenKind::PlusAssign => "+=",
                    TokenKind::MinusAssign => "-=",
                    TokenKind::StarAssign => "*=",
                    TokenKind::SlashAssign => "/=",
                    TokenKind::PercentAssign => "%=",
                    TokenKind::AmpAssign => "&=",
                    TokenKind::PipeAssign => "|=",
                    TokenKind::CaretAssign => "^=",
                    TokenKind::ShlAssign => "<<=",
                    TokenKind::ShrAssign => ">>=",
                    TokenKind::UshrAssign => ">>>=",
                    TokenKind::PlusPlus => "++",
                    TokenKind::MinusMinus => "--",
                    TokenKind::EqEq => "==",
                    TokenKind::NotEq => "!=",
                    TokenKind::EqEqEq => "===",
                    TokenKind::NotEqEq => "!==",
                    TokenKind::Lt => "<",
                    TokenKind::Le => "<=",
                    TokenKind::Gt => ">",
                    TokenKind::Ge => ">=",
                    TokenKind::AmpAmp => "&&",
                    TokenKind::PipePipe => "||",
                    TokenKind::Not => "!",
                    TokenKind::Amp => "&",
                    TokenKind::Pipe => "|",
                    TokenKind::Caret => "^",
                    TokenKind::Tilde => "~",
                    TokenKind::Shl => "<<",
                    TokenKind::Shr => ">>",
                    TokenKind::Ushr => ">>>",
                    TokenKind::Eof => "<eof>",
                    _ => unreachable!(),
                };
                f.write_str(text)
            }
        }
    }
}

/// A lexical token: a [`TokenKind`] plus its [`Span`].
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// Where in the source it came from.
    pub span: Span,
}

impl Token {
    /// Creates a token from its parts.
    pub fn new(kind: TokenKind, span: Span) -> Self {
        Token { kind, span }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_punctuation() {
        assert_eq!(TokenKind::Ushr.to_string(), ">>>");
        assert_eq!(TokenKind::EqEqEq.to_string(), "===");
        assert_eq!(TokenKind::Number(1.5).to_string(), "number 1.5");
    }

    #[test]
    fn span_display_reports_line() {
        assert_eq!(Span::new(0, 3, 7).to_string(), "line 7");
    }
}

//! Hand-written lexer for minijs.

use crate::error::ParseError;
use crate::token::{Span, Token, TokenKind};

/// Tokenizes a full source string.
///
/// The returned vector always ends with a single [`TokenKind::Eof`] token.
///
/// # Errors
///
/// Returns a [`ParseError`] on unterminated strings, malformed numbers, or
/// characters outside the minijs alphabet.
///
/// # Examples
///
/// ```
/// use jitbull_frontend::lexer::tokenize;
/// let tokens = tokenize("var x = 1;")?;
/// assert_eq!(tokens.len(), 6); // var, x, =, 1, ;, <eof>
/// # Ok::<(), jitbull_frontend::ParseError>(())
/// ```
pub fn tokenize(source: &str) -> Result<Vec<Token>, ParseError> {
    Lexer::new(source).run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    tokens: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn new(source: &'a str) -> Self {
        Lexer {
            src: source.as_bytes(),
            pos: 0,
            line: 1,
            tokens: Vec::new(),
        }
    }

    fn run(mut self) -> Result<Vec<Token>, ParseError> {
        while self.pos < self.src.len() {
            self.skip_trivia();
            if self.pos >= self.src.len() {
                break;
            }
            let start = self.pos;
            let c = self.src[self.pos];
            let kind = match c {
                b'0'..=b'9' => self.number()?,
                b'"' | b'\'' => self.string(c)?,
                b'a'..=b'z' | b'A'..=b'Z' | b'_' | b'$' => self.ident_or_keyword(),
                _ => self.punct()?,
            };
            let span = Span::new(start, self.pos, self.line);
            self.tokens.push(Token::new(kind, span));
        }
        let eof_span = Span::new(self.pos, self.pos, self.line);
        self.tokens.push(Token::new(TokenKind::Eof, eof_span));
        Ok(self.tokens)
    }

    fn skip_trivia(&mut self) {
        loop {
            while self.pos < self.src.len() {
                match self.src[self.pos] {
                    b'\n' => {
                        self.line += 1;
                        self.pos += 1;
                    }
                    b' ' | b'\t' | b'\r' => self.pos += 1,
                    _ => break,
                }
            }
            if self.peek_is(b'/') && self.peek_at_is(1, b'/') {
                while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
                    self.pos += 1;
                }
                continue;
            }
            if self.peek_is(b'/') && self.peek_at_is(1, b'*') {
                self.pos += 2;
                while self.pos + 1 < self.src.len()
                    && !(self.src[self.pos] == b'*' && self.src[self.pos + 1] == b'/')
                {
                    if self.src[self.pos] == b'\n' {
                        self.line += 1;
                    }
                    self.pos += 1;
                }
                self.pos = (self.pos + 2).min(self.src.len());
                continue;
            }
            break;
        }
    }

    fn peek_is(&self, c: u8) -> bool {
        self.pos < self.src.len() && self.src[self.pos] == c
    }

    /// Checks the byte at `pos + offset` against a byte or inclusive range.
    #[allow(private_bounds)]
    fn peek_at_is<P: PatternMatch>(&self, offset: usize, p: P) -> bool {
        self.pos + offset < self.src.len() && p.matches(self.src[self.pos + offset])
    }

    fn number(&mut self) -> Result<TokenKind, ParseError> {
        let start = self.pos;
        // Hex literal.
        if self.peek_is(b'0') && (self.peek_at_is(1, b'x') || self.peek_at_is(1, b'X')) {
            self.pos += 2;
            let digits_start = self.pos;
            while self.pos < self.src.len() && self.src[self.pos].is_ascii_hexdigit() {
                self.pos += 1;
            }
            if self.pos == digits_start {
                return Err(self.err("malformed hex literal", start));
            }
            let text = std::str::from_utf8(&self.src[digits_start..self.pos]).unwrap();
            let value = u64::from_str_radix(text, 16)
                .map_err(|_| self.err("hex literal out of range", start))?;
            return Ok(TokenKind::Number(value as f64));
        }
        while self.pos < self.src.len() && self.src[self.pos].is_ascii_digit() {
            self.pos += 1;
        }
        if self.peek_is(b'.') && self.peek_at_is(1, b'0'..=b'9') {
            self.pos += 1;
            while self.pos < self.src.len() && self.src[self.pos].is_ascii_digit() {
                self.pos += 1;
            }
        }
        if self.peek_is(b'e') || self.peek_is(b'E') {
            let mut lookahead = self.pos + 1;
            if lookahead < self.src.len()
                && (self.src[lookahead] == b'+' || self.src[lookahead] == b'-')
            {
                lookahead += 1;
            }
            if lookahead < self.src.len() && self.src[lookahead].is_ascii_digit() {
                self.pos = lookahead;
                while self.pos < self.src.len() && self.src[self.pos].is_ascii_digit() {
                    self.pos += 1;
                }
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
        let value: f64 = text
            .parse()
            .map_err(|_| self.err("malformed number literal", start))?;
        Ok(TokenKind::Number(value))
    }

    fn string(&mut self, quote: u8) -> Result<TokenKind, ParseError> {
        let start = self.pos;
        self.pos += 1;
        let mut out = String::new();
        while self.pos < self.src.len() {
            let c = self.src[self.pos];
            if c == quote {
                self.pos += 1;
                return Ok(TokenKind::Str(out));
            }
            if c == b'\\' {
                self.pos += 1;
                if self.pos >= self.src.len() {
                    break;
                }
                let esc = self.src[self.pos];
                out.push(match esc {
                    b'n' => '\n',
                    b't' => '\t',
                    b'r' => '\r',
                    b'0' => '\0',
                    b'\\' => '\\',
                    b'\'' => '\'',
                    b'"' => '"',
                    other => other as char,
                });
                self.pos += 1;
                continue;
            }
            if c == b'\n' {
                self.line += 1;
            }
            out.push(c as char);
            self.pos += 1;
        }
        Err(self.err("unterminated string literal", start))
    }

    fn ident_or_keyword(&mut self) -> TokenKind {
        let start = self.pos;
        while self.pos < self.src.len() {
            match self.src[self.pos] {
                b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_' | b'$' => self.pos += 1,
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
        match text {
            "var" | "let" | "const" => TokenKind::Var,
            "function" => TokenKind::Function,
            "return" => TokenKind::Return,
            "if" => TokenKind::If,
            "else" => TokenKind::Else,
            "while" => TokenKind::While,
            "for" => TokenKind::For,
            "break" => TokenKind::Break,
            "continue" => TokenKind::Continue,
            "true" => TokenKind::True,
            "false" => TokenKind::False,
            "undefined" => TokenKind::Undefined,
            "null" => TokenKind::Null,
            "new" => TokenKind::New,
            "this" => TokenKind::This,
            "typeof" => TokenKind::Typeof,
            "delete" => TokenKind::Delete,
            _ => TokenKind::Ident(text.to_owned()),
        }
    }

    fn punct(&mut self) -> Result<TokenKind, ParseError> {
        let start = self.pos;
        let rest = &self.src[self.pos..];
        // Longest-match table; order matters.
        const TABLE: &[(&[u8], TokenKind)] = &[
            (b">>>=", TokenKind::UshrAssign),
            (b"===", TokenKind::EqEqEq),
            (b"!==", TokenKind::NotEqEq),
            (b">>>", TokenKind::Ushr),
            (b"<<=", TokenKind::ShlAssign),
            (b">>=", TokenKind::ShrAssign),
            (b"==", TokenKind::EqEq),
            (b"!=", TokenKind::NotEq),
            (b"<=", TokenKind::Le),
            (b">=", TokenKind::Ge),
            (b"&&", TokenKind::AmpAmp),
            (b"||", TokenKind::PipePipe),
            (b"<<", TokenKind::Shl),
            (b">>", TokenKind::Shr),
            (b"+=", TokenKind::PlusAssign),
            (b"-=", TokenKind::MinusAssign),
            (b"*=", TokenKind::StarAssign),
            (b"/=", TokenKind::SlashAssign),
            (b"%=", TokenKind::PercentAssign),
            (b"&=", TokenKind::AmpAssign),
            (b"|=", TokenKind::PipeAssign),
            (b"^=", TokenKind::CaretAssign),
            (b"++", TokenKind::PlusPlus),
            (b"--", TokenKind::MinusMinus),
            (b"(", TokenKind::LParen),
            (b")", TokenKind::RParen),
            (b"{", TokenKind::LBrace),
            (b"}", TokenKind::RBrace),
            (b"[", TokenKind::LBracket),
            (b"]", TokenKind::RBracket),
            (b",", TokenKind::Comma),
            (b";", TokenKind::Semicolon),
            (b":", TokenKind::Colon),
            (b".", TokenKind::Dot),
            (b"?", TokenKind::Question),
            (b"+", TokenKind::Plus),
            (b"-", TokenKind::Minus),
            (b"*", TokenKind::Star),
            (b"/", TokenKind::Slash),
            (b"%", TokenKind::Percent),
            (b"=", TokenKind::Assign),
            (b"<", TokenKind::Lt),
            (b">", TokenKind::Gt),
            (b"!", TokenKind::Not),
            (b"&", TokenKind::Amp),
            (b"|", TokenKind::Pipe),
            (b"^", TokenKind::Caret),
            (b"~", TokenKind::Tilde),
        ];
        for (text, kind) in TABLE {
            if rest.starts_with(text) {
                self.pos += text.len();
                return Ok(kind.clone());
            }
        }
        Err(self.err(
            format!("unexpected character `{}`", self.src[start] as char),
            start,
        ))
    }

    fn err(&self, message: impl Into<String>, start: usize) -> ParseError {
        ParseError::new(
            message,
            Span::new(start, self.pos.max(start + 1), self.line),
        )
    }
}

trait PatternMatch {
    fn matches(&self, c: u8) -> bool;
}

impl PatternMatch for u8 {
    fn matches(&self, c: u8) -> bool {
        *self == c
    }
}

impl PatternMatch for std::ops::RangeInclusive<u8> {
    fn matches(&self, c: u8) -> bool {
        self.contains(&c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_simple_declaration() {
        assert_eq!(
            kinds("var x = 1;"),
            vec![
                TokenKind::Var,
                TokenKind::Ident("x".into()),
                TokenKind::Assign,
                TokenKind::Number(1.0),
                TokenKind::Semicolon,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(kinds("3.5")[0], TokenKind::Number(3.5));
        assert_eq!(kinds("0xff")[0], TokenKind::Number(255.0));
        assert_eq!(kinds("1e3")[0], TokenKind::Number(1000.0));
        assert_eq!(kinds("2.5e-2")[0], TokenKind::Number(0.025));
    }

    #[test]
    fn number_followed_by_method_call_is_not_decimal() {
        // `3.x` should not swallow the dot as a decimal point.
        assert_eq!(
            kinds("3.toString")[..2],
            [TokenKind::Number(3.0), TokenKind::Dot]
        );
    }

    #[test]
    fn lexes_strings_with_escapes() {
        assert_eq!(kinds("\"a\\nb\"")[0], TokenKind::Str("a\nb".into()));
        assert_eq!(kinds("'ok'")[0], TokenKind::Str("ok".into()));
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(tokenize("\"abc").is_err());
    }

    #[test]
    fn skips_line_and_block_comments() {
        assert_eq!(
            kinds("1 // comment\n/* multi\nline */ 2"),
            vec![
                TokenKind::Number(1.0),
                TokenKind::Number(2.0),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn longest_match_operators() {
        assert_eq!(
            kinds("a >>> b >> c > d"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ushr,
                TokenKind::Ident("b".into()),
                TokenKind::Shr,
                TokenKind::Ident("c".into()),
                TokenKind::Gt,
                TokenKind::Ident("d".into()),
                TokenKind::Eof,
            ]
        );
        assert_eq!(kinds("===")[0], TokenKind::EqEqEq);
        assert_eq!(kinds(">>>=")[0], TokenKind::UshrAssign);
    }

    #[test]
    fn keywords_versus_identifiers() {
        assert_eq!(kinds("function")[0], TokenKind::Function);
        assert_eq!(kinds("functions")[0], TokenKind::Ident("functions".into()));
        assert_eq!(kinds("let")[0], TokenKind::Var);
        assert_eq!(kinds("const")[0], TokenKind::Var);
    }

    #[test]
    fn tracks_line_numbers() {
        let tokens = tokenize("a\nb\n\nc").unwrap();
        assert_eq!(tokens[0].span.line, 1);
        assert_eq!(tokens[1].span.line, 2);
        assert_eq!(tokens[2].span.line, 4);
    }

    #[test]
    fn rejects_unknown_characters() {
        assert!(tokenize("#").is_err());
        assert!(tokenize("var à = 1;").is_err());
    }
}

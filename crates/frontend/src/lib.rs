//! # jitbull-frontend — the `minijs` language frontend
//!
//! This crate implements the source-language substrate of the JITBULL
//! reproduction: **minijs**, a small JavaScript-like language rich enough to
//! express both the vulnerability demonstrator codes (VDCs) used by the paper
//! and Octane-style benchmark workloads.
//!
//! The crate provides:
//!
//! * a [`lexer`] producing [`token::Token`]s with source spans,
//! * a recursive-descent [`parser`] producing an [`ast::Program`],
//! * a [`printer`] that renders an AST back to minijs source (used by the
//!   variant generators in `jitbull-vdc` for minification and renaming),
//! * structural [`visit`] helpers for source-to-source transforms.
//!
//! The language supports: `var` declarations, function declarations (global
//! and nested — nested functions are hoisted and may not capture enclosing
//! locals), `if`/`else`, `while`, `for`, `break`/`continue`/`return`,
//! numbers, strings, booleans, `undefined`/`null`, arrays with mutable
//! `length`, object literals, property/index access, method calls with
//! `this`, `new` expressions, and the usual arithmetic / comparison /
//! bitwise / logical operators.
//!
//! # Examples
//!
//! ```
//! use jitbull_frontend::parse_program;
//!
//! let program = parse_program(
//!     "function add(a, b) { return a + b; } var x = add(1, 2);",
//! )?;
//! assert_eq!(program.functions.len(), 1);
//! # Ok::<(), jitbull_frontend::ParseError>(())
//! ```

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod token;
pub mod visit;

pub use ast::Program;
pub use error::ParseError;
pub use parser::parse_program;
pub use printer::print_program;

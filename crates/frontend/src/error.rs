//! Error types for lexing and parsing minijs source.

use std::error::Error;
use std::fmt;

use crate::token::Span;

/// An error produced while lexing or parsing minijs source.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    message: String,
    span: Span,
}

impl ParseError {
    /// Creates a parse error with a message and the offending span.
    pub fn new(message: impl Into<String>, span: Span) -> Self {
        ParseError {
            message: message.into(),
            span,
        }
    }

    /// The human-readable description of what went wrong.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// The source location the error points at.
    pub fn span(&self) -> Span {
        self.span
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {}", self.message, self.span)
    }
}

impl Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_line() {
        let err = ParseError::new("unexpected token", Span::new(4, 5, 2));
        assert_eq!(err.to_string(), "unexpected token at line 2");
        assert_eq!(err.message(), "unexpected token");
        assert_eq!(err.span().line, 2);
    }
}

//! Structural visitors and in-place mutators over the minijs AST.
//!
//! These helpers power the source-to-source variant generators in
//! `jitbull-vdc` (variable renaming, statement reordering, sub-function
//! splitting) without each transform re-implementing tree traversal.

use crate::ast::{Expr, FunctionDecl, Program, Stmt, Target};

/// Applies `f` to every expression in the program, bottom-up, allowing
/// in-place mutation.
pub fn mutate_exprs(program: &mut Program, f: &mut impl FnMut(&mut Expr)) {
    for func in &mut program.functions {
        mutate_exprs_in_stmts(&mut func.body, f);
    }
    mutate_exprs_in_stmts(&mut program.top_level, f);
}

/// Applies `f` to every expression in a statement list, bottom-up.
pub fn mutate_exprs_in_stmts(stmts: &mut [Stmt], f: &mut impl FnMut(&mut Expr)) {
    for stmt in stmts {
        mutate_exprs_in_stmt(stmt, f);
    }
}

fn mutate_exprs_in_stmt(stmt: &mut Stmt, f: &mut impl FnMut(&mut Expr)) {
    match stmt {
        Stmt::VarDecl(_, Some(e)) => mutate_expr(e, f),
        Stmt::VarDecl(_, None) => {}
        Stmt::Expr(e) => mutate_expr(e, f),
        Stmt::If(cond, then_body, else_body) => {
            mutate_expr(cond, f);
            mutate_exprs_in_stmts(then_body, f);
            mutate_exprs_in_stmts(else_body, f);
        }
        Stmt::While(cond, body) => {
            mutate_expr(cond, f);
            mutate_exprs_in_stmts(body, f);
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
        } => {
            if let Some(init) = init {
                mutate_exprs_in_stmt(init, f);
            }
            if let Some(cond) = cond {
                mutate_expr(cond, f);
            }
            if let Some(step) = step {
                mutate_expr(step, f);
            }
            mutate_exprs_in_stmts(body, f);
        }
        Stmt::Return(Some(e)) => mutate_expr(e, f),
        Stmt::Return(None) | Stmt::Break | Stmt::Continue => {}
        Stmt::Func(func) => mutate_exprs_in_stmts(&mut func.body, f),
        Stmt::Block(stmts) => mutate_exprs_in_stmts(stmts, f),
    }
}

fn mutate_target(target: &mut Target, f: &mut impl FnMut(&mut Expr)) {
    match target {
        Target::Var(_) => {}
        Target::Index(base, index) => {
            mutate_expr(base, f);
            mutate_expr(index, f);
        }
        Target::Prop(base, _) => mutate_expr(base, f),
    }
}

/// Applies `f` to an expression tree, bottom-up (children before parents).
pub fn mutate_expr(expr: &mut Expr, f: &mut impl FnMut(&mut Expr)) {
    match expr {
        Expr::Number(_)
        | Expr::Str(_)
        | Expr::Bool(_)
        | Expr::Undefined
        | Expr::Null
        | Expr::This
        | Expr::Var(_) => {}
        Expr::Array(items) => {
            for item in items {
                mutate_expr(item, f);
            }
        }
        Expr::Object(props) => {
            for (_, value) in props {
                mutate_expr(value, f);
            }
        }
        Expr::Binary(_, lhs, rhs) => {
            mutate_expr(lhs, f);
            mutate_expr(rhs, f);
        }
        Expr::Unary(_, operand) => mutate_expr(operand, f),
        Expr::LogicalAnd(lhs, rhs) | Expr::LogicalOr(lhs, rhs) => {
            mutate_expr(lhs, f);
            mutate_expr(rhs, f);
        }
        Expr::Conditional(cond, then, other) => {
            mutate_expr(cond, f);
            mutate_expr(then, f);
            mutate_expr(other, f);
        }
        Expr::Assign(target, value) => {
            mutate_target(target, f);
            mutate_expr(value, f);
        }
        Expr::Call(callee, args) => {
            mutate_expr(callee, f);
            for a in args {
                mutate_expr(a, f);
            }
        }
        Expr::New(_, args) => {
            for a in args {
                mutate_expr(a, f);
            }
        }
        Expr::Index(base, index) => {
            mutate_expr(base, f);
            mutate_expr(index, f);
        }
        Expr::Prop(base, _) => mutate_expr(base, f),
        Expr::IncDec { target, .. } => mutate_target(target, f),
    }
    f(expr);
}

/// Collects the set of identifiers the expression *reads* (variable
/// references, excluding property names).
pub fn collect_var_reads(expr: &Expr, out: &mut Vec<String>) {
    match expr {
        Expr::Var(name) => out.push(name.clone()),
        Expr::Number(_)
        | Expr::Str(_)
        | Expr::Bool(_)
        | Expr::Undefined
        | Expr::Null
        | Expr::This => {}
        Expr::Array(items) => {
            for item in items {
                collect_var_reads(item, out);
            }
        }
        Expr::Object(props) => {
            for (_, value) in props {
                collect_var_reads(value, out);
            }
        }
        Expr::Binary(_, lhs, rhs) => {
            collect_var_reads(lhs, out);
            collect_var_reads(rhs, out);
        }
        Expr::Unary(_, operand) => collect_var_reads(operand, out),
        Expr::LogicalAnd(lhs, rhs) | Expr::LogicalOr(lhs, rhs) => {
            collect_var_reads(lhs, out);
            collect_var_reads(rhs, out);
        }
        Expr::Conditional(cond, then, other) => {
            collect_var_reads(cond, out);
            collect_var_reads(then, out);
            collect_var_reads(other, out);
        }
        Expr::Assign(target, value) => {
            collect_target_reads(target, out);
            collect_var_reads(value, out);
        }
        Expr::Call(callee, args) => {
            collect_var_reads(callee, out);
            for a in args {
                collect_var_reads(a, out);
            }
        }
        Expr::New(name, args) => {
            out.push(name.clone());
            for a in args {
                collect_var_reads(a, out);
            }
        }
        Expr::Index(base, index) => {
            collect_var_reads(base, out);
            collect_var_reads(index, out);
        }
        Expr::Prop(base, _) => collect_var_reads(base, out),
        Expr::IncDec { target, .. } => collect_target_reads(target, out),
    }
}

fn collect_target_reads(target: &Target, out: &mut Vec<String>) {
    match target {
        Target::Var(name) => out.push(name.clone()),
        Target::Index(base, index) => {
            collect_var_reads(base, out);
            collect_var_reads(index, out);
        }
        Target::Prop(base, _) => collect_var_reads(base, out),
    }
}

/// Collects the names an expression *writes* (assignment / inc-dec roots
/// that are plain variables).
pub fn collect_var_writes(expr: &Expr, out: &mut Vec<String>) {
    match expr {
        Expr::Assign(Target::Var(name), value) => {
            out.push(name.clone());
            collect_var_writes(value, out);
        }
        Expr::IncDec {
            target: Target::Var(name),
            ..
        } => out.push(name.clone()),
        Expr::Assign(_, value) => collect_var_writes(value, out),
        Expr::Binary(_, lhs, rhs) | Expr::LogicalAnd(lhs, rhs) | Expr::LogicalOr(lhs, rhs) => {
            collect_var_writes(lhs, out);
            collect_var_writes(rhs, out);
        }
        Expr::Unary(_, operand) => collect_var_writes(operand, out),
        Expr::Conditional(cond, then, other) => {
            collect_var_writes(cond, out);
            collect_var_writes(then, out);
            collect_var_writes(other, out);
        }
        Expr::Call(callee, args) => {
            collect_var_writes(callee, out);
            for a in args {
                collect_var_writes(a, out);
            }
        }
        Expr::New(_, args) => {
            for a in args {
                collect_var_writes(a, out);
            }
        }
        Expr::Array(items) => {
            for i in items {
                collect_var_writes(i, out);
            }
        }
        Expr::Object(props) => {
            for (_, v) in props {
                collect_var_writes(v, out);
            }
        }
        Expr::Index(base, index) => {
            collect_var_writes(base, out);
            collect_var_writes(index, out);
        }
        Expr::Prop(base, _) => collect_var_writes(base, out),
        _ => {}
    }
}

/// Whether a statement contains any call, `new`, property/index write, or
/// inc/dec of a non-local — i.e. anything with side effects beyond writing
/// plain variables. Used by the reordering variant generator to decide
/// which adjacent statements commute.
pub fn stmt_has_heap_effects(stmt: &Stmt) -> bool {
    let mut found = false;
    let mut check = |e: &Expr| {
        if matches!(
            e,
            Expr::Call(_, _)
                | Expr::New(_, _)
                | Expr::Assign(Target::Index(_, _), _)
                | Expr::Assign(Target::Prop(_, _), _)
                | Expr::IncDec {
                    target: Target::Index(_, _),
                    ..
                }
                | Expr::IncDec {
                    target: Target::Prop(_, _),
                    ..
                }
        ) {
            found = true;
        }
    };
    // Reuse the mutation walker in read-only fashion via a clone.
    let mut cloned = stmt.clone();
    mutate_exprs_in_stmt(&mut cloned, &mut |e| check(e));
    found
}

/// All functions in the program, including nested ones, in declaration
/// order.
pub fn all_functions(program: &Program) -> Vec<&FunctionDecl> {
    let mut out: Vec<&FunctionDecl> = Vec::new();
    fn walk_stmts<'a>(stmts: &'a [Stmt], out: &mut Vec<&'a FunctionDecl>) {
        for s in stmts {
            match s {
                Stmt::Func(f) => {
                    out.push(f);
                    walk_stmts(&f.body, out);
                }
                Stmt::If(_, a, b) => {
                    walk_stmts(a, out);
                    walk_stmts(b, out);
                }
                Stmt::While(_, body) => walk_stmts(body, out),
                Stmt::For { body, init, .. } => {
                    if let Some(i) = init {
                        walk_stmts(std::slice::from_ref(i), out);
                    }
                    walk_stmts(body, out);
                }
                Stmt::Block(body) => walk_stmts(body, out),
                _ => {}
            }
        }
    }
    for f in &program.functions {
        out.push(f);
        walk_stmts(&f.body, &mut out);
    }
    walk_stmts(&program.top_level, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_program;

    #[test]
    fn mutate_renames_variables() {
        let mut p = parse_program("var abc = 1; abc = abc + 2;").unwrap();
        mutate_exprs(&mut p, &mut |e| {
            if let Expr::Var(name) = e {
                if name == "abc" {
                    *name = "z".to_owned();
                }
            }
        });
        let printed = crate::print_program(&p);
        assert!(printed.contains("z + 2"), "{printed}");
    }

    #[test]
    fn collects_reads_and_writes() {
        let p = parse_program("x = a + b[c];").unwrap();
        let expr = match &p.top_level[0] {
            crate::ast::Stmt::Expr(e) => e,
            _ => unreachable!(),
        };
        let mut reads = Vec::new();
        collect_var_reads(expr, &mut reads);
        assert!(reads.contains(&"a".to_owned()));
        assert!(reads.contains(&"b".to_owned()));
        assert!(reads.contains(&"c".to_owned()));
        let mut writes = Vec::new();
        collect_var_writes(expr, &mut writes);
        assert_eq!(writes, vec!["x"]);
    }

    #[test]
    fn heap_effects_detection() {
        let p = parse_program("a = 1; b[0] = 2; f(); o.p = 3;").unwrap();
        assert!(!stmt_has_heap_effects(&p.top_level[0]));
        assert!(stmt_has_heap_effects(&p.top_level[1]));
        assert!(stmt_has_heap_effects(&p.top_level[2]));
        assert!(stmt_has_heap_effects(&p.top_level[3]));
    }

    #[test]
    fn finds_nested_functions() {
        let p =
            parse_program("function a() { function b() {} } function c() {} if (x) {} ").unwrap();
        let names: Vec<_> = all_functions(&p).iter().map(|f| f.name.clone()).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }
}

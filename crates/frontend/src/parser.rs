//! Recursive-descent parser for minijs.

use crate::ast::{BinOp, Expr, FunctionDecl, Program, Stmt, Target, UnOp};
use crate::error::ParseError;
use crate::lexer::tokenize;
use crate::token::{Span, Token, TokenKind};

/// Parses a complete minijs program.
///
/// Top-level `function` declarations are collected into
/// [`Program::functions`]; nested function declarations stay inline as
/// [`Stmt::Func`] nodes (the bytecode compiler hoists them).
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first syntax error encountered.
///
/// # Examples
///
/// ```
/// use jitbull_frontend::parse_program;
/// let p = parse_program("function f(x) { return x * 2; } f(21);")?;
/// assert_eq!(p.functions[0].name, "f");
/// assert_eq!(p.top_level.len(), 1);
/// # Ok::<(), jitbull_frontend::ParseError>(())
/// ```
pub fn parse_program(source: &str) -> Result<Program, ParseError> {
    let tokens = tokenize(source)?;
    Parser::new(tokens).program()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Self {
        Parser { tokens, pos: 0 }
    }

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn advance(&mut self) -> TokenKind {
        let kind = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        kind
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind) -> Result<(), ParseError> {
        if self.peek() == &kind {
            self.advance();
            Ok(())
        } else {
            Err(ParseError::new(
                format!("expected `{kind}`, found `{}`", self.peek()),
                self.span(),
            ))
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                self.advance();
                Ok(name)
            }
            other => Err(ParseError::new(
                format!("expected identifier, found `{other}`"),
                self.span(),
            )),
        }
    }

    fn program(mut self) -> Result<Program, ParseError> {
        let mut program = Program::new();
        while self.peek() != &TokenKind::Eof {
            if self.peek() == &TokenKind::Function {
                program.functions.push(self.function_decl()?);
            } else {
                program.top_level.push(self.statement()?);
            }
        }
        Ok(program)
    }

    fn function_decl(&mut self) -> Result<FunctionDecl, ParseError> {
        self.expect(TokenKind::Function)?;
        let name = self.expect_ident()?;
        self.expect(TokenKind::LParen)?;
        let mut params = Vec::new();
        if self.peek() != &TokenKind::RParen {
            loop {
                params.push(self.expect_ident()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(TokenKind::RParen)?;
        let body = self.block()?;
        Ok(FunctionDecl { name, params, body })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.expect(TokenKind::LBrace)?;
        let mut stmts = Vec::new();
        while self.peek() != &TokenKind::RBrace && self.peek() != &TokenKind::Eof {
            stmts.push(self.statement()?);
        }
        self.expect(TokenKind::RBrace)?;
        Ok(stmts)
    }

    /// Either a braced block or a single statement (for `if`/loops without
    /// braces).
    fn block_or_stmt(&mut self) -> Result<Vec<Stmt>, ParseError> {
        if self.peek() == &TokenKind::LBrace {
            self.block()
        } else {
            Ok(vec![self.statement()?])
        }
    }

    fn statement(&mut self) -> Result<Stmt, ParseError> {
        match self.peek() {
            TokenKind::Var => self.var_decl(),
            TokenKind::Function => Ok(Stmt::Func(self.function_decl()?)),
            TokenKind::If => self.if_stmt(),
            TokenKind::While => self.while_stmt(),
            TokenKind::For => self.for_stmt(),
            TokenKind::Return => {
                self.advance();
                let value = if self.peek() == &TokenKind::Semicolon {
                    None
                } else {
                    Some(self.expression()?)
                };
                self.eat(&TokenKind::Semicolon);
                Ok(Stmt::Return(value))
            }
            TokenKind::Break => {
                self.advance();
                self.eat(&TokenKind::Semicolon);
                Ok(Stmt::Break)
            }
            TokenKind::Continue => {
                self.advance();
                self.eat(&TokenKind::Semicolon);
                Ok(Stmt::Continue)
            }
            TokenKind::LBrace => Ok(Stmt::Block(self.block()?)),
            TokenKind::Semicolon => {
                self.advance();
                Ok(Stmt::Block(Vec::new()))
            }
            _ => {
                let expr = self.expression()?;
                self.eat(&TokenKind::Semicolon);
                Ok(Stmt::Expr(expr))
            }
        }
    }

    fn var_decl(&mut self) -> Result<Stmt, ParseError> {
        self.expect(TokenKind::Var)?;
        let mut decls = Vec::new();
        loop {
            let name = self.expect_ident()?;
            let init = if self.eat(&TokenKind::Assign) {
                Some(self.assignment()?)
            } else {
                None
            };
            decls.push(Stmt::VarDecl(name, init));
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.eat(&TokenKind::Semicolon);
        if decls.len() == 1 {
            Ok(decls.pop().unwrap())
        } else {
            Ok(Stmt::Block(decls))
        }
    }

    fn if_stmt(&mut self) -> Result<Stmt, ParseError> {
        self.expect(TokenKind::If)?;
        self.expect(TokenKind::LParen)?;
        let cond = self.expression()?;
        self.expect(TokenKind::RParen)?;
        let then_body = self.block_or_stmt()?;
        let else_body = if self.eat(&TokenKind::Else) {
            if self.peek() == &TokenKind::If {
                vec![self.if_stmt()?]
            } else {
                self.block_or_stmt()?
            }
        } else {
            Vec::new()
        };
        Ok(Stmt::If(cond, then_body, else_body))
    }

    fn while_stmt(&mut self) -> Result<Stmt, ParseError> {
        self.expect(TokenKind::While)?;
        self.expect(TokenKind::LParen)?;
        let cond = self.expression()?;
        self.expect(TokenKind::RParen)?;
        let body = self.block_or_stmt()?;
        Ok(Stmt::While(cond, body))
    }

    fn for_stmt(&mut self) -> Result<Stmt, ParseError> {
        self.expect(TokenKind::For)?;
        self.expect(TokenKind::LParen)?;
        let init = if self.peek() == &TokenKind::Semicolon {
            self.advance();
            None
        } else if self.peek() == &TokenKind::Var {
            Some(Box::new(self.var_decl()?))
        } else {
            let e = self.expression()?;
            self.expect(TokenKind::Semicolon)?;
            Some(Box::new(Stmt::Expr(e)))
        };
        let cond = if self.peek() == &TokenKind::Semicolon {
            None
        } else {
            Some(self.expression()?)
        };
        self.expect(TokenKind::Semicolon)?;
        let step = if self.peek() == &TokenKind::RParen {
            None
        } else {
            Some(self.expression()?)
        };
        self.expect(TokenKind::RParen)?;
        let body = self.block_or_stmt()?;
        Ok(Stmt::For {
            init,
            cond,
            step,
            body,
        })
    }

    fn expression(&mut self) -> Result<Expr, ParseError> {
        self.assignment()
    }

    fn assignment(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.conditional()?;
        let compound = |op: BinOp| Some(op);
        let op = match self.peek() {
            TokenKind::Assign => None,
            TokenKind::PlusAssign => compound(BinOp::Add),
            TokenKind::MinusAssign => compound(BinOp::Sub),
            TokenKind::StarAssign => compound(BinOp::Mul),
            TokenKind::SlashAssign => compound(BinOp::Div),
            TokenKind::PercentAssign => compound(BinOp::Mod),
            TokenKind::AmpAssign => compound(BinOp::BitAnd),
            TokenKind::PipeAssign => compound(BinOp::BitOr),
            TokenKind::CaretAssign => compound(BinOp::BitXor),
            TokenKind::ShlAssign => compound(BinOp::Shl),
            TokenKind::ShrAssign => compound(BinOp::Shr),
            TokenKind::UshrAssign => compound(BinOp::Ushr),
            _ => return Ok(lhs),
        };
        let span = self.span();
        self.advance();
        let rhs = self.assignment()?;
        let target = expr_to_target(&lhs)
            .ok_or_else(|| ParseError::new("invalid assignment target", span))?;
        let value = match op {
            None => rhs,
            Some(op) => Expr::Binary(op, Box::new(lhs), Box::new(rhs)),
        };
        Ok(Expr::Assign(target, Box::new(value)))
    }

    fn conditional(&mut self) -> Result<Expr, ParseError> {
        let cond = self.logical_or()?;
        if self.eat(&TokenKind::Question) {
            let then = self.assignment()?;
            self.expect(TokenKind::Colon)?;
            let other = self.assignment()?;
            Ok(Expr::Conditional(
                Box::new(cond),
                Box::new(then),
                Box::new(other),
            ))
        } else {
            Ok(cond)
        }
    }

    fn logical_or(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.logical_and()?;
        while self.eat(&TokenKind::PipePipe) {
            let rhs = self.logical_and()?;
            lhs = Expr::LogicalOr(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn logical_and(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.bit_or()?;
        while self.eat(&TokenKind::AmpAmp) {
            let rhs = self.bit_or()?;
            lhs = Expr::LogicalAnd(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn bit_or(&mut self) -> Result<Expr, ParseError> {
        self.binary_level(0)
    }

    /// Precedence-climbing over the plain binary operators.
    fn binary_level(&mut self, level: usize) -> Result<Expr, ParseError> {
        const LEVELS: &[&[(TokenKind, BinOp)]] = &[
            &[(TokenKind::Pipe, BinOp::BitOr)],
            &[(TokenKind::Caret, BinOp::BitXor)],
            &[(TokenKind::Amp, BinOp::BitAnd)],
            &[
                (TokenKind::EqEq, BinOp::Eq),
                (TokenKind::NotEq, BinOp::Ne),
                (TokenKind::EqEqEq, BinOp::StrictEq),
                (TokenKind::NotEqEq, BinOp::StrictNe),
            ],
            &[
                (TokenKind::Lt, BinOp::Lt),
                (TokenKind::Le, BinOp::Le),
                (TokenKind::Gt, BinOp::Gt),
                (TokenKind::Ge, BinOp::Ge),
            ],
            &[
                (TokenKind::Shl, BinOp::Shl),
                (TokenKind::Shr, BinOp::Shr),
                (TokenKind::Ushr, BinOp::Ushr),
            ],
            &[
                (TokenKind::Plus, BinOp::Add),
                (TokenKind::Minus, BinOp::Sub),
            ],
            &[
                (TokenKind::Star, BinOp::Mul),
                (TokenKind::Slash, BinOp::Div),
                (TokenKind::Percent, BinOp::Mod),
            ],
        ];
        if level == LEVELS.len() {
            return self.unary();
        }
        let mut lhs = self.binary_level(level + 1)?;
        'outer: loop {
            for (tok, op) in LEVELS[level] {
                if self.peek() == tok {
                    self.advance();
                    let rhs = self.binary_level(level + 1)?;
                    lhs = Expr::Binary(*op, Box::new(lhs), Box::new(rhs));
                    continue 'outer;
                }
            }
            break;
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        let op = match self.peek() {
            TokenKind::Minus => Some(UnOp::Neg),
            TokenKind::Not => Some(UnOp::Not),
            TokenKind::Tilde => Some(UnOp::BitNot),
            TokenKind::Plus => Some(UnOp::Plus),
            TokenKind::Typeof => Some(UnOp::Typeof),
            _ => None,
        };
        if let Some(op) = op {
            self.advance();
            let operand = self.unary()?;
            return Ok(Expr::Unary(op, Box::new(operand)));
        }
        if self.peek() == &TokenKind::PlusPlus || self.peek() == &TokenKind::MinusMinus {
            let delta = if self.peek() == &TokenKind::PlusPlus {
                1
            } else {
                -1
            };
            let span = self.span();
            self.advance();
            let operand = self.unary()?;
            let target = expr_to_target(&operand)
                .ok_or_else(|| ParseError::new("invalid increment target", span))?;
            return Ok(Expr::IncDec {
                target,
                delta,
                prefix: true,
            });
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, ParseError> {
        let mut expr = self.primary()?;
        loop {
            match self.peek() {
                TokenKind::LParen => {
                    self.advance();
                    let args = self.call_args()?;
                    expr = Expr::Call(Box::new(expr), args);
                }
                TokenKind::LBracket => {
                    self.advance();
                    let index = self.expression()?;
                    self.expect(TokenKind::RBracket)?;
                    expr = Expr::Index(Box::new(expr), Box::new(index));
                }
                TokenKind::Dot => {
                    self.advance();
                    let name = self.property_name()?;
                    expr = Expr::Prop(Box::new(expr), name);
                }
                TokenKind::PlusPlus | TokenKind::MinusMinus => {
                    let delta = if self.peek() == &TokenKind::PlusPlus {
                        1
                    } else {
                        -1
                    };
                    let span = self.span();
                    self.advance();
                    let target = expr_to_target(&expr)
                        .ok_or_else(|| ParseError::new("invalid increment target", span))?;
                    expr = Expr::IncDec {
                        target,
                        delta,
                        prefix: false,
                    };
                }
                _ => break,
            }
        }
        Ok(expr)
    }

    /// Property names may be identifiers or keywords used as member names
    /// (e.g. `obj.delete` is tolerated).
    fn property_name(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                self.advance();
                Ok(name)
            }
            TokenKind::Delete => {
                self.advance();
                Ok("delete".to_owned())
            }
            TokenKind::New => {
                self.advance();
                Ok("new".to_owned())
            }
            other => Err(ParseError::new(
                format!("expected property name, found `{other}`"),
                self.span(),
            )),
        }
    }

    fn call_args(&mut self) -> Result<Vec<Expr>, ParseError> {
        let mut args = Vec::new();
        if self.peek() != &TokenKind::RParen {
            loop {
                args.push(self.assignment()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(TokenKind::RParen)?;
        Ok(args)
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            TokenKind::Number(n) => {
                self.advance();
                Ok(Expr::Number(n))
            }
            TokenKind::Str(s) => {
                self.advance();
                Ok(Expr::Str(s))
            }
            TokenKind::True => {
                self.advance();
                Ok(Expr::Bool(true))
            }
            TokenKind::False => {
                self.advance();
                Ok(Expr::Bool(false))
            }
            TokenKind::Undefined => {
                self.advance();
                Ok(Expr::Undefined)
            }
            TokenKind::Null => {
                self.advance();
                Ok(Expr::Null)
            }
            TokenKind::This => {
                self.advance();
                Ok(Expr::This)
            }
            TokenKind::Ident(name) => {
                self.advance();
                Ok(Expr::Var(name))
            }
            TokenKind::New => {
                self.advance();
                let name = self.expect_ident()?;
                let args = if self.eat(&TokenKind::LParen) {
                    self.call_args()?
                } else {
                    Vec::new()
                };
                Ok(Expr::New(name, args))
            }
            TokenKind::LParen => {
                self.advance();
                let e = self.expression()?;
                self.expect(TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::LBracket => {
                self.advance();
                let mut items = Vec::new();
                if self.peek() != &TokenKind::RBracket {
                    loop {
                        items.push(self.assignment()?);
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                }
                self.expect(TokenKind::RBracket)?;
                Ok(Expr::Array(items))
            }
            TokenKind::LBrace => {
                self.advance();
                let mut props = Vec::new();
                if self.peek() != &TokenKind::RBrace {
                    loop {
                        let key = match self.peek().clone() {
                            TokenKind::Ident(k) => {
                                self.advance();
                                k
                            }
                            TokenKind::Str(k) => {
                                self.advance();
                                k
                            }
                            TokenKind::Number(n) => {
                                self.advance();
                                format_number_key(n)
                            }
                            other => {
                                return Err(ParseError::new(
                                    format!("expected property key, found `{other}`"),
                                    self.span(),
                                ))
                            }
                        };
                        self.expect(TokenKind::Colon)?;
                        let value = self.assignment()?;
                        props.push((key, value));
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                }
                self.expect(TokenKind::RBrace)?;
                Ok(Expr::Object(props))
            }
            other => Err(ParseError::new(
                format!("unexpected token `{other}` in expression"),
                self.span(),
            )),
        }
    }
}

fn format_number_key(n: f64) -> String {
    if n.fract() == 0.0 && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

/// Converts an expression used on the left-hand side of an assignment into a
/// [`Target`], if it is a valid assignment target.
pub fn expr_to_target(expr: &Expr) -> Option<Target> {
    match expr {
        Expr::Var(name) => Some(Target::Var(name.clone())),
        Expr::Index(base, index) => Some(Target::Index(base.clone(), index.clone())),
        Expr::Prop(base, name) => Some(Target::Prop(base.clone(), name.clone())),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> Program {
        parse_program(src).unwrap()
    }

    #[test]
    fn parses_function_and_call() {
        let p = parse("function f(a, b) { return a + b; } f(1, 2);");
        assert_eq!(p.functions.len(), 1);
        assert_eq!(p.functions[0].params, vec!["a", "b"]);
        assert_eq!(p.top_level.len(), 1);
    }

    #[test]
    fn precedence_mul_over_add() {
        let p = parse("var x = 1 + 2 * 3;");
        match &p.top_level[0] {
            Stmt::VarDecl(_, Some(Expr::Binary(BinOp::Add, _, rhs))) => {
                assert!(matches!(**rhs, Expr::Binary(BinOp::Mul, _, _)));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn precedence_shift_below_relational() {
        // `a << 1 < b` parses as `(a << 1) < b`.
        let p = parse("x = a << 1 < b;");
        match &p.top_level[0] {
            Stmt::Expr(Expr::Assign(_, value)) => {
                assert!(matches!(**value, Expr::Binary(BinOp::Lt, _, _)));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn parses_for_loop_with_all_headers() {
        let p = parse("for (var i = 0; i < 10; i++) { t = t + i; }");
        match &p.top_level[0] {
            Stmt::For {
                init: Some(_),
                cond: Some(_),
                step: Some(_),
                body,
            } => assert_eq!(body.len(), 1),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn parses_infinite_for() {
        let p = parse("for (;;) { break; }");
        assert!(matches!(
            &p.top_level[0],
            Stmt::For {
                init: None,
                cond: None,
                step: None,
                ..
            }
        ));
    }

    #[test]
    fn parses_member_and_index_chains() {
        let p = parse("a.b[c].d = 1;");
        match &p.top_level[0] {
            Stmt::Expr(Expr::Assign(Target::Prop(base, name), _)) => {
                assert_eq!(name, "d");
                assert!(matches!(**base, Expr::Index(_, _)));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn parses_method_call_with_this() {
        let p = parse("function C() { this.x = 1; } var o = new C(); o.m(1);");
        assert_eq!(p.functions.len(), 1);
        match &p.top_level[1] {
            Stmt::Expr(Expr::Call(callee, args)) => {
                assert!(matches!(**callee, Expr::Prop(_, _)));
                assert_eq!(args.len(), 1);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn compound_assignment_desugars() {
        let p = parse("x += 2;");
        match &p.top_level[0] {
            Stmt::Expr(Expr::Assign(Target::Var(n), value)) => {
                assert_eq!(n, "x");
                assert!(matches!(**value, Expr::Binary(BinOp::Add, _, _)));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn postfix_and_prefix_incdec() {
        let p = parse("i++; ++j; k--;");
        assert!(matches!(
            &p.top_level[0],
            Stmt::Expr(Expr::IncDec {
                prefix: false,
                delta: 1,
                ..
            })
        ));
        assert!(matches!(
            &p.top_level[1],
            Stmt::Expr(Expr::IncDec {
                prefix: true,
                delta: 1,
                ..
            })
        ));
        assert!(matches!(
            &p.top_level[2],
            Stmt::Expr(Expr::IncDec {
                prefix: false,
                delta: -1,
                ..
            })
        ));
    }

    #[test]
    fn ternary_and_logical() {
        let p = parse("x = a && b ? c || d : e;");
        match &p.top_level[0] {
            Stmt::Expr(Expr::Assign(_, value)) => {
                assert!(matches!(**value, Expr::Conditional(_, _, _)));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn object_and_array_literals() {
        let p = parse("var o = {a: 1, 'b': 2, 3: 4}; var arr = [1, 2, 3];");
        match &p.top_level[0] {
            Stmt::VarDecl(_, Some(Expr::Object(props))) => {
                assert_eq!(props.len(), 3);
                assert_eq!(props[2].0, "3");
            }
            other => panic!("unexpected: {other:?}"),
        }
        match &p.top_level[1] {
            Stmt::VarDecl(_, Some(Expr::Array(items))) => assert_eq!(items.len(), 3),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn nested_function_stays_inline() {
        let p = parse("function outer() { function inner() { return 1; } return inner(); }");
        assert_eq!(p.functions.len(), 1);
        assert!(matches!(p.functions[0].body[0], Stmt::Func(_)));
    }

    #[test]
    fn else_if_chain() {
        let p = parse("if (a) { x = 1; } else if (b) { x = 2; } else { x = 3; }");
        match &p.top_level[0] {
            Stmt::If(_, _, else_body) => {
                assert!(matches!(else_body[0], Stmt::If(_, _, _)));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn invalid_assignment_target_is_error() {
        assert!(parse_program("1 = 2;").is_err());
        assert!(parse_program("f() = 2;").is_err());
    }

    #[test]
    fn reports_unexpected_token() {
        let err = parse_program("var = 1;").unwrap_err();
        assert!(err.message().contains("expected identifier"));
    }

    #[test]
    fn multi_var_declaration() {
        let p = parse("var a = 1, b = 2, c;");
        match &p.top_level[0] {
            Stmt::Block(decls) => assert_eq!(decls.len(), 3),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn new_without_parens() {
        let p = parse("var o = new Thing;");
        assert!(matches!(
            &p.top_level[0],
            Stmt::VarDecl(_, Some(Expr::New(_, _)))
        ));
    }
}

//! Pretty-printer rendering an AST back to minijs source.
//!
//! The printer is used by the variant generators: a transformed AST is
//! printed and re-parsed, guaranteeing that variants are themselves valid
//! minijs programs. Printing is deterministic, so
//! `parse(print(parse(s))) == parse(s)` holds for every valid program `s`
//! (a property test in this module checks representative cases).

use std::fmt::Write as _;

use crate::ast::{Expr, FunctionDecl, Program, Stmt, Target, UnOp};

/// Rendering style for [`print_program_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Style {
    /// Indented, one statement per line.
    #[default]
    Pretty,
    /// Minified: no newlines, minimal whitespace (the `Terser`-like mode
    /// used by the minification variant generator).
    Minified,
}

/// Prints a program in [`Style::Pretty`].
///
/// # Examples
///
/// ```
/// use jitbull_frontend::{parse_program, print_program};
/// let p = parse_program("var x=1;")?;
/// assert_eq!(print_program(&p), "var x = 1;\n");
/// # Ok::<(), jitbull_frontend::ParseError>(())
/// ```
pub fn print_program(program: &Program) -> String {
    print_program_with(program, Style::Pretty)
}

/// Prints a program in the given [`Style`].
pub fn print_program_with(program: &Program, style: Style) -> String {
    let mut p = Printer {
        out: String::new(),
        indent: 0,
        style,
    };
    for func in &program.functions {
        p.function(func);
    }
    for stmt in &program.top_level {
        p.stmt(stmt);
    }
    p.out
}

/// The sign character the expression's printed form starts with, when
/// that could fuse with a preceding unary operator.
fn leading_char(e: &Expr) -> Option<char> {
    match e {
        Expr::Unary(UnOp::Neg, _) => Some('-'),
        Expr::Unary(UnOp::Plus, _) => Some('+'),
        Expr::Number(n) if *n < 0.0 => Some('-'),
        Expr::IncDec {
            delta,
            prefix: true,
            ..
        } => Some(if *delta > 0 { '+' } else { '-' }),
        _ => None,
    }
}

/// Whether the expression's leftmost printed token would be `{`.
fn leading_object(e: &Expr) -> bool {
    match e {
        Expr::Object(_) => true,
        Expr::Binary(_, lhs, _) | Expr::LogicalAnd(lhs, _) | Expr::LogicalOr(lhs, _) => {
            leading_object(lhs)
        }
        Expr::Conditional(cond, _, _) => leading_object(cond),
        _ => false,
    }
}

struct Printer {
    out: String,
    indent: usize,
    style: Style,
}

impl Printer {
    fn nl(&mut self) {
        if self.style == Style::Pretty {
            self.out.push('\n');
        }
    }

    fn pad(&mut self) {
        if self.style == Style::Pretty {
            for _ in 0..self.indent {
                self.out.push_str("  ");
            }
        }
    }

    fn sp(&mut self) {
        if self.style == Style::Pretty {
            self.out.push(' ');
        }
    }

    fn function(&mut self, f: &FunctionDecl) {
        self.pad();
        let _ = write!(self.out, "function {}({})", f.name, f.params.join(","));
        self.body(&f.body);
        self.nl();
    }

    fn body(&mut self, stmts: &[Stmt]) {
        self.sp();
        self.out.push('{');
        self.nl();
        self.indent += 1;
        for s in stmts {
            self.stmt(s);
        }
        self.indent -= 1;
        self.pad();
        self.out.push('}');
    }

    fn stmt(&mut self, stmt: &Stmt) {
        match stmt {
            Stmt::VarDecl(name, init) => {
                self.pad();
                let _ = write!(self.out, "var {name}");
                if let Some(e) = init {
                    if self.style == Style::Pretty {
                        self.out.push_str(" = ");
                    } else {
                        self.out.push('=');
                    }
                    self.expr(e, 0);
                }
                self.out.push(';');
                self.nl();
            }
            Stmt::Expr(e) => {
                self.pad();
                // JS grammar: a statement starting with `{` is a block, so
                // an expression statement whose leftmost token would be an
                // object literal must be parenthesised.
                if leading_object(e) {
                    self.out.push('(');
                    self.expr(e, 0);
                    self.out.push(')');
                } else {
                    self.expr(e, 0);
                }
                self.out.push(';');
                self.nl();
            }
            Stmt::If(cond, then_body, else_body) => {
                self.pad();
                self.out.push_str("if");
                self.sp();
                self.out.push('(');
                self.expr(cond, 0);
                self.out.push(')');
                self.body(then_body);
                if !else_body.is_empty() {
                    self.sp();
                    self.out.push_str("else");
                    self.body(else_body);
                }
                self.nl();
            }
            Stmt::While(cond, body) => {
                self.pad();
                self.out.push_str("while");
                self.sp();
                self.out.push('(');
                self.expr(cond, 0);
                self.out.push(')');
                self.body(body);
                self.nl();
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                self.pad();
                self.out.push_str("for");
                self.sp();
                self.out.push('(');
                match init.as_deref() {
                    Some(Stmt::VarDecl(name, Some(e))) => {
                        let _ = write!(self.out, "var {name}");
                        if self.style == Style::Pretty {
                            self.out.push_str(" = ");
                        } else {
                            self.out.push('=');
                        }
                        self.expr(e, 0);
                    }
                    Some(Stmt::VarDecl(name, None)) => {
                        let _ = write!(self.out, "var {name}");
                    }
                    Some(Stmt::Expr(e)) => self.expr(e, 0),
                    Some(Stmt::Block(decls)) => {
                        // Multi-declaration `for (var a = 1, b = 2; …)`.
                        let mut first = true;
                        for d in decls {
                            if let Stmt::VarDecl(name, init) = d {
                                if first {
                                    self.out.push_str("var ");
                                    first = false;
                                } else {
                                    self.out.push(',');
                                }
                                let _ = write!(self.out, "{name}");
                                if let Some(e) = init {
                                    self.out.push('=');
                                    self.expr(e, 0);
                                }
                            }
                        }
                    }
                    Some(other) => panic!("unprintable for-init: {other:?}"),
                    None => {}
                }
                self.out.push(';');
                if let Some(c) = cond {
                    self.sp();
                    self.expr(c, 0);
                }
                self.out.push(';');
                if let Some(s) = step {
                    self.sp();
                    self.expr(s, 0);
                }
                self.out.push(')');
                self.body(body);
                self.nl();
            }
            Stmt::Return(value) => {
                self.pad();
                self.out.push_str("return");
                if let Some(e) = value {
                    self.out.push(' ');
                    self.expr(e, 0);
                }
                self.out.push(';');
                self.nl();
            }
            Stmt::Break => {
                self.pad();
                self.out.push_str("break;");
                self.nl();
            }
            Stmt::Continue => {
                self.pad();
                self.out.push_str("continue;");
                self.nl();
            }
            Stmt::Func(f) => self.function(f),
            Stmt::Block(stmts) => {
                if stmts.is_empty() {
                    return;
                }
                self.pad();
                self.body(stmts);
                self.nl();
            }
        }
    }

    /// Prints an expression. `prec` is the minimum precedence of the
    /// surrounding context; sub-expressions with lower precedence get
    /// parenthesised. We keep the scheme simple by parenthesising all nested
    /// binary/logical/conditional/assignment expressions whose own
    /// precedence is ambiguous.
    fn expr(&mut self, expr: &Expr, prec: u8) {
        match expr {
            Expr::Number(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 && *n != f64::NEG_INFINITY {
                    let _ = write!(self.out, "{}", *n as i64);
                } else {
                    let _ = write!(self.out, "{n}");
                }
            }
            Expr::Str(s) => {
                self.out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => self.out.push_str("\\\""),
                        '\\' => self.out.push_str("\\\\"),
                        '\n' => self.out.push_str("\\n"),
                        '\t' => self.out.push_str("\\t"),
                        '\r' => self.out.push_str("\\r"),
                        other => self.out.push(other),
                    }
                }
                self.out.push('"');
            }
            Expr::Bool(b) => {
                let _ = write!(self.out, "{b}");
            }
            Expr::Undefined => self.out.push_str("undefined"),
            Expr::Null => self.out.push_str("null"),
            Expr::This => self.out.push_str("this"),
            Expr::Var(name) => self.out.push_str(name),
            Expr::Array(items) => {
                self.out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        self.out.push(',');
                        self.sp();
                    }
                    self.expr(item, 1);
                }
                self.out.push(']');
            }
            Expr::Object(props) => {
                self.out.push('{');
                for (i, (k, v)) in props.iter().enumerate() {
                    if i > 0 {
                        self.out.push(',');
                        self.sp();
                    }
                    let _ = write!(self.out, "{k}:");
                    self.sp();
                    self.expr(v, 1);
                }
                self.out.push('}');
            }
            Expr::Binary(op, lhs, rhs) => {
                let needs_parens = prec > 0;
                if needs_parens {
                    self.out.push('(');
                }
                self.expr(lhs, 1);
                self.sp();
                self.out.push_str(op.symbol());
                self.sp();
                self.expr(rhs, 1);
                if needs_parens {
                    self.out.push(')');
                }
            }
            Expr::Unary(op, operand) => {
                self.out.push_str(op.symbol());
                // `-(-x)` and `+(+x)`: without parens the two signs lex
                // as a single `--`/`++` token.
                let clash = match op {
                    UnOp::Neg => leading_char(operand) == Some('-'),
                    UnOp::Plus => leading_char(operand) == Some('+'),
                    _ => false,
                };
                if clash {
                    self.out.push('(');
                    self.expr(operand, 0);
                    self.out.push(')');
                } else {
                    self.expr(operand, 2);
                }
            }
            Expr::LogicalAnd(lhs, rhs) => {
                let needs_parens = prec > 0;
                if needs_parens {
                    self.out.push('(');
                }
                self.expr(lhs, 1);
                self.sp();
                self.out.push_str("&&");
                self.sp();
                self.expr(rhs, 1);
                if needs_parens {
                    self.out.push(')');
                }
            }
            Expr::LogicalOr(lhs, rhs) => {
                let needs_parens = prec > 0;
                if needs_parens {
                    self.out.push('(');
                }
                self.expr(lhs, 1);
                self.sp();
                self.out.push_str("||");
                self.sp();
                self.expr(rhs, 1);
                if needs_parens {
                    self.out.push(')');
                }
            }
            Expr::Conditional(cond, then, other) => {
                let needs_parens = prec > 0;
                if needs_parens {
                    self.out.push('(');
                }
                self.expr(cond, 1);
                self.sp();
                self.out.push('?');
                self.sp();
                self.expr(then, 1);
                self.sp();
                self.out.push(':');
                self.sp();
                self.expr(other, 1);
                if needs_parens {
                    self.out.push(')');
                }
            }
            Expr::Assign(target, value) => {
                let needs_parens = prec > 0;
                if needs_parens {
                    self.out.push('(');
                }
                self.target(target);
                self.sp();
                self.out.push('=');
                self.sp();
                self.expr(value, 1);
                if needs_parens {
                    self.out.push(')');
                }
            }
            Expr::Call(callee, args) => {
                // Parenthesise non-trivial callees (not needed for
                // var/prop/index chains).
                let trivial = matches!(
                    **callee,
                    Expr::Var(_) | Expr::Prop(_, _) | Expr::Index(_, _) | Expr::Call(_, _)
                );
                if !trivial {
                    self.out.push('(');
                }
                self.expr(callee, 2);
                if !trivial {
                    self.out.push(')');
                }
                self.out.push('(');
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        self.out.push(',');
                        self.sp();
                    }
                    self.expr(a, 1);
                }
                self.out.push(')');
            }
            Expr::New(name, args) => {
                let _ = write!(self.out, "new {name}(");
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        self.out.push(',');
                        self.sp();
                    }
                    self.expr(a, 1);
                }
                self.out.push(')');
            }
            Expr::Index(base, index) => {
                self.base_expr(base);
                self.out.push('[');
                self.expr(index, 0);
                self.out.push(']');
            }
            Expr::Prop(base, name) => {
                self.base_expr(base);
                let _ = write!(self.out, ".{name}");
            }
            Expr::IncDec {
                target,
                delta,
                prefix,
            } => {
                let op = if *delta > 0 { "++" } else { "--" };
                if *prefix {
                    self.out.push_str(op);
                    self.target(target);
                } else {
                    self.target(target);
                    self.out.push_str(op);
                }
            }
        }
    }

    /// Prints the base of a member access, parenthesising when required
    /// (e.g. `(a + b).length`, `(3).toString`).
    fn base_expr(&mut self, base: &Expr) {
        let trivial = matches!(
            base,
            Expr::Var(_)
                | Expr::Prop(_, _)
                | Expr::Index(_, _)
                | Expr::Call(_, _)
                | Expr::This
                | Expr::Array(_)
                | Expr::Str(_)
        );
        if trivial {
            self.expr(base, 2);
        } else {
            self.out.push('(');
            self.expr(base, 0);
            self.out.push(')');
        }
    }

    fn target(&mut self, target: &Target) {
        match target {
            Target::Var(name) => self.out.push_str(name),
            Target::Index(base, index) => {
                self.base_expr(base);
                self.out.push('[');
                self.expr(index, 0);
                self.out.push(']');
            }
            Target::Prop(base, name) => {
                self.base_expr(base);
                let _ = write!(self.out, ".{name}");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_program;

    fn round_trip(src: &str) {
        let p1 = parse_program(src).unwrap();
        let printed = print_program(&p1);
        let p2 = parse_program(&printed)
            .unwrap_or_else(|e| panic!("reparse of {printed:?} failed: {e}"));
        assert_eq!(p1, p2, "round trip mismatch for {src:?} -> {printed:?}");
        // And the minified form parses to the same AST too.
        let minified = print_program_with(&p1, Style::Minified);
        let p3 = parse_program(&minified)
            .unwrap_or_else(|e| panic!("reparse of minified {minified:?} failed: {e}"));
        assert_eq!(p1, p3, "minified round trip mismatch for {src:?}");
    }

    #[test]
    fn round_trips_declarations_and_loops() {
        round_trip("var x = 1; var y; x = x + 2;");
        round_trip("for (var i = 0; i < 10; i++) { s += i; }");
        round_trip("while (a < b) { a = a * 2; }");
        round_trip("for (;;) { break; }");
    }

    #[test]
    fn round_trips_expressions() {
        round_trip("x = (1 + 2) * 3 - 4 / 5 % 6;");
        round_trip("x = a & b | c ^ d;");
        round_trip("x = a << 2 >>> 1 >> 3;");
        round_trip("x = a === b ? c : d !== e;");
        round_trip("x = !a && ~b || -c;");
        round_trip("x = typeof a;");
    }

    #[test]
    fn round_trips_structures() {
        round_trip("var o = {a: 1, b: [2, 3], c: {d: 4}}; o.a = o.b[1];");
        round_trip("function C(n) { this.n = n; } var c = new C(5); c.n++;");
        round_trip("function f() { function g() { return 1; } return g(); }");
        round_trip("a.b[c + 1].d = e[f].g;");
    }

    #[test]
    fn round_trips_strings() {
        round_trip("var s = \"he said \\\"hi\\\"\\n\";");
    }

    #[test]
    fn minified_has_no_newlines() {
        let p = parse_program("var x = 1;\nvar y = 2;").unwrap();
        let min = print_program_with(&p, Style::Minified);
        assert!(!min.contains('\n'));
        assert!(!min.contains("  "));
    }

    #[test]
    fn parenthesises_number_base() {
        let p = parse_program("x = (3).foo;").unwrap();
        let printed = print_program(&p);
        assert!(printed.contains("(3).foo"), "{printed}");
        round_trip("x = (3).foo;");
    }
}

//! Abstract syntax tree for minijs.
//!
//! The AST is deliberately plain data (`pub` fields, `Clone`, `PartialEq`) so
//! that the variant generators in `jitbull-vdc` can perform source-to-source
//! transforms by direct structural manipulation.

use std::fmt;

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    Ne,
    StrictEq,
    StrictNe,
    Lt,
    Le,
    Gt,
    Ge,
    BitAnd,
    BitOr,
    BitXor,
    Shl,
    Shr,
    Ushr,
}

impl BinOp {
    /// The surface-syntax spelling of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::StrictEq => "===",
            BinOp::StrictNe => "!==",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::BitAnd => "&",
            BinOp::BitOr => "|",
            BinOp::BitXor => "^",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
            BinOp::Ushr => ">>>",
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation `-x`.
    Neg,
    /// Logical not `!x`.
    Not,
    /// Bitwise not `~x`.
    BitNot,
    /// Unary plus `+x` (number coercion).
    Plus,
    /// `typeof x`.
    Typeof,
}

impl UnOp {
    /// The surface-syntax spelling of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            UnOp::Neg => "-",
            UnOp::Not => "!",
            UnOp::BitNot => "~",
            UnOp::Plus => "+",
            UnOp::Typeof => "typeof ",
        }
    }
}

/// Assignment targets: plain variables, indexed elements, or properties.
#[derive(Debug, Clone, PartialEq)]
pub enum Target {
    /// `name = …`
    Var(String),
    /// `base[index] = …`
    Index(Box<Expr>, Box<Expr>),
    /// `base.prop = …`
    Prop(Box<Expr>, String),
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Numeric literal.
    Number(f64),
    /// String literal.
    Str(String),
    /// Boolean literal.
    Bool(bool),
    /// The `undefined` literal.
    Undefined,
    /// The `null` literal.
    Null,
    /// The `this` receiver inside a method call.
    This,
    /// Variable (or function) reference.
    Var(String),
    /// Array literal `[a, b, c]`.
    Array(Vec<Expr>),
    /// Object literal `{k: v, …}`.
    Object(Vec<(String, Expr)>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Short-circuit `a && b`.
    LogicalAnd(Box<Expr>, Box<Expr>),
    /// Short-circuit `a || b`.
    LogicalOr(Box<Expr>, Box<Expr>),
    /// Ternary `cond ? a : b`.
    Conditional(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Assignment (expression-valued, like JS).
    Assign(Target, Box<Expr>),
    /// Call `callee(args…)`. The callee is an arbitrary expression; a
    /// property-access callee becomes a method call (`this` bound to base).
    Call(Box<Expr>, Vec<Expr>),
    /// Constructor call `new Callee(args…)`.
    New(String, Vec<Expr>),
    /// Indexed element access `base[index]`.
    Index(Box<Expr>, Box<Expr>),
    /// Property access `base.prop` (including `.length`).
    Prop(Box<Expr>, String),
    /// Pre/post increment/decrement, represented explicitly to preserve
    /// value semantics (`x++` yields the old value).
    IncDec {
        /// The updated target.
        target: Target,
        /// +1 or -1.
        delta: i8,
        /// Whether the operator is prefix (`++x`) or postfix (`x++`).
        prefix: bool,
    },
}

impl Expr {
    /// Convenience constructor for a variable reference.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(name.into())
    }

    /// Convenience constructor for a number literal.
    pub fn num(n: f64) -> Expr {
        Expr::Number(n)
    }
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `var name = init;` (init defaults to `undefined`).
    VarDecl(String, Option<Expr>),
    /// Bare expression statement.
    Expr(Expr),
    /// `if (cond) { … } else { … }`.
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    /// `while (cond) { … }`.
    While(Expr, Vec<Stmt>),
    /// `for (init; cond; step) { … }`. All three headers are optional.
    For {
        /// Loop initializer, run once.
        init: Option<Box<Stmt>>,
        /// Loop condition; absent means `true`.
        cond: Option<Expr>,
        /// Step expression, run after each iteration.
        step: Option<Expr>,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `return expr;` (expr defaults to `undefined`).
    Return(Option<Expr>),
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// Nested function declaration (hoisted; may not capture locals).
    Func(FunctionDecl),
    /// A `{ … }` block (minijs is function-scoped, so this only groups).
    Block(Vec<Stmt>),
}

/// A function declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionDecl {
    /// The function's global name.
    pub name: String,
    /// Parameter names.
    pub params: Vec<String>,
    /// Body statements.
    pub body: Vec<Stmt>,
}

/// A parsed minijs program: hoisted function declarations plus top-level
/// statements executed in order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// All function declarations, including nested ones (hoisted).
    pub functions: Vec<FunctionDecl>,
    /// Top-level statements.
    pub top_level: Vec<Stmt>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Program::default()
    }

    /// Looks up a function declaration by name.
    pub fn function(&self, name: &str) -> Option<&FunctionDecl> {
        self.functions.iter().find(|f| f.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_symbols_round_trip() {
        assert_eq!(BinOp::Ushr.symbol(), ">>>");
        assert_eq!(BinOp::StrictEq.to_string(), "===");
    }

    #[test]
    fn program_function_lookup() {
        let mut p = Program::new();
        p.functions.push(FunctionDecl {
            name: "f".into(),
            params: vec![],
            body: vec![],
        });
        assert!(p.function("f").is_some());
        assert!(p.function("g").is_none());
    }
}

//! Property test: for any well-formed AST, `parse(print(ast)) == ast`
//! in both pretty and minified styles. This is what lets the variant
//! generators treat print-then-reparse as a lossless pipeline.

use proptest::prelude::*;

use jitbull_frontend::ast::{BinOp, Expr, FunctionDecl, Program, Stmt, Target, UnOp};
use jitbull_frontend::printer::{print_program_with, Style};
use jitbull_frontend::{parse_program, print_program};

const KEYWORDS: &[&str] = &[
    "var",
    "let",
    "const",
    "function",
    "return",
    "if",
    "else",
    "while",
    "for",
    "break",
    "continue",
    "true",
    "false",
    "undefined",
    "null",
    "new",
    "this",
    "typeof",
    "delete",
];

fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,5}".prop_filter("not a keyword", |s| !KEYWORDS.contains(&s.as_str()))
}

/// Property keys that are printable bare (identifier-shaped).
fn prop_name() -> impl Strategy<Value = String> {
    ident()
}

fn number() -> impl Strategy<Value = f64> {
    // Non-negative finite numbers: JS has no negative literals (a leading
    // minus parses as unary negation), and NaN has no literal at all.
    prop_oneof![
        (0u32..1000).prop_map(|n| n as f64),
        (0.0f64..1e6).prop_filter("finite", |n| n.is_finite()),
    ]
}

fn string_lit() -> impl Strategy<Value = String> {
    // Printable ASCII incl. the characters the escaper handles.
    proptest::collection::vec(
        prop_oneof![
            proptest::char::range('a', 'z').prop_map(|c| c),
            Just('"'),
            Just('\\'),
            Just('\n'),
            Just('\t'),
            Just(' '),
        ],
        0..8,
    )
    .prop_map(|cs| cs.into_iter().collect())
}

fn binop() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::Div),
        Just(BinOp::Mod),
        Just(BinOp::Eq),
        Just(BinOp::Ne),
        Just(BinOp::StrictEq),
        Just(BinOp::StrictNe),
        Just(BinOp::Lt),
        Just(BinOp::Le),
        Just(BinOp::Gt),
        Just(BinOp::Ge),
        Just(BinOp::BitAnd),
        Just(BinOp::BitOr),
        Just(BinOp::BitXor),
        Just(BinOp::Shl),
        Just(BinOp::Shr),
        Just(BinOp::Ushr),
    ]
}

fn unop() -> impl Strategy<Value = UnOp> {
    prop_oneof![
        Just(UnOp::Neg),
        Just(UnOp::Not),
        Just(UnOp::BitNot),
        Just(UnOp::Plus),
        Just(UnOp::Typeof),
    ]
}

fn expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        number().prop_map(Expr::Number),
        string_lit().prop_map(Expr::Str),
        any::<bool>().prop_map(Expr::Bool),
        Just(Expr::Undefined),
        Just(Expr::Null),
        Just(Expr::This),
        ident().prop_map(Expr::Var),
    ];
    leaf.prop_recursive(3, 32, 4, |inner| {
        let target = prop_oneof![
            ident().prop_map(Target::Var),
            (inner.clone(), inner.clone())
                .prop_map(|(b, i)| Target::Index(Box::new(b), Box::new(i))),
            (inner.clone(), prop_name()).prop_map(|(b, n)| Target::Prop(Box::new(b), n)),
        ];
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..4).prop_map(Expr::Array),
            proptest::collection::vec((prop_name(), inner.clone()), 0..3).prop_map(Expr::Object),
            (binop(), inner.clone(), inner.clone()).prop_map(|(op, a, b)| Expr::Binary(
                op,
                Box::new(a),
                Box::new(b)
            )),
            (unop(), inner.clone()).prop_map(|(op, a)| Expr::Unary(op, Box::new(a))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::LogicalAnd(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::LogicalOr(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone(), inner.clone())
                .prop_map(|(c, a, b)| { Expr::Conditional(Box::new(c), Box::new(a), Box::new(b)) }),
            (target.clone(), inner.clone()).prop_map(|(t, v)| Expr::Assign(t, Box::new(v))),
            (
                inner.clone(),
                proptest::collection::vec(inner.clone(), 0..3)
            )
                .prop_map(|(callee, args)| Expr::Call(Box::new(callee), args)),
            (ident(), proptest::collection::vec(inner.clone(), 0..3))
                .prop_map(|(n, args)| Expr::New(n, args)),
            (inner.clone(), inner.clone()).prop_map(|(b, i)| Expr::Index(Box::new(b), Box::new(i))),
            (inner.clone(), prop_name()).prop_map(|(b, n)| Expr::Prop(Box::new(b), n)),
            (ident(), any::<bool>(), any::<bool>()).prop_map(|(n, pre, inc)| Expr::IncDec {
                target: Target::Var(n),
                delta: if inc { 1 } else { -1 },
                prefix: pre,
            }),
        ]
    })
}

fn stmt() -> impl Strategy<Value = Stmt> {
    let simple = prop_oneof![
        (ident(), proptest::option::of(expr())).prop_map(|(n, init)| Stmt::VarDecl(n, init)),
        expr().prop_map(Stmt::Expr),
        proptest::option::of(expr()).prop_map(Stmt::Return),
        Just(Stmt::Break),
        Just(Stmt::Continue),
    ];
    simple.prop_recursive(2, 16, 3, |inner| {
        prop_oneof![
            (
                expr(),
                proptest::collection::vec(inner.clone(), 0..3),
                proptest::collection::vec(inner.clone(), 0..3)
            )
                .prop_map(|(c, a, b)| Stmt::If(c, a, b)),
            (expr(), proptest::collection::vec(inner.clone(), 0..3))
                .prop_map(|(c, b)| Stmt::While(c, b)),
            (
                proptest::option::of((ident(), expr())),
                proptest::option::of(expr()),
                proptest::option::of(expr()),
                proptest::collection::vec(inner.clone(), 0..3)
            )
                .prop_map(|(init, cond, step, body)| Stmt::For {
                    init: init.map(|(n, e)| Box::new(Stmt::VarDecl(n, Some(e)))),
                    cond,
                    step,
                    body,
                }),
            proptest::collection::vec(inner, 1..3).prop_map(Stmt::Block),
        ]
    })
}

fn program() -> impl Strategy<Value = Program> {
    (
        proptest::collection::vec(
            (
                ident(),
                proptest::collection::vec(ident(), 0..3),
                proptest::collection::vec(stmt(), 0..4),
            ),
            0..3,
        ),
        proptest::collection::vec(stmt(), 0..4),
    )
        .prop_map(|(funcs, top_level)| Program {
            functions: funcs
                .into_iter()
                .map(|(name, params, body)| FunctionDecl { name, params, body })
                .collect(),
            top_level,
        })
}

/// Collapses the parse-level representation differences the printer
/// cannot distinguish: `Stmt::Block(vec![])` prints as nothing and
/// single-statement bodies keep their braces, so empty blocks are
/// dropped on both sides before comparison.
fn normalize(p: &Program) -> Program {
    fn norm_stmts(stmts: &[Stmt]) -> Vec<Stmt> {
        stmts
            .iter()
            .filter(|s| !matches!(s, Stmt::Block(b) if b.is_empty()))
            .map(norm_stmt)
            .collect()
    }
    fn norm_stmt(s: &Stmt) -> Stmt {
        match s {
            Stmt::If(c, a, b) => Stmt::If(c.clone(), norm_stmts(a), norm_stmts(b)),
            Stmt::While(c, b) => Stmt::While(c.clone(), norm_stmts(b)),
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => Stmt::For {
                init: init.clone(),
                cond: cond.clone(),
                step: step.clone(),
                body: norm_stmts(body),
            },
            Stmt::Block(b) => Stmt::Block(norm_stmts(b)),
            Stmt::Func(f) => Stmt::Func(FunctionDecl {
                name: f.name.clone(),
                params: f.params.clone(),
                body: norm_stmts(&f.body),
            }),
            other => other.clone(),
        }
    }
    Program {
        functions: p
            .functions
            .iter()
            .map(|f| FunctionDecl {
                name: f.name.clone(),
                params: f.params.clone(),
                body: norm_stmts(&f.body),
            })
            .collect(),
        top_level: norm_stmts(&p.top_level),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn pretty_print_round_trips(p in program()) {
        let expected = normalize(&p);
        let printed = print_program(&p);
        let reparsed = parse_program(&printed)
            .map_err(|e| TestCaseError::fail(format!("{e}\n{printed}")))?;
        prop_assert_eq!(&normalize(&reparsed), &expected, "printed:\n{}", printed);
    }

    #[test]
    fn minified_print_round_trips(p in program()) {
        let expected = normalize(&p);
        let printed = print_program_with(&p, Style::Minified);
        let reparsed = parse_program(&printed)
            .map_err(|e| TestCaseError::fail(format!("{e}\n{printed}")))?;
        prop_assert_eq!(&normalize(&reparsed), &expected, "printed:\n{}", printed);
    }
}

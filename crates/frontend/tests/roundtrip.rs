//! Randomized property test: for any well-formed AST,
//! `parse(print(ast)) == ast` in both pretty and minified styles. This is
//! what lets the variant generators treat print-then-reparse as a
//! lossless pipeline. Driven by the repo's seeded PRNG, so every run
//! explores the same cases and failures reproduce by seed.

use jitbull_frontend::ast::{BinOp, Expr, FunctionDecl, Program, Stmt, Target, UnOp};
use jitbull_frontend::printer::{print_program_with, Style};
use jitbull_frontend::{parse_program, print_program};
use jitbull_prng::Rng;

const KEYWORDS: &[&str] = &[
    "var",
    "let",
    "const",
    "function",
    "return",
    "if",
    "else",
    "while",
    "for",
    "break",
    "continue",
    "true",
    "false",
    "undefined",
    "null",
    "new",
    "this",
    "typeof",
    "delete",
];

const CASES: u64 = 192;

fn ident(rng: &mut Rng) -> String {
    loop {
        let mut s = String::new();
        s.push(rng.gen_range(b'a'..b'z' + 1) as char);
        for _ in 0..rng.gen_range(0..6usize) {
            let tail = b"abcdefghijklmnopqrstuvwxyz0123456789_";
            s.push(*rng.pick(tail) as char);
        }
        if !KEYWORDS.contains(&s.as_str()) {
            return s;
        }
    }
}

/// Property keys that are printable bare (identifier-shaped).
fn prop_name(rng: &mut Rng) -> String {
    ident(rng)
}

fn number(rng: &mut Rng) -> f64 {
    // Non-negative finite numbers: JS has no negative literals (a leading
    // minus parses as unary negation), and NaN has no literal at all.
    if rng.gen_bool(0.5) {
        rng.gen_range(0..1000u32) as f64
    } else {
        rng.next_f64() * 1e6
    }
}

fn string_lit(rng: &mut Rng) -> String {
    // Printable ASCII incl. the characters the escaper handles.
    let pool: &[char] = &['a', 'b', 'z', 'q', '"', '\\', '\n', '\t', ' '];
    (0..rng.gen_range(0..8usize))
        .map(|_| *rng.pick(pool))
        .collect()
}

fn binop(rng: &mut Rng) -> BinOp {
    *rng.pick(&[
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::Div,
        BinOp::Mod,
        BinOp::Eq,
        BinOp::Ne,
        BinOp::StrictEq,
        BinOp::StrictNe,
        BinOp::Lt,
        BinOp::Le,
        BinOp::Gt,
        BinOp::Ge,
        BinOp::BitAnd,
        BinOp::BitOr,
        BinOp::BitXor,
        BinOp::Shl,
        BinOp::Shr,
        BinOp::Ushr,
    ])
}

fn unop(rng: &mut Rng) -> UnOp {
    *rng.pick(&[UnOp::Neg, UnOp::Not, UnOp::BitNot, UnOp::Plus, UnOp::Typeof])
}

fn leaf_expr(rng: &mut Rng) -> Expr {
    match rng.gen_range(0..7u32) {
        0 => Expr::Number(number(rng)),
        1 => Expr::Str(string_lit(rng)),
        2 => Expr::Bool(rng.gen_bool(0.5)),
        3 => Expr::Undefined,
        4 => Expr::Null,
        5 => Expr::This,
        _ => Expr::Var(ident(rng)),
    }
}

fn exprs(rng: &mut Rng, depth: u32, max: usize) -> Vec<Expr> {
    (0..rng.gen_range(0..max))
        .map(|_| expr(rng, depth))
        .collect()
}

fn target(rng: &mut Rng, depth: u32) -> Target {
    match rng.gen_range(0..3u32) {
        0 => Target::Var(ident(rng)),
        1 => Target::Index(Box::new(expr(rng, depth)), Box::new(expr(rng, depth))),
        _ => Target::Prop(Box::new(expr(rng, depth)), prop_name(rng)),
    }
}

fn expr(rng: &mut Rng, depth: u32) -> Expr {
    if depth == 0 || rng.gen_bool(0.3) {
        return leaf_expr(rng);
    }
    let d = depth - 1;
    match rng.gen_range(0..13u32) {
        0 => Expr::Array(exprs(rng, d, 4)),
        1 => Expr::Object(
            (0..rng.gen_range(0..3usize))
                .map(|_| (prop_name(rng), expr(rng, d)))
                .collect(),
        ),
        2 => Expr::Binary(binop(rng), Box::new(expr(rng, d)), Box::new(expr(rng, d))),
        3 => Expr::Unary(unop(rng), Box::new(expr(rng, d))),
        4 => Expr::LogicalAnd(Box::new(expr(rng, d)), Box::new(expr(rng, d))),
        5 => Expr::LogicalOr(Box::new(expr(rng, d)), Box::new(expr(rng, d))),
        6 => Expr::Conditional(
            Box::new(expr(rng, d)),
            Box::new(expr(rng, d)),
            Box::new(expr(rng, d)),
        ),
        7 => Expr::Assign(target(rng, d), Box::new(expr(rng, d))),
        8 => Expr::Call(Box::new(expr(rng, d)), exprs(rng, d, 3)),
        9 => Expr::New(ident(rng), exprs(rng, d, 3)),
        10 => Expr::Index(Box::new(expr(rng, d)), Box::new(expr(rng, d))),
        11 => Expr::Prop(Box::new(expr(rng, d)), prop_name(rng)),
        _ => Expr::IncDec {
            target: Target::Var(ident(rng)),
            delta: if rng.gen_bool(0.5) { 1 } else { -1 },
            prefix: rng.gen_bool(0.5),
        },
    }
}

fn stmts(rng: &mut Rng, depth: u32, max: usize) -> Vec<Stmt> {
    (0..rng.gen_range(0..max))
        .map(|_| stmt(rng, depth))
        .collect()
}

fn simple_stmt(rng: &mut Rng) -> Stmt {
    match rng.gen_range(0..5u32) {
        0 => Stmt::VarDecl(
            ident(rng),
            if rng.gen_bool(0.5) {
                Some(expr(rng, 2))
            } else {
                None
            },
        ),
        1 => Stmt::Expr(expr(rng, 3)),
        2 => Stmt::Return(if rng.gen_bool(0.5) {
            Some(expr(rng, 2))
        } else {
            None
        }),
        3 => Stmt::Break,
        _ => Stmt::Continue,
    }
}

fn stmt(rng: &mut Rng, depth: u32) -> Stmt {
    if depth == 0 || rng.gen_bool(0.4) {
        return simple_stmt(rng);
    }
    let d = depth - 1;
    match rng.gen_range(0..4u32) {
        0 => Stmt::If(expr(rng, 2), stmts(rng, d, 3), stmts(rng, d, 3)),
        1 => Stmt::While(expr(rng, 2), stmts(rng, d, 3)),
        2 => Stmt::For {
            init: if rng.gen_bool(0.5) {
                Some(Box::new(Stmt::VarDecl(ident(rng), Some(expr(rng, 2)))))
            } else {
                None
            },
            cond: if rng.gen_bool(0.5) {
                Some(expr(rng, 2))
            } else {
                None
            },
            step: if rng.gen_bool(0.5) {
                Some(expr(rng, 2))
            } else {
                None
            },
            body: stmts(rng, d, 3),
        },
        _ => Stmt::Block(
            (0..rng.gen_range(1..3usize))
                .map(|_| stmt(rng, d))
                .collect(),
        ),
    }
}

fn program(rng: &mut Rng) -> Program {
    Program {
        functions: (0..rng.gen_range(0..3usize))
            .map(|_| FunctionDecl {
                name: ident(rng),
                params: (0..rng.gen_range(0..3usize)).map(|_| ident(rng)).collect(),
                body: stmts(rng, 2, 4),
            })
            .collect(),
        top_level: stmts(rng, 2, 4),
    }
}

/// Collapses the parse-level representation differences the printer
/// cannot distinguish: `Stmt::Block(vec![])` prints as nothing and
/// single-statement bodies keep their braces, so empty blocks are
/// dropped on both sides before comparison.
fn normalize(p: &Program) -> Program {
    fn norm_stmts(stmts: &[Stmt]) -> Vec<Stmt> {
        stmts
            .iter()
            .filter(|s| !matches!(s, Stmt::Block(b) if b.is_empty()))
            .map(norm_stmt)
            .collect()
    }
    fn norm_stmt(s: &Stmt) -> Stmt {
        match s {
            Stmt::If(c, a, b) => Stmt::If(c.clone(), norm_stmts(a), norm_stmts(b)),
            Stmt::While(c, b) => Stmt::While(c.clone(), norm_stmts(b)),
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => Stmt::For {
                init: init.clone(),
                cond: cond.clone(),
                step: step.clone(),
                body: norm_stmts(body),
            },
            Stmt::Block(b) => Stmt::Block(norm_stmts(b)),
            Stmt::Func(f) => Stmt::Func(FunctionDecl {
                name: f.name.clone(),
                params: f.params.clone(),
                body: norm_stmts(&f.body),
            }),
            other => other.clone(),
        }
    }
    Program {
        functions: p
            .functions
            .iter()
            .map(|f| FunctionDecl {
                name: f.name.clone(),
                params: f.params.clone(),
                body: norm_stmts(&f.body),
            })
            .collect(),
        top_level: norm_stmts(&p.top_level),
    }
}

#[test]
fn pretty_print_round_trips() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(seed);
        let p = program(&mut rng);
        let expected = normalize(&p);
        let printed = print_program(&p);
        let reparsed =
            parse_program(&printed).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{printed}"));
        assert_eq!(
            normalize(&reparsed),
            expected,
            "seed {seed}, printed:\n{printed}"
        );
    }
}

#[test]
fn minified_print_round_trips() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(seed);
        let p = program(&mut rng);
        let expected = normalize(&p);
        let printed = print_program_with(&p, Style::Minified);
        let reparsed =
            parse_program(&printed).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{printed}"));
        assert_eq!(
            normalize(&reparsed),
            expected,
            "seed {seed}, printed:\n{printed}"
        );
    }
}

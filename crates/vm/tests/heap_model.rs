//! Model-based randomized testing of the heap's *checked* API: a random
//! operation sequence must behave exactly like a plain
//! `Vec<Vec<f64>>`-backed model (JS array semantics), no matter how
//! allocations interleave. The raw API is exercised by the exploit tests
//! instead — its whole point is to deviate once guards are gone.
//! Driven by the repo's seeded PRNG: deterministic, reproducible by seed.

use jitbull_prng::Rng;
use jitbull_vm::value::ArrId;
use jitbull_vm::{Heap, Value};

#[derive(Debug, Clone)]
enum Op {
    Alloc { len: u8 },
    Get { arr: u8, idx: u8 },
    Set { arr: u8, idx: u8, v: i16 },
    SetLength { arr: u8, len: u8 },
    Push { arr: u8, v: i16 },
}

fn op(rng: &mut Rng) -> Op {
    match rng.gen_range(0..5u32) {
        0 => Op::Alloc {
            len: rng.gen_range(0..12u8),
        },
        1 => Op::Get {
            arr: rng.next_u32() as u8,
            idx: rng.gen_range(0..20u8),
        },
        2 => Op::Set {
            arr: rng.next_u32() as u8,
            idx: rng.gen_range(0..20u8),
            v: rng.next_u32() as i16,
        },
        3 => Op::SetLength {
            arr: rng.next_u32() as u8,
            len: rng.gen_range(0..16u8),
        },
        _ => Op::Push {
            arr: rng.next_u32() as u8,
            v: rng.next_u32() as i16,
        },
    }
}

/// The reference model: dense JS-like arrays of numbers-or-undefined.
#[derive(Debug, Default)]
struct Model {
    arrays: Vec<Vec<Option<f64>>>,
}

impl Model {
    fn alloc(&mut self, len: usize) -> usize {
        self.arrays.push(vec![None; len]);
        self.arrays.len() - 1
    }

    fn get(&self, arr: usize, idx: usize) -> Option<f64> {
        self.arrays[arr].get(idx).copied().flatten()
    }

    fn set(&mut self, arr: usize, idx: usize, v: f64) {
        let a = &mut self.arrays[arr];
        if idx >= a.len() {
            a.resize(idx + 1, None);
        }
        a[idx] = Some(v);
    }

    fn set_length(&mut self, arr: usize, len: usize) {
        self.arrays[arr].resize(len, None);
    }
}

fn value_of(m: Option<f64>) -> Value {
    match m {
        Some(n) => Value::Number(n),
        None => Value::Undefined,
    }
}

fn same(a: &Value, b: &Value) -> bool {
    a.strict_eq(b)
}

#[test]
fn checked_heap_matches_reference_model() {
    for seed in 0..256u64 {
        let mut rng = Rng::seed_from_u64(seed);
        let ops: Vec<Op> = (0..rng.gen_range(1..60usize))
            .map(|_| op(&mut rng))
            .collect();
        let mut heap = Heap::new();
        let mut model = Model::default();
        let mut ids: Vec<ArrId> = Vec::new();
        for o in ops {
            match o {
                Op::Alloc { len } => {
                    let id = heap.alloc_array(len as usize, len as usize, Value::Undefined);
                    let mid = model.alloc(len as usize);
                    assert_eq!(mid, ids.len(), "seed {seed}");
                    ids.push(id);
                }
                Op::Get { arr, idx } if !ids.is_empty() => {
                    let k = arr as usize % ids.len();
                    let got = heap.get_elem(ids[k], idx as f64).expect("checked get");
                    let want = value_of(model.get(k, idx as usize));
                    assert!(
                        same(&got, &want),
                        "seed {seed}: get a{k}[{idx}]: heap {got:?} vs model {want:?}"
                    );
                }
                Op::Set { arr, idx, v } if !ids.is_empty() => {
                    let k = arr as usize % ids.len();
                    heap.set_elem(ids[k], idx as f64, Value::Number(v as f64))
                        .expect("checked set");
                    model.set(k, idx as usize, v as f64);
                }
                Op::SetLength { arr, len } if !ids.is_empty() => {
                    let k = arr as usize % ids.len();
                    heap.set_length(ids[k], len as usize);
                    model.set_length(k, len as usize);
                }
                Op::Push { arr, v } if !ids.is_empty() => {
                    let k = arr as usize % ids.len();
                    let len = heap.length(ids[k]);
                    heap.set_elem(ids[k], len as f64, Value::Number(v as f64))
                        .expect("push");
                    let mlen = model.arrays[k].len();
                    model.set(k, mlen, v as f64);
                }
                _ => {}
            }
            // Global invariants after every step.
            for (k, id) in ids.iter().enumerate() {
                assert_eq!(
                    heap.length(*id),
                    model.arrays[k].len(),
                    "seed {seed}: length of a{k}"
                );
                assert!(heap.capacity(*id) >= heap.length(*id), "seed {seed}");
            }
        }
        // Full sweep at the end: every element agrees.
        for (k, id) in ids.iter().enumerate() {
            for idx in 0..model.arrays[k].len() + 2 {
                let got = heap.get_elem(*id, idx as f64).expect("sweep get");
                let want = value_of(model.get(k, idx));
                assert!(
                    same(&got, &want),
                    "seed {seed}: sweep a{k}[{idx}]: {got:?} vs {want:?}"
                );
            }
        }
    }
}

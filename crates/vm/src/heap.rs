//! The flat element heap.
//!
//! Array element storage lives in one linear `Vec<Value>` of *cells*. Each
//! array occupies a contiguous region:
//!
//! ```text
//!   base+0 : length   (a Number cell — mutable via `arr.length = n`)
//!   base+1 : capacity (a Number cell)
//!   base+2 … base+1+capacity : elements
//! ```
//!
//! Consecutively allocated arrays are adjacent, so an out-of-bounds write
//! past one array's capacity lands on the next array's **length header** —
//! the exact memory-layout property the CVE-2019-17026 proof of concept
//! exploits in SpiderMonkey (shrink `arr.length`, get the JIT to drop the
//! bounds check, overflow into the neighbouring array, then use the
//! corrupted neighbour as an arbitrary read/write primitive).
//!
//! Two access levels are provided:
//!
//! * **checked** accessors ([`Heap::get_elem`] / [`Heap::set_elem`]) consult
//!   the length header first — these are what the interpreter and baseline
//!   tiers use;
//! * **raw** accessors ([`Heap::raw_read`] / [`Heap::raw_write`]) touch the
//!   cell directly and only trap when escaping the heap itself — these are
//!   what optimized JIT code uses *after* a `BoundsCheck` instruction has
//!   vouched for the index. If a buggy optimization pass removes the
//!   `BoundsCheck`, raw accesses silently corrupt neighbouring cells.

use crate::error::VmError;
use crate::value::{ArrId, Value};

#[derive(Debug, Clone, Copy)]
struct ArrayMeta {
    base: usize,
}

/// The flat element heap plus the array table.
#[derive(Debug, Default)]
pub struct Heap {
    cells: Vec<Value>,
    arrays: Vec<ArrayMeta>,
}

impl Heap {
    /// Creates an empty heap.
    pub fn new() -> Self {
        Heap::default()
    }

    /// Number of cells currently allocated.
    pub fn size(&self) -> usize {
        self.cells.len()
    }

    /// Number of arrays allocated.
    pub fn array_count(&self) -> usize {
        self.arrays.len()
    }

    /// Allocates an array with `len` elements (all `fill`) and capacity
    /// `cap >= len`. Returns its id. The region is appended to the heap, so
    /// arrays allocated back-to-back are adjacent in cell space.
    pub fn alloc_array(&mut self, len: usize, cap: usize, fill: Value) -> ArrId {
        let cap = cap.max(len);
        let base = self.cells.len();
        self.cells.push(Value::Number(len as f64));
        self.cells.push(Value::Number(cap as f64));
        for _ in 0..cap {
            self.cells.push(fill.clone());
        }
        let id = ArrId(self.arrays.len() as u32);
        self.arrays.push(ArrayMeta { base });
        id
    }

    /// Allocates an array from explicit items (length == capacity ==
    /// `items.len()`).
    pub fn alloc_array_from(&mut self, items: Vec<Value>) -> ArrId {
        let len = items.len();
        let base = self.cells.len();
        self.cells.push(Value::Number(len as f64));
        self.cells.push(Value::Number(len as f64));
        self.cells.extend(items);
        let id = ArrId(self.arrays.len() as u32);
        self.arrays.push(ArrayMeta { base });
        id
    }

    fn meta(&self, arr: ArrId) -> ArrayMeta {
        self.arrays[arr.0 as usize]
    }

    /// The cell address of the array's length header.
    pub fn length_addr(&self, arr: ArrId) -> usize {
        self.meta(arr).base
    }

    /// The cell address of element `idx` (no checks — address arithmetic
    /// only).
    pub fn elem_addr(&self, arr: ArrId, idx: usize) -> usize {
        self.meta(arr).base + 2 + idx
    }

    /// The array's current length, as stored in its (corruptible) header
    /// cell. A corrupted header yields whatever number the attacker wrote.
    pub fn length(&self, arr: ArrId) -> usize {
        let base = self.meta(arr).base;
        let n = self.cells[base].to_number();
        if n.is_finite() && n >= 0.0 {
            n as usize
        } else {
            0
        }
    }

    /// The array's capacity, from its header cell.
    pub fn capacity(&self, arr: ArrId) -> usize {
        let base = self.meta(arr).base;
        let n = self.cells[base + 1].to_number();
        if n.is_finite() && n >= 0.0 {
            n as usize
        } else {
            0
        }
    }

    /// Sets `arr.length = new_len`. Shrinking just rewrites the header
    /// (elements beyond stay in memory — exactly the stale-storage
    /// behaviour the 17026 exploit banks on). Growing beyond capacity
    /// reallocates the array at the end of the heap.
    pub fn set_length(&mut self, arr: ArrId, new_len: usize) {
        let cap = self.capacity(arr);
        if new_len <= cap {
            let base = self.meta(arr).base;
            // Elements between the old and new length become undefined when
            // growing within capacity.
            let old_len = self.length(arr);
            for i in old_len..new_len.min(cap) {
                self.cells[base + 2 + i] = Value::Undefined;
            }
            self.cells[base] = Value::Number(new_len as f64);
        } else {
            self.grow(arr, new_len);
            let base = self.meta(arr).base;
            self.cells[base] = Value::Number(new_len as f64);
        }
    }

    fn grow(&mut self, arr: ArrId, needed: usize) {
        let old = self.meta(arr);
        let old_len = self.length(arr);
        let old_cap = self.capacity(arr);
        let new_cap = needed.max(old_cap * 2).max(4);
        let new_base = self.cells.len();
        self.cells.push(Value::Number(old_len as f64));
        self.cells.push(Value::Number(new_cap as f64));
        for i in 0..new_cap {
            // Only live elements move; stale cells beyond the logical
            // length (left behind by an earlier shrink) must not be
            // resurrected by a reallocation.
            let v = if i < old_len.min(old_cap) {
                self.cells[old.base + 2 + i].clone()
            } else {
                Value::Undefined
            };
            self.cells.push(v);
        }
        self.arrays[arr.0 as usize] = ArrayMeta { base: new_base };
    }

    /// Checked element read: `idx < length` → the element, else
    /// `undefined`. Note the check consults the *header* length; if the
    /// header was corrupted upward, reads past the real storage succeed —
    /// that is the exploit's arbitrary-read primitive.
    pub fn get_elem(&self, arr: ArrId, idx: f64) -> Result<Value, VmError> {
        if !(idx >= 0.0 && idx.fract() == 0.0 && idx.is_finite()) {
            return Ok(Value::Undefined);
        }
        let idx = idx as usize;
        if idx < self.length(arr) {
            self.raw_read(self.elem_addr(arr, idx))
        } else {
            Ok(Value::Undefined)
        }
    }

    /// Checked element write. Within length → plain write; within capacity
    /// → write and extend length; beyond capacity → grow then write.
    pub fn set_elem(&mut self, arr: ArrId, idx: f64, value: Value) -> Result<(), VmError> {
        if !(idx >= 0.0 && idx.fract() == 0.0 && idx.is_finite()) {
            return Ok(()); // non-index keys are ignored by minijs arrays
        }
        let idx = idx as usize;
        let len = self.length(arr);
        let cap = self.capacity(arr);
        if idx < len {
            let addr = self.elem_addr(arr, idx);
            return self.raw_write(addr, value);
        }
        if idx >= cap {
            self.grow(arr, idx + 1);
        }
        let base = self.meta(arr).base;
        // Cells between the old length and the written index become
        // visible; clear any stale storage a previous shrink left there.
        for i in len..idx {
            self.cells[base + 2 + i] = Value::Undefined;
        }
        self.cells[base + 2 + idx] = value;
        self.cells[base] = Value::Number((idx + 1).max(len) as f64);
        Ok(())
    }

    /// Raw cell read. Only traps when the address escapes the heap
    /// entirely (the "segfault" of the simulation).
    ///
    /// # Errors
    ///
    /// [`VmError::Crash`] when `addr` is outside the heap.
    pub fn raw_read(&self, addr: usize) -> Result<Value, VmError> {
        self.cells
            .get(addr)
            .cloned()
            .ok_or_else(|| VmError::Crash(format!("wild read at cell {addr}")))
    }

    /// Raw cell write. Only traps when the address escapes the heap.
    ///
    /// # Errors
    ///
    /// [`VmError::Crash`] when `addr` is outside the heap.
    pub fn raw_write(&mut self, addr: usize, value: Value) -> Result<(), VmError> {
        match self.cells.get_mut(addr) {
            Some(cell) => {
                *cell = value;
                Ok(())
            }
            None => Err(VmError::Crash(format!("wild write at cell {addr}"))),
        }
    }

    /// Collects the elements of an array into a vector (checked reads).
    pub fn snapshot_elems(&self, arr: ArrId) -> Vec<Value> {
        let len = self.length(arr).min(self.capacity(arr));
        (0..len)
            .map(|i| self.cells[self.elem_addr(arr, i)].clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_access() {
        let mut h = Heap::new();
        let a = h.alloc_array(3, 3, Value::Number(0.0));
        assert_eq!(h.length(a), 3);
        assert_eq!(h.capacity(a), 3);
        h.set_elem(a, 1.0, Value::Number(7.0)).unwrap();
        assert!(matches!(h.get_elem(a, 1.0).unwrap(), Value::Number(n) if n == 7.0));
        assert!(matches!(h.get_elem(a, 9.0).unwrap(), Value::Undefined));
    }

    #[test]
    fn adjacent_arrays_are_contiguous() {
        let mut h = Heap::new();
        let a = h.alloc_array(4, 4, Value::Number(0.0));
        let b = h.alloc_array(4, 4, Value::Number(0.0));
        // a's cells end exactly where b's header begins.
        assert_eq!(h.elem_addr(a, 4), h.length_addr(b));
    }

    #[test]
    fn oob_raw_write_corrupts_neighbor_length() {
        let mut h = Heap::new();
        let a = h.alloc_array(4, 4, Value::Number(0.0));
        let b = h.alloc_array(4, 4, Value::Number(0.0));
        // Simulates optimized code with an (incorrectly) eliminated bounds
        // check writing a[4] — one past capacity.
        h.raw_write(h.elem_addr(a, 4), Value::Number(1e6)).unwrap();
        assert_eq!(h.length(b), 1_000_000);
        // b can now read far past its storage (arbitrary read primitive).
        assert!(h.get_elem(b, 100.0).is_ok() || h.get_elem(b, 100.0).is_err());
    }

    #[test]
    fn corrupted_length_permits_far_reads_until_heap_end() {
        let mut h = Heap::new();
        let a = h.alloc_array(2, 2, Value::Number(0.0));
        let b = h.alloc_array(2, 2, Value::Number(5.0));
        h.raw_write(h.length_addr(a), Value::Number(1e9)).unwrap();
        // In-heap far read reaches b's element...
        let addr_b0 = h.elem_addr(b, 0) - h.elem_addr(a, 0);
        assert!(matches!(
            h.get_elem(a, addr_b0 as f64).unwrap(),
            Value::Number(n) if n == 5.0
        ));
        // ...and a read past the heap crashes.
        assert!(matches!(h.get_elem(a, 1e8), Err(VmError::Crash(_))));
    }

    #[test]
    fn shrink_keeps_stale_storage() {
        let mut h = Heap::new();
        let a = h.alloc_array(8, 8, Value::Number(9.0));
        h.set_length(a, 2);
        assert_eq!(h.length(a), 2);
        assert_eq!(h.capacity(a), 8);
        // The stale cell is still physically there.
        assert!(matches!(h.raw_read(h.elem_addr(a, 5)).unwrap(), Value::Number(n) if n == 9.0));
        // But a checked read sees undefined.
        assert!(matches!(h.get_elem(a, 5.0).unwrap(), Value::Undefined));
    }

    #[test]
    fn growth_moves_array_and_preserves_elements() {
        let mut h = Heap::new();
        let a = h.alloc_array_from(vec![Value::Number(1.0), Value::Number(2.0)]);
        let old_base = h.length_addr(a);
        h.set_elem(a, 10.0, Value::Number(3.0)).unwrap();
        assert_ne!(h.length_addr(a), old_base);
        assert_eq!(h.length(a), 11);
        assert!(matches!(h.get_elem(a, 0.0).unwrap(), Value::Number(n) if n == 1.0));
        assert!(matches!(h.get_elem(a, 10.0).unwrap(), Value::Number(n) if n == 3.0));
    }

    #[test]
    fn grow_within_capacity_clears_new_cells() {
        let mut h = Heap::new();
        let a = h.alloc_array(8, 8, Value::Number(7.0));
        h.set_length(a, 2);
        h.set_length(a, 5);
        // Cells 2..5 were re-exposed and must read as undefined.
        assert!(matches!(h.get_elem(a, 3.0).unwrap(), Value::Undefined));
    }

    #[test]
    fn wild_accesses_crash() {
        let mut h = Heap::new();
        assert!(h.raw_read(0).is_err());
        assert!(h.raw_write(10, Value::Null).is_err());
    }

    #[test]
    fn negative_and_fractional_indices_are_benign() {
        let mut h = Heap::new();
        let a = h.alloc_array(2, 2, Value::Number(0.0));
        assert!(matches!(h.get_elem(a, -1.0).unwrap(), Value::Undefined));
        assert!(matches!(h.get_elem(a, 0.5).unwrap(), Value::Undefined));
        h.set_elem(a, -3.0, Value::Number(1.0)).unwrap();
        assert_eq!(h.length(a), 2);
    }
}

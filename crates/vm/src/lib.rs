//! # jitbull-vm — the minijs runtime substrate
//!
//! This crate is the runtime half of the substrate the JITBULL reproduction
//! is built on: a bytecode virtual machine for the minijs language defined
//! in `jitbull-frontend`, playing the role SpiderMonkey's interpreter and
//! object model play in the paper.
//!
//! Key components:
//!
//! * [`value::Value`] — dynamically-typed runtime values.
//! * [`heap::Heap`] — a **flat, linearly-addressed element heap** in which
//!   array element storage and array headers (length / capacity) live in
//!   adjacent cells. This is what makes JIT bounds-check-elimination bugs
//!   *actually exploitable* in the simulation: an out-of-bounds write from
//!   code whose bounds check was (incorrectly) optimized away lands on the
//!   next array's header, exactly like the CVE-2019-17026 proof of concept
//!   corrupts an adjacent `ArrayObject` in SpiderMonkey.
//! * [`bytecode`] — the stack-machine instruction set.
//! * [`compiler`] — AST → bytecode compilation (hoisting, scoping).
//! * [`interp`] — the interpreter tier, parameterized by a [`dispatch::Dispatcher`]
//!   so that a JIT engine (the `jitbull-jit` crate) can interpose tiered
//!   execution on every call.
//! * [`runtime::Runtime`] — globals, heap, exploit status, and the
//!   deterministic cycle cost model used by the paper-figure benchmarks.
//!
//! # Examples
//!
//! ```
//! use jitbull_vm::run_source;
//!
//! let outcome = run_source("var t = 0; for (var i = 0; i < 10; i++) { t += i; } print(t);")?;
//! assert_eq!(outcome.printed, vec!["45"]);
//! # Ok::<(), jitbull_vm::error::VmError>(())
//! ```

pub mod bytecode;
pub mod compiler;
pub mod dispatch;
pub mod error;
pub mod heap;
pub mod interp;
pub mod runtime;
pub mod value;

pub use bytecode::{FuncId, Function, Module};
pub use compiler::compile_program;
pub use dispatch::{Dispatcher, InterpDispatcher};
pub use error::VmError;
pub use heap::Heap;
pub use runtime::{ExploitStatus, Outcome, Runtime};
pub use value::Value;

use jitbull_frontend::parse_program;

/// Parses, compiles and runs a minijs source string on the interpreter-only
/// dispatcher, returning the [`Outcome`] (printed lines, cycles, exploit
/// status).
///
/// # Errors
///
/// Returns [`VmError`] for parse errors, runtime type errors, crashes, or
/// fuel exhaustion.
pub fn run_source(source: &str) -> Result<Outcome, VmError> {
    let program = parse_program(source).map_err(|e| VmError::Parse(e.to_string()))?;
    let module = compile_program(&program)?;
    let mut runtime = Runtime::new();
    let mut dispatcher = InterpDispatcher;
    interp::run_module(&mut runtime, &module, &mut dispatcher)?;
    Ok(runtime.into_outcome())
}

//! The bytecode interpreter (also reused, at a cheaper cycle cost, as the
//! baseline tier by the JIT engine).

use std::rc::Rc;

use jitbull_frontend::ast::{BinOp, UnOp};

use crate::bytecode::{FuncId, IntrinsicMethod, Module, Op};
use crate::dispatch::Dispatcher;
use crate::error::VmError;
use crate::runtime::{Runtime, SHELLCODE_MARKER};
use crate::value::Value;

/// Prepares the runtime for `module` and executes its top-level code.
///
/// # Errors
///
/// Propagates any [`VmError`]; crash-class errors are also recorded in the
/// runtime's exploit status.
pub fn run_module(
    rt: &mut Runtime,
    module: &Module,
    dispatcher: &mut dyn Dispatcher,
) -> Result<Value, VmError> {
    rt.prepare(module);
    let result = dispatcher.call(rt, module, module.entry, Value::Undefined, Vec::new());
    if let Err(VmError::Crash(msg)) = &result {
        rt.note_crash(msg);
    }
    result
}

/// Interprets one function invocation at `cost` cycles per operation.
///
/// # Errors
///
/// Propagates any [`VmError`] raised by the function or its callees.
pub fn run_function(
    rt: &mut Runtime,
    module: &Module,
    func: FuncId,
    this: Value,
    mut args: Vec<Value>,
    dispatcher: &mut dyn Dispatcher,
    cost: u64,
) -> Result<Value, VmError> {
    rt.enter_call()?;
    let result = run_frame(rt, module, func, this, &mut args, dispatcher, cost);
    rt.exit_call();
    result
}

fn run_frame(
    rt: &mut Runtime,
    module: &Module,
    func: FuncId,
    this: Value,
    args: &mut [Value],
    dispatcher: &mut dyn Dispatcher,
    cost: u64,
) -> Result<Value, VmError> {
    let f = module.function(func);
    let mut locals = vec![Value::Undefined; f.n_locals as usize];
    for i in 0..(f.arity as usize).min(args.len()) {
        locals[i] = std::mem::take(&mut args[i]);
    }
    let mut stack: Vec<Value> = Vec::with_capacity(16);
    let mut pc = 0usize;

    macro_rules! pop {
        () => {
            stack.pop().expect("compiler produced balanced stacks")
        };
    }

    loop {
        let op = &f.code[pc];
        rt.consume_op(cost)?;
        pc += 1;
        match op {
            Op::ConstNum(n) => stack.push(Value::Number(*n)),
            Op::ConstStr(s) => stack.push(Value::Str(s.clone())),
            Op::ConstBool(b) => stack.push(Value::Bool(*b)),
            Op::ConstUndefined => stack.push(Value::Undefined),
            Op::ConstNull => stack.push(Value::Null),
            Op::LoadFunc(id) => stack.push(Value::Function(*id)),
            Op::Pop => {
                pop!();
            }
            Op::Dup => {
                let v = stack.last().expect("dup on empty stack").clone();
                stack.push(v);
            }
            Op::LoadLocal(slot) => stack.push(locals[*slot as usize].clone()),
            Op::StoreLocal(slot) => locals[*slot as usize] = pop!(),
            Op::LoadGlobal(slot) => stack.push(rt.globals[*slot as usize].clone()),
            Op::StoreGlobal(slot) => rt.globals[*slot as usize] = pop!(),
            Op::LoadThis => stack.push(this.clone()),
            Op::Bin(op) => {
                let b = pop!();
                let a = pop!();
                stack.push(eval_binop(*op, &a, &b));
            }
            Op::Un(op) => {
                let a = pop!();
                stack.push(eval_unop(*op, &a));
            }
            Op::Jump(target) => pc = *target as usize,
            Op::JumpIfFalse(target) => {
                if !pop!().truthy() {
                    pc = *target as usize;
                }
            }
            Op::JumpIfTrue(target) => {
                if pop!().truthy() {
                    pc = *target as usize;
                }
            }
            Op::Return => return Ok(pop!()),
            Op::Call(argc) => {
                let call_args = split_args(&mut stack, *argc);
                let callee = pop!();
                let result =
                    invoke_value(rt, module, callee, Value::Undefined, call_args, dispatcher)?;
                stack.push(result);
            }
            Op::CallMethod(argc) => {
                let call_args = split_args(&mut stack, *argc);
                let callee = pop!();
                let base = pop!();
                let result = invoke_value(rt, module, callee, base, call_args, dispatcher)?;
                stack.push(result);
            }
            Op::New(argc) => {
                let call_args = split_args(&mut stack, *argc);
                let callee = pop!();
                let obj = Value::Object(rt.alloc_object());
                invoke_value(rt, module, callee, obj.clone(), call_args, dispatcher)?;
                stack.push(obj);
            }
            Op::NewArray(n) => {
                let items = split_args(&mut stack, *n as u8);
                stack.push(Value::Array(rt.heap.alloc_array_from(items)));
            }
            Op::NewArrayN => {
                let len = pop!().to_number();
                let len = if len.is_finite() && len >= 0.0 {
                    len as usize
                } else {
                    0
                };
                stack.push(Value::Array(rt.heap.alloc_array(
                    len,
                    len,
                    Value::Undefined,
                )));
            }
            Op::NewObject => stack.push(Value::Object(rt.alloc_object())),
            Op::GetElem => {
                let idx = pop!();
                let base = pop!();
                stack.push(get_elem(rt, &base, &idx)?);
            }
            Op::SetElem => {
                let value = pop!();
                let idx = pop!();
                let base = pop!();
                set_elem(rt, &base, &idx, value.clone())?;
                stack.push(value);
            }
            Op::GetProp(name) => {
                let base = pop!();
                stack.push(get_prop(rt, &base, name)?);
            }
            Op::SetProp(name) => {
                let value = pop!();
                let base = pop!();
                set_prop(rt, &base, name.clone(), value.clone())?;
                stack.push(value);
            }
            Op::GetMethod(name) => {
                let base = stack.last().expect("method base").clone();
                let method = get_prop(rt, &base, name)?;
                stack.push(method);
            }
            Op::GetLength => {
                let base = pop!();
                stack.push(get_length(rt, &base)?);
            }
            Op::SetLength => {
                let value = pop!();
                let base = pop!();
                set_length(rt, &base, &value)?;
                stack.push(value);
            }
            Op::Print => {
                let v = pop!();
                let line = v.to_string();
                rt.printed.push(line);
            }
            Op::FromCharCode => {
                let n = pop!().to_number();
                let c = char::from_u32(n as u32).unwrap_or('\u{FFFD}');
                stack.push(Value::str(c.to_string()));
            }
            Op::Math(mf) => {
                let argc = mf.arity();
                let call_args = split_args(&mut stack, argc);
                stack.push(eval_math(rt, *mf, &call_args));
            }
            Op::Intrinsic(method, argc) => {
                let call_args = split_args(&mut stack, *argc);
                let recv = pop!();
                stack.push(eval_intrinsic(rt, *method, &recv, &call_args)?);
            }
        }
    }
}

fn split_args(stack: &mut Vec<Value>, argc: u8) -> Vec<Value> {
    let at = stack.len() - argc as usize;
    stack.split_off(at)
}

/// Invokes an arbitrary callee value. This is where control-flow hijacking
/// is detected: a callee cell corrupted to [`SHELLCODE_MARKER`] counts as
/// attacker shellcode executing; any other non-function callee that came
/// from corrupted memory crashes the runtime.
///
/// # Errors
///
/// [`VmError::Crash`] for hijacked calls, [`VmError::Type`] for ordinary
/// not-a-function errors.
pub fn invoke_value(
    rt: &mut Runtime,
    module: &Module,
    callee: Value,
    this: Value,
    args: Vec<Value>,
    dispatcher: &mut dyn Dispatcher,
) -> Result<Value, VmError> {
    match callee {
        Value::Function(fid) => dispatcher.call(rt, module, fid, this, args),
        Value::Number(n) if n == SHELLCODE_MARKER => {
            rt.status = crate::runtime::ExploitStatus::ShellcodeExecuted;
            Ok(Value::Undefined)
        }
        Value::Number(n) => {
            let msg = format!("control flow hijacked to {n}");
            rt.note_crash(&msg);
            Err(VmError::Crash(msg))
        }
        other => Err(VmError::Type(format!(
            "{} is not a function",
            other.kind_name()
        ))),
    }
}

/// Evaluates a binary operator with JavaScript coercion semantics.
pub fn eval_binop(op: BinOp, a: &Value, b: &Value) -> Value {
    match op {
        BinOp::Add => match (a, b) {
            (Value::Str(_), _) | (_, Value::Str(_)) => Value::str(format!("{a}{b}")),
            _ => Value::Number(a.to_number() + b.to_number()),
        },
        BinOp::Sub => Value::Number(a.to_number() - b.to_number()),
        BinOp::Mul => Value::Number(a.to_number() * b.to_number()),
        BinOp::Div => Value::Number(a.to_number() / b.to_number()),
        BinOp::Mod => Value::Number(a.to_number() % b.to_number()),
        BinOp::Eq => Value::Bool(a.loose_eq(b)),
        BinOp::Ne => Value::Bool(!a.loose_eq(b)),
        BinOp::StrictEq => Value::Bool(a.strict_eq(b)),
        BinOp::StrictNe => Value::Bool(!a.strict_eq(b)),
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
            if let (Value::Str(x), Value::Str(y)) = (a, b) {
                Value::Bool(match op {
                    BinOp::Lt => x < y,
                    BinOp::Le => x <= y,
                    BinOp::Gt => x > y,
                    _ => x >= y,
                })
            } else {
                let (x, y) = (a.to_number(), b.to_number());
                Value::Bool(match op {
                    BinOp::Lt => x < y,
                    BinOp::Le => x <= y,
                    BinOp::Gt => x > y,
                    _ => x >= y,
                })
            }
        }
        BinOp::BitAnd => Value::Number((a.to_i32() & b.to_i32()) as f64),
        BinOp::BitOr => Value::Number((a.to_i32() | b.to_i32()) as f64),
        BinOp::BitXor => Value::Number((a.to_i32() ^ b.to_i32()) as f64),
        BinOp::Shl => Value::Number((a.to_i32() << (b.to_u32() & 31)) as f64),
        BinOp::Shr => Value::Number((a.to_i32() >> (b.to_u32() & 31)) as f64),
        BinOp::Ushr => Value::Number((a.to_u32() >> (b.to_u32() & 31)) as f64),
    }
}

/// Evaluates a unary operator.
pub fn eval_unop(op: UnOp, a: &Value) -> Value {
    match op {
        UnOp::Neg => Value::Number(-a.to_number()),
        UnOp::Not => Value::Bool(!a.truthy()),
        UnOp::BitNot => Value::Number(!a.to_i32() as f64),
        UnOp::Plus => Value::Number(a.to_number()),
        UnOp::Typeof => Value::str(a.type_of()),
    }
}

/// Evaluates a `Math.*` intrinsic (shared by interpreter and JIT tiers).
pub fn eval_math(rt: &mut Runtime, mf: crate::bytecode::MathFn, args: &[Value]) -> Value {
    use crate::bytecode::MathFn as M;
    let a = args.first().map_or(f64::NAN, Value::to_number);
    let b = args.get(1).map_or(f64::NAN, Value::to_number);
    Value::Number(match mf {
        M::Floor => a.floor(),
        M::Ceil => a.ceil(),
        M::Round => (a + 0.5).floor(),
        M::Sqrt => a.sqrt(),
        M::Abs => a.abs(),
        M::Sin => a.sin(),
        M::Cos => a.cos(),
        M::Tan => a.tan(),
        M::Atan => a.atan(),
        M::Atan2 => a.atan2(b),
        M::Exp => a.exp(),
        M::Log => a.ln(),
        M::Min => a.min(b),
        M::Max => a.max(b),
        M::Pow => a.powf(b),
        M::Random => rt.next_random(),
    })
}

/// Evaluates a reserved string/array method (shared by all tiers).
///
/// # Errors
///
/// [`VmError::Type`] when the receiver does not support the method.
pub fn eval_intrinsic(
    rt: &mut Runtime,
    method: IntrinsicMethod,
    recv: &Value,
    args: &[Value],
) -> Result<Value, VmError> {
    match (method, recv) {
        (IntrinsicMethod::Push, Value::Array(arr)) => {
            let len = rt.heap.length(*arr);
            let v = args.first().cloned().unwrap_or(Value::Undefined);
            rt.heap.set_elem(*arr, len as f64, v)?;
            Ok(Value::Number(rt.heap.length(*arr) as f64))
        }
        (IntrinsicMethod::Pop, Value::Array(arr)) => {
            let len = rt.heap.length(*arr);
            if len == 0 {
                return Ok(Value::Undefined);
            }
            let v = rt.heap.get_elem(*arr, (len - 1) as f64)?;
            rt.heap.set_length(*arr, len - 1);
            Ok(v)
        }
        (IntrinsicMethod::CharCodeAt, Value::Str(s)) => {
            let i = args.first().map_or(0.0, Value::to_number);
            if i >= 0.0 && i.fract() == 0.0 {
                match s.chars().nth(i as usize) {
                    Some(c) => Ok(Value::Number(c as u32 as f64)),
                    None => Ok(Value::Number(f64::NAN)),
                }
            } else {
                Ok(Value::Number(f64::NAN))
            }
        }
        (IntrinsicMethod::CharAt, Value::Str(s)) => {
            let i = args.first().map_or(0.0, Value::to_number);
            if i >= 0.0 && i.fract() == 0.0 {
                match s.chars().nth(i as usize) {
                    Some(c) => Ok(Value::str(c.to_string())),
                    None => Ok(Value::str("")),
                }
            } else {
                Ok(Value::str(""))
            }
        }
        (IntrinsicMethod::Substring, Value::Str(s)) => {
            let chars: Vec<char> = s.chars().collect();
            let a = args.first().map_or(0.0, Value::to_number).max(0.0) as usize;
            let b = args
                .get(1)
                .map_or(chars.len() as f64, Value::to_number)
                .max(0.0) as usize;
            let (lo, hi) = (a.min(b).min(chars.len()), a.max(b).min(chars.len()));
            Ok(Value::str(chars[lo..hi].iter().collect::<String>()))
        }
        (IntrinsicMethod::IndexOf, Value::Str(s)) => {
            let needle = args.first().map_or(String::new(), |v| v.to_string());
            match s.find(&needle) {
                Some(byte_idx) => {
                    let char_idx = s[..byte_idx].chars().count();
                    Ok(Value::Number(char_idx as f64))
                }
                None => Ok(Value::Number(-1.0)),
            }
        }
        (IntrinsicMethod::IndexOf, Value::Array(arr)) => {
            let needle = args.first().cloned().unwrap_or(Value::Undefined);
            let len = rt.heap.length(*arr);
            for i in 0..len {
                if rt.heap.get_elem(*arr, i as f64)?.strict_eq(&needle) {
                    return Ok(Value::Number(i as f64));
                }
            }
            Ok(Value::Number(-1.0))
        }
        (m, other) => Err(VmError::Type(format!(
            "{m:?} is not supported on {}",
            other.kind_name()
        ))),
    }
}

/// Element read with full checks (interpreter semantics).
pub fn get_elem(rt: &mut Runtime, base: &Value, idx: &Value) -> Result<Value, VmError> {
    match base {
        Value::Array(arr) => rt.heap.get_elem(*arr, idx.to_number()),
        Value::Object(obj) => {
            let key = idx.to_string();
            Ok(rt.object(*obj).get(&key))
        }
        Value::Str(s) => {
            let i = idx.to_number();
            if i >= 0.0 && i.fract() == 0.0 {
                match s.chars().nth(i as usize) {
                    Some(c) => Ok(Value::str(c.to_string())),
                    None => Ok(Value::Undefined),
                }
            } else {
                Ok(Value::Undefined)
            }
        }
        other => Err(VmError::Type(format!(
            "cannot index a {}",
            other.kind_name()
        ))),
    }
}

/// Element write with full checks (interpreter semantics).
pub fn set_elem(rt: &mut Runtime, base: &Value, idx: &Value, value: Value) -> Result<(), VmError> {
    match base {
        Value::Array(arr) => rt.heap.set_elem(*arr, idx.to_number(), value),
        Value::Object(obj) => {
            let key: Rc<str> = idx.to_string().into();
            rt.object_mut(*obj).set(key, value);
            Ok(())
        }
        other => Err(VmError::Type(format!(
            "cannot index-assign a {}",
            other.kind_name()
        ))),
    }
}

/// Property read (`.length` routed separately via [`get_length`]).
pub fn get_prop(rt: &mut Runtime, base: &Value, name: &str) -> Result<Value, VmError> {
    match base {
        Value::Object(obj) => Ok(rt.object(*obj).get(name)),
        Value::Array(_) | Value::Str(_) if name == "length" => get_length(rt, base),
        Value::Array(_) | Value::Str(_) => Ok(Value::Undefined),
        other => Err(VmError::Type(format!(
            "cannot read property `{name}` of {}",
            other.kind_name()
        ))),
    }
}

/// Property write.
pub fn set_prop(
    rt: &mut Runtime,
    base: &Value,
    name: Rc<str>,
    value: Value,
) -> Result<(), VmError> {
    match base {
        Value::Object(obj) => {
            rt.object_mut(*obj).set(name, value);
            Ok(())
        }
        Value::Array(arr) if &*name == "length" => {
            let n = value.to_number();
            if n.is_finite() && n >= 0.0 {
                rt.heap.set_length(*arr, n as usize);
            }
            Ok(())
        }
        other => Err(VmError::Type(format!(
            "cannot write property `{name}` of {}",
            other.kind_name()
        ))),
    }
}

/// `.length` read for arrays, strings, and objects with a `length`
/// property.
pub fn get_length(rt: &mut Runtime, base: &Value) -> Result<Value, VmError> {
    match base {
        Value::Array(arr) => Ok(Value::Number(rt.heap.length(*arr) as f64)),
        Value::Str(s) => Ok(Value::Number(s.chars().count() as f64)),
        Value::Object(obj) => Ok(rt.object(*obj).get("length")),
        other => Err(VmError::Type(format!(
            "cannot read length of {}",
            other.kind_name()
        ))),
    }
}

/// `.length` write.
pub fn set_length(rt: &mut Runtime, base: &Value, value: &Value) -> Result<(), VmError> {
    match base {
        Value::Array(arr) => {
            let n = value.to_number();
            if n.is_finite() && n >= 0.0 {
                rt.heap.set_length(*arr, n as usize);
            }
            Ok(())
        }
        Value::Object(obj) => {
            rt.object_mut(*obj).set("length".into(), value.clone());
            Ok(())
        }
        other => Err(VmError::Type(format!(
            "cannot write length of {}",
            other.kind_name()
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_string_concat_and_compare() {
        let a = Value::str("ab");
        let b = Value::str("cd");
        assert_eq!(eval_binop(BinOp::Add, &a, &b).to_string(), "abcd");
        assert!(eval_binop(BinOp::Lt, &a, &b).truthy());
        let n = Value::Number(1.0);
        assert_eq!(eval_binop(BinOp::Add, &a, &n).to_string(), "ab1");
    }

    #[test]
    fn binop_bitwise() {
        let a = Value::Number(-1.0);
        let b = Value::Number(1.0);
        assert_eq!(eval_binop(BinOp::Ushr, &a, &b).to_number(), 2147483647.0);
        assert_eq!(eval_binop(BinOp::Shr, &a, &b).to_number(), -1.0);
        assert_eq!(
            eval_binop(BinOp::Shl, &b, &Value::Number(33.0)).to_number(),
            2.0
        );
    }

    #[test]
    fn unop_semantics() {
        assert_eq!(
            eval_unop(UnOp::BitNot, &Value::Number(0.0)).to_number(),
            -1.0
        );
        assert!(eval_unop(UnOp::Not, &Value::Number(0.0)).truthy());
        assert_eq!(
            eval_unop(UnOp::Typeof, &Value::Undefined).to_string(),
            "undefined"
        );
    }
}

//! Dynamically-typed runtime values.

use std::fmt;
use std::rc::Rc;

use crate::bytecode::FuncId;

/// Index of an array object in the runtime's array table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArrId(pub u32);

/// Index of a plain object in the runtime's object table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ObjId(pub u32);

/// A minijs runtime value.
///
/// All numbers are IEEE-754 doubles, as in JavaScript. Arrays and objects
/// are references into the [`crate::runtime::Runtime`] stores; copying a
/// `Value` copies the reference, not the storage.
#[derive(Debug, Clone, Default)]
pub enum Value {
    /// A double-precision number.
    Number(f64),
    /// A boolean.
    Bool(bool),
    /// An immutable string.
    Str(Rc<str>),
    /// The `undefined` value.
    #[default]
    Undefined,
    /// The `null` value.
    Null,
    /// Reference to an array.
    Array(ArrId),
    /// Reference to a plain object.
    Object(ObjId),
    /// Reference to a function.
    Function(FuncId),
}

impl Value {
    /// Creates a string value.
    pub fn str(s: impl Into<Rc<str>>) -> Value {
        Value::Str(s.into())
    }

    /// JavaScript truthiness.
    pub fn truthy(&self) -> bool {
        match self {
            Value::Number(n) => *n != 0.0 && !n.is_nan(),
            Value::Bool(b) => *b,
            Value::Str(s) => !s.is_empty(),
            Value::Undefined | Value::Null => false,
            Value::Array(_) | Value::Object(_) | Value::Function(_) => true,
        }
    }

    /// Numeric coercion (`+x` in JS). Non-numeric references become NaN.
    pub fn to_number(&self) -> f64 {
        match self {
            Value::Number(n) => *n,
            Value::Bool(true) => 1.0,
            Value::Bool(false) => 0.0,
            Value::Str(s) => s.trim().parse().unwrap_or(f64::NAN),
            Value::Null => 0.0,
            Value::Undefined | Value::Array(_) | Value::Object(_) | Value::Function(_) => f64::NAN,
        }
    }

    /// 32-bit signed integer coercion (`x | 0`).
    pub fn to_i32(&self) -> i32 {
        let n = self.to_number();
        if !n.is_finite() {
            return 0;
        }
        n as i64 as i32
    }

    /// 32-bit unsigned integer coercion (`x >>> 0`).
    pub fn to_u32(&self) -> u32 {
        self.to_i32() as u32
    }

    /// Loose equality (`==`), with the cross-type cases minijs supports.
    pub fn loose_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Number(a), Value::Number(b)) => a == b,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Undefined | Value::Null, Value::Undefined | Value::Null) => true,
            (Value::Array(a), Value::Array(b)) => a == b,
            (Value::Object(a), Value::Object(b)) => a == b,
            (Value::Function(a), Value::Function(b)) => a == b,
            (Value::Number(_), Value::Str(_)) => self.to_number() == other.to_number(),
            (Value::Str(_), Value::Number(_)) => self.to_number() == other.to_number(),
            (Value::Bool(_), Value::Number(_)) | (Value::Number(_), Value::Bool(_)) => {
                self.to_number() == other.to_number()
            }
            _ => false,
        }
    }

    /// Strict equality (`===`).
    pub fn strict_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Number(a), Value::Number(b)) => a == b,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Undefined, Value::Undefined) => true,
            (Value::Null, Value::Null) => true,
            (Value::Array(a), Value::Array(b)) => a == b,
            (Value::Object(a), Value::Object(b)) => a == b,
            (Value::Function(a), Value::Function(b)) => a == b,
            _ => false,
        }
    }

    /// The `typeof` string for this value.
    pub fn type_of(&self) -> &'static str {
        match self {
            Value::Number(_) => "number",
            Value::Bool(_) => "boolean",
            Value::Str(_) => "string",
            Value::Undefined => "undefined",
            Value::Null | Value::Array(_) | Value::Object(_) => "object",
            Value::Function(_) => "function",
        }
    }

    /// A short type tag used in diagnostics.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Value::Number(_) => "number",
            Value::Bool(_) => "bool",
            Value::Str(_) => "string",
            Value::Undefined => "undefined",
            Value::Null => "null",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
            Value::Function(_) => "function",
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Number(n) => write!(f, "{}", format_number(*n)),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Undefined => write!(f, "undefined"),
            Value::Null => write!(f, "null"),
            Value::Array(id) => write!(f, "[array #{}]", id.0),
            Value::Object(id) => write!(f, "[object #{}]", id.0),
            Value::Function(id) => write!(f, "[function #{}]", id.0),
        }
    }
}

/// Formats a number the way JavaScript's `String(n)` does for the common
/// cases (integers without a trailing `.0`).
pub fn format_number(n: f64) -> String {
    if n.is_nan() {
        "NaN".to_owned()
    } else if n.is_infinite() {
        if n > 0.0 { "Infinity" } else { "-Infinity" }.to_owned()
    } else if n == 0.0 {
        "0".to_owned()
    } else if n.fract() == 0.0 && n.abs() < 1e21 {
        format!("{}", n as i128)
    } else {
        format!("{n}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness_matches_js() {
        assert!(!Value::Number(0.0).truthy());
        assert!(!Value::Number(f64::NAN).truthy());
        assert!(Value::Number(-1.0).truthy());
        assert!(!Value::str("").truthy());
        assert!(Value::str("x").truthy());
        assert!(!Value::Undefined.truthy());
        assert!(!Value::Null.truthy());
        assert!(Value::Array(ArrId(0)).truthy());
    }

    #[test]
    fn numeric_coercions() {
        assert_eq!(Value::Bool(true).to_number(), 1.0);
        assert_eq!(Value::str(" 42 ").to_number(), 42.0);
        assert!(Value::Undefined.to_number().is_nan());
        assert_eq!(Value::Number(-1.5).to_i32(), -1);
        assert_eq!(Value::Number(-1.0).to_u32(), u32::MAX);
        assert_eq!(Value::Number(f64::INFINITY).to_i32(), 0);
    }

    #[test]
    fn equality_semantics() {
        assert!(Value::Undefined.loose_eq(&Value::Null));
        assert!(!Value::Undefined.strict_eq(&Value::Null));
        assert!(Value::Number(1.0).loose_eq(&Value::str("1")));
        assert!(!Value::Number(1.0).strict_eq(&Value::str("1")));
        assert!(Value::Array(ArrId(3)).strict_eq(&Value::Array(ArrId(3))));
        assert!(!Value::Array(ArrId(3)).strict_eq(&Value::Array(ArrId(4))));
    }

    #[test]
    fn number_formatting() {
        assert_eq!(format_number(45.0), "45");
        assert_eq!(format_number(-0.5), "-0.5");
        assert_eq!(format_number(f64::NAN), "NaN");
        assert_eq!(format_number(f64::INFINITY), "Infinity");
        assert_eq!(format_number(0.0), "0");
    }

    #[test]
    fn typeof_strings() {
        assert_eq!(Value::Number(1.0).type_of(), "number");
        assert_eq!(Value::Null.type_of(), "object");
        assert_eq!(Value::Function(FuncId(0)).type_of(), "function");
    }
}

//! The stack-machine bytecode the compiler emits and the interpreter (and
//! the JIT's MIR builder) consume.

use std::fmt;
use std::rc::Rc;

pub use jitbull_frontend::ast::{BinOp, UnOp};

/// Identifies a function within a [`Module`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FuncId(pub u32);

impl fmt::Display for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn#{}", self.0)
    }
}

/// A `Math.*` intrinsic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MathFn {
    Floor,
    Ceil,
    Round,
    Sqrt,
    Abs,
    Sin,
    Cos,
    Tan,
    Atan,
    Atan2,
    Exp,
    Log,
    Min,
    Max,
    Pow,
    Random,
}

impl MathFn {
    /// Resolves a `Math.<name>` property to an intrinsic.
    pub fn from_name(name: &str) -> Option<MathFn> {
        Some(match name {
            "floor" => MathFn::Floor,
            "ceil" => MathFn::Ceil,
            "round" => MathFn::Round,
            "sqrt" => MathFn::Sqrt,
            "abs" => MathFn::Abs,
            "sin" => MathFn::Sin,
            "cos" => MathFn::Cos,
            "tan" => MathFn::Tan,
            "atan" => MathFn::Atan,
            "atan2" => MathFn::Atan2,
            "exp" => MathFn::Exp,
            "log" => MathFn::Log,
            "min" => MathFn::Min,
            "max" => MathFn::Max,
            "pow" => MathFn::Pow,
            "random" => MathFn::Random,
            _ => return None,
        })
    }

    /// Number of arguments the intrinsic consumes (Random takes none,
    /// Min/Max/Pow/Atan2 take two, the rest one).
    pub fn arity(self) -> u8 {
        match self {
            MathFn::Random => 0,
            MathFn::Min | MathFn::Max | MathFn::Pow | MathFn::Atan2 => 2,
            _ => 1,
        }
    }
}

/// A reserved method on strings or arrays, dispatched structurally by the
/// compiler (minijs has no prototype chain).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IntrinsicMethod {
    /// `arr.push(v)` — appends, returns new length.
    Push,
    /// `arr.pop()` — removes and returns last element.
    Pop,
    /// `s.charCodeAt(i)`.
    CharCodeAt,
    /// `s.charAt(i)`.
    CharAt,
    /// `s.substring(a, b)`.
    Substring,
    /// `s.indexOf(t)`.
    IndexOf,
}

impl IntrinsicMethod {
    /// Resolves a reserved method name.
    pub fn from_name(name: &str) -> Option<IntrinsicMethod> {
        Some(match name {
            "push" => IntrinsicMethod::Push,
            "pop" => IntrinsicMethod::Pop,
            "charCodeAt" => IntrinsicMethod::CharCodeAt,
            "charAt" => IntrinsicMethod::CharAt,
            "substring" => IntrinsicMethod::Substring,
            "indexOf" => IntrinsicMethod::IndexOf,
            _ => return None,
        })
    }
}

/// One bytecode instruction.
///
/// Stack effects are written `[inputs] -> [outputs]`, deepest first.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// `[] -> [n]`
    ConstNum(f64),
    /// `[] -> [s]`
    ConstStr(Rc<str>),
    /// `[] -> [b]`
    ConstBool(bool),
    /// `[] -> [undefined]`
    ConstUndefined,
    /// `[] -> [null]`
    ConstNull,
    /// `[] -> [function]`
    LoadFunc(FuncId),
    /// `[v] -> []`
    Pop,
    /// `[v] -> [v, v]`
    Dup,
    /// `[] -> [local]`
    LoadLocal(u16),
    /// `[v] -> []` (stores into local slot)
    StoreLocal(u16),
    /// `[] -> [global]`
    LoadGlobal(u16),
    /// `[v] -> []`
    StoreGlobal(u16),
    /// `[] -> [this]`
    LoadThis,
    /// `[a, b] -> [a op b]`
    Bin(BinOp),
    /// `[a] -> [op a]`
    Un(UnOp),
    /// Unconditional jump to absolute pc.
    Jump(u32),
    /// `[cond] -> []`, jumps when falsy.
    JumpIfFalse(u32),
    /// `[cond] -> []`, jumps when truthy.
    JumpIfTrue(u32),
    /// `[v] -> <returns v>`
    Return,
    /// `[func, arg0..argN-1] -> [result]`, `this = undefined`.
    Call(u8),
    /// `[base, func, arg0..argN-1] -> [result]`, `this = base`.
    CallMethod(u8),
    /// `[func, arg0..argN-1] -> [new object]`.
    New(u8),
    /// `[item0..itemN-1] -> [array]`
    NewArray(u16),
    /// `[len] -> [array]` — `new Array(n)`, capacity = n, undefined-filled.
    NewArrayN,
    /// `[] -> [object]`
    NewObject,
    /// `[arr, idx] -> [elem]`
    GetElem,
    /// `[arr, idx, v] -> [v]`
    SetElem,
    /// `[base] -> [value]`
    GetProp(Rc<str>),
    /// `[base, v] -> [v]`
    SetProp(Rc<str>),
    /// `[base] -> [base, func]` (method lookup for `CallMethod`)
    GetMethod(Rc<str>),
    /// `[arr_or_str] -> [length]`
    GetLength,
    /// `[arr, v] -> [v]` — `arr.length = v`.
    SetLength,
    /// `[v] -> []` prints the value.
    Print,
    /// `[n] -> [s]` — `String.fromCharCode(n)`.
    FromCharCode,
    /// `[args…] -> [result]` — Math intrinsic with fixed arity.
    Math(MathFn),
    /// `[recv, args…] -> [result]` — reserved string/array method.
    Intrinsic(IntrinsicMethod, u8),
}

/// A compiled function.
#[derive(Debug, Clone)]
pub struct Function {
    /// Source-level name (or `<main>` for top-level code).
    pub name: String,
    /// Number of declared parameters.
    pub arity: u8,
    /// Total local slots (params + `var` declarations).
    pub n_locals: u16,
    /// Bytecode.
    pub code: Vec<Op>,
}

impl Function {
    /// Bytecode length, used by the JIT's compile-cost model.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// Whether the function has no bytecode.
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }
}

/// A compiled program: all functions plus the global name table.
#[derive(Debug, Clone)]
pub struct Module {
    /// All functions; `entry` indexes the synthesized `<main>`.
    pub functions: Vec<Function>,
    /// Global slot names (functions are pre-bound to their slots).
    pub global_names: Vec<String>,
    /// The synthesized top-level function.
    pub entry: FuncId,
}

impl Module {
    /// Looks up a function.
    pub fn function(&self, id: FuncId) -> &Function {
        &self.functions[id.0 as usize]
    }

    /// Finds a function id by source-level name.
    pub fn function_id(&self, name: &str) -> Option<FuncId> {
        self.functions
            .iter()
            .position(|f| f.name == name)
            .map(|i| FuncId(i as u32))
    }

    /// Number of global slots.
    pub fn global_count(&self) -> usize {
        self.global_names.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn math_fn_resolution_and_arity() {
        assert_eq!(MathFn::from_name("floor"), Some(MathFn::Floor));
        assert_eq!(MathFn::from_name("nope"), None);
        assert_eq!(MathFn::Random.arity(), 0);
        assert_eq!(MathFn::Pow.arity(), 2);
        assert_eq!(MathFn::Sqrt.arity(), 1);
    }

    #[test]
    fn intrinsic_resolution() {
        assert_eq!(
            IntrinsicMethod::from_name("push"),
            Some(IntrinsicMethod::Push)
        );
        assert_eq!(IntrinsicMethod::from_name("shift"), None);
    }

    #[test]
    fn func_id_display() {
        assert_eq!(FuncId(3).to_string(), "fn#3");
    }
}

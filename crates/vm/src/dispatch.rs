//! Call dispatch abstraction.
//!
//! Every function call in the VM is routed through a [`Dispatcher`], so a
//! JIT engine (the `jitbull-jit` crate) can interpose tier selection —
//! interpret, run baseline code, or run optimized MIR — without the
//! interpreter knowing about tiers at all. [`InterpDispatcher`] is the
//! no-JIT baseline that always interprets.

use crate::bytecode::{FuncId, Module};
use crate::error::VmError;
use crate::interp;
use crate::runtime::{Runtime, INTERP_COST};
use crate::value::Value;

/// Routes a function invocation to an execution tier.
pub trait Dispatcher {
    /// Invokes `func` with the given receiver and arguments, returning its
    /// result.
    ///
    /// # Errors
    ///
    /// Propagates any [`VmError`] raised during execution.
    fn call(
        &mut self,
        rt: &mut Runtime,
        module: &Module,
        func: FuncId,
        this: Value,
        args: Vec<Value>,
    ) -> Result<Value, VmError>;
}

/// The interpreter-only dispatcher (models a browser with the JIT engine
/// fully disabled — the paper's *NoJIT* configuration).
#[derive(Debug, Clone, Copy, Default)]
pub struct InterpDispatcher;

impl InterpDispatcher {
    /// Creates the dispatcher.
    pub fn new() -> Self {
        InterpDispatcher
    }
}

impl Dispatcher for InterpDispatcher {
    fn call(
        &mut self,
        rt: &mut Runtime,
        module: &Module,
        func: FuncId,
        this: Value,
        args: Vec<Value>,
    ) -> Result<Value, VmError> {
        interp::run_function(rt, module, func, this, args, self, INTERP_COST)
    }
}

//! AST → bytecode compilation.
//!
//! Scoping rules: minijs is function-scoped. Parameters and `var`
//! declarations inside a function are locals; every other name is a global
//! slot. Top-level `var` declarations are globals. Nested function
//! declarations are hoisted into the module's flat function table and bound
//! to global slots by name (so any function can call any other, mirroring
//! the global-function style of the paper's demonstrator codes).

use std::collections::HashMap;
use std::rc::Rc;

use jitbull_frontend::ast::{Expr, FunctionDecl, Program, Stmt, Target};
use jitbull_frontend::visit::all_functions;

use crate::bytecode::{FuncId, Function, IntrinsicMethod, MathFn, Module, Op};
use crate::error::VmError;

/// Compiles a parsed program into an executable [`Module`].
///
/// # Errors
///
/// Returns [`VmError::Compile`] for arity/local-count overflows or
/// malformed intrinsic calls (e.g. `Math.pow` with one argument).
///
/// # Examples
///
/// ```
/// use jitbull_frontend::parse_program;
/// use jitbull_vm::compile_program;
///
/// let program = parse_program("function f() { return 1; }")?;
/// let module = compile_program(&program)?;
/// assert!(module.function_id("f").is_some());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn compile_program(program: &Program) -> Result<Module, VmError> {
    let decls: Vec<&FunctionDecl> = all_functions(program);
    let mut globals = GlobalTable::default();
    // Bind function names first so calls resolve to pre-bound slots.
    for decl in &decls {
        globals.slot(&decl.name);
    }
    let mut functions = Vec::with_capacity(decls.len() + 1);
    for decl in &decls {
        functions.push(compile_function(decl, &mut globals)?);
    }
    let main = compile_main(&program.top_level, &mut globals)?;
    let entry = FuncId(functions.len() as u32);
    functions.push(main);
    Ok(Module {
        functions,
        global_names: globals.names,
        entry,
    })
}

#[derive(Default)]
struct GlobalTable {
    names: Vec<String>,
    index: HashMap<String, u16>,
}

impl GlobalTable {
    fn slot(&mut self, name: &str) -> u16 {
        if let Some(&slot) = self.index.get(name) {
            return slot;
        }
        let slot = self.names.len() as u16;
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), slot);
        slot
    }
}

fn compile_function(decl: &FunctionDecl, globals: &mut GlobalTable) -> Result<Function, VmError> {
    if decl.params.len() > u8::MAX as usize {
        return Err(VmError::Compile(format!(
            "function `{}` has too many parameters",
            decl.name
        )));
    }
    let mut locals = HashMap::new();
    for (i, p) in decl.params.iter().enumerate() {
        locals.insert(p.clone(), i as u16);
    }
    collect_var_decls(&decl.body, &mut locals);
    let mut c = FnCompiler {
        code: Vec::new(),
        locals,
        n_locals: 0,
        globals,
        loops: Vec::new(),
        is_main: false,
    };
    c.n_locals = c.locals.len() as u16;
    c.stmts(&decl.body)?;
    c.code.push(Op::ConstUndefined);
    c.code.push(Op::Return);
    Ok(Function {
        name: decl.name.clone(),
        arity: decl.params.len() as u8,
        n_locals: c.n_locals,
        code: c.code,
    })
}

fn compile_main(top_level: &[Stmt], globals: &mut GlobalTable) -> Result<Function, VmError> {
    let mut c = FnCompiler {
        code: Vec::new(),
        locals: HashMap::new(),
        n_locals: 0,
        globals,
        loops: Vec::new(),
        is_main: true,
    };
    c.stmts(top_level)?;
    c.code.push(Op::ConstUndefined);
    c.code.push(Op::Return);
    Ok(Function {
        name: "<main>".to_owned(),
        arity: 0,
        n_locals: c.n_locals,
        code: c.code,
    })
}

/// Collects `var` names declared anywhere in the body (function-scoped),
/// without descending into nested functions.
fn collect_var_decls(stmts: &[Stmt], locals: &mut HashMap<String, u16>) {
    for stmt in stmts {
        match stmt {
            Stmt::VarDecl(name, _) => {
                let next = locals.len() as u16;
                locals.entry(name.clone()).or_insert(next);
            }
            Stmt::If(_, a, b) => {
                collect_var_decls(a, locals);
                collect_var_decls(b, locals);
            }
            Stmt::While(_, body) => collect_var_decls(body, locals),
            Stmt::For { init, body, .. } => {
                if let Some(init) = init {
                    collect_var_decls(std::slice::from_ref(init), locals);
                }
                collect_var_decls(body, locals);
            }
            Stmt::Block(body) => collect_var_decls(body, locals),
            Stmt::Func(_) | Stmt::Expr(_) | Stmt::Return(_) | Stmt::Break | Stmt::Continue => {}
        }
    }
}

struct LoopCtx {
    break_patches: Vec<usize>,
    continue_patches: Vec<usize>,
}

struct FnCompiler<'g> {
    code: Vec<Op>,
    locals: HashMap<String, u16>,
    n_locals: u16,
    globals: &'g mut GlobalTable,
    loops: Vec<LoopCtx>,
    is_main: bool,
}

enum Slot {
    Local(u16),
    Global(u16),
}

impl<'g> FnCompiler<'g> {
    fn resolve(&mut self, name: &str) -> Slot {
        if !self.is_main {
            if let Some(&slot) = self.locals.get(name) {
                return Slot::Local(slot);
            }
        }
        Slot::Global(self.globals.slot(name))
    }

    fn scratch(&mut self) -> Result<u16, VmError> {
        let slot = self.n_locals;
        self.n_locals = self
            .n_locals
            .checked_add(1)
            .ok_or_else(|| VmError::Compile("too many locals".into()))?;
        Ok(slot)
    }

    fn pc(&self) -> u32 {
        self.code.len() as u32
    }

    fn emit_jump_placeholder(&mut self, op: fn(u32) -> Op) -> usize {
        self.code.push(op(u32::MAX));
        self.code.len() - 1
    }

    fn patch_jump(&mut self, at: usize) {
        let target = self.pc();
        match &mut self.code[at] {
            Op::Jump(t) | Op::JumpIfFalse(t) | Op::JumpIfTrue(t) => *t = target,
            other => panic!("patching non-jump {other:?}"),
        }
    }

    fn stmts(&mut self, stmts: &[Stmt]) -> Result<(), VmError> {
        for s in stmts {
            self.stmt(s)?;
        }
        Ok(())
    }

    fn stmt(&mut self, stmt: &Stmt) -> Result<(), VmError> {
        match stmt {
            Stmt::VarDecl(name, init) => {
                if let Some(init) = init {
                    self.expr(init)?;
                    match self.resolve(name) {
                        Slot::Local(s) => self.code.push(Op::StoreLocal(s)),
                        Slot::Global(s) => self.code.push(Op::StoreGlobal(s)),
                    }
                }
                Ok(())
            }
            Stmt::Expr(e) => {
                self.expr(e)?;
                self.code.push(Op::Pop);
                Ok(())
            }
            Stmt::If(cond, then_body, else_body) => {
                self.expr(cond)?;
                let to_else = self.emit_jump_placeholder(Op::JumpIfFalse);
                self.stmts(then_body)?;
                if else_body.is_empty() {
                    self.patch_jump(to_else);
                } else {
                    let to_end = self.emit_jump_placeholder(Op::Jump);
                    self.patch_jump(to_else);
                    self.stmts(else_body)?;
                    self.patch_jump(to_end);
                }
                Ok(())
            }
            Stmt::While(cond, body) => {
                let top = self.pc();
                self.expr(cond)?;
                let to_end = self.emit_jump_placeholder(Op::JumpIfFalse);
                self.loops.push(LoopCtx {
                    break_patches: vec![to_end],
                    continue_patches: Vec::new(),
                });
                self.stmts(body)?;
                let ctx = self.loops.pop().expect("loop context");
                for at in ctx.continue_patches {
                    match &mut self.code[at] {
                        Op::Jump(t) => *t = top,
                        other => panic!("patching non-jump {other:?}"),
                    }
                }
                self.code.push(Op::Jump(top));
                for at in ctx.break_patches {
                    self.patch_jump(at);
                }
                Ok(())
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                if let Some(init) = init {
                    self.stmt(init)?;
                }
                let top = self.pc();
                let to_end = match cond {
                    Some(c) => {
                        self.expr(c)?;
                        Some(self.emit_jump_placeholder(Op::JumpIfFalse))
                    }
                    None => None,
                };
                self.loops.push(LoopCtx {
                    break_patches: to_end.into_iter().collect(),
                    continue_patches: Vec::new(),
                });
                self.stmts(body)?;
                let ctx = self.loops.pop().expect("loop context");
                // Step label: continues land here.
                for at in ctx.continue_patches {
                    self.patch_jump(at);
                }
                if let Some(step) = step {
                    self.expr(step)?;
                    self.code.push(Op::Pop);
                }
                self.code.push(Op::Jump(top));
                for at in ctx.break_patches {
                    self.patch_jump(at);
                }
                Ok(())
            }
            Stmt::Return(value) => {
                match value {
                    Some(e) => self.expr(e)?,
                    None => self.code.push(Op::ConstUndefined),
                }
                self.code.push(Op::Return);
                Ok(())
            }
            Stmt::Break => {
                let at = self.emit_jump_placeholder(Op::Jump);
                match self.loops.last_mut() {
                    Some(ctx) => {
                        ctx.break_patches.push(at);
                        Ok(())
                    }
                    None => Err(VmError::Compile("`break` outside of a loop".into())),
                }
            }
            Stmt::Continue => {
                let at = self.emit_jump_placeholder(Op::Jump);
                match self.loops.last_mut() {
                    Some(ctx) => {
                        ctx.continue_patches.push(at);
                        Ok(())
                    }
                    None => Err(VmError::Compile("`continue` outside of a loop".into())),
                }
            }
            // Hoisted separately; nothing to emit at the declaration site.
            Stmt::Func(_) => Ok(()),
            Stmt::Block(stmts) => self.stmts(stmts),
        }
    }

    fn expr(&mut self, expr: &Expr) -> Result<(), VmError> {
        match expr {
            Expr::Number(n) => {
                self.code.push(Op::ConstNum(*n));
                Ok(())
            }
            Expr::Str(s) => {
                self.code.push(Op::ConstStr(Rc::from(s.as_str())));
                Ok(())
            }
            Expr::Bool(b) => {
                self.code.push(Op::ConstBool(*b));
                Ok(())
            }
            Expr::Undefined => {
                self.code.push(Op::ConstUndefined);
                Ok(())
            }
            Expr::Null => {
                self.code.push(Op::ConstNull);
                Ok(())
            }
            Expr::This => {
                self.code.push(Op::LoadThis);
                Ok(())
            }
            Expr::Var(name) => {
                // `Math.PI`-style constants are handled at the Prop level;
                // a bare `Math` reference has no value of its own.
                match self.resolve(name) {
                    Slot::Local(s) => self.code.push(Op::LoadLocal(s)),
                    Slot::Global(s) => self.code.push(Op::LoadGlobal(s)),
                }
                Ok(())
            }
            Expr::Array(items) => {
                if items.len() > u16::MAX as usize {
                    return Err(VmError::Compile("array literal too large".into()));
                }
                for item in items {
                    self.expr(item)?;
                }
                self.code.push(Op::NewArray(items.len() as u16));
                Ok(())
            }
            Expr::Object(props) => {
                self.code.push(Op::NewObject);
                for (k, v) in props {
                    self.code.push(Op::Dup);
                    self.expr(v)?;
                    self.code.push(Op::SetProp(Rc::from(k.as_str())));
                    self.code.push(Op::Pop);
                }
                Ok(())
            }
            Expr::Binary(op, lhs, rhs) => {
                self.expr(lhs)?;
                self.expr(rhs)?;
                self.code.push(Op::Bin(*op));
                Ok(())
            }
            Expr::Unary(op, operand) => {
                self.expr(operand)?;
                self.code.push(Op::Un(*op));
                Ok(())
            }
            Expr::LogicalAnd(lhs, rhs) => {
                self.expr(lhs)?;
                self.code.push(Op::Dup);
                let to_end = self.emit_jump_placeholder(Op::JumpIfFalse);
                self.code.push(Op::Pop);
                self.expr(rhs)?;
                self.patch_jump(to_end);
                Ok(())
            }
            Expr::LogicalOr(lhs, rhs) => {
                self.expr(lhs)?;
                self.code.push(Op::Dup);
                let to_end = self.emit_jump_placeholder(Op::JumpIfTrue);
                self.code.push(Op::Pop);
                self.expr(rhs)?;
                self.patch_jump(to_end);
                Ok(())
            }
            Expr::Conditional(cond, then, other) => {
                self.expr(cond)?;
                let to_else = self.emit_jump_placeholder(Op::JumpIfFalse);
                self.expr(then)?;
                let to_end = self.emit_jump_placeholder(Op::Jump);
                self.patch_jump(to_else);
                self.expr(other)?;
                self.patch_jump(to_end);
                Ok(())
            }
            Expr::Assign(target, value) => self.assign(target, value),
            Expr::Call(callee, args) => self.call(callee, args),
            Expr::New(name, args) => {
                if name == "Array" {
                    return self.array_constructor(args);
                }
                self.expr(&Expr::Var(name.clone()))?;
                self.args(args)?;
                self.code.push(Op::New(check_argc(args)?));
                Ok(())
            }
            Expr::Index(base, index) => {
                self.expr(base)?;
                self.expr(index)?;
                self.code.push(Op::GetElem);
                Ok(())
            }
            Expr::Prop(base, name) => {
                if let Expr::Var(obj) = &**base {
                    if obj == "Math" {
                        match name.as_str() {
                            "PI" => {
                                self.code.push(Op::ConstNum(std::f64::consts::PI));
                                return Ok(());
                            }
                            "E" => {
                                self.code.push(Op::ConstNum(std::f64::consts::E));
                                return Ok(());
                            }
                            _ => {}
                        }
                    }
                }
                self.expr(base)?;
                if name == "length" {
                    self.code.push(Op::GetLength);
                } else {
                    self.code.push(Op::GetProp(Rc::from(name.as_str())));
                }
                Ok(())
            }
            Expr::IncDec {
                target,
                delta,
                prefix,
            } => self.inc_dec(target, *delta, *prefix),
        }
    }

    fn args(&mut self, args: &[Expr]) -> Result<(), VmError> {
        for a in args {
            self.expr(a)?;
        }
        Ok(())
    }

    fn array_constructor(&mut self, args: &[Expr]) -> Result<(), VmError> {
        if args.len() == 1 {
            self.expr(&args[0])?;
            self.code.push(Op::NewArrayN);
        } else {
            self.args(args)?;
            self.code.push(Op::NewArray(args.len() as u16));
        }
        Ok(())
    }

    fn call(&mut self, callee: &Expr, args: &[Expr]) -> Result<(), VmError> {
        // print(x)
        if let Expr::Var(name) = callee {
            match name.as_str() {
                "print" => {
                    if args.len() != 1 {
                        return Err(VmError::Compile("print takes exactly one argument".into()));
                    }
                    self.expr(&args[0])?;
                    self.code.push(Op::Print);
                    self.code.push(Op::ConstUndefined);
                    return Ok(());
                }
                "Array" => return self.array_constructor(args),
                _ => {}
            }
        }
        if let Expr::Prop(base, name) = callee {
            // Math.*(…)
            if let Expr::Var(obj) = &**base {
                if obj == "Math" {
                    if let Some(mf) = MathFn::from_name(name) {
                        if args.len() != mf.arity() as usize {
                            return Err(VmError::Compile(format!(
                                "Math.{name} expects {} argument(s), got {}",
                                mf.arity(),
                                args.len()
                            )));
                        }
                        self.args(args)?;
                        self.code.push(Op::Math(mf));
                        return Ok(());
                    }
                    return Err(VmError::Compile(format!("unknown Math function `{name}`")));
                }
                if obj == "String" && name == "fromCharCode" {
                    if args.len() != 1 {
                        return Err(VmError::Compile(
                            "String.fromCharCode takes exactly one argument".into(),
                        ));
                    }
                    self.expr(&args[0])?;
                    self.code.push(Op::FromCharCode);
                    return Ok(());
                }
            }
            // Reserved intrinsic methods (push/pop/charCodeAt/…).
            if let Some(m) = IntrinsicMethod::from_name(name) {
                self.expr(base)?;
                self.args(args)?;
                self.code.push(Op::Intrinsic(m, check_argc(args)?));
                return Ok(());
            }
            // Generic method call: `this` bound to base.
            self.expr(base)?;
            self.code.push(Op::GetMethod(Rc::from(name.as_str())));
            self.args(args)?;
            self.code.push(Op::CallMethod(check_argc(args)?));
            return Ok(());
        }
        // Plain call.
        self.expr(callee)?;
        self.args(args)?;
        self.code.push(Op::Call(check_argc(args)?));
        Ok(())
    }

    fn assign(&mut self, target: &Target, value: &Expr) -> Result<(), VmError> {
        match target {
            Target::Var(name) => {
                self.expr(value)?;
                self.code.push(Op::Dup);
                match self.resolve(name) {
                    Slot::Local(s) => self.code.push(Op::StoreLocal(s)),
                    Slot::Global(s) => self.code.push(Op::StoreGlobal(s)),
                }
                Ok(())
            }
            Target::Index(base, index) => {
                self.expr(base)?;
                self.expr(index)?;
                self.expr(value)?;
                self.code.push(Op::SetElem);
                Ok(())
            }
            Target::Prop(base, name) => {
                self.expr(base)?;
                self.expr(value)?;
                if name == "length" {
                    self.code.push(Op::SetLength);
                } else {
                    self.code.push(Op::SetProp(Rc::from(name.as_str())));
                }
                Ok(())
            }
        }
    }

    fn inc_dec(&mut self, target: &Target, delta: i8, prefix: bool) -> Result<(), VmError> {
        let bin = if delta > 0 {
            jitbull_frontend::ast::BinOp::Add
        } else {
            jitbull_frontend::ast::BinOp::Sub
        };
        match target {
            Target::Var(name) => {
                let slot = self.resolve(name);
                let (load, store): (Op, Op) = match slot {
                    Slot::Local(s) => (Op::LoadLocal(s), Op::StoreLocal(s)),
                    Slot::Global(s) => (Op::LoadGlobal(s), Op::StoreGlobal(s)),
                };
                self.code.push(load);
                if prefix {
                    self.code.push(Op::ConstNum(1.0));
                    self.code.push(Op::Bin(bin));
                    self.code.push(Op::Dup);
                    self.code.push(store);
                } else {
                    self.code.push(Op::Dup);
                    self.code.push(Op::ConstNum(1.0));
                    self.code.push(Op::Bin(bin));
                    self.code.push(store);
                }
                Ok(())
            }
            Target::Index(base, index) => {
                let tb = self.scratch()?;
                let ti = self.scratch()?;
                let told = self.scratch()?;
                self.expr(base)?;
                self.code.push(Op::StoreLocal(tb));
                self.expr(index)?;
                self.code.push(Op::StoreLocal(ti));
                self.code.push(Op::LoadLocal(tb));
                self.code.push(Op::LoadLocal(ti));
                self.code.push(Op::GetElem);
                self.code.push(Op::StoreLocal(told));
                self.code.push(Op::LoadLocal(tb));
                self.code.push(Op::LoadLocal(ti));
                self.code.push(Op::LoadLocal(told));
                self.code.push(Op::ConstNum(1.0));
                self.code.push(Op::Bin(bin));
                self.code.push(Op::SetElem);
                self.code.push(Op::Pop);
                self.code.push(Op::LoadLocal(told));
                if prefix {
                    self.code.push(Op::ConstNum(1.0));
                    self.code.push(Op::Bin(bin));
                }
                Ok(())
            }
            Target::Prop(base, name) => {
                let tb = self.scratch()?;
                let told = self.scratch()?;
                let (get, set): (Op, Op) = if name == "length" {
                    (Op::GetLength, Op::SetLength)
                } else {
                    (
                        Op::GetProp(Rc::from(name.as_str())),
                        Op::SetProp(Rc::from(name.as_str())),
                    )
                };
                self.expr(base)?;
                self.code.push(Op::StoreLocal(tb));
                self.code.push(Op::LoadLocal(tb));
                self.code.push(get);
                self.code.push(Op::StoreLocal(told));
                self.code.push(Op::LoadLocal(tb));
                self.code.push(Op::LoadLocal(told));
                self.code.push(Op::ConstNum(1.0));
                self.code.push(Op::Bin(bin));
                self.code.push(set);
                self.code.push(Op::Pop);
                self.code.push(Op::LoadLocal(told));
                if prefix {
                    self.code.push(Op::ConstNum(1.0));
                    self.code.push(Op::Bin(bin));
                }
                Ok(())
            }
        }
    }
}

fn check_argc(args: &[Expr]) -> Result<u8, VmError> {
    u8::try_from(args.len()).map_err(|_| VmError::Compile("too many call arguments".into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_source;

    fn printed(src: &str) -> Vec<String> {
        run_source(src)
            .unwrap_or_else(|e| panic!("run failed: {e}\nsource: {src}"))
            .printed
    }

    #[test]
    fn arithmetic_and_print() {
        assert_eq!(printed("print(1 + 2 * 3);"), vec!["7"]);
        assert_eq!(printed("print(10 % 3);"), vec!["1"]);
        assert_eq!(printed("print(7 / 2);"), vec!["3.5"]);
    }

    #[test]
    fn variables_and_loops() {
        assert_eq!(
            printed("var t = 0; for (var i = 0; i < 5; i++) { t += i; } print(t);"),
            vec!["10"]
        );
        assert_eq!(
            printed("var i = 0; while (i < 3) { i = i + 1; } print(i);"),
            vec!["3"]
        );
    }

    #[test]
    fn break_and_continue() {
        assert_eq!(
            printed(
                "var t = 0; for (var i = 0; i < 10; i++) { if (i == 3) { continue; } if (i == 6) { break; } t += i; } print(t);"
            ),
            vec!["12"] // 0+1+2+4+5
        );
        assert_eq!(
            printed("var i = 0; while (true) { i++; if (i >= 4) { break; } } print(i);"),
            vec!["4"]
        );
    }

    #[test]
    fn functions_and_recursion() {
        assert_eq!(
            printed("function fib(n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); } print(fib(10));"),
            vec!["55"]
        );
    }

    #[test]
    fn nested_functions_are_hoisted() {
        assert_eq!(
            printed("function outer() { function inner(x) { return x * 2; } return inner(21); } print(outer());"),
            vec!["42"]
        );
    }

    #[test]
    fn arrays() {
        assert_eq!(
            printed("var a = [1, 2, 3]; a[1] = 9; print(a[0] + a[1] + a[2]);"),
            vec!["13"]
        );
        assert_eq!(printed("var a = new Array(4); print(a.length);"), vec!["4"]);
        assert_eq!(
            printed("var a = []; a.push(5); a.push(6); print(a.pop() + a.length);"),
            vec!["7"]
        );
        assert_eq!(
            printed("var a = [1,2,3]; a.length = 1; print(a.length); print(a[1]);"),
            vec!["1", "undefined"]
        );
    }

    #[test]
    fn objects_and_methods() {
        assert_eq!(
            printed("var o = {x: 3, y: 4}; print(o.x * o.y);"),
            vec!["12"]
        );
        assert_eq!(
            printed(
                "function Point(x, y) { this.x = x; this.y = y; this.mag = sq; } \
                 function sq() { return this.x * this.x + this.y * this.y; } \
                 var p = new Point(3, 4); print(p.mag());"
            ),
            vec!["25"]
        );
    }

    #[test]
    fn math_intrinsics() {
        assert_eq!(printed("print(Math.floor(3.7));"), vec!["3"]);
        assert_eq!(printed("print(Math.max(2, 5));"), vec!["5"]);
        assert_eq!(printed("print(Math.pow(2, 10));"), vec!["1024"]);
        let pi = printed("print(Math.PI);");
        assert!(pi[0].starts_with("3.14159"));
        // Math.random is deterministic and in range.
        let r = printed("var x = Math.random(); print(x >= 0 && x < 1);");
        assert_eq!(r, vec!["true"]);
    }

    #[test]
    fn string_operations() {
        assert_eq!(printed("print(\"a\" + \"b\" + 1);"), vec!["ab1"]);
        assert_eq!(printed("print(\"hello\".length);"), vec!["5"]);
        assert_eq!(printed("print(\"abc\".charCodeAt(1));"), vec!["98"]);
        assert_eq!(printed("print(\"abcdef\".substring(1, 3));"), vec!["bc"]);
        assert_eq!(printed("print(\"abc\".indexOf(\"bc\"));"), vec!["1"]);
        assert_eq!(printed("print(String.fromCharCode(65));"), vec!["A"]);
        assert_eq!(printed("print(\"xyz\"[1]);"), vec!["y"]);
    }

    #[test]
    fn logical_and_ternary() {
        assert_eq!(printed("print(1 && 2);"), vec!["2"]);
        assert_eq!(printed("print(0 || 5);"), vec!["5"]);
        assert_eq!(printed("print(0 && f());"), vec!["0"]); // short-circuit: f never called
        assert_eq!(printed("print(true ? 1 : 2);"), vec!["1"]);
    }

    #[test]
    fn inc_dec_value_semantics() {
        assert_eq!(printed("var i = 5; print(i++); print(i);"), vec!["5", "6"]);
        assert_eq!(printed("var i = 5; print(++i); print(i);"), vec!["6", "6"]);
        assert_eq!(
            printed("var a = [10]; print(a[0]++); print(a[0]);"),
            vec!["10", "11"]
        );
        assert_eq!(
            printed("var o = {n: 1}; print(--o.n); print(o.n);"),
            vec!["0", "0"]
        );
    }

    #[test]
    fn assignment_is_an_expression() {
        assert_eq!(printed("var a; var b; a = b = 3; print(a + b);"), vec!["6"]);
        assert_eq!(printed("var a = [0]; print(a[0] = 9);"), vec!["9"]);
    }

    #[test]
    fn globals_shared_across_functions() {
        assert_eq!(
            printed("var g = 0; function bump() { g = g + 1; } bump(); bump(); print(g);"),
            vec!["2"]
        );
    }

    #[test]
    fn typeof_and_equality() {
        assert_eq!(printed("print(typeof 1);"), vec!["number"]);
        assert_eq!(printed("print(typeof \"s\");"), vec!["string"]);
        assert_eq!(printed("print(null == undefined);"), vec!["true"]);
        assert_eq!(printed("print(null === undefined);"), vec!["false"]);
    }

    #[test]
    fn compile_errors() {
        use jitbull_frontend::parse_program;
        let p = parse_program("break;").unwrap();
        assert!(matches!(compile_program(&p), Err(VmError::Compile(_))));
        let p = parse_program("Math.pow(2);").unwrap();
        assert!(matches!(compile_program(&p), Err(VmError::Compile(_))));
        let p = parse_program("Math.nosuch(2);").unwrap();
        assert!(matches!(compile_program(&p), Err(VmError::Compile(_))));
    }

    #[test]
    fn functions_are_values() {
        assert_eq!(
            printed("function f(x) { return x + 1; } var g = f; print(g(4));"),
            vec!["5"]
        );
        assert_eq!(
            printed("function f() { return 7; } var a = [f]; print(a[0]());"),
            vec!["7"]
        );
    }

    #[test]
    fn calling_non_function_is_type_error() {
        let err = run_source("var x = 5; var y = x(1);").unwrap_err();
        assert!(matches!(err, VmError::Crash(_)), "{err}");
    }

    #[test]
    fn out_of_fuel() {
        use crate::{compile_program, interp, InterpDispatcher, Runtime};
        let p = jitbull_frontend::parse_program("while (true) {}").unwrap();
        let m = compile_program(&p).unwrap();
        let mut rt = Runtime::with_fuel(10_000);
        let mut d = InterpDispatcher;
        assert!(matches!(
            interp::run_module(&mut rt, &m, &mut d),
            Err(VmError::OutOfFuel)
        ));
    }
}

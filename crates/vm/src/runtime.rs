//! Execution state shared by all tiers: heap, globals, objects, exploit
//! status, and the deterministic cycle cost model.

use std::collections::HashMap;
use std::rc::Rc;

use crate::bytecode::Module;
use crate::error::VmError;
use crate::heap::Heap;
use crate::value::{ObjId, Value};

/// The "sprayed shellcode" sentinel. A call whose callee cell has been
/// corrupted to this number models a successful control-flow hijack to
/// attacker-sprayed code (the payload outcome of CVE-2019-11707 /
/// CVE-2019-17026 style exploits).
pub const SHELLCODE_MARKER: f64 = 3_735_928_559.0; // 0xDEADBEEF

/// Per-op cycle cost of the interpreter tier.
pub const INTERP_COST: u64 = 25;
/// Per-op cycle cost of the baseline (unoptimized machine code) tier.
pub const BASELINE_COST: u64 = 5;
/// Per-MIR-instruction cycle cost of the optimizing (Ion-like) tier.
pub const ION_COST: u64 = 1;

/// What the simulated process experienced by the end of the run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum ExploitStatus {
    /// Nothing security-relevant happened.
    #[default]
    Clean,
    /// A wild memory access crashed the runtime (message says where).
    Crashed(String),
    /// Control flow reached attacker-sprayed "shellcode".
    ShellcodeExecuted,
}

impl ExploitStatus {
    /// Whether the run ended in an attacker-visible success (crash or
    /// payload execution).
    pub fn is_compromised(&self) -> bool {
        !matches!(self, ExploitStatus::Clean)
    }
}

/// A plain object's storage.
#[derive(Debug, Default, Clone)]
pub struct ObjectData {
    props: HashMap<Rc<str>, Value>,
}

impl ObjectData {
    /// Reads a property (`undefined` when absent).
    pub fn get(&self, name: &str) -> Value {
        self.props.get(name).cloned().unwrap_or(Value::Undefined)
    }

    /// Writes a property.
    pub fn set(&mut self, name: Rc<str>, value: Value) {
        self.props.insert(name, value);
    }
}

/// The result of a completed (or aborted) run.
#[derive(Debug, Clone, PartialEq)]
pub struct Outcome {
    /// Lines produced by `print`.
    pub printed: Vec<String>,
    /// Total simulated cycles consumed (execution + compilation charges).
    pub cycles: u64,
    /// Executed operations (bytecode / MIR / LIR), across all tiers.
    pub ops: u64,
    /// Exploit status at end of run.
    pub status: ExploitStatus,
}

/// Mutable execution state shared by the interpreter, baseline, and
/// optimizing tiers.
#[derive(Debug)]
pub struct Runtime {
    /// The flat element heap.
    pub heap: Heap,
    /// Global variable slots (sized by [`Runtime::prepare`]).
    pub globals: Vec<Value>,
    objects: Vec<ObjectData>,
    /// Output of `print`.
    pub printed: Vec<String>,
    cycles: u64,
    ops: u64,
    fuel: u64,
    /// Exploit status; set by the VM when wild accesses or hijacked calls
    /// occur.
    pub status: ExploitStatus,
    depth: u32,
    rng: u64,
}

impl Default for Runtime {
    fn default() -> Self {
        Runtime::new()
    }
}

impl Runtime {
    /// Maximum call depth before the run is aborted.
    pub const MAX_DEPTH: u32 = 600;

    /// Creates a runtime with the default fuel budget (500M operations).
    pub fn new() -> Self {
        Runtime::with_fuel(500_000_000)
    }

    /// Creates a runtime with an explicit fuel budget (in executed
    /// bytecode/MIR operations).
    pub fn with_fuel(fuel: u64) -> Self {
        Runtime {
            heap: Heap::new(),
            globals: Vec::new(),
            objects: Vec::new(),
            printed: Vec::new(),
            cycles: 0,
            ops: 0,
            fuel,
            status: ExploitStatus::Clean,
            depth: 0,
            rng: 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Sizes the global table for `module` and binds every function to its
    /// global slot. Must be called (directly or via
    /// [`crate::interp::run_module`]) before executing code.
    pub fn prepare(&mut self, module: &Module) {
        self.globals = vec![Value::Undefined; module.global_count()];
        for (i, name) in module.global_names.iter().enumerate() {
            if let Some(fid) = module.function_id(name) {
                self.globals[i] = Value::Function(fid);
            }
        }
    }

    /// Charges one executed operation at `cost` cycles.
    ///
    /// # Errors
    ///
    /// [`VmError::OutOfFuel`] when the fuel budget is exhausted.
    #[inline]
    pub fn consume_op(&mut self, cost: u64) -> Result<(), VmError> {
        if self.fuel == 0 {
            return Err(VmError::OutOfFuel);
        }
        self.fuel -= 1;
        self.ops += 1;
        self.cycles += cost;
        Ok(())
    }

    /// Adds a lump-sum cycle charge (used for compilation and JITBULL
    /// analysis costs).
    pub fn add_cycles(&mut self, cycles: u64) {
        self.cycles += cycles;
    }

    /// Total simulated cycles so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Operations executed so far (across all tiers).
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Remaining fuel.
    pub fn fuel(&self) -> u64 {
        self.fuel
    }

    /// Enters a call frame.
    ///
    /// # Errors
    ///
    /// [`VmError::Type`] when the depth limit is exceeded.
    pub fn enter_call(&mut self) -> Result<(), VmError> {
        if self.depth >= Self::MAX_DEPTH {
            return Err(VmError::Type("call stack depth exceeded".into()));
        }
        self.depth += 1;
        Ok(())
    }

    /// Leaves a call frame.
    pub fn exit_call(&mut self) {
        self.depth = self.depth.saturating_sub(1);
    }

    /// Allocates a fresh empty object.
    pub fn alloc_object(&mut self) -> ObjId {
        let id = ObjId(self.objects.len() as u32);
        self.objects.push(ObjectData::default());
        id
    }

    /// Immutable access to an object.
    pub fn object(&self, id: ObjId) -> &ObjectData {
        &self.objects[id.0 as usize]
    }

    /// Mutable access to an object.
    pub fn object_mut(&mut self, id: ObjId) -> &mut ObjectData {
        &mut self.objects[id.0 as usize]
    }

    /// Deterministic `Math.random()` (xorshift64*; seeded constant so runs
    /// reproduce exactly).
    pub fn next_random(&mut self) -> f64 {
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        let bits = x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11;
        bits as f64 / (1u64 << 53) as f64
    }

    /// Records a crash into the exploit status (first crash wins).
    pub fn note_crash(&mut self, message: &str) {
        if matches!(self.status, ExploitStatus::Clean) {
            self.status = ExploitStatus::Crashed(message.to_owned());
        }
    }

    /// Finishes the run, extracting the [`Outcome`].
    pub fn into_outcome(self) -> Outcome {
        Outcome {
            printed: self.printed,
            cycles: self.cycles,
            ops: self.ops,
            status: self.status,
        }
    }

    /// Reads a global by source name (test/bench convenience).
    pub fn global_by_name(&self, module: &Module, name: &str) -> Option<Value> {
        module
            .global_names
            .iter()
            .position(|n| n == name)
            .map(|i| self.globals[i].clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fuel_exhaustion() {
        let mut rt = Runtime::with_fuel(2);
        assert!(rt.consume_op(1).is_ok());
        assert!(rt.consume_op(1).is_ok());
        assert_eq!(rt.consume_op(1), Err(VmError::OutOfFuel));
        assert_eq!(rt.cycles(), 2);
        assert_eq!(rt.ops(), 2, "the failed op must not be counted");
    }

    #[test]
    fn depth_limit() {
        let mut rt = Runtime::new();
        for _ in 0..Runtime::MAX_DEPTH {
            rt.enter_call().unwrap();
        }
        assert!(rt.enter_call().is_err());
        rt.exit_call();
        assert!(rt.enter_call().is_ok());
    }

    #[test]
    fn random_is_deterministic_and_in_range() {
        let mut a = Runtime::new();
        let mut b = Runtime::new();
        for _ in 0..100 {
            let x = a.next_random();
            assert_eq!(x, b.next_random());
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn object_properties() {
        let mut rt = Runtime::new();
        let id = rt.alloc_object();
        assert!(matches!(rt.object(id).get("missing"), Value::Undefined));
        rt.object_mut(id).set("x".into(), Value::Number(4.0));
        assert!(matches!(rt.object(id).get("x"), Value::Number(n) if n == 4.0));
    }

    #[test]
    fn first_crash_wins() {
        let mut rt = Runtime::new();
        rt.note_crash("first");
        rt.note_crash("second");
        assert_eq!(rt.status, ExploitStatus::Crashed("first".into()));
    }

    #[test]
    fn status_compromised() {
        assert!(!ExploitStatus::Clean.is_compromised());
        assert!(ExploitStatus::ShellcodeExecuted.is_compromised());
        assert!(ExploitStatus::Crashed("x".into()).is_compromised());
    }
}

//! Runtime error types.

use std::error::Error;
use std::fmt;

/// An error raised while compiling or executing minijs code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmError {
    /// Source failed to parse (wraps the frontend message).
    Parse(String),
    /// Compilation rejected the program (e.g. captured locals).
    Compile(String),
    /// A dynamic type error (calling a non-function, indexing a number, …).
    Type(String),
    /// The simulated process crashed — raw heap access escaped the heap, or
    /// execution was redirected through corrupted state. This models the
    /// browser-tab crash outcome of the paper's first two CVE PoCs.
    Crash(String),
    /// The per-run fuel budget was exhausted (guards tests against
    /// accidental infinite loops).
    OutOfFuel,
    /// An unknown global was read before being defined.
    UndefinedGlobal(String),
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::Parse(m) => write!(f, "parse error: {m}"),
            VmError::Compile(m) => write!(f, "compile error: {m}"),
            VmError::Type(m) => write!(f, "type error: {m}"),
            VmError::Crash(m) => write!(f, "runtime crash: {m}"),
            VmError::OutOfFuel => write!(f, "execution fuel exhausted"),
            VmError::UndefinedGlobal(name) => write!(f, "undefined global `{name}`"),
        }
    }
}

impl Error for VmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert_eq!(
            VmError::Crash("oob".into()).to_string(),
            "runtime crash: oob"
        );
        assert_eq!(VmError::OutOfFuel.to_string(), "execution fuel exhausted");
    }
}

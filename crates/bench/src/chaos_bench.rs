//! Chaos engineering harness: the deterministic fault ladder behind
//! `repro -- chaos`, the injector-overhead measurement, and the faulted
//! serving-throughput retention check (`benches/chaos_overhead.rs`).
//!
//! The ladder walks every self-healing mechanism in order — quarantine,
//! watchdog, IR-corruption fallback, circuit breaker, DB-reload retry,
//! torn-read refusal + partial salvage, cache-poison purge, worker
//! deadline blowout/panic, and graceful drain — injecting faults through
//! [`FaultInjector`] and verifying the engine recovered from each one.
//! Everything in the resulting [`LadderReport`] is a pure function of the
//! seed: two runs with the same seed must compare equal, which is the
//! tentpole's determinism acceptance criterion.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use jitbull::{CompareConfig, DnaDatabase, Guard, LoadMode};
use jitbull_chaos::retry::RetryPolicy;
use jitbull_chaos::{
    BreakerConfig, ChaosTally, FaultInjector, FaultKind, FaultPlan, FaultSite, Quarantine,
};
use jitbull_jit::engine::{Engine, EngineConfig, TierStats};
use jitbull_jit::pipeline::N_SLOTS;
use jitbull_jit::CveId;
use jitbull_pool::{Pool, PoolConfig, PoolError, Request, SharedCollector, Ticket};
use jitbull_telemetry::{export_text, Collector, Event, Recorder};
use jitbull_vdc::{build_database, vdc};

use crate::render_table;

/// Permissive comparator thresholds (the repo's test convention) so the
/// honest `ServeArray` false positive matches CVE-2019-17026's DNA.
const PERMISSIVE: CompareConfig = CompareConfig { thr: 1, ratio: 0.5 };

/// A hot single-function workload: `work` crosses the fast-test Ion
/// threshold and the script prints `15`.
const HOT: &str = "
    function work(a) { var t = 0; for (var i = 0; i < a.length; i++) { t = t + a[i]; } return t; }
    var arr = [1, 2, 3, 4, 5];
    var total = 0;
    for (var r = 0; r < 50; r++) { total = work(arr); }
    print(total);
";

/// A hot workload whose function name is chosen per call (the breaker
/// rung needs distinct functions so quarantine and breaker trips stay
/// separable). Prints a deterministic checksum.
fn hot_src(name: &str) -> String {
    format!(
        "function {name}(a, b) {{ var t = 0; for (var i = 0; i < 20; i++) {{ t = t + a * i - b; }} return t; }}
         var r = 0;
         for (var k = 0; k < 30; k++) {{ r = {name}(k, 3); }}
         print(r);"
    )
}

/// Bridges the pool's thread-safe recorder into the engine's
/// single-threaded collector slot, so engine-phase recovery events land
/// in the same ladder-wide recorder as the pool phases'.
struct Shared(Arc<Mutex<Recorder>>);

impl Collector for Shared {
    fn record(&mut self, event: Event) {
        self.0
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .record(event);
    }
}

fn engine_collector(rec: &Arc<Mutex<Recorder>>) -> Rc<RefCell<dyn Collector>> {
    Rc::new(RefCell::new(Shared(Arc::clone(rec))))
}

fn counter(rec: &Arc<Mutex<Recorder>>, name: &str) -> u64 {
    rec.lock()
        .unwrap_or_else(|e| e.into_inner())
        .metrics()
        .counter(name)
}

/// One rung of the fault ladder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LadderStep {
    /// The recovery mechanism this rung exercises.
    pub mechanism: &'static str,
    /// Faults the injector fired during the rung.
    pub injected: u64,
    /// Faults the engine demonstrably recovered from.
    pub recovered: u64,
    /// Deterministic facts backing the recovered count.
    pub evidence: String,
}

/// The full ladder outcome. Derives `PartialEq` so the determinism check
/// is a single comparison: same seed ⇒ equal reports.
#[derive(Debug, Clone, PartialEq)]
pub struct LadderReport {
    /// Seed every fault plan and retry policy derived from.
    pub seed: u64,
    /// One entry per rung, in execution order.
    pub steps: Vec<LadderStep>,
    /// Per-kind injected counts merged across all rungs.
    pub tally: ChaosTally,
    /// `chaos.*` / `recovery.*` metric lines from the ladder's recorder.
    pub telemetry: Vec<String>,
}

impl LadderReport {
    /// Total faults injected.
    #[must_use]
    pub fn injected(&self) -> u64 {
        self.steps.iter().map(|s| s.injected).sum()
    }

    /// Total faults recovered.
    #[must_use]
    pub fn recovered(&self) -> u64 {
        self.steps.iter().map(|s| s.recovered).sum()
    }

    /// Whether every rung recovered every fault it injected.
    #[must_use]
    pub fn all_recovered(&self) -> bool {
        self.steps.iter().all(|s| s.injected == s.recovered)
    }
}

/// Runs the full fault ladder with every plan derived from `seed`.
#[must_use]
pub fn ladder(seed: u64) -> LadderReport {
    let rec = Arc::new(Mutex::new(Recorder::new()));
    let steps = vec![
        quarantine_rung(seed, &rec),
        watchdog_rung(seed, &rec),
        ir_corrupt_rung(seed, &rec),
        breaker_rung(seed, &rec),
        reload_rung(seed, &rec),
        torn_read_rung(seed),
        cache_poison_rung(seed, &rec),
        worker_rung(seed, &rec),
        drain_rung(&rec),
    ];
    let mut tally = ChaosTally::default();
    for (_, t) in &steps {
        tally.merge(t);
    }
    let guard = rec.lock().unwrap_or_else(|e| e.into_inner());
    let telemetry: Vec<String> = export_text(&guard)
        .lines()
        .map(str::trim_start)
        .filter(|l| l.starts_with("chaos.") || l.starts_with("recovery."))
        .map(str::to_owned)
        .collect();
    drop(guard);
    LadderReport {
        seed,
        steps: steps.into_iter().map(|(s, _)| s).collect(),
        tally,
        telemetry,
    }
}

/// Rung 1 — two scripted compile panics earn the hot function two
/// quarantine strikes; the second pins it no-go and the script still
/// prints the right answer from the baseline tier.
fn quarantine_rung(seed: u64, rec: &Arc<Mutex<Recorder>>) -> (LadderStep, ChaosTally) {
    let inj = FaultInjector::from_plan(FaultPlan::new(seed).script(
        FaultSite::PassRun,
        FaultKind::PassPanic,
        0,
        2,
    ));
    let quarantine = Quarantine::default();
    let mut engine = Engine::new(EngineConfig {
        faults: inj.clone(),
        quarantine: quarantine.clone(),
        ..EngineConfig::fast_test()
    });
    engine.set_collector(engine_collector(rec));
    let out = engine.run_source_with(HOT).expect("script still serves");
    let pinned = quarantine.is_quarantined("work");
    let correct = out.outcome.printed == vec!["15".to_string()];
    let injected = inj.tally().total();
    let recovered = if pinned && correct {
        out.compile_failures
    } else {
        0
    };
    let step = LadderStep {
        mechanism: "quarantine: 2 compile panics pin no-go",
        injected,
        recovered,
        evidence: format!(
            "strikes={} quarantined={:?} output_correct={correct}",
            quarantine.strikes("work"),
            quarantine.quarantined(),
        ),
    };
    (step, inj.tally())
}

/// Rung 2 — a stalled pass blows the compilation's cycle budget; the
/// watchdog caps the charge, pins the function interpreter-only, and the
/// script still completes.
fn watchdog_rung(seed: u64, rec: &Arc<Mutex<Recorder>>) -> (LadderStep, ChaosTally) {
    let inj = FaultInjector::from_plan(FaultPlan::new(seed ^ 0x2).script(
        FaultSite::PassRun,
        FaultKind::PassStall {
            extra_work: 250_000,
        },
        0,
        1,
    ));
    let mut engine = Engine::new(EngineConfig {
        faults: inj.clone(),
        watchdog_budget: Some(25_000),
        ..EngineConfig::fast_test()
    });
    engine.set_collector(engine_collector(rec));
    let out = engine.run_source_with(HOT).expect("script still serves");
    let pinned = out
        .stats
        .iter()
        .any(|s| s.name == "work" && s.tier == TierStats::Interpreter);
    let correct = out.outcome.printed == vec!["15".to_string()];
    let injected = inj.tally().total();
    let recovered = if pinned && correct {
        out.watchdog_expiries
    } else {
        0
    };
    let step = LadderStep {
        mechanism: "watchdog: stalled pass capped at budget",
        injected,
        recovered,
        evidence: format!(
            "expiries={} pinned_interp={pinned} output_correct={correct}",
            out.watchdog_expiries,
        ),
    };
    (step, inj.tally())
}

/// Rung 3 — an injected IR corruption is caught by the pipeline's
/// coherency check; the compilation is abandoned and the function falls
/// back without ever executing the corrupt graph.
fn ir_corrupt_rung(seed: u64, rec: &Arc<Mutex<Recorder>>) -> (LadderStep, ChaosTally) {
    let inj = FaultInjector::from_plan(FaultPlan::new(seed ^ 0x3).script(
        FaultSite::PassRun,
        FaultKind::IrCorrupt,
        0,
        1,
    ));
    let mut engine = Engine::new(EngineConfig {
        faults: inj.clone(),
        ..EngineConfig::fast_test()
    });
    engine.set_collector(engine_collector(rec));
    let out = engine.run_source_with(HOT).expect("script still serves");
    let fell_back = out
        .stats
        .iter()
        .any(|s| s.name == "work" && s.tier == TierStats::NoIon);
    let correct = out.outcome.printed == vec!["15".to_string()];
    let injected = inj.tally().total();
    let recovered = if fell_back && correct {
        out.compile_failures
    } else {
        0
    };
    let step = LadderStep {
        mechanism: "ir-corrupt: broken graph abandoned pre-exec",
        injected,
        recovered,
        evidence: format!(
            "compile_failures={} fell_back={fell_back} output_correct={correct}",
            out.compile_failures,
        ),
    };
    (step, inj.tally())
}

/// Rung 4 — two requests with panicking compilations trip a tight
/// breaker; three cooldown requests serve degraded; the half-open probe
/// compiles cleanly and re-arms the JIT for everyone.
fn breaker_rung(seed: u64, rec: &Arc<Mutex<Recorder>>) -> (LadderStep, ChaosTally) {
    let inj = FaultInjector::from_plan(FaultPlan::new(seed ^ 0x4).script(
        FaultSite::PassRun,
        FaultKind::PassPanic,
        0,
        4,
    ));
    let pool = Pool::with_collector(
        PoolConfig {
            workers: 1,
            capacity: 16,
            compare: CompareConfig::default(),
            faults: inj.clone(),
            breaker: BreakerConfig {
                window: 8,
                threshold: 2,
                cooldown: 3,
            },
            ..PoolConfig::default()
        },
        DnaDatabase::new(),
        Arc::clone(rec) as SharedCollector,
    );
    let serve = |name: &str| {
        pool.submit(Request::new(hot_src(name)).with_config(EngineConfig::fast_test()))
            .and_then(Ticket::wait)
    };
    // Two failure bursts: each request's compile panics twice (retry then
    // quarantine), so each reports one failure to the breaker window.
    let a = serve("hotA");
    let b = serve("hotB");
    // Cooldown: three admissions served interpreter-only.
    let cooldown_degraded = (0..3)
        .filter(|_| serve("cool").is_ok_and(|r| r.breaker_degraded))
        .count();
    // The probe compiles cleanly (the panic window is spent) and re-arms.
    let probe = serve("hotC");
    let bstats = pool.breaker_stats();
    let quarantined = pool.quarantined();
    let stats = pool.shutdown();
    let bursts_served = a.as_ref().is_ok_and(|r| r.compile_failures == 2)
        && b.as_ref().is_ok_and(|r| r.compile_failures == 2);
    let rearmed = bstats.state == "closed"
        && (bstats.trips, bstats.probes, bstats.rearms) == (1, 1, 1)
        && probe.is_ok_and(|r| !r.breaker_degraded && r.compile_failures == 0);
    let injected = inj.tally().total();
    let recovered = if bursts_served && rearmed && cooldown_degraded == 3 {
        stats.compile_failures
    } else {
        0
    };
    let step = LadderStep {
        mechanism: "breaker: trip, cooldown, probe, re-arm",
        injected,
        recovered,
        evidence: format!(
            "state={} trips={} probes={} rearms={} degraded={} quarantined={quarantined:?}",
            bstats.state, bstats.trips, bstats.probes, bstats.rearms, stats.breaker_degraded,
        ),
    };
    (step, inj.tally())
}

/// Rung 5 — a reload rides out two transient I/O faults with seeded
/// backoff, then a persistent parse fault exhausts the policy without
/// ever unpublishing the last good snapshot.
fn reload_rung(seed: u64, rec: &Arc<Mutex<Recorder>>) -> (LadderStep, ChaosTally) {
    let inj = FaultInjector::from_plan(
        FaultPlan::new(seed ^ 0x5)
            .script(FaultSite::DbLoad, FaultKind::DbIo, 0, 2)
            .script(FaultSite::DbLoad, FaultKind::DbParse, 3, u64::MAX),
    );
    let pool = Pool::with_collector(
        PoolConfig {
            workers: 1,
            capacity: 8,
            compare: PERMISSIVE,
            faults: inj.clone(),
            breaker: BreakerConfig::default(),
            ..PoolConfig::default()
        },
        DnaDatabase::new(),
        Arc::clone(rec) as SharedCollector,
    );
    let update = build_database(&[vdc(CveId::Cve2019_17026)])
        .expect("vdc database builds")
        .to_text();
    let policy = RetryPolicy {
        base_micros: 20,
        seed,
        ..RetryPolicy::default()
    };
    // Two injected I/O faults, then the third attempt lands.
    let first = pool.reload_with_retry(&update, N_SLOTS, LoadMode::Strict, &policy);
    let recovered_swap = first
        .as_ref()
        .is_ok_and(|(epoch, report)| *epoch == 2 && report.is_clean());
    let good_generation = pool.published().1.generation();
    // A persistent parse fault: every attempt fails, nothing publishes.
    let second = pool.reload_with_retry(&update, N_SLOTS, LoadMode::Strict, &policy);
    let refused = second.as_ref().is_err_and(|e| e.kind() == "parse");
    let intact = pool.epoch() == 2 && pool.published().1.generation() == good_generation;
    // The pool still serves verdicts from the last good snapshot.
    let mix = jitbull_workloads::serving_mix();
    let serve_array = &mix
        .iter()
        .find(|w| w.name == "ServeArray")
        .expect("mix")
        .source;
    let flagged = pool
        .submit(Request::new(serve_array.clone()).with_config(EngineConfig::fast_test()))
        .and_then(Ticket::wait)
        .is_ok_and(|r| r.db_epoch == 2 && r.matched_cves.iter().any(|c| c == "CVE-2019-17026"));
    pool.shutdown();
    let injected = inj.tally().total();
    let recovered = u64::from(recovered_swap) * inj.tally().get("db_io")
        + u64::from(refused && intact && flagged) * inj.tally().get("db_parse");
    let step = LadderStep {
        mechanism: "reload retry: backoff, never publish partial",
        injected,
        recovered,
        evidence: format!(
            "recovered_swap={recovered_swap} persistent_refused={refused} snapshot_intact={intact} still_flagging={flagged}"
        ),
    };
    (step, inj.tally())
}

/// Rung 6 — a torn (truncated) update is refused outright under strict
/// parsing, and partial mode salvages the well-formed entries of a
/// hand-corrupted update with line-numbered warnings.
fn torn_read_rung(seed: u64) -> (LadderStep, ChaosTally) {
    let inj = FaultInjector::from_plan(FaultPlan::new(seed ^ 0x6).script(
        FaultSite::DbLoad,
        FaultKind::DbTruncate,
        0,
        1,
    ));
    let text = build_database(&[vdc(CveId::Cve2019_17026), vdc(CveId::Cve2019_9810)])
        .expect("vdc database builds")
        .to_text();
    let refused = DnaDatabase::from_text_faulted(&text, N_SLOTS, LoadMode::Strict, &inj).is_err();
    // Partial-mode salvage: corrupt the second entry's first body line.
    let mut lines: Vec<&str> = text.lines().collect();
    let second_header = lines
        .iter()
        .enumerate()
        .filter(|(_, l)| l.starts_with("@entry"))
        .nth(1)
        .map(|(i, _)| i)
        .expect("two entries");
    lines.insert(second_header + 1, "12 & torn garbage");
    let mangled = lines.join("\n");
    let salvage = DnaDatabase::from_text_checked(&mangled, N_SLOTS, LoadMode::Partial);
    let (salvaged, warned_line) = match &salvage {
        Ok((db, report)) => (
            db.len() == 1 && report.loaded == 1 && report.skipped == 1,
            report
                .warnings
                .first()
                .map(ToString::to_string)
                .unwrap_or_default(),
        ),
        Err(_) => (false, String::new()),
    };
    let injected = inj.tally().total();
    let recovered = u64::from(refused && salvaged) * injected;
    let step = LadderStep {
        mechanism: "torn read: strict refusal, partial salvage",
        injected,
        recovered,
        evidence: format!(
            "strict_refused={refused} partial_loaded_1_skipped_1={salvaged} warning=\"{warned_line}\""
        ),
    };
    (step, inj.tally())
}

/// Rung 7 — the comparator's verdict cache is poisoned in place; the
/// generation check purges and rebuilds it, and the poisoned verdict is
/// never served (the honest false positive still matches).
fn cache_poison_rung(seed: u64, rec: &Arc<Mutex<Recorder>>) -> (LadderStep, ChaosTally) {
    let inj = FaultInjector::from_plan(FaultPlan::new(seed ^ 0x7).script(
        FaultSite::ComparatorQuery,
        FaultKind::CachePoison,
        0,
        1,
    ));
    let purges_before = counter(rec, "recovery.cache_poison_purged");
    let db = build_database(&[vdc(CveId::Cve2019_17026)]).expect("vdc database builds");
    let mut engine = Engine::with_guard(
        EngineConfig {
            faults: inj.clone(),
            ..EngineConfig::fast_test()
        },
        Guard::new(db, PERMISSIVE),
    );
    engine.set_collector(engine_collector(rec));
    let mix = jitbull_workloads::serving_mix();
    let serve_array = &mix
        .iter()
        .find(|w| w.name == "ServeArray")
        .expect("mix")
        .source;
    let out = engine
        .run_source_with(serve_array)
        .expect("script still serves");
    let purges = counter(rec, "recovery.cache_poison_purged") - purges_before;
    let matched = out
        .stats
        .iter()
        .any(|s| s.matched.iter().any(|(c, _)| c == "CVE-2019-17026"));
    let injected = inj.tally().total();
    let recovered = if matched { purges.min(injected) } else { 0 };
    let step = LadderStep {
        mechanism: "cache poison: purged, never served",
        injected,
        recovered,
        evidence: format!("purges={purges} verdict_still_matches={matched}"),
    };
    (step, inj.tally())
}

/// Rung 8 — a deadline blowout degrades one request to interpreter-only
/// and a worker panic is isolated and respawned; every ticket resolves.
fn worker_rung(seed: u64, rec: &Arc<Mutex<Recorder>>) -> (LadderStep, ChaosTally) {
    let inj = FaultInjector::from_plan(
        FaultPlan::new(seed ^ 0x8)
            .script(FaultSite::WorkerServe, FaultKind::DeadlineBlowout, 0, 1)
            .script(FaultSite::WorkerServe, FaultKind::WorkerPanic, 1, 1),
    );
    let pool = Pool::with_collector(
        PoolConfig {
            workers: 1,
            capacity: 8,
            compare: CompareConfig::default(),
            faults: inj.clone(),
            breaker: BreakerConfig::default(),
            ..PoolConfig::default()
        },
        DnaDatabase::new(),
        Arc::clone(rec) as SharedCollector,
    );
    let mix = jitbull_workloads::serving_mix();
    let arith = &mix
        .iter()
        .find(|w| w.name == "ServeArith")
        .expect("mix")
        .source;
    let serve = || {
        pool.submit(Request::new(arith.clone()).with_config(EngineConfig::fast_test()))
            .and_then(Ticket::wait)
    };
    let blown = serve();
    let panicked = serve();
    let after = serve();
    let stats = pool.shutdown();
    let degraded_ok = blown.is_ok_and(|r| r.degraded && !r.breaker_degraded);
    let isolated = matches!(panicked, Err(PoolError::Panicked))
        && after.is_ok_and(|r| !r.degraded)
        && stats.worker_restarts == 1;
    let injected = inj.tally().total();
    let recovered = u64::from(degraded_ok) + u64::from(isolated);
    let step = LadderStep {
        mechanism: "worker: blowout degraded, panic respawned",
        injected,
        recovered,
        evidence: format!(
            "blowout_degraded={degraded_ok} panic_isolated={isolated} restarts={}",
            stats.worker_restarts,
        ),
    };
    (step, inj.tally())
}

/// Rung 9 — graceful drain: `shutdown_with_deadline(0)` stops accepting
/// and resolves every already-queued ticket (degraded where the deadline
/// lapsed) instead of dropping any.
fn drain_rung(rec: &Arc<Mutex<Recorder>>) -> (LadderStep, ChaosTally) {
    let pool = Pool::with_collector(
        PoolConfig {
            workers: 1,
            capacity: 32,
            compare: CompareConfig::default(),
            faults: FaultInjector::disabled(),
            breaker: BreakerConfig::default(),
            ..PoolConfig::default()
        },
        DnaDatabase::new(),
        Arc::clone(rec) as SharedCollector,
    );
    let mix = jitbull_workloads::serving_mix();
    let arith = &mix
        .iter()
        .find(|w| w.name == "ServeArith")
        .expect("mix")
        .source;
    let tickets: Vec<_> = (0..8)
        .filter_map(|_| {
            pool.submit(Request::new(arith.clone()).with_config(EngineConfig::fast_test()))
                .ok()
        })
        .collect();
    let submitted = tickets.len();
    let stats = pool.shutdown_with_deadline(Duration::ZERO);
    let resolved = tickets
        .into_iter()
        .filter(|t| t.try_wait().is_some())
        .count();
    let drained = submitted == 8 && resolved == 8 && stats.served == 8;
    let step = LadderStep {
        mechanism: "drain: zero-deadline shutdown loses nothing",
        injected: 0,
        recovered: 0,
        evidence: format!(
            "submitted={submitted} resolved={resolved} served={} all_resolved={drained}",
            stats.served
        ),
    };
    (step, ChaosTally::default())
}

/// Renders the ladder as a fixed-width table.
#[must_use]
pub fn render_ladder(report: &LadderReport) -> String {
    let rows: Vec<Vec<String>> = report
        .steps
        .iter()
        .map(|s| {
            vec![
                s.mechanism.to_string(),
                s.injected.to_string(),
                s.recovered.to_string(),
                if s.injected == s.recovered {
                    "yes"
                } else {
                    "NO"
                }
                .to_string(),
                s.evidence.clone(),
            ]
        })
        .collect();
    render_table(
        &["mechanism", "injected", "recovered", "ok", "evidence"],
        &rows,
    )
}

/// One workload's injector-overhead measurement: simulated cycles with
/// the default (disabled) injector vs an armed-but-idle plan whose rules
/// can never fire. Both must be identical — arming the machinery costs
/// nothing in the cycle model.
#[derive(Debug, Clone)]
pub struct OverheadPoint {
    /// Workload name.
    pub workload: &'static str,
    /// Cycles with the disabled injector, no guard.
    pub disabled_cycles: u64,
    /// Cycles with an armed-idle injector, no guard.
    pub armed_cycles: u64,
    /// Cycles with the disabled injector, guarded (1 VDC).
    pub guarded_disabled_cycles: u64,
    /// Cycles with an armed-idle injector, guarded (1 VDC).
    pub guarded_armed_cycles: u64,
}

impl OverheadPoint {
    /// Whether the armed-idle runs are cycle-identical to the disabled
    /// ones (the no-fault-overhead acceptance criterion).
    #[must_use]
    pub fn is_neutral(&self) -> bool {
        self.disabled_cycles == self.armed_cycles
            && self.guarded_disabled_cycles == self.guarded_armed_cycles
    }
}

/// A plan that arms every site (so each hot-path check actually consults
/// the rule list) but whose triggers can never fire.
#[must_use]
pub fn armed_idle_plan(seed: u64) -> FaultPlan {
    FaultSite::ALL
        .iter()
        .fold(FaultPlan::new(seed), |plan, &site| {
            plan.script(site, FaultKind::PassPanic, u64::MAX, 0)
        })
}

fn cycles_with(source: &str, faults: FaultInjector, guarded: bool) -> u64 {
    let config = EngineConfig {
        faults,
        ..EngineConfig::fast_test()
    };
    let outcome = if guarded {
        let db = build_database(&[vdc(CveId::Cve2019_17026)]).expect("vdc database builds");
        Engine::with_guard(config, Guard::new(db, CompareConfig::default())).run_source_with(source)
    } else {
        Engine::run_source(source, config)
    };
    outcome.expect("workload runs").outcome.cycles
}

/// Measures injector overhead over the serving mix: disabled vs
/// armed-idle, plain and guarded.
#[must_use]
pub fn injector_overhead() -> Vec<OverheadPoint> {
    jitbull_workloads::serving_mix()
        .iter()
        .map(|w| OverheadPoint {
            workload: w.name,
            disabled_cycles: cycles_with(&w.source, FaultInjector::disabled(), false),
            armed_cycles: cycles_with(
                &w.source,
                FaultInjector::from_plan(armed_idle_plan(0)),
                false,
            ),
            guarded_disabled_cycles: cycles_with(&w.source, FaultInjector::disabled(), true),
            guarded_armed_cycles: cycles_with(
                &w.source,
                FaultInjector::from_plan(armed_idle_plan(0)),
                true,
            ),
        })
        .collect()
}

/// Renders the overhead table.
#[must_use]
pub fn render_overhead(points: &[OverheadPoint]) -> String {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.workload.to_string(),
                p.disabled_cycles.to_string(),
                p.armed_cycles.to_string(),
                p.guarded_disabled_cycles.to_string(),
                p.guarded_armed_cycles.to_string(),
                if p.is_neutral() { "0" } else { "NONZERO" }.to_string(),
            ]
        })
        .collect();
    render_table(
        &[
            "workload",
            "off",
            "armed-idle",
            "guarded off",
            "guarded armed",
            "delta",
        ],
        &rows,
    )
}

/// Serving-throughput retention under a low-rate fault plan: 1% of
/// requests blow their deadline and 0.1% of pass executions corrupt the
/// IR. Throughput is served requests per simulated busy cycle, so the
/// ratio is host-independent.
#[derive(Debug, Clone)]
pub struct RetentionPoint {
    /// Requests pushed through each pool.
    pub requests: usize,
    /// Total busy cycles, fault-free run.
    pub clean_cycles: u64,
    /// Total busy cycles, faulted run.
    pub faulted_cycles: u64,
    /// Requests served in the fault-free run.
    pub clean_served: u64,
    /// Requests served in the faulted run.
    pub faulted_served: u64,
    /// Tickets resolved in the faulted run (success or typed error).
    pub faulted_resolved: u64,
    /// Faults the injector fired during the faulted run.
    pub injected: u64,
    /// Faulted throughput over fault-free throughput.
    pub retention: f64,
}

/// Runs the same request batch through a fault-free pool and a faulted
/// one (4 workers, serving mix, 1 VDC) and compares cycle throughput.
#[must_use]
pub fn faulted_retention(requests: usize, seed: u64) -> RetentionPoint {
    let db = build_database(&[vdc(CveId::Cve2019_17026)]).expect("vdc database builds");
    let mix = jitbull_workloads::serving_mix();
    let run = |faults: FaultInjector| {
        let pool = Pool::new(
            PoolConfig {
                workers: 4,
                capacity: requests.max(1),
                compare: CompareConfig::default(),
                faults,
                ..PoolConfig::default()
            },
            db.clone(),
        );
        let tickets: Vec<_> = (0..requests)
            .map(|i| {
                let w = &mix[i % mix.len()];
                pool.submit(Request::new(w.source.clone()).with_config(EngineConfig::fast_test()))
                    .expect("capacity sized to the batch")
            })
            .collect();
        // `wait` blocks until the worker answers, so simply draining the
        // tickets proves none were lost (a dropped responder still
        // delivers a typed error).
        let resolved = tickets.into_iter().map(Ticket::wait).count() as u64;
        let stats = pool.shutdown();
        (
            stats.served,
            stats.worker_cycles.iter().sum::<u64>(),
            resolved,
        )
    };
    let (clean_served, clean_cycles, _) = run(FaultInjector::disabled());
    let inj = FaultInjector::from_plan(
        FaultPlan::new(seed)
            .random(FaultSite::WorkerServe, FaultKind::DeadlineBlowout, 0.01)
            .random(FaultSite::PassRun, FaultKind::IrCorrupt, 0.001),
    );
    let (faulted_served, faulted_cycles, faulted_resolved) = run(inj.clone());
    let throughput = |served: u64, cycles: u64| served as f64 / cycles.max(1) as f64;
    RetentionPoint {
        requests,
        clean_cycles,
        faulted_cycles,
        clean_served,
        faulted_served,
        faulted_resolved,
        injected: inj.tally().total(),
        retention: throughput(faulted_served, faulted_cycles)
            / throughput(clean_served, clean_cycles),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn armed_idle_injector_is_cycle_neutral() {
        for p in injector_overhead() {
            assert!(
                p.is_neutral(),
                "{}: disabled {}/{} vs armed {}/{}",
                p.workload,
                p.disabled_cycles,
                p.guarded_disabled_cycles,
                p.armed_cycles,
                p.guarded_armed_cycles
            );
        }
    }

    #[test]
    fn ladder_recovers_every_injected_fault() {
        let report = ladder(7);
        assert!(report.injected() > 0, "ladder injected nothing");
        assert!(
            report.all_recovered(),
            "unrecovered rungs: {:#?}",
            report
                .steps
                .iter()
                .filter(|s| s.injected != s.recovered)
                .collect::<Vec<_>>()
        );
        assert_eq!(report.injected(), report.tally.total());
    }
}

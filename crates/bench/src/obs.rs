//! `repro -- obs`: the observability report. Runs the workload suite with
//! a telemetry [`Recorder`] attached and renders what the engine, the
//! pipeline, and the JITBULL guard reported about themselves — compiles,
//! tier promotions, guard verdicts, and cycles by pipeline slot.

use std::cell::RefCell;
use std::rc::Rc;

use jitbull::DnaDatabase;
use jitbull_jit::engine::EngineConfig;
use jitbull_telemetry::{Recorder, SlotStat};
use jitbull_workloads::{run_workload, run_workload_observed, Workload};

use crate::figures::db_with;

/// Per-workload telemetry summary: one row of the `obs` report.
#[derive(Debug)]
pub struct ObsRow {
    /// Workload name.
    pub name: &'static str,
    /// Optimizing-tier compilations (including recompile rounds).
    pub compiles: u64,
    /// Functions promoted to baseline.
    pub promoted_baseline: u64,
    /// Compilations promoted to the optimizing tier.
    pub promoted_ion: u64,
    /// Guard analyses performed.
    pub analyses: u64,
    /// Go verdicts.
    pub go: u64,
    /// Recompile-without-passes verdicts.
    pub recompile: u64,
    /// No-JIT verdicts.
    pub nojit: u64,
    /// Simulated cycles spent in the optimization pipeline.
    pub pipeline_cycles: u64,
    /// Simulated cycles spent in guard analysis.
    pub guard_cycles: u64,
    /// Indexed-comparator queries served.
    pub comparator_queries: u64,
    /// Queries answered from the DNA-keyed verdict cache.
    pub comparator_cache_hits: u64,
    /// Delta-side comparisons skipped by the fingerprint prefilter.
    pub comparator_prefilter_rejects: u64,
    /// Interned-id set merges actually performed.
    pub comparator_set_merges: u64,
    /// Incremental-extractor queries served.
    pub extract_queries: u64,
    /// Extractions answered straight from the shared DNA memo.
    pub extract_memo_hits: u64,
    /// Passes whose changed subgraphs were actually enumerated.
    pub extract_passes_enumerated: u64,
    /// Passes skipped by the edge-multiset fast path.
    pub extract_passes_skipped: u64,
    /// Chains walked through changed subgraphs.
    pub extract_chains_enumerated: u64,
    /// Chains skipped because no changed edge touched them.
    pub extract_chains_skipped: u64,
    /// Operations the workload executed across all tiers.
    pub ops: u64,
}

/// Runs each workload under JITBULL with the first `n_vdcs` database
/// entries installed (and the matching vulnerable engine), a fresh
/// recorder per workload. Returns the per-workload rows plus the
/// slot-cycle attribution aggregated across the whole suite.
pub fn observe_workloads(workloads: &[Workload], n_vdcs: usize) -> (Vec<ObsRow>, Vec<SlotStat>) {
    let (db, vulns) = db_with(n_vdcs);
    let mut rows = Vec::new();
    let mut slots: Vec<SlotStat> = Vec::new();
    for w in workloads {
        let rec = Rc::new(RefCell::new(Recorder::new()));
        let m = run_workload_observed(
            w,
            EngineConfig {
                vulns: vulns.clone(),
                ..Default::default()
            },
            Some(db.clone()),
            rec.clone(),
        )
        .expect("workload runs");
        let rec = rec.borrow();
        let met = rec.metrics();
        rows.push(ObsRow {
            name: w.name,
            compiles: met.counter("engine.compile.ion"),
            promoted_baseline: met.counter("engine.promoted.baseline"),
            promoted_ion: met.counter("engine.promoted.ion"),
            analyses: met.counter("guard.analyses"),
            go: met.counter("policy.go"),
            recompile: met.counter("policy.recompile"),
            nojit: met.counter("policy.nojit"),
            pipeline_cycles: met.counter("pipeline.cycles"),
            guard_cycles: met.counter("guard.cycles"),
            comparator_queries: met.counter("comparator.queries"),
            comparator_cache_hits: met.counter("comparator.cache_hits"),
            comparator_prefilter_rejects: met.counter("comparator.prefilter_rejects"),
            comparator_set_merges: met.counter("comparator.set_merges"),
            extract_queries: met.counter("extract.queries"),
            extract_memo_hits: met.counter("extract.memo_hits"),
            extract_passes_enumerated: met.counter("extract.passes_enumerated"),
            extract_passes_skipped: met.counter("extract.passes_skipped"),
            extract_chains_enumerated: met.counter("extract.chains_enumerated"),
            extract_chains_skipped: met.counter("extract.chains_skipped"),
            ops: m.ops,
        });
        for (i, s) in rec.slot_stats().iter().enumerate() {
            if slots.len() <= i {
                slots.resize(i + 1, SlotStat::default());
            }
            let agg = &mut slots[i];
            if s.applications > 0 {
                agg.name = s.name;
            }
            agg.applications += s.applications;
            agg.cycles += s.cycles;
            agg.instrs_removed += s.instrs_removed;
            agg.instrs_added += s.instrs_added;
        }
    }
    (rows, slots)
}

/// Cycle counts for `w` on a plain JIT engine (no guard, no collector)
/// versus a JITBULL engine with an *empty* database and a recorder
/// attached. The two must match exactly: with no VDCs installed the
/// engine takes no snapshots and telemetry never touches the simulated
/// cycle model.
pub fn empty_db_overhead(w: &Workload) -> (u64, u64) {
    let plain = run_workload(w, EngineConfig::default(), None)
        .expect("plain run")
        .cycles;
    let rec = Rc::new(RefCell::new(Recorder::new()));
    let observed = run_workload_observed(
        w,
        EngineConfig::default(),
        Some(DnaDatabase::new()),
        rec.clone(),
    )
    .expect("observed run")
    .cycles;
    (plain, observed)
}

/// Per-workload naive-vs-indexed comparator cost: simulated analysis
/// cycles for the same run under each [`jitbull::ComparatorMode`].
pub fn comparator_cycles(w: &Workload, n_vdcs: usize) -> (u64, u64) {
    let (db, vulns) = db_with(n_vdcs);
    let run = |mode: jitbull::ComparatorMode| {
        run_workload(
            w,
            EngineConfig {
                vulns: vulns.clone(),
                comparator: mode,
                ..Default::default()
            },
            Some(db.clone()),
        )
        .expect("workload runs")
        .analysis_cycles
    };
    (
        run(jitbull::ComparatorMode::Reference),
        run(jitbull::ComparatorMode::Indexed),
    )
}

/// Per-workload naive-vs-incremental extractor cost: simulated analysis
/// cycles for the same run under each [`jitbull::ExtractorMode`] (fresh
/// memo per run, so this measures the first-compile structural-diff win,
/// not memo hits).
pub fn extractor_cycles(w: &Workload, n_vdcs: usize) -> (u64, u64) {
    let (db, vulns) = db_with(n_vdcs);
    let run = |mode: jitbull::ExtractorMode| {
        run_workload(
            w,
            EngineConfig {
                vulns: vulns.clone(),
                extractor: mode,
                ..Default::default()
            },
            Some(db.clone()),
        )
        .expect("workload runs")
        .analysis_cycles
    };
    (
        run(jitbull::ExtractorMode::Reference),
        run(jitbull::ExtractorMode::Incremental),
    )
}

/// Renders the per-workload summary table.
pub fn render_rows(rows: &[ObsRow]) -> String {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                r.compiles.to_string(),
                r.promoted_baseline.to_string(),
                r.promoted_ion.to_string(),
                r.analyses.to_string(),
                format!("{}/{}/{}", r.go, r.recompile, r.nojit),
                r.pipeline_cycles.to_string(),
                r.guard_cycles.to_string(),
                format!("{}/{}", r.comparator_cache_hits, r.comparator_queries),
                r.comparator_prefilter_rejects.to_string(),
                r.comparator_set_merges.to_string(),
                format!("{}/{}", r.extract_memo_hits, r.extract_queries),
                format!(
                    "{}/{}",
                    r.extract_passes_skipped,
                    r.extract_passes_enumerated + r.extract_passes_skipped
                ),
                format!(
                    "{}/{}",
                    r.extract_chains_skipped,
                    r.extract_chains_enumerated + r.extract_chains_skipped
                ),
                r.ops.to_string(),
            ]
        })
        .collect();
    crate::render_table(
        &[
            "benchmark",
            "compiles",
            "baseline",
            "ion",
            "analyses",
            "go/rec/nojit",
            "pipeline cyc",
            "guard cyc",
            "cmp hit/q",
            "prefilt",
            "merges",
            "memo hit/q",
            "pass skip",
            "chain skip",
            "ops",
        ],
        &table,
    )
}

/// Renders the aggregated slot-cycle attribution table, busiest slots
/// first.
pub fn render_slots(slots: &[SlotStat]) -> String {
    let mut order: Vec<usize> = (0..slots.len())
        .filter(|&i| slots[i].applications > 0)
        .collect();
    order.sort_by_key(|&i| std::cmp::Reverse(slots[i].cycles));
    let total: u64 = slots.iter().map(|s| s.cycles).sum();
    let table: Vec<Vec<String>> = order
        .iter()
        .map(|&i| {
            let s = &slots[i];
            vec![
                i.to_string(),
                s.name.to_string(),
                s.applications.to_string(),
                s.cycles.to_string(),
                format!("{:.1}%", s.cycles as f64 * 100.0 / total.max(1) as f64),
                s.instrs_removed.to_string(),
                s.instrs_added.to_string(),
            ]
        })
        .collect();
    crate::render_table(
        &[
            "slot", "pass", "runs", "cycles", "share", "removed", "added",
        ],
        &table,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use jitbull_workloads::microbenches;

    #[test]
    fn observed_microbenches_report_nonzero_activity() {
        let benches = microbenches();
        let (rows, slots) = observe_workloads(&benches, 4);
        assert_eq!(rows.len(), benches.len());
        for r in &rows {
            assert!(r.compiles > 0, "{}: no compiles", r.name);
            assert!(r.promoted_ion > 0, "{}: nothing promoted", r.name);
            // One verdict per analysis, one analysis per compile round.
            assert_eq!(r.analyses, r.compiles, "{}", r.name);
            assert_eq!(r.go + r.recompile + r.nojit, r.analyses, "{}", r.name);
            // The indexed comparator (the default) serves every analysis.
            assert_eq!(r.comparator_queries, r.analyses, "{}", r.name);
            assert!(r.comparator_cache_hits <= r.comparator_queries);
            // The incremental extractor (the default) serves every analysis.
            assert_eq!(r.extract_queries, r.analyses, "{}", r.name);
            assert!(r.extract_memo_hits <= r.extract_queries);
            assert!(r.pipeline_cycles > 0 && r.guard_cycles > 0 && r.ops > 0);
        }
        assert!(slots.iter().any(|s| s.cycles > 0));
    }

    #[test]
    fn empty_db_observation_is_cycle_neutral() {
        let benches = microbenches();
        let (plain, observed) = empty_db_overhead(&benches[0]);
        assert_eq!(plain, observed);
    }
}

//! Serving-pool throughput scaling (`benches/pool_throughput.rs`).
//!
//! The headline metric is **simulated-cycle speedup**: total busy
//! simulated cycles across all workers divided by the busiest worker's
//! cycles. It measures how evenly the pool spreads work — the quantity
//! that bounds wall-clock scaling on a real multi-core host — while
//! staying deterministic and host-independent, consistent with the
//! repo's cycle-model philosophy (this container has a single CPU, so
//! wall-clock throughput cannot show parallel speedup and is reported
//! only as a secondary observation).

use std::time::Instant;

use jitbull::CompareConfig;
use jitbull_jit::engine::EngineConfig;
use jitbull_jit::CveId;
use jitbull_pool::{Pool, PoolConfig, Request};
use jitbull_vdc::{build_database, vdc};

use crate::render_table;

/// One worker-count measurement.
#[derive(Debug, Clone)]
pub struct ScalingPoint {
    /// Worker threads.
    pub workers: usize,
    /// Requests served.
    pub served: u64,
    /// Simulated busy cycles summed over workers.
    pub total_cycles: u64,
    /// Simulated-cycle speedup (total / busiest worker); the headline.
    pub cycle_speedup: f64,
    /// Wall-clock for the whole batch, milliseconds (secondary).
    pub wall_ms: f64,
    /// Wall-clock requests per second (secondary).
    pub req_per_s: f64,
}

/// Serves `requests` requests (round-robin over the serving mix, guard
/// loaded with CVE-2019-17026's VDC DNA) at each worker count.
pub fn throughput_scaling(worker_counts: &[usize], requests: usize) -> Vec<ScalingPoint> {
    let db = build_database(&[vdc(CveId::Cve2019_17026)]).expect("vdc database builds");
    let mix = jitbull_workloads::serving_mix();
    worker_counts
        .iter()
        .map(|&workers| {
            let pool = Pool::new(
                PoolConfig {
                    workers,
                    capacity: requests.max(1),
                    compare: CompareConfig::default(),
                    ..PoolConfig::default()
                },
                db.clone(),
            );
            let start = Instant::now();
            let tickets: Vec<_> = (0..requests)
                .map(|i| {
                    let w = &mix[i % mix.len()];
                    pool.submit(
                        Request::new(w.source.clone()).with_config(EngineConfig::fast_test()),
                    )
                    .expect("capacity sized to the batch")
                })
                .collect();
            for t in tickets {
                t.wait().expect("request serves cleanly");
            }
            let wall = start.elapsed().as_secs_f64();
            let stats = pool.shutdown();
            ScalingPoint {
                workers,
                served: stats.served,
                total_cycles: stats.worker_cycles.iter().sum(),
                cycle_speedup: stats.cycle_speedup(),
                wall_ms: wall * 1e3,
                req_per_s: requests as f64 / wall,
            }
        })
        .collect()
}

/// Renders the scaling table.
#[must_use]
pub fn render_scaling(points: &[ScalingPoint]) -> String {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.workers.to_string(),
                p.served.to_string(),
                p.total_cycles.to_string(),
                format!("{:.2}x", p.cycle_speedup),
                format!("{:.1}", p.wall_ms),
                format!("{:.0}", p.req_per_s),
            ]
        })
        .collect();
    render_table(
        &[
            "workers",
            "served",
            "busy cycles",
            "cycle speedup",
            "wall ms",
            "req/s",
        ],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_workers_balance_at_least_2_5x() {
        let points = throughput_scaling(&[1, 4], 48);
        assert_eq!(points[0].served, 48);
        assert_eq!(points[1].served, 48);
        // One worker trivially has speedup 1.0.
        assert!((points[0].cycle_speedup - 1.0).abs() < 1e-9);
        // Four workers must spread the batch well past the 2.5x floor.
        assert!(
            points[1].cycle_speedup >= 2.5,
            "cycle speedup {:.2} < 2.5",
            points[1].cycle_speedup
        );
        // Same batch of scripts: totals agree closely (not exactly —
        // each worker warms its own comparator cache, so more workers
        // means a few more cold queries).
        let (a, b) = (points[0].total_cycles as f64, points[1].total_cycles as f64);
        assert!((a - b).abs() / a < 0.05, "totals diverged: {a} vs {b}");
    }
}

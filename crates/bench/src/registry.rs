//! The vulnerability survey behind Table I and the §III-C
//! vulnerability-window statistics.
//!
//! CVE identifiers, target engines, and VDC availability follow the
//! paper's Table I. CVSS scores and report/patch dates are
//! *reconstructions*: the paper publishes only aggregates (average CVSS
//! 8.8; average window 9 days; CVE-2019-11707 reported 2019-04-15 and
//! patched 2019-05-08; CVE-2020-26952 reported 2020-09-27 and patched
//! 2020-10-02; at most CVE-2019-9810 and CVE-2019-9813 overlapped during
//! 2019). The per-CVE values here are chosen to satisfy exactly those
//! published constraints; see DESIGN.md.

/// The JIT engine a vulnerability targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Target {
    /// V8's TurboFan.
    TurboFan,
    /// SpiderMonkey's IonMonkey.
    IonMonkey,
    /// Chakra's (nameless) JIT.
    ChakraJit,
}

impl Target {
    /// Display name as used in the paper's table.
    pub fn name(self) -> &'static str {
        match self {
            Target::TurboFan => "TurboFan",
            Target::IonMonkey => "IonMonkey",
            Target::ChakraJit => "Chakra JIT",
        }
    }
}

/// A calendar date (proleptic Gregorian).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Date {
    /// Year.
    pub y: i32,
    /// Month 1–12.
    pub m: u32,
    /// Day 1–31.
    pub d: u32,
}

impl Date {
    /// Creates a date.
    pub const fn new(y: i32, m: u32, d: u32) -> Date {
        Date { y, m, d }
    }

    /// Days since the civil epoch (Howard Hinnant's `days_from_civil`).
    pub fn to_days(self) -> i64 {
        let y = if self.m <= 2 { self.y - 1 } else { self.y } as i64;
        let era = if y >= 0 { y } else { y - 399 } / 400;
        let yoe = y - era * 400;
        let mp = (self.m as i64 + 9) % 12;
        let doy = (153 * mp + 2) / 5 + self.d as i64 - 1;
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
        era * 146_097 + doe - 719_468
    }
}

/// One surveyed vulnerability.
#[derive(Debug, Clone)]
pub struct CveRecord {
    /// CVE identifier.
    pub id: &'static str,
    /// Targeted JIT engine.
    pub target: Target,
    /// Whether a public demonstrator code / white paper exists (bolded in
    /// the paper's Table I).
    pub has_vdc: bool,
    /// CVSS v3 score (reconstructed; see module docs).
    pub cvss: f64,
    /// Report and patch dates, when the paper's window analysis covers
    /// the CVE (IonMonkey entries).
    pub window: Option<(Date, Date)>,
}

impl CveRecord {
    /// Vulnerability-window length in days.
    pub fn window_days(&self) -> Option<i64> {
        self.window.map(|(r, p)| p.to_days() - r.to_days())
    }
}

/// The full Table I survey.
pub fn table1() -> Vec<CveRecord> {
    use Target::*;
    let d = Date::new;
    let rec = |id, target, has_vdc, cvss, window| CveRecord {
        id,
        target,
        has_vdc,
        cvss,
        window,
    };
    vec![
        // --- TurboFan (V8) ---
        rec("CVE-2021-30632", TurboFan, true, 8.8, None),
        rec("CVE-2021-30551", TurboFan, false, 8.8, None),
        rec("CVE-2020-16009", TurboFan, true, 8.8, None),
        rec("CVE-2020-6418", TurboFan, true, 8.8, None),
        rec("CVE-2019-2208", TurboFan, false, 8.8, None),
        rec("CVE-2018-17463", TurboFan, true, 8.8, None),
        rec("CVE-2017-5121", TurboFan, false, 8.8, None),
        // --- IonMonkey (SpiderMonkey) ---
        rec(
            "CVE-2021-29982",
            IonMonkey,
            false,
            8.8,
            Some((d(2021, 7, 1), d(2021, 7, 8))),
        ),
        rec(
            "CVE-2020-26952",
            IonMonkey,
            true,
            8.8,
            Some((d(2020, 9, 27), d(2020, 10, 2))),
        ),
        rec(
            "CVE-2020-15656",
            IonMonkey,
            false,
            8.8,
            Some((d(2020, 7, 10), d(2020, 7, 16))),
        ),
        rec(
            "CVE-2019-17026",
            IonMonkey,
            true,
            8.8,
            Some((d(2020, 1, 3), d(2020, 1, 8))),
        ),
        rec(
            "CVE-2019-11707",
            IonMonkey,
            true,
            8.8,
            Some((d(2019, 4, 15), d(2019, 5, 8))),
        ),
        rec(
            "CVE-2019-9813",
            IonMonkey,
            true,
            8.8,
            Some((d(2019, 3, 15), d(2019, 3, 21))),
        ),
        rec(
            "CVE-2019-9810",
            IonMonkey,
            true,
            8.8,
            Some((d(2019, 3, 10), d(2019, 3, 18))),
        ),
        rec(
            "CVE-2019-9795",
            IonMonkey,
            true,
            8.8,
            Some((d(2019, 3, 1), d(2019, 3, 5))),
        ),
        rec(
            "CVE-2019-9792",
            IonMonkey,
            true,
            8.8,
            Some((d(2019, 2, 20), d(2019, 2, 27))),
        ),
        rec(
            "CVE-2019-9791",
            IonMonkey,
            true,
            8.8,
            Some((d(2019, 2, 1), d(2019, 2, 7))),
        ),
        rec(
            "CVE-2018-12387",
            IonMonkey,
            false,
            8.8,
            Some((d(2018, 9, 10), d(2018, 10, 1))),
        ),
        rec(
            "CVE-2017-5400",
            IonMonkey,
            false,
            8.8,
            Some((d(2017, 2, 20), d(2017, 3, 1))),
        ),
        rec(
            "CVE-2017-5375",
            IonMonkey,
            false,
            8.8,
            Some((d(2017, 1, 5), d(2017, 1, 15))),
        ),
        rec(
            "CVE-2015-4484",
            IonMonkey,
            false,
            8.8,
            Some((d(2015, 10, 20), d(2015, 10, 31))),
        ),
        rec(
            "CVE-2015-0817",
            IonMonkey,
            false,
            8.8,
            Some((d(2015, 3, 10), d(2015, 3, 17))),
        ),
        // --- Chakra ---
        rec("CVE-2021-34480", ChakraJit, false, 8.8, None),
        rec("CVE-2020-1380", ChakraJit, true, 8.8, None),
    ]
}

/// §III-C aggregates.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowStats {
    /// Average window length in days across the IonMonkey entries.
    pub average_days: f64,
    /// Longest window: (cve, days).
    pub longest: (String, i64),
    /// Shortest window: (cve, days).
    pub shortest: (String, i64),
    /// Maximum number of simultaneously open 2019 windows, and the CVEs
    /// involved.
    pub max_concurrent_2019: (usize, Vec<String>),
    /// Average CVSS over the whole survey.
    pub average_cvss: f64,
}

/// Computes the §III-C statistics from the survey.
pub fn window_stats() -> WindowStats {
    let records = table1();
    let windows: Vec<(&str, i64)> = records
        .iter()
        .filter_map(|r| r.window_days().map(|d| (r.id, d)))
        .collect();
    let average_days = windows.iter().map(|(_, d)| *d as f64).sum::<f64>() / windows.len() as f64;
    let longest = windows
        .iter()
        .max_by_key(|(_, d)| *d)
        .map(|(id, d)| (id.to_string(), *d))
        .expect("windows exist");
    let shortest = windows
        .iter()
        .min_by_key(|(_, d)| *d)
        .map(|(id, d)| (id.to_string(), *d))
        .expect("windows exist");
    // Sweep 2019 windows for maximum concurrency.
    let in_2019: Vec<&CveRecord> = records
        .iter()
        .filter(|r| matches!(r.window, Some((r0, _)) if r0.y == 2019))
        .collect();
    let mut best = (0usize, Vec::new());
    for r in &in_2019 {
        let (start, _) = r.window.expect("filtered");
        let open: Vec<String> = in_2019
            .iter()
            .filter(|o| {
                let (s, p) = o.window.expect("filtered");
                s <= start && start < p
            })
            .map(|o| o.id.to_string())
            .collect();
        if open.len() > best.0 {
            best = (open.len(), open);
        }
    }
    let average_cvss = records.iter().map(|r| r.cvss).sum::<f64>() / records.len() as f64;
    WindowStats {
        average_days,
        longest,
        shortest,
        max_concurrent_2019: best,
        average_cvss,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn survey_matches_paper_structure() {
        let t = table1();
        assert_eq!(t.iter().filter(|r| r.target == Target::TurboFan).count(), 7);
        assert_eq!(
            t.iter().filter(|r| r.target == Target::IonMonkey).count(),
            15
        );
        assert_eq!(
            t.iter().filter(|r| r.target == Target::ChakraJit).count(),
            2
        );
    }

    #[test]
    fn modeled_cves_all_have_vdcs() {
        let t = table1();
        for id in [
            "CVE-2019-9791",
            "CVE-2019-9810",
            "CVE-2019-11707",
            "CVE-2019-17026",
            "CVE-2019-9792",
            "CVE-2019-9795",
            "CVE-2019-9813",
            "CVE-2020-26952",
        ] {
            let r = t.iter().find(|r| r.id == id).unwrap();
            assert!(r.has_vdc, "{id} must be bolded");
            assert_eq!(r.target, Target::IonMonkey);
        }
    }

    #[test]
    fn stats_match_papers_published_aggregates() {
        let s = window_stats();
        assert!(
            (s.average_days - 9.0).abs() < 0.05,
            "average window {} != 9 days",
            s.average_days
        );
        assert_eq!(s.longest, ("CVE-2019-11707".to_string(), 23));
        assert_eq!(s.shortest.1, 4);
        // The paper: CVE-2020-26952 was a 5-day window.
        let t = table1();
        let r = t.iter().find(|r| r.id == "CVE-2020-26952").unwrap();
        assert_eq!(r.window_days(), Some(5));
        // At most two overlapping 2019 windows: 9810 and 9813.
        assert_eq!(s.max_concurrent_2019.0, 2);
        assert!(s
            .max_concurrent_2019
            .1
            .contains(&"CVE-2019-9810".to_string()));
        assert!(s
            .max_concurrent_2019
            .1
            .contains(&"CVE-2019-9813".to_string()));
        assert!((s.average_cvss - 8.8).abs() < 0.01);
    }

    #[test]
    fn date_arithmetic() {
        let a = Date::new(2019, 4, 15);
        let b = Date::new(2019, 5, 8);
        assert_eq!(b.to_days() - a.to_days(), 23);
        let c = Date::new(2020, 1, 3);
        let d = Date::new(2020, 1, 8);
        assert_eq!(d.to_days() - c.to_days(), 5);
        // Leap-year boundary.
        assert_eq!(
            Date::new(2020, 3, 1).to_days() - Date::new(2020, 2, 28).to_days(),
            2
        );
    }
}

//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! cargo run -p jitbull-bench --release --bin repro -- all
//! cargo run -p jitbull-bench --release --bin repro -- table1
//! cargo run -p jitbull-bench --release --bin repro -- fig5
//! ```

use jitbull_bench::{ablation, chaos_bench, figures, obs, registry, render_table, security};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let what = args.first().map(String::as_str).unwrap_or("all");
    match what {
        "table1" => table1(),
        "window" => window(),
        "security" => security(),
        "fig4" => fig4(),
        "fig5" => fig5(),
        "fig6" => fig6(),
        "ablation" => ablation(),
        "ablation-policy" => ablation_policy(),
        "fuzz" => fuzz(),
        "obs" => observability(),
        "serve" => serve(),
        "chaos" => chaos(),
        "all" => {
            table1();
            window();
            security();
            fig4();
            fig5();
            fig6();
            ablation();
            ablation_policy();
            fuzz();
            observability();
            serve();
            chaos();
        }
        other => {
            eprintln!("unknown experiment `{other}`");
            eprintln!("usage: repro [table1|window|security|fig4|fig5|fig6|ablation|ablation-policy|fuzz|obs|serve|chaos|all]");
            std::process::exit(2);
        }
    }
}

fn heading(title: &str) {
    println!("\n=== {title} ===\n");
}

fn table1() {
    heading("Table I — JIT-engine vulnerability survey (VDC available = bolded in paper)");
    let rows: Vec<Vec<String>> = registry::table1()
        .iter()
        .map(|r| {
            vec![
                r.target.name().to_string(),
                r.id.to_string(),
                if r.has_vdc { "yes" } else { "-" }.to_string(),
                format!("{:.1}", r.cvss),
            ]
        })
        .collect();
    print!("{}", render_table(&["target", "cve", "vdc", "cvss"], &rows));
}

fn window() {
    heading("§III-C — vulnerability-window statistics (IonMonkey)");
    let s = registry::window_stats();
    println!("average window     : {:.1} days", s.average_days);
    println!(
        "longest window     : {} ({} days)",
        s.longest.0, s.longest.1
    );
    println!(
        "shortest window    : {} ({} days)",
        s.shortest.0, s.shortest.1
    );
    println!(
        "max concurrent 2019: {} ({})",
        s.max_concurrent_2019.0,
        s.max_concurrent_2019.1.join(", ")
    );
    println!("average CVSS       : {:.1}", s.average_cvss);
}

fn security() {
    heading("§VI-B — security evaluation (4 CVEs x PoC + 4 variants, + 17026 impl2)");
    let rows = security::security_eval();
    print!("{}", security::render(&rows));
}

fn fig4() {
    heading("Figure 4 — false-positive rates on harmless benchmarks (#1 vs #4 VDCs)");
    let rows = figures::fig4();
    print!("{}", figures::render_fig4(&rows));
}

fn fig5() {
    heading("Figure 5 — execution cycles: JIT / NoJIT / JITBULL #0 #1 #4");
    let rows = figures::fig5();
    print!("{}", figures::render_fig5(&rows));
}

fn fig6() {
    heading("Figure 6 — scalability with 1..8 VDCs in the database (overhead vs JIT)");
    let rows = figures::fig6(&jitbull_workloads::octane_analogues());
    print!("{}", figures::render_fig6(&rows));
    let sizes = [1usize, 2, 4, 8];
    println!("\ncomparator cost, naive (reference) vs indexed, analysis cycles:\n");
    let cmp = figures::fig6_comparator(&jitbull_workloads::octane_analogues(), &sizes);
    print!("{}", figures::render_fig6_comparator(&cmp, &sizes));
}

fn ablation() {
    heading("Ablation A1 — comparator thresholds (paper: Thr=3, Ratio=50%)");
    let points = ablation::threshold_sweep(&[1, 2, 3, 4, 5, 6, 8], &[0.25, 0.5, 0.75]);
    print!("{}", ablation::render_sweep(&points));
}

fn fuzz() {
    heading("Extension E1 — fuzzer-to-database loop (paper §IV-A threat model)");
    use jitbull::DnaDatabase;
    use jitbull_fuzzer::{install_until_neutralized, minimize, run_campaign};
    use jitbull_jit::VulnConfig;
    let vulns = VulnConfig::all();
    let report = run_campaign(0, 512, &vulns).expect("campaign runs");
    println!(
        "seeds run        : {} ({} finds, {} benign script errors)",
        report.executed,
        report.finds.len(),
        report.script_errors
    );
    let mut db = DnaDatabase::new();
    let mut neutralized = 0;
    let mut shrink_num = 0usize;
    let mut shrink_den = 0usize;
    for find in &report.finds {
        let min = minimize(find, &vulns);
        shrink_num += min.source.len();
        shrink_den += find.source.len();
        if install_until_neutralized(&mut db, &min, &vulns, 6).expect("triage") {
            neutralized += 1;
        }
    }
    println!(
        "triage loop      : {neutralized} / {} finds neutralized",
        report.finds.len()
    );
    println!(
        "minimization     : finds shrink to {:.0}% of original size on average",
        shrink_num as f64 * 100.0 / shrink_den.max(1) as f64
    );
    println!("database built   : {db}");
}

fn observability() {
    heading("Observability — engine/guard telemetry on the workload suite (JITBULL #4)");
    let workloads = jitbull_workloads::all_workloads();
    let (rows, slots) = obs::observe_workloads(&workloads, 4);
    print!("{}", obs::render_rows(&rows));
    println!("\ncycles by pipeline slot (whole suite, busiest first):\n");
    print!("{}", obs::render_slots(&slots));
    let (plain, observed) = obs::empty_db_overhead(&workloads[0]);
    println!(
        "\nempty-DB sanity ({}): plain JIT {plain} cycles, observed JITBULL#0 {observed} cycles (delta {})",
        workloads[0].name,
        observed as i64 - plain as i64
    );
    println!("\ncomparator cost, naive (reference) vs indexed, analysis cycles (#4 VDCs):\n");
    for w in &workloads {
        let (reference, indexed) = obs::comparator_cycles(w, 4);
        println!(
            "  {:<14} {reference} -> {indexed} ({:.1}x)",
            w.name,
            reference as f64 / indexed.max(1) as f64
        );
    }
    println!("\nextractor cost, naive (reference) vs incremental, analysis cycles (#4 VDCs):\n");
    for w in &workloads {
        let (reference, incremental) = obs::extractor_cycles(w, 4);
        println!(
            "  {:<14} {reference} -> {incremental} ({:.1}x)",
            w.name,
            reference as f64 / incremental.max(1) as f64
        );
    }

    // Recovery telemetry: run the deterministic fault ladder and surface
    // the chaos.* / recovery.* counters it produced.
    std::panic::set_hook(Box::new(|_| {}));
    let ladder = chaos_bench::ladder(42);
    println!(
        "\nchaos/recovery telemetry (fault ladder, seed {}, {} faults injected):",
        ladder.seed,
        ladder.injected()
    );
    for line in &ladder.telemetry {
        println!("  {line}");
    }
    let _ = std::panic::take_hook();
}

fn chaos() {
    heading("Chaos — deterministic fault ladder: every injected fault recovered");

    // Compile panics, worker panics, and deadline blowouts are the point
    // of the exercise; keep their backtraces out of the report.
    std::panic::set_hook(Box::new(|_| {}));

    let first = chaos_bench::ladder(42);
    let second = chaos_bench::ladder(42);
    print!("{}", chaos_bench::render_ladder(&first));
    println!(
        "\ninjected {} / recovered {} ({})",
        first.injected(),
        first.recovered(),
        if first.all_recovered() {
            "100% — zero stale verdicts, zero lost tickets"
        } else {
            "RECOVERY GAP"
        }
    );
    println!("\nper-kind fault tally:");
    for (kind, n) in &first.tally.counts {
        println!("  {kind:<18} {n}");
    }
    println!(
        "\ndeterminism: second run with seed {} is {}",
        first.seed,
        if first == second {
            "identical (same faults, same tallies, same evidence)"
        } else {
            "DIFFERENT"
        }
    );
    println!("\nrecovery telemetry (chaos.* / recovery.* metrics):");
    for line in &first.telemetry {
        println!("  {line}");
    }
    assert!(
        first.all_recovered(),
        "fault ladder left faults unrecovered"
    );
    assert_eq!(first, second, "fault ladder is not deterministic");
}

fn serve() {
    heading("Serving layer — jitbull-pool under load with a mid-traffic VDC hot-swap");
    use std::sync::{Arc, Mutex};
    use std::time::Duration;

    use jitbull::{CompareConfig, DnaDatabase};
    use jitbull_jit::engine::EngineConfig;
    use jitbull_jit::pipeline::N_SLOTS;
    use jitbull_jit::CveId;
    use jitbull_pool::{Pool, PoolConfig, Request, SharedCollector};
    use jitbull_telemetry::Recorder;
    use jitbull_vdc::{build_database, vdc};

    // Injected worker panics are part of the demonstration; keep their
    // backtraces out of the report.
    std::panic::set_hook(Box::new(|_| {}));

    let recorder = Arc::new(Mutex::new(Recorder::new()));
    let collector: SharedCollector = Arc::clone(&recorder) as SharedCollector;
    let pool = Pool::with_collector(
        PoolConfig {
            workers: 4,
            capacity: 8,
            // Permissive thresholds (the repo's test convention) so the
            // honest ServeArray false positive flips verdict after the swap.
            compare: CompareConfig { thr: 1, ratio: 0.5 },
            ..PoolConfig::default()
        },
        DnaDatabase::new(),
        collector,
    );
    let mix = jitbull_workloads::serving_mix();
    let request = |name: &str| {
        let w = mix.iter().find(|w| w.name == name).expect("mix workload");
        Request::new(w.source.clone()).with_config(EngineConfig::fast_test())
    };

    // Phase 1 — empty database: zero-overhead serving, no matches.
    let before: Vec<_> = (0..8)
        .filter_map(|i| pool.submit(request(mix[i % mix.len()].name)).ok())
        .collect();
    let mut pre_matches = 0usize;
    for t in before {
        if let Ok(r) = t.wait() {
            pre_matches += r.matched_cves.len();
        }
    }
    println!("phase 1 (no VDC DNA): {pre_matches} matches across 8 requests");

    // Hot-swap: CVE-2019-17026's window opens mid-traffic. The update
    // travels in the maintainer wire format, exercising the typed-error
    // reload path.
    let update = build_database(&[vdc(CveId::Cve2019_17026)])
        .expect("vdc database builds")
        .to_text();
    let swap_epoch = pool
        .reload_from_text(&update, N_SLOTS)
        .expect("well-formed update");
    println!("hot-swap published at epoch {swap_epoch} (database was empty at epoch 1)");

    // Phase 2 — every post-swap ServeArray response must reflect the new
    // database: epoch >= swap epoch and the honest false positive flagged.
    let after: Vec<_> = (0..8)
        .filter_map(|_| pool.submit(request("ServeArray")).ok())
        .collect();
    let (mut post, mut flagged, mut stale) = (0usize, 0usize, 0usize);
    for t in after {
        if let Ok(r) = t.wait() {
            post += 1;
            if r.matched_cves.iter().any(|c| c == "CVE-2019-17026") {
                flagged += 1;
            }
            if r.db_epoch < swap_epoch {
                stale += 1;
            }
        }
    }
    println!(
        "phase 2 (post-swap ServeArray): {flagged}/{post} flagged CVE-2019-17026, {stale} served from a stale snapshot"
    );

    // Phase 3 — degradation ladder: an overload burst (queue capacity 8),
    // zero-deadline requests that fall back to the interpreter, and two
    // injected worker panics.
    let burst: Vec<_> = (0..32)
        .map(|i| pool.submit(request(mix[i % mix.len()].name)))
        .filter_map(Result::ok)
        .collect();
    for t in burst {
        let _ = t.wait();
    }
    let late: Vec<_> = (0..4)
        .filter_map(|_| {
            pool.submit(request("ServeArith").with_deadline(Duration::ZERO))
                .ok()
        })
        .collect();
    for t in late {
        let _ = t.wait();
    }
    for _ in 0..2 {
        if let Ok(t) = pool.submit(Request::new("print(0);").with_chaos_panic()) {
            let _ = t.wait();
        }
    }
    // One post-panic request proves the pool still serves.
    let alive = pool
        .submit(request("ServeArith"))
        .ok()
        .and_then(|t| t.wait().ok())
        .is_some();

    let stats = pool.shutdown();
    println!("\npool counters:");
    println!("  submitted        : {}", stats.submitted);
    println!("  rejected (overload): {}", stats.rejected);
    println!("  served           : {}", stats.served);
    println!("  degraded (no-JIT fallback): {}", stats.degraded);
    println!("  worker restarts  : {}", stats.worker_restarts);
    println!("  hot-swaps        : {}", stats.hotswaps);
    println!(
        "  busy cycles/worker: {:?} (balance {:.2}x of {} workers)",
        stats.worker_cycles,
        stats.cycle_speedup(),
        stats.worker_cycles.len()
    );
    println!(
        "  serving after panics: {}",
        if alive { "yes" } else { "NO" }
    );

    let rec = recorder.lock().unwrap();
    println!("\ntelemetry (pool.* metrics):");
    for line in jitbull_telemetry::export_text(&rec)
        .lines()
        .filter(|l| l.contains("pool."))
    {
        println!("{line}");
    }
}

fn ablation_policy() {
    heading("Ablation A2 — per-pass policy vs whole-JIT-per-function policy (4 VDCs)");
    let rows = ablation::policy_ablation();
    print!("{}", ablation::render_policy(&rows));
}

//! Developer tool: when a workload's JIT output diverges from the
//! interpreter, find the minimal set of pipeline slots whose disabling
//! fixes it (ddmin over `EngineConfig::disabled_slots`).

use jitbull_jit::engine::{Engine, EngineConfig};
use jitbull_jit::pipeline::{N_SLOTS, PIPELINE};

fn run(src: &str, jit: bool, disabled: &[usize]) -> Vec<String> {
    Engine::run_source(
        src,
        EngineConfig {
            jit_enabled: jit,
            disabled_slots: disabled.iter().copied().collect(),
            ..Default::default()
        },
    )
    .map(|o| o.outcome.printed)
    .unwrap_or_else(|e| vec![format!("ERR {e}")])
}

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "RayTrace".into());
    let w = jitbull_workloads::workload(&name).expect("workload");
    let want = run(&w.source, false, &[]);
    let got = run(&w.source, true, &[]);
    println!("interp: {want:?}\njit   : {got:?}");
    if want == got {
        println!("no divergence");
        return;
    }
    // Disable one slot at a time and see which single-slot removal fixes it.
    for (i, slot) in PIPELINE.iter().enumerate() {
        if run(&w.source, true, &[i]) == want {
            println!("slot {i:2} {} -> disabling FIXES the divergence", slot.name);
        }
    }
    // ddmin: find a minimal disabled-set that fixes the divergence.
    let mut disabled: Vec<usize> = (0..N_SLOTS).collect();
    assert_eq!(
        run(&w.source, true, &disabled),
        want,
        "even all-disabled diverges"
    );
    let mut i = 0;
    while i < disabled.len() {
        let mut trial = disabled.clone();
        trial.remove(i);
        if run(&w.source, true, &trial) == want {
            disabled = trial;
        } else {
            i += 1;
        }
    }
    println!("minimal disabled set that fixes it:");
    for i in &disabled {
        println!("  slot {i:2} {}", PIPELINE[*i].name);
    }
}

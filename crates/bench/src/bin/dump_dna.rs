//! Developer tool: dump the per-slot JIT DNA of named functions in a
//! workload or VDC (helps when tuning triggers or diagnosing matches).

use jitbull::Guard;
use jitbull_frontend::parse_program;
use jitbull_jit::pipeline::{optimize, OptimizeOptions, N_SLOTS};
use jitbull_jit::VulnConfig;
use jitbull_mir::build_mir;
use jitbull_vm::compile_program;

fn dump(src: &str, which: &str, vulns: &VulnConfig) {
    let p = parse_program(src).unwrap();
    let m = compile_program(&p).unwrap();
    for (i, f) in m.functions.iter().enumerate() {
        if f.name == "<main>" {
            continue;
        }
        if !which.is_empty() && f.name != which {
            continue;
        }
        let mir = build_mir(&m, jitbull_vm::bytecode::FuncId(i as u32)).unwrap();
        let r = optimize(
            mir,
            vulns,
            &OptimizeOptions {
                trace: true,
                ..Default::default()
            },
        );
        let dna = Guard::extract(&r.trace, N_SLOTS);
        println!("--- fn {}", f.name);
        for (s, d) in dna.deltas.iter().enumerate() {
            if !d.is_empty() {
                println!("  slot {s}: -{} +{}", d.removed.len(), d.added.len());
                for c in d.removed.iter().take(6) {
                    println!(
                        "    - {}",
                        c.iter()
                            .map(|x| x.to_string())
                            .collect::<Vec<_>>()
                            .join(">")
                    );
                }
                for c in d.added.iter().take(6) {
                    println!(
                        "    + {}",
                        c.iter()
                            .map(|x| x.to_string())
                            .collect::<Vec<_>>()
                            .join(">")
                    );
                }
            }
        }
    }
}

fn main() {
    let v4 = VulnConfig::with([jitbull_jit::CveId::Cve2019_17026]);
    println!("===== Crypto stream (benign, vulnerable engine) =====");
    dump(
        &jitbull_workloads::workload("Crypto").unwrap().source,
        "stream",
        &v4,
    );
    println!("===== Splay insert =====");
    dump(
        &jitbull_workloads::workload("Splay").unwrap().source,
        "insert",
        &v4,
    );
    println!("===== 17026 VDC trigger =====");
    dump(
        &jitbull_vdc::vdc(jitbull_jit::CveId::Cve2019_17026).source,
        "shrink_smash",
        &v4,
    );
}

//! The §VI-B security evaluation: 4 CVEs × (PoC + 4 generated variants),
//! plus the cross-implementation check for CVE-2019-17026.

use jitbull::{CompareConfig, Guard};
use jitbull_jit::engine::{Engine, EngineConfig};
use jitbull_jit::{CveId, VulnConfig};
use jitbull_vdc::validate::run_script;
use jitbull_vdc::{
    alternate_implementation, build_database, generate, vdc, VariantKind, Vdc, VdcOutcome,
};

/// One row of the detection table.
#[derive(Debug, Clone)]
pub struct SecurityRow {
    /// CVE under test.
    pub cve: CveId,
    /// Script label (poc / renamed / minified / reordered / split /
    /// impl2).
    pub case: String,
    /// Outcome on the vulnerable, unprotected engine.
    pub unprotected: VdcOutcome,
    /// Outcome on the vulnerable engine with JITBULL (DB holds only the
    /// base PoC's DNA).
    pub protected: VdcOutcome,
    /// Whether JITBULL flagged ≥1 function (disabled passes or vetoed the
    /// JIT).
    pub detected: bool,
    /// Pipeline slots JITBULL disabled across functions.
    pub disabled_slots: Vec<usize>,
}

impl SecurityRow {
    /// The paper's success criterion: the attack works unprotected and is
    /// neutralized under JITBULL.
    pub fn neutralized(&self) -> bool {
        self.unprotected.is_compromised() && !self.protected.is_compromised() && self.detected
    }
}

fn run_case(cve: CveId, case: &str, script: &Vdc, base: &Vdc) -> SecurityRow {
    let vulns = VulnConfig::with([cve]);
    // Unprotected.
    let mut plain = Engine::new(EngineConfig {
        vulns: vulns.clone(),
        ..Default::default()
    });
    let unprotected = run_script(&script.source, &mut plain).expect("unprotected run");
    // Protected: DB holds only the *base* PoC's DNA (the variant is the
    // unknown attacker script).
    let db = build_database(std::slice::from_ref(base)).expect("db builds");
    let guard = Guard::new(db, CompareConfig::default());
    let mut shielded = Engine::with_guard(
        EngineConfig {
            vulns,
            ..Default::default()
        },
        guard,
    );
    let protected = run_script(&script.source, &mut shielded).expect("protected run");
    let detected = shielded.nr_disjit() + shielded.nr_nojit() > 0;
    // Collect disabled slots from the engine stats indirectly: re-derive
    // from counters is enough for the report; detailed slots come from a
    // follow-up run in the detailed report when needed.
    let disabled_slots = Vec::new();
    SecurityRow {
        cve,
        case: case.to_string(),
        unprotected,
        protected,
        detected,
        disabled_slots,
    }
}

/// Runs the full §VI-B evaluation.
pub fn security_eval() -> Vec<SecurityRow> {
    let mut rows = Vec::new();
    for cve in CveId::security_set() {
        let base = vdc(cve);
        rows.push(run_case(cve, "poc", &base, &base));
        for kind in VariantKind::all() {
            let variant = generate(&base, kind);
            rows.push(run_case(cve, kind.suffix(), &variant, &base));
        }
        if let Some(alt) = alternate_implementation(cve) {
            // The paper's cross-implementation experiment: impl 1 in the
            // DB, impl 2 as the running script.
            rows.push(run_case(cve, "impl2", &alt, &base));
        }
    }
    rows
}

/// Renders the detection table.
pub fn render(rows: &[SecurityRow]) -> String {
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.cve.name().to_string(),
                r.case.clone(),
                outcome_label(&r.unprotected),
                outcome_label(&r.protected),
                if r.detected { "yes" } else { "NO" }.to_string(),
                if r.neutralized() { "yes" } else { "NO" }.to_string(),
            ]
        })
        .collect();
    let detected = rows.iter().filter(|r| r.neutralized()).count();
    format!(
        "{}\ndetection rate: {detected}/{} ({:.0}%)\n",
        crate::render_table(
            &[
                "cve",
                "case",
                "unprotected",
                "with jitbull",
                "detected",
                "neutralized"
            ],
            &table_rows
        ),
        rows.len(),
        detected as f64 * 100.0 / rows.len() as f64
    )
}

fn outcome_label(o: &VdcOutcome) -> String {
    match o {
        VdcOutcome::Crashed(_) => "CRASH".to_string(),
        VdcOutcome::ShellcodeExecuted => "SHELLCODE".to_string(),
        VdcOutcome::Harmless { error: None } => "clean".to_string(),
        VdcOutcome::Harmless { error: Some(_) } => "clean (script error)".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detection_rate_is_100_percent() {
        let rows = security_eval();
        // 4 CVEs x (poc + 4 variants) + the 17026 second implementation.
        assert_eq!(rows.len(), 4 * 5 + 1);
        for r in &rows {
            assert!(
                r.neutralized(),
                "{} {} not neutralized: unprotected={:?} protected={:?} detected={}",
                r.cve.name(),
                r.case,
                r.unprotected,
                r.protected,
                r.detected
            );
        }
    }

    #[test]
    fn outcomes_match_poc_classes() {
        let rows = security_eval();
        for r in rows.iter().filter(|r| r.case == "poc") {
            match r.cve {
                CveId::Cve2019_9791 | CveId::Cve2019_9810 => {
                    assert!(matches!(r.unprotected, VdcOutcome::Crashed(_)))
                }
                CveId::Cve2019_11707 | CveId::Cve2019_17026 => {
                    assert!(matches!(r.unprotected, VdcOutcome::ShellcodeExecuted))
                }
                _ => unreachable!(),
            }
        }
    }
}

//! A minimal wall-clock micro-bench harness (the repo builds offline, so
//! no `criterion`): fixed warm-up, fixed sample count, min/median/mean
//! reporting. Wall-clock here measures the *host cost of running the
//! simulator*; the paper's metric is the deterministic simulated-cycle
//! count, which `repro` reports.

use std::time::{Duration, Instant};

/// One benchmark's timing samples.
#[derive(Debug, Clone)]
pub struct Samples {
    /// Benchmark label.
    pub name: String,
    /// Per-iteration wall-clock durations, sorted ascending.
    pub durations: Vec<Duration>,
}

impl Samples {
    /// Fastest observed iteration.
    #[must_use]
    pub fn min(&self) -> Duration {
        self.durations.first().copied().unwrap_or_default()
    }

    /// Median iteration.
    #[must_use]
    pub fn median(&self) -> Duration {
        self.durations
            .get(self.durations.len() / 2)
            .copied()
            .unwrap_or_default()
    }

    /// Mean iteration.
    #[must_use]
    pub fn mean(&self) -> Duration {
        if self.durations.is_empty() {
            return Duration::ZERO;
        }
        self.durations.iter().sum::<Duration>() / self.durations.len() as u32
    }
}

/// Times `f` for `samples` iterations after `warmup` untimed ones and
/// prints a one-line summary (min / median / mean).
pub fn bench<T>(name: &str, warmup: usize, samples: usize, mut f: impl FnMut() -> T) -> Samples {
    for _ in 0..warmup {
        std::hint::black_box(f());
    }
    let mut durations = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        std::hint::black_box(f());
        durations.push(start.elapsed());
    }
    durations.sort_unstable();
    let s = Samples {
        name: name.to_string(),
        durations,
    };
    println!(
        "{:<28} min {:>12?}  median {:>12?}  mean {:>12?}  (n={samples})",
        s.name,
        s.min(),
        s.median(),
        s.mean()
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_collects_the_requested_samples() {
        let s = bench("noop", 1, 5, || 1 + 1);
        assert_eq!(s.durations.len(), 5);
        assert!(s.min() <= s.median() && s.median() <= *s.durations.last().unwrap());
    }
}

//! # jitbull-bench — the evaluation harness
//!
//! Regenerates every table and figure of the paper's evaluation (§III and
//! §VI) against the simulated substrate:
//!
//! | Artifact | Module | `repro` subcommand |
//! |---|---|---|
//! | Table I (CVE survey) | [`registry`] | `table1` |
//! | §III-C window stats | [`registry`] | `window` |
//! | §VI-B security eval | [`security`] | `security` |
//! | Figure 4 (FP rates) | [`figures`] | `fig4` |
//! | Figure 5 (exec times) | [`figures`] | `fig5` |
//! | Figure 6 (scalability) | [`figures`] | `fig6` |
//! | Thr/Ratio ablation | [`ablation`] | `ablation` |
//! | Policy ablation | [`ablation`] | `ablation-policy` |
//! | Telemetry report | [`obs`] | `obs` |
//! | Chaos fault ladder | [`chaos_bench`] | `chaos` |
//!
//! Absolute numbers come from the deterministic cycle model, so they will
//! not equal the paper's milliseconds; the *shapes* (who wins, by what
//! factor, where curves flatten) are the reproduction targets — see
//! `EXPERIMENTS.md`.

pub mod ablation;
pub mod chaos_bench;
pub mod figures;
pub mod obs;
pub mod pool_bench;
pub mod registry;
pub mod security;
pub mod timing;

/// Renders a fixed-width text table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let line = |out: &mut String, cells: Vec<String>| {
        for (i, c) in cells.iter().enumerate() {
            out.push_str(&format!("{:<width$}  ", c, width = widths[i]));
        }
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    };
    line(&mut out, headers.iter().map(|h| h.to_string()).collect());
    line(&mut out, widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(&mut out, row.clone());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rendering_aligns() {
        let t = render_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a"));
    }
}

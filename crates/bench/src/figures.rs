//! Figures 4, 5, and 6: false-positive rates, execution times, and
//! database-size scalability on the workload suite.

use jitbull::{ComparatorMode, DnaDatabase};
use jitbull_jit::engine::EngineConfig;
use jitbull_jit::{CveId, VulnConfig};
use jitbull_vdc::{build_database, vdc};
use jitbull_workloads::{all_workloads, octane_analogues, run_workload, Measurement, Workload};

/// The database-growth order used by Figures 4–6: the paper's #1 database
/// holds CVE-2019-17026; #4 holds the §VI-B security set; #5–#8 add the
/// scalability set.
pub fn db_order() -> [CveId; 8] {
    [
        CveId::Cve2019_17026,
        CveId::Cve2019_9791,
        CveId::Cve2019_9810,
        CveId::Cve2019_11707,
        CveId::Cve2019_9792,
        CveId::Cve2019_9795,
        CveId::Cve2019_9813,
        CveId::Cve2020_26952,
    ]
}

/// Builds the database with the first `n` CVEs of [`db_order`], and the
/// matching vulnerable-engine configuration (unpatched exactly for those
/// CVEs — the vulnerability-window situation).
pub fn db_with(n: usize) -> (DnaDatabase, VulnConfig) {
    let cves: Vec<CveId> = db_order().into_iter().take(n).collect();
    let vdcs: Vec<_> = cves.iter().map(|c| vdc(*c)).collect();
    let db = build_database(&vdcs).expect("db builds");
    (db, VulnConfig::with(cves))
}

/// One Figure-4 row.
#[derive(Debug)]
pub struct Fig4Row {
    /// Workload name.
    pub name: &'static str,
    /// `Nr_JIT` annotation (from the plain-JIT run, as in the paper).
    pub nr_jit: usize,
    /// (%safe, %pass-disabled, %no-jit) with 1 VDC installed.
    pub with_1: (f64, f64, f64),
    /// Same with 4 VDCs installed.
    pub with_4: (f64, f64, f64),
}

fn fp_triplet(m: &Measurement) -> (f64, f64, f64) {
    (m.pct_safe(), m.pct_pass_disabled(), m.pct_nojit())
}

/// Runs the Figure-4 experiment over the Octane analogues.
pub fn fig4() -> Vec<Fig4Row> {
    let (db1, vulns1) = db_with(1);
    let (db4, vulns4) = db_with(4);
    octane_analogues()
        .iter()
        .map(|w| {
            let plain = run_workload(w, EngineConfig::default(), None).expect("plain run");
            let m1 = run_workload(
                w,
                EngineConfig {
                    vulns: vulns1.clone(),
                    ..Default::default()
                },
                Some(db1.clone()),
            )
            .expect("#1 run");
            let m4 = run_workload(
                w,
                EngineConfig {
                    vulns: vulns4.clone(),
                    ..Default::default()
                },
                Some(db4.clone()),
            )
            .expect("#4 run");
            Fig4Row {
                name: w.name,
                nr_jit: plain.nr_jit,
                with_1: fp_triplet(&m1),
                with_4: fp_triplet(&m4),
            }
        })
        .collect()
}

/// Renders Figure 4 as a table.
pub fn render_fig4(rows: &[Fig4Row]) -> String {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                r.nr_jit.to_string(),
                format!("{:.1}", r.with_1.0),
                format!("{:.1}", r.with_1.1),
                format!("{:.1}", r.with_1.2),
                format!("{:.1}", r.with_4.0),
                format!("{:.1}", r.with_4.1),
                format!("{:.1}", r.with_4.2),
            ]
        })
        .collect();
    crate::render_table(
        &[
            "benchmark",
            "Nr_JIT",
            "#1 %safe",
            "#1 %dis",
            "#1 %nojit",
            "#4 %safe",
            "#4 %dis",
            "#4 %nojit",
        ],
        &table,
    )
}

/// One Figure-5 row: cycles per configuration.
#[derive(Debug)]
pub struct Fig5Row {
    /// Workload name.
    pub name: &'static str,
    /// Plain JIT (baseline for normalization).
    pub jit: u64,
    /// JIT disabled entirely.
    pub nojit: u64,
    /// JITBULL with an empty database.
    pub jitbull_0: u64,
    /// JITBULL with 1 VDC.
    pub jitbull_1: u64,
    /// JITBULL with 4 VDCs.
    pub jitbull_4: u64,
}

impl Fig5Row {
    /// Overhead of a configuration versus plain JIT, in percent.
    pub fn overhead_pct(&self, cycles: u64) -> f64 {
        (cycles as f64 - self.jit as f64) * 100.0 / self.jit as f64
    }
}

fn cycles(w: &Workload, config: EngineConfig, db: Option<DnaDatabase>) -> u64 {
    run_workload(w, config, db).expect("workload runs").cycles
}

/// Runs the Figure-5 experiment over micro-benchmarks + Octane analogues.
pub fn fig5() -> Vec<Fig5Row> {
    let (db1, vulns1) = db_with(1);
    let (db4, vulns4) = db_with(4);
    all_workloads()
        .iter()
        .map(|w| Fig5Row {
            name: w.name,
            jit: cycles(w, EngineConfig::default(), None),
            nojit: cycles(
                w,
                EngineConfig {
                    jit_enabled: false,
                    ..Default::default()
                },
                None,
            ),
            jitbull_0: cycles(w, EngineConfig::default(), Some(DnaDatabase::new())),
            jitbull_1: cycles(
                w,
                EngineConfig {
                    vulns: vulns1.clone(),
                    ..Default::default()
                },
                Some(db1.clone()),
            ),
            jitbull_4: cycles(
                w,
                EngineConfig {
                    vulns: vulns4.clone(),
                    ..Default::default()
                },
                Some(db4.clone()),
            ),
        })
        .collect()
}

/// Renders Figure 5 (cycles plus overhead percentages).
pub fn render_fig5(rows: &[Fig5Row]) -> String {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                r.jit.to_string(),
                format!("{} (+{:.0}%)", r.nojit, r.overhead_pct(r.nojit)),
                format!("{:+.1}%", r.overhead_pct(r.jitbull_0)),
                format!("{:+.1}%", r.overhead_pct(r.jitbull_1)),
                format!("{:+.1}%", r.overhead_pct(r.jitbull_4)),
            ]
        })
        .collect();
    crate::render_table(
        &[
            "benchmark",
            "JIT cycles",
            "NoJIT",
            "JITBULL#0",
            "JITBULL#1",
            "JITBULL#4",
        ],
        &table,
    )
}

/// One Figure-6 row: overhead versus plain JIT for DB sizes 1..=8.
#[derive(Debug)]
pub struct Fig6Row {
    /// Workload name.
    pub name: &'static str,
    /// Plain-JIT cycles.
    pub jit: u64,
    /// Cycles with 1..=8 VDCs installed.
    pub with_n: Vec<u64>,
}

impl Fig6Row {
    /// Overhead (%) for DB size `n` (1-based).
    pub fn overhead_pct(&self, n: usize) -> f64 {
        (self.with_n[n - 1] as f64 - self.jit as f64) * 100.0 / self.jit as f64
    }
}

/// Runs the Figure-6 scalability experiment.
pub fn fig6(workloads: &[Workload]) -> Vec<Fig6Row> {
    let dbs: Vec<_> = (1..=8).map(db_with).collect();
    workloads
        .iter()
        .map(|w| {
            let jit = cycles(w, EngineConfig::default(), None);
            let with_n = dbs
                .iter()
                .map(|(db, vulns)| {
                    cycles(
                        w,
                        EngineConfig {
                            vulns: vulns.clone(),
                            ..Default::default()
                        },
                        Some(db.clone()),
                    )
                })
                .collect();
            Fig6Row {
                name: w.name,
                jit,
                with_n,
            }
        })
        .collect()
}

/// One comparator-cost row: simulated analysis cycles (extraction +
/// comparison) per database size, for the naive reference comparator and
/// the indexed pipeline. The verdicts are identical by construction (the
/// differential harness enforces it); only the cost differs.
#[derive(Debug)]
pub struct Fig6ComparatorRow {
    /// Workload name.
    pub name: &'static str,
    /// Per-DB-size `(reference, indexed)` analysis cycles, for sizes
    /// matching the `sizes` argument of [`fig6_comparator`].
    pub cycles: Vec<(u64, u64)>,
}

impl Fig6ComparatorRow {
    /// Indexed speedup over the reference comparator at sweep point `i`
    /// (e.g. `2.0` = indexed analysis costs half the cycles).
    pub fn speedup(&self, i: usize) -> f64 {
        let (reference, indexed) = self.cycles[i];
        reference as f64 / indexed.max(1) as f64
    }
}

/// Runs the naive-vs-indexed comparator cost sweep behind Figure 6:
/// the same workloads and databases, once per [`ComparatorMode`],
/// reporting each run's `analysis_cycles`.
pub fn fig6_comparator(workloads: &[Workload], sizes: &[usize]) -> Vec<Fig6ComparatorRow> {
    let dbs: Vec<_> = sizes.iter().map(|&n| db_with(n)).collect();
    workloads
        .iter()
        .map(|w| {
            let cycles = dbs
                .iter()
                .map(|(db, vulns)| {
                    let run = |mode: ComparatorMode| {
                        run_workload(
                            w,
                            EngineConfig {
                                vulns: vulns.clone(),
                                comparator: mode,
                                ..Default::default()
                            },
                            Some(db.clone()),
                        )
                        .expect("workload runs")
                        .analysis_cycles
                    };
                    (run(ComparatorMode::Reference), run(ComparatorMode::Indexed))
                })
                .collect();
            Fig6ComparatorRow {
                name: w.name,
                cycles,
            }
        })
        .collect()
}

/// Renders the comparator cost sweep (`ref cyc → idx cyc (speedup)` per
/// database size).
pub fn render_fig6_comparator(rows: &[Fig6ComparatorRow], sizes: &[usize]) -> String {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let mut row = vec![r.name.to_string()];
            for (i, (reference, indexed)) in r.cycles.iter().enumerate() {
                row.push(format!("{reference}->{indexed} ({:.1}x)", r.speedup(i)));
            }
            row
        })
        .collect();
    let headers: Vec<String> = std::iter::once("benchmark".to_string())
        .chain(sizes.iter().map(|n| format!("#{n} ref->idx")))
        .collect();
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    crate::render_table(&headers_ref, &table)
}

/// Renders Figure 6.
pub fn render_fig6(rows: &[Fig6Row]) -> String {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let mut row = vec![r.name.to_string()];
            for n in 1..=8 {
                row.push(format!("{:+.1}%", r.overhead_pct(n)));
            }
            row
        })
        .collect();
    crate::render_table(
        &["benchmark", "#1", "#2", "#3", "#4", "#5", "#6", "#7", "#8"],
        &table,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn db_sizes_grow() {
        let (db1, v1) = db_with(1);
        let (db8, v8) = db_with(8);
        assert_eq!(db1.cves().len(), 1);
        assert_eq!(db8.cves().len(), 8);
        assert_eq!(v1.enabled().count(), 1);
        assert_eq!(v8.enabled().count(), 8);
    }
}

//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! * **A1 — comparator thresholds.** The paper fixes `Thr = 3`,
//!   `Ratio = 50 %` "to optimize for a high detection rate". The sweep
//!   shows the trade-off: lower thresholds keep detection at 100 % but
//!   inflate false positives; higher ones lose variants.
//! * **A2 — go/no-go granularity.** The paper's headline design choice is
//!   disabling *passes*, not the whole JIT, on a match. Forcing the
//!   whole-JIT policy quantifies what that fine granularity buys.

use jitbull::{CompareConfig, Guard};
use jitbull_jit::engine::{Engine, EngineConfig};
use jitbull_jit::{CveId, VulnConfig};
use jitbull_vdc::validate::run_script;
use jitbull_vdc::{build_database, generate, vdc, VariantKind};
use jitbull_workloads::{run_workload, workload};

/// One point of the Thr/Ratio sweep.
#[derive(Debug)]
pub struct AblationPoint {
    /// Sub-chain count threshold.
    pub thr: usize,
    /// Ratio threshold.
    pub ratio: f64,
    /// Detected variants out of [`Self::total`].
    pub detected: usize,
    /// Total variant cases (4 CVEs × 4 variants).
    pub total: usize,
    /// Mean `%PassDis` over the sampled workloads with the 4-VDC
    /// database (false positives).
    pub mean_fp_pct: f64,
}

/// Workloads sampled for the FP half of the sweep (keeps the sweep fast;
/// they span low and high `Nr_JIT`).
const FP_SAMPLE: [&str; 4] = ["Crypto", "Splay", "NavierStokes", "Microbench2"];

/// Runs the comparator-threshold sweep.
pub fn threshold_sweep(thrs: &[usize], ratios: &[f64]) -> Vec<AblationPoint> {
    let mut out = Vec::new();
    for &thr in thrs {
        for &ratio in ratios {
            let config = CompareConfig { thr, ratio };
            // Detection half.
            let mut detected = 0;
            let mut total = 0;
            for cve in CveId::security_set() {
                let base = vdc(cve);
                let db = build_database(std::slice::from_ref(&base)).expect("db");
                for kind in VariantKind::all() {
                    total += 1;
                    let variant = generate(&base, kind);
                    let mut engine = Engine::with_guard(
                        EngineConfig {
                            vulns: VulnConfig::with([cve]),
                            ..Default::default()
                        },
                        Guard::new(db.clone(), config),
                    );
                    let outcome = run_script(&variant.source, &mut engine).expect("run");
                    if !outcome.is_compromised() && engine.nr_disjit() + engine.nr_nojit() > 0 {
                        detected += 1;
                    }
                }
            }
            // False-positive half.
            let (db4, vulns4) = crate::figures::db_with(4);
            let mut fp_sum = 0.0;
            for name in FP_SAMPLE {
                let w = workload(name).expect("sample workload exists");
                let mut engine = Engine::with_guard(
                    EngineConfig {
                        vulns: vulns4.clone(),
                        ..Default::default()
                    },
                    Guard::new(db4.clone(), config),
                );
                let outcome = engine.run_source_with(&w.source).expect("workload runs");
                let nr_jit = outcome.nr_jit.max(1);
                fp_sum += (outcome.nr_disjit + outcome.nr_nojit) as f64 * 100.0 / nr_jit as f64;
            }
            out.push(AblationPoint {
                thr,
                ratio,
                detected,
                total,
                mean_fp_pct: fp_sum / FP_SAMPLE.len() as f64,
            });
        }
    }
    out
}

/// Renders the sweep.
pub fn render_sweep(points: &[AblationPoint]) -> String {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.thr.to_string(),
                format!("{:.0}%", p.ratio * 100.0),
                format!("{}/{}", p.detected, p.total),
                format!("{:.1}%", p.mean_fp_pct),
            ]
        })
        .collect();
    crate::render_table(&["Thr", "Ratio", "detected", "mean %PassDis (FP)"], &rows)
}

/// One row of the policy-granularity ablation.
#[derive(Debug)]
pub struct PolicyRow {
    /// Workload name.
    pub name: &'static str,
    /// Plain-JIT cycles.
    pub jit: u64,
    /// Cycles with the paper's per-pass policy (4 VDCs).
    pub per_pass: u64,
    /// Cycles with the coarse whole-JIT-per-function policy.
    pub whole_jit: u64,
}

/// Runs the policy ablation on the sampled workloads.
pub fn policy_ablation() -> Vec<PolicyRow> {
    let (db4, vulns4) = crate::figures::db_with(4);
    FP_SAMPLE
        .iter()
        .map(|name| {
            let w = workload(name).expect("sample workload exists");
            let jit = run_workload(&w, EngineConfig::default(), None)
                .expect("plain")
                .cycles;
            let per_pass = run_workload(
                &w,
                EngineConfig {
                    vulns: vulns4.clone(),
                    ..Default::default()
                },
                Some(db4.clone()),
            )
            .expect("per-pass")
            .cycles;
            let whole_jit = run_workload(
                &w,
                EngineConfig {
                    vulns: vulns4.clone(),
                    whole_jit_policy: true,
                    ..Default::default()
                },
                Some(db4.clone()),
            )
            .expect("whole-jit")
            .cycles;
            PolicyRow {
                name: w.name,
                jit,
                per_pass,
                whole_jit,
            }
        })
        .collect()
}

/// Renders the policy ablation.
pub fn render_policy(rows: &[PolicyRow]) -> String {
    let t: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let pct = |c: u64| (c as f64 - r.jit as f64) * 100.0 / r.jit as f64;
            vec![
                r.name.to_string(),
                r.jit.to_string(),
                format!("{:+.1}%", pct(r.per_pass)),
                format!("{:+.1}%", pct(r.whole_jit)),
            ]
        })
        .collect();
    crate::render_table(
        &[
            "benchmark",
            "JIT cycles",
            "per-pass policy",
            "whole-JIT policy",
        ],
        &t,
    )
}

//! Wall-clock bench for the Figure-5 configurations on one representative
//! workload: host time of the whole simulated stack per configuration.
//!
//! NOTE: wall-clock here measures the *host cost of running the
//! simulator* (the interpreter loop is cheaper per op for the host than
//! the optimizing executor, so `nojit` can be faster in wall-clock).
//! The paper's metric is the deterministic simulated-cycle count, which
//! `repro -- fig5` reports.

use jitbull_bench::figures::db_with;
use jitbull_bench::timing::bench;
use jitbull_jit::engine::EngineConfig;
use jitbull_workloads::{run_workload, workload};

fn main() {
    let w = workload("Crypto").expect("workload exists");
    let (db1, vulns1) = db_with(1);
    let (db4, vulns4) = db_with(4);
    println!("fig5_crypto");
    bench("jit", 2, 10, || {
        run_workload(&w, EngineConfig::default(), None).unwrap()
    });
    bench("nojit", 2, 10, || {
        run_workload(
            &w,
            EngineConfig {
                jit_enabled: false,
                ..Default::default()
            },
            None,
        )
        .unwrap()
    });
    bench("jitbull_1", 2, 10, || {
        run_workload(
            &w,
            EngineConfig {
                vulns: vulns1.clone(),
                ..Default::default()
            },
            Some(db1.clone()),
        )
        .unwrap()
    });
    bench("jitbull_4", 2, 10, || {
        run_workload(
            &w,
            EngineConfig {
                vulns: vulns4.clone(),
                ..Default::default()
            },
            Some(db4.clone()),
        )
        .unwrap()
    });
}

//! Criterion bench for the Figure-5 configurations on one representative
//! workload: wall-clock time of the whole simulated stack per
//! configuration.
//!
//! NOTE: wall-clock here measures the *host cost of running the
//! simulator* (the interpreter loop is cheaper per op for the host than
//! the optimizing executor, so `nojit` can be faster in wall-clock).
//! The paper's metric is the deterministic simulated-cycle count, which
//! `repro -- fig5` reports.

use criterion::{criterion_group, criterion_main, Criterion};
use jitbull_bench::figures::db_with;
use jitbull_jit::engine::EngineConfig;
use jitbull_workloads::{run_workload, workload};

fn bench_fig5(c: &mut Criterion) {
    let w = workload("Crypto").expect("workload exists");
    let (db1, vulns1) = db_with(1);
    let (db4, vulns4) = db_with(4);
    let mut group = c.benchmark_group("fig5_crypto");
    group.sample_size(10);
    group.bench_function("jit", |b| {
        b.iter(|| run_workload(&w, EngineConfig::default(), None).unwrap())
    });
    group.bench_function("nojit", |b| {
        b.iter(|| {
            run_workload(
                &w,
                EngineConfig {
                    jit_enabled: false,
                    ..Default::default()
                },
                None,
            )
            .unwrap()
        })
    });
    group.bench_function("jitbull_1", |b| {
        b.iter(|| {
            run_workload(
                &w,
                EngineConfig {
                    vulns: vulns1.clone(),
                    ..Default::default()
                },
                Some(db1.clone()),
            )
            .unwrap()
        })
    });
    group.bench_function("jitbull_4", |b| {
        b.iter(|| {
            run_workload(
                &w,
                EngineConfig {
                    vulns: vulns4.clone(),
                    ..Default::default()
                },
                Some(db4.clone()),
            )
            .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);

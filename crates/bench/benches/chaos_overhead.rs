//! Fault-injection overhead and serving-throughput retention.
//!
//! ```text
//! cargo bench -p jitbull-bench --bench chaos_overhead
//! ```
//!
//! Two acceptance checks from the chaos issue:
//!
//! 1. **No-fault overhead ~ 0.** An injector that is armed (rules
//!    installed, every hot-path check consulted) but whose triggers can
//!    never fire must produce *identical* simulated cycle counts to the
//!    disabled injector, plain and guarded.
//! 2. **Retention >= 80 %.** With a 1 % request-level deadline-blowout
//!    rate and a 0.1 % per-pass IR-corruption rate, the pool must keep at
//!    least 80 % of its fault-free serving throughput (served requests
//!    per simulated busy cycle).

use jitbull_bench::chaos_bench;

fn main() {
    // Workers recover from injected panics; keep the default hook quiet.
    std::panic::set_hook(Box::new(|_| {}));

    println!("injector overhead (simulated cycles, serving mix):\n");
    let points = chaos_bench::injector_overhead();
    print!("{}", chaos_bench::render_overhead(&points));
    assert!(
        points.iter().all(chaos_bench::OverheadPoint::is_neutral),
        "armed-idle injector changed simulated cycle counts"
    );
    println!("\narmed-idle delta: 0 cycles on every workload (acceptance: ~0)");

    let r = chaos_bench::faulted_retention(200, 42);
    println!(
        "\nthroughput retention under faults (200 requests, 4 workers, seed 42):
  fault-free : {} served / {} busy cycles
  faulted    : {} served / {} busy cycles ({} faults injected, {}/{} tickets resolved)
  retention  : {:.1}% (floor: 80%)",
        r.clean_served,
        r.clean_cycles,
        r.faulted_served,
        r.faulted_cycles,
        r.injected,
        r.faulted_resolved,
        r.requests,
        r.retention * 100.0,
    );
    assert_eq!(
        r.faulted_resolved as usize, r.requests,
        "a ticket was lost under fault injection"
    );
    assert!(
        r.retention >= 0.8,
        "retention {:.3} below the 0.8 acceptance floor",
        r.retention
    );
}

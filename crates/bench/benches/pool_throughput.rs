//! Serving-pool throughput scaling vs worker count.
//!
//! ```text
//! cargo bench -p jitbull-bench --bench pool_throughput
//! ```
//!
//! Headline: simulated-cycle speedup (busy-cycle total / busiest worker)
//! — deterministic load-balance quality, which bounds wall-clock scaling
//! on a multi-core host. Wall-clock req/s is secondary (this container
//! has one CPU).

use jitbull_bench::pool_bench;

fn main() {
    let points = pool_bench::throughput_scaling(&[1, 2, 4, 8], 160);
    println!("pool throughput scaling (160 requests, serving mix, 1 VDC):\n");
    print!("{}", pool_bench::render_scaling(&points));
    let one = &points[0];
    let four = points
        .iter()
        .find(|p| p.workers == 4)
        .expect("4-worker point");
    println!(
        "\n4 workers vs 1: {:.2}x simulated-cycle speedup (floor: 2.50x)",
        four.cycle_speedup / one.cycle_speedup
    );
    assert!(
        four.cycle_speedup / one.cycle_speedup >= 2.5,
        "4-worker cycle speedup below the 2.5x acceptance floor"
    );
}

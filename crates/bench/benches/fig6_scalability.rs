//! Criterion bench for the Figure-6 database-size sweep on one workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jitbull_bench::figures::db_with;
use jitbull_jit::engine::EngineConfig;
use jitbull_workloads::{run_workload, workload};

fn bench_fig6(c: &mut Criterion) {
    let w = workload("Splay").expect("workload exists");
    let mut group = c.benchmark_group("fig6_splay_db_size");
    group.sample_size(10);
    for n in [1usize, 2, 4, 8] {
        let (db, vulns) = db_with(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                run_workload(
                    &w,
                    EngineConfig {
                        vulns: vulns.clone(),
                        ..Default::default()
                    },
                    Some(db.clone()),
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);

//! Wall-clock bench for the Figure-6 database-size sweep on one workload,
//! run once per comparator mode (naive reference vs indexed pipeline),
//! plus a kernel microbench of the comparator itself.

use jitbull::{ComparatorIndex, ComparatorMode, CompareConfig, IndexConfig};
use jitbull_bench::figures::db_with;
use jitbull_bench::timing::bench;
use jitbull_jit::engine::EngineConfig;
use jitbull_workloads::{run_workload, workload};

fn main() {
    let w = workload("Splay").expect("workload exists");
    println!("fig6_splay_db_size");
    for mode in [ComparatorMode::Reference, ComparatorMode::Indexed] {
        let tag = match mode {
            ComparatorMode::Reference => "ref",
            ComparatorMode::Indexed => "idx",
        };
        for n in [1usize, 2, 4, 8] {
            let (db, vulns) = db_with(n);
            bench(&format!("db_size_{n}_{tag}"), 2, 10, || {
                run_workload(
                    &w,
                    EngineConfig {
                        vulns: vulns.clone(),
                        comparator: mode,
                        ..Default::default()
                    },
                    Some(db.clone()),
                )
                .unwrap()
            });
        }
    }

    // Comparator kernel in isolation: one DNA queried against the full
    // 8-entry database, naive loop vs indexed scan (cold cache) vs
    // indexed with the verdict cache warm.
    println!("comparator_kernel_db8");
    let (db, _) = db_with(8);
    let query = db.entries()[0].dna.clone();
    let config = CompareConfig::default();
    bench("reference_loop", 50, 200, || {
        db.entries()
            .iter()
            .map(|e| jitbull::compare::reference(&query, &e.dna, &config).len())
            .sum::<usize>()
    });
    bench("indexed_build", 50, 200, || {
        let mut index = ComparatorIndex::new(IndexConfig::default());
        index.ensure(&db);
        index
    });
    let mut uncached = ComparatorIndex::new(IndexConfig {
        max_cache_entries: 0,
        ..Default::default()
    });
    uncached.ensure(&db);
    bench("indexed_uncached", 50, 200, || {
        uncached.query(&query, &config)
    });
    let mut warm = ComparatorIndex::new(IndexConfig::default());
    warm.ensure(&db);
    warm.query(&query, &config);
    bench("indexed_cached", 50, 200, || warm.query(&query, &config));
}

//! Wall-clock bench for the Figure-6 database-size sweep on one workload.

use jitbull_bench::figures::db_with;
use jitbull_bench::timing::bench;
use jitbull_jit::engine::EngineConfig;
use jitbull_workloads::{run_workload, workload};

fn main() {
    let w = workload("Splay").expect("workload exists");
    println!("fig6_splay_db_size");
    for n in [1usize, 2, 4, 8] {
        let (db, vulns) = db_with(n);
        bench(&format!("db_size_{n}"), 2, 10, || {
            run_workload(
                &w,
                EngineConfig {
                    vulns: vulns.clone(),
                    ..Default::default()
                },
                Some(db.clone()),
            )
            .unwrap()
        });
    }
}

//! Criterion bench for the core JITBULL operations: Δ extraction from a
//! trace and comparison against databases of increasing size — the raw
//! costs behind the paper's overhead figures.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jitbull::{CompareConfig, Guard};
use jitbull_bench::figures::db_with;
use jitbull_frontend::parse_program;
use jitbull_jit::pipeline::{optimize, OptimizeOptions, N_SLOTS};
use jitbull_jit::VulnConfig;
use jitbull_mir::build_mir;
use jitbull_vm::compile_program;

fn representative_trace() -> jitbull_mir::PassTrace {
    let w = jitbull_workloads::workload("Crypto").expect("workload");
    let p = parse_program(&w.source).unwrap();
    let m = compile_program(&p).unwrap();
    let fid = m.function_id("stream").unwrap();
    let mir = build_mir(&m, fid).unwrap();
    optimize(
        mir,
        &VulnConfig::none(),
        &OptimizeOptions {
            trace: true,
            ..Default::default()
        },
    )
    .trace
}

fn bench_dna(c: &mut Criterion) {
    let trace = representative_trace();
    c.bench_function("dna_extract_stream_fn", |b| {
        b.iter(|| Guard::extract(&trace, N_SLOTS))
    });
    let mut group = c.benchmark_group("dna_analyze_by_db_size");
    group.sample_size(20);
    for n in [1usize, 4, 8] {
        let (db, _) = db_with(n);
        let guard = Guard::new(db, CompareConfig::default());
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| guard.analyze(&trace, N_SLOTS))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dna);
criterion_main!(benches);

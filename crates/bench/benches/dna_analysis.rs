//! Wall-clock bench for the core JITBULL operations: Δ extraction from a
//! trace and comparison against databases of increasing size — the raw
//! costs behind the paper's overhead figures.

use jitbull::{CompareConfig, Guard};
use jitbull_bench::figures::db_with;
use jitbull_bench::timing::bench;
use jitbull_frontend::parse_program;
use jitbull_jit::pipeline::{optimize, OptimizeOptions, N_SLOTS};
use jitbull_jit::VulnConfig;
use jitbull_mir::build_mir;
use jitbull_vm::compile_program;

fn representative_trace() -> jitbull_mir::PassTrace {
    let w = jitbull_workloads::workload("Crypto").expect("workload");
    let p = parse_program(&w.source).unwrap();
    let m = compile_program(&p).unwrap();
    let fid = m.function_id("stream").unwrap();
    let mir = build_mir(&m, fid).unwrap();
    optimize(
        mir,
        &VulnConfig::none(),
        &OptimizeOptions {
            trace: true,
            ..Default::default()
        },
    )
    .trace
}

fn main() {
    let trace = representative_trace();
    bench("dna_extract_stream_fn", 5, 50, || {
        Guard::extract(&trace, N_SLOTS)
    });
    println!("dna_analyze_by_db_size");
    for n in [1usize, 4, 8] {
        let (db, _) = db_with(n);
        let guard = Guard::new(db, CompareConfig::default());
        bench(&format!("db_size_{n}"), 5, 20, || {
            guard.analyze(&trace, N_SLOTS)
        });
    }
}

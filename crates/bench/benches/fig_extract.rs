//! Wall-clock bench for the Δ-extractor: one workload run per extractor
//! mode (naive Algorithm 1 reference vs incremental + memo), the
//! repeat-compilation memo-hit scenario, and a kernel microbench of the
//! extractor itself. The paper-grade metric is the deterministic
//! simulated-cycle count, printed alongside; wall-clock measures the host
//! cost of running the simulator.

use jitbull::{DnaMemo, ExtractorMode, IncrementalExtractor};
use jitbull_bench::figures::db_with;
use jitbull_bench::timing::bench;
use jitbull_frontend::parse_program;
use jitbull_jit::engine::EngineConfig;
use jitbull_jit::pipeline::{optimize, OptimizeOptions, N_SLOTS};
use jitbull_jit::VulnConfig;
use jitbull_mir::build_mir;
use jitbull_vm::compile_program;
use jitbull_workloads::{run_workload, workload};

fn main() {
    let w = workload("Splay").expect("workload exists");
    let (db, vulns) = db_with(4);

    // First-compile path: fresh memo per iteration, so the incremental
    // win is pure structural diffing (unchanged passes skipped), not
    // memoization.
    println!("fig_extract_splay_first_compile");
    let mut first_cycles = [0u64; 2];
    for (i, mode) in [ExtractorMode::Reference, ExtractorMode::Incremental]
        .into_iter()
        .enumerate()
    {
        let tag = match mode {
            ExtractorMode::Reference => "ref",
            ExtractorMode::Incremental => "inc",
        };
        let run = || {
            run_workload(
                &w,
                EngineConfig {
                    vulns: vulns.clone(),
                    extractor: mode,
                    memo: DnaMemo::default(),
                    ..Default::default()
                },
                Some(db.clone()),
            )
            .unwrap()
        };
        first_cycles[i] = run().analysis_cycles;
        bench(&format!("first_compile_{tag}"), 2, 10, run);
    }
    let first_speedup = first_cycles[0] as f64 / first_cycles[1].max(1) as f64;
    println!(
        "analysis_cycles ref={} inc={} speedup={first_speedup:.2}x",
        first_cycles[0], first_cycles[1],
    );
    assert!(
        first_speedup >= 2.0,
        "first-compile extraction speedup floor violated: {first_speedup:.2}x < 2x"
    );

    // Repeat-compilation path: one shared memo; the first run pays the
    // extractions, every later run of the same program hits the memo.
    println!("fig_extract_splay_repeat_compile");
    let memo = DnaMemo::default();
    let repeat = || {
        run_workload(
            &w,
            EngineConfig {
                vulns: vulns.clone(),
                memo: memo.clone(),
                ..Default::default()
            },
            Some(db.clone()),
        )
        .unwrap()
    };
    let cold = repeat().analysis_cycles;
    let warm = repeat().analysis_cycles;
    bench("repeat_compile_memo_warm", 2, 10, repeat);
    let repeat_speedup = cold as f64 / warm.max(1) as f64;
    println!("analysis_cycles cold={cold} memo_warm={warm} speedup={repeat_speedup:.2}x");
    assert!(
        repeat_speedup >= 2.0,
        "repeat-compilation memo speedup floor violated: {repeat_speedup:.2}x < 2x"
    );

    // Extractor kernel in isolation: one traced Ion compilation of a
    // guarded array loop, digested by each implementation.
    println!("extract_kernel_sum_loop");
    let src =
        "function f(a, n) { var t = 0; for (var i = 0; i < n; i++) { t += a[i]; } return t; }";
    let program = parse_program(src).expect("parses");
    let module = compile_program(&program).expect("compiles");
    let fid = module.function_id("f").expect("function exists");
    let mir = build_mir(&module, fid).expect("mir builds");
    let result = optimize(
        mir,
        &VulnConfig::none(),
        &OptimizeOptions {
            trace: true,
            ..Default::default()
        },
    );
    let trace = result.trace;
    bench("reference_walk", 20, 100, || {
        jitbull::extract_dna(&trace, N_SLOTS)
    });
    bench("incremental_cold", 20, 100, || {
        IncrementalExtractor::new().extract_dna(&trace, N_SLOTS)
    });
    let mut warm_extractor = IncrementalExtractor::new();
    warm_extractor.extract_dna(&trace, N_SLOTS);
    bench("incremental_warm_runs", 20, 100, || {
        warm_extractor.extract_dna(&trace, N_SLOTS)
    });
    let memo = DnaMemo::default();
    let key = jitbull::MemoKey::from_trace(&trace, N_SLOTS, 0).expect("non-empty trace");
    let (dna, _) = IncrementalExtractor::new().extract_dna(&trace, N_SLOTS);
    memo.insert(key.clone(), dna);
    bench("memo_hit", 20, 100, || {
        let key = jitbull::MemoKey::from_trace(&trace, N_SLOTS, 0).expect("non-empty trace");
        memo.lookup(&key).expect("memoized")
    });
}

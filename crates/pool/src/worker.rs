//! Worker threads: dequeue → refresh snapshot → (maybe degrade) →
//! execute → respond. Panics are isolated per worker and recovered by an
//! in-thread supervisor that rebuilds the worker's state from scratch.

use std::panic::AssertUnwindSafe;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

use jitbull::{CompareConfig, DnaDatabase, Guard};
use jitbull_jit::engine::Engine;
use jitbull_telemetry::Event;

use crate::error::PoolError;
use crate::pool::{Job, PoolResponse, SharedCollector, StatsInner};
use crate::queue::BoundedQueue;
use crate::swap::EpochCell;

/// Everything a worker thread needs, cloned per worker at pool start.
pub(crate) struct WorkerCtx {
    pub(crate) index: usize,
    pub(crate) queue: Arc<BoundedQueue<Job>>,
    pub(crate) cell: Arc<EpochCell>,
    pub(crate) stats: Arc<StatsInner>,
    pub(crate) collector: Option<SharedCollector>,
    pub(crate) compare: CompareConfig,
}

impl WorkerCtx {
    fn record(&self, event: Event) {
        if let Some(c) = &self.collector {
            c.lock().unwrap_or_else(|e| e.into_inner()).record(event);
        }
    }
}

/// Per-worker mutable state: the snapshot the worker currently serves
/// from and the warm guard (comparator index + verdict cache) built over
/// it. Dropped wholesale when the epoch moves or the worker respawns.
struct WorkerState {
    epoch: u64,
    db: Option<Arc<DnaDatabase>>,
    guard: Option<Guard>,
}

/// The thread body: run [`worker_loop`] until the queue closes; if it
/// panics, count a restart and run it again with fresh state. The panic
/// unwinds through the in-flight [`Job`], whose responder delivers
/// [`PoolError::Panicked`] on drop — the caller's ticket never hangs.
pub(crate) fn supervise(ctx: WorkerCtx) {
    loop {
        match std::panic::catch_unwind(AssertUnwindSafe(|| worker_loop(&ctx))) {
            Ok(()) => return,
            Err(_) => {
                ctx.stats.worker_restarts.fetch_add(1, Ordering::Relaxed);
                ctx.record(Event::PoolWorkerRestarted { worker: ctx.index });
            }
        }
    }
}

fn worker_loop(ctx: &WorkerCtx) {
    let mut state = WorkerState {
        epoch: 0,
        db: None,
        guard: None,
    };
    while let Some(job) = ctx.queue.pop() {
        serve(ctx, &mut state, job);
    }
}

fn serve(ctx: &WorkerCtx, state: &mut WorkerState, job: Job) {
    let Job {
        request,
        enqueued_at,
        min_epoch,
        responder,
    } = job;

    // Refresh the snapshot if a publisher moved the epoch. The lock-free
    // check makes the steady state cheap; the reload drops the warm guard
    // because its index and verdict cache belong to the old content.
    if state.db.is_none() || ctx.cell.epoch() != state.epoch {
        let (epoch, db) = ctx.cell.load();
        state.epoch = epoch;
        state.db = Some(db);
        state.guard = None;
    }
    debug_assert!(state.epoch >= min_epoch, "epoch ran backwards");

    let wait = enqueued_at.elapsed();
    let degraded = request.deadline.is_some_and(|d| wait >= d);

    if request.chaos_panic {
        // Fault injection: unwind through the supervisor. `request` (and
        // nothing else) is lost; the responder's drop reports it.
        panic!("chaos_panic: injected worker fault");
    }

    let mut config = request.config;
    if degraded {
        // Graceful degradation — the paper's no-JIT scenario generalized
        // to load shedding: a late request still gets a correct answer,
        // just from the (cheap-to-enter) interpreter.
        config.jit_enabled = false;
    }

    let db = Arc::clone(state.db.as_ref().expect("snapshot loaded"));
    let guard = state
        .guard
        .take()
        .unwrap_or_else(|| Guard::with_comparator((*db).clone(), ctx.compare, config.comparator));
    let mut engine = Engine::with_guard(config, guard);
    let started = Instant::now();
    let result = engine.run_source_with(&request.source);
    let run_micros = started.elapsed().as_micros() as u64;
    // Keep the warm guard for the next request on this snapshot.
    state.guard = engine.into_guard();

    let wait_micros = wait.as_micros() as u64;
    ctx.stats.served.fetch_add(1, Ordering::Relaxed);
    if degraded {
        ctx.stats.degraded.fetch_add(1, Ordering::Relaxed);
    }
    ctx.record(Event::PoolServed {
        worker: ctx.index,
        degraded,
        wait_micros,
        run_micros,
    });

    match result {
        Ok(out) => {
            ctx.stats.worker_cycles[ctx.index].fetch_add(out.outcome.cycles, Ordering::Relaxed);
            let mut matched_cves: Vec<String> = out
                .stats
                .iter()
                .flat_map(|s| s.matched.iter().map(|(cve, _)| cve.clone()))
                .collect();
            matched_cves.sort();
            matched_cves.dedup();
            responder.send(Ok(PoolResponse {
                worker: ctx.index,
                db_epoch: state.epoch,
                db_generation: db.generation(),
                min_epoch,
                degraded,
                printed: out.outcome.printed,
                cycles: out.outcome.cycles,
                nr_jit: out.nr_jit,
                nr_disjit: out.nr_disjit,
                nr_nojit: out.nr_nojit,
                analysis_cycles: out.analysis_cycles,
                matched_cves,
                wait_micros,
                run_micros,
            }));
        }
        Err(e) => responder.send(Err(PoolError::Script(e.to_string()))),
    }
}

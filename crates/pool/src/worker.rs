//! Worker threads: dequeue → refresh snapshot → (maybe degrade) →
//! execute → respond. Panics are isolated per worker and recovered by an
//! in-thread supervisor that rebuilds the worker's state from scratch.

use std::cell::RefCell;
use std::panic::AssertUnwindSafe;
use std::rc::Rc;
use std::sync::atomic::Ordering;
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use jitbull::{CompareConfig, DnaDatabase, DnaMemo, ExtractorMode, Guard};
use jitbull_chaos::{CircuitBreaker, FaultInjector, FaultKind, FaultSite, Quarantine};
use jitbull_jit::engine::Engine;
use jitbull_telemetry::{Collector, Event};

use crate::error::PoolError;
use crate::pool::{Job, PoolResponse, SharedCollector, StatsInner};
use crate::queue::BoundedQueue;
use crate::swap::EpochCell;

/// Everything a worker thread needs, cloned per worker at pool start.
pub(crate) struct WorkerCtx {
    pub(crate) index: usize,
    pub(crate) queue: Arc<BoundedQueue<Job>>,
    pub(crate) cell: Arc<EpochCell>,
    pub(crate) stats: Arc<StatsInner>,
    pub(crate) collector: Option<SharedCollector>,
    pub(crate) compare: CompareConfig,
    pub(crate) extractor: ExtractorMode,
    pub(crate) memo: DnaMemo,
    pub(crate) faults: FaultInjector,
    pub(crate) breaker: CircuitBreaker,
    pub(crate) quarantine: Quarantine,
    pub(crate) drain_by: Arc<OnceLock<Instant>>,
}

/// Adapts the pool's `Arc<Mutex<_>>` shared collector to the engine's
/// thread-local `Rc<RefCell<dyn Collector>>` slot, so engine-level
/// recovery events (watchdog expiries, quarantines, injected faults)
/// surface in the pool's recorder.
struct Forward(SharedCollector);

impl Collector for Forward {
    fn record(&mut self, event: Event) {
        self.0
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .record(event);
    }
}

impl WorkerCtx {
    fn record(&self, event: Event) {
        if let Some(c) = &self.collector {
            c.lock().unwrap_or_else(|e| e.into_inner()).record(event);
        }
    }
}

/// Per-worker mutable state: the snapshot the worker currently serves
/// from and the warm guard (comparator index + verdict cache) built over
/// it. Dropped wholesale when the epoch moves or the worker respawns.
struct WorkerState {
    epoch: u64,
    db: Option<Arc<DnaDatabase>>,
    guard: Option<Guard>,
}

/// The thread body: run [`worker_loop`] until the queue closes; if it
/// panics, count a restart and run it again with fresh state. The panic
/// unwinds through the in-flight [`Job`], whose responder delivers
/// [`PoolError::Panicked`] on drop — the caller's ticket never hangs.
pub(crate) fn supervise(ctx: WorkerCtx) {
    loop {
        match std::panic::catch_unwind(AssertUnwindSafe(|| worker_loop(&ctx))) {
            Ok(()) => return,
            Err(_) => {
                ctx.stats.worker_restarts.fetch_add(1, Ordering::Relaxed);
                ctx.record(Event::PoolWorkerRestarted { worker: ctx.index });
            }
        }
    }
}

fn worker_loop(ctx: &WorkerCtx) {
    let mut state = WorkerState {
        epoch: 0,
        db: None,
        guard: None,
    };
    while let Some(job) = ctx.queue.pop() {
        serve(ctx, &mut state, job);
    }
}

fn serve(ctx: &WorkerCtx, state: &mut WorkerState, job: Job) {
    let Job {
        request,
        enqueued_at,
        min_epoch,
        responder,
    } = job;

    // Refresh the snapshot if a publisher moved the epoch. The lock-free
    // check makes the steady state cheap; the reload drops the warm guard
    // because its index and verdict cache belong to the old content.
    if state.db.is_none() || ctx.cell.epoch() != state.epoch {
        let (epoch, db) = ctx.cell.load();
        state.epoch = epoch;
        state.db = Some(db);
        state.guard = None;
    }
    debug_assert!(state.epoch >= min_epoch, "epoch ran backwards");

    // Chaos hook: one occurrence per dequeued request.
    let mut chaos_blowout = false;
    match ctx.faults.fire(FaultSite::WorkerServe) {
        Some(FaultKind::WorkerPanic) => {
            // Unwind through the supervisor; the responder's drop
            // resolves the ticket with `PoolError::Panicked`.
            panic!("chaos: injected worker panic");
        }
        Some(FaultKind::DeadlineBlowout) => chaos_blowout = true,
        _ => {}
    }

    let wait = enqueued_at.elapsed();
    let drain_lapsed = ctx.drain_by.get().is_some_and(|by| Instant::now() >= *by);
    let deadline_degraded =
        request.deadline.is_some_and(|d| wait >= d) || chaos_blowout || drain_lapsed;

    if request.chaos_panic {
        // Fault injection: unwind through the supervisor. `request` (and
        // nothing else) is lost; the responder's drop reports it.
        panic!("chaos_panic: injected worker fault");
    }

    let mut config = request.config;
    // Thread the pool-wide chaos/recovery state through the engine: the
    // injector reaches the pipeline, extractor, and comparator, and
    // quarantine strikes accumulate across requests and worker respawns.
    config.faults = ctx.faults.clone();
    config.quarantine = ctx.quarantine.clone();
    // The pool's extractor knob and shared DNA memo are authoritative:
    // every worker memoizes into (and hits from) the same store, and the
    // memo outlives snapshot swaps because extraction never reads the
    // VDC database.
    config.extractor = ctx.extractor;
    config.memo = ctx.memo.clone();

    // Circuit breaker: an open breaker degrades the run engine-wide; a
    // half-open one lets exactly one probe compile.
    let permit = ctx.breaker.admit();
    let breaker_degraded = config.jit_enabled && !deadline_degraded && !permit.jit_allowed();
    let degraded = deadline_degraded || breaker_degraded;
    if degraded {
        // Graceful degradation — the paper's no-JIT scenario generalized
        // to load shedding: a late request still gets a correct answer,
        // just from the (cheap-to-enter) interpreter.
        config.jit_enabled = false;
    }
    let jit_ran = config.jit_enabled;

    let db = Arc::clone(state.db.as_ref().expect("snapshot loaded"));
    let guard = state
        .guard
        .take()
        .unwrap_or_else(|| Guard::with_comparator((*db).clone(), ctx.compare, config.comparator));
    let mut engine = Engine::with_guard(config, guard);
    if let Some(shared) = &ctx.collector {
        engine.set_collector(Rc::new(RefCell::new(Forward(Arc::clone(shared)))));
    }
    let started = Instant::now();
    let result = engine.run_source_with(&request.source);
    let run_micros = started.elapsed().as_micros() as u64;
    let compile_failures = engine.compile_failures;
    // Keep the warm guard for the next request on this snapshot.
    state.guard = engine.into_guard();

    // Close the breaker loop: a JIT-enabled run reports its compilation
    // health; a degraded run says nothing about it, so its permit is
    // cancelled (freeing a wedged probe slot rather than faking a
    // verdict).
    if jit_ran {
        permit.report(compile_failures > 0);
    } else {
        permit.cancel();
    }
    for (from, to) in ctx.breaker.drain_transitions() {
        ctx.record(Event::BreakerTransition { from, to });
    }

    let wait_micros = wait.as_micros() as u64;
    ctx.stats.served.fetch_add(1, Ordering::Relaxed);
    ctx.stats
        .compile_failures
        .fetch_add(compile_failures, Ordering::Relaxed);
    if degraded {
        ctx.stats.degraded.fetch_add(1, Ordering::Relaxed);
    }
    if breaker_degraded {
        ctx.stats.breaker_degraded.fetch_add(1, Ordering::Relaxed);
    }
    ctx.record(Event::PoolServed {
        worker: ctx.index,
        degraded,
        wait_micros,
        run_micros,
    });

    match result {
        Ok(out) => {
            ctx.stats.worker_cycles[ctx.index].fetch_add(out.outcome.cycles, Ordering::Relaxed);
            let mut matched_cves: Vec<String> = out
                .stats
                .iter()
                .flat_map(|s| s.matched.iter().map(|(cve, _)| cve.clone()))
                .collect();
            matched_cves.sort();
            matched_cves.dedup();
            responder.send(Ok(PoolResponse {
                worker: ctx.index,
                db_epoch: state.epoch,
                db_generation: db.generation(),
                min_epoch,
                degraded,
                printed: out.outcome.printed,
                cycles: out.outcome.cycles,
                nr_jit: out.nr_jit,
                nr_disjit: out.nr_disjit,
                nr_nojit: out.nr_nojit,
                analysis_cycles: out.analysis_cycles,
                matched_cves,
                wait_micros,
                run_micros,
                breaker_degraded,
                compile_failures,
            }));
        }
        Err(e) => responder.send(Err(PoolError::Script(e.to_string()))),
    }
}

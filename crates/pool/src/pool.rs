//! The pool itself: configuration, request/response types, the submit
//! path, database hot-swap publishing, and lifecycle management.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

use jitbull::{
    CompareConfig, DbError, Dna, DnaDatabase, DnaMemo, ExtractorMode, LoadMode, LoadReport,
};
use jitbull_chaos::retry::{retry_with, RetryPolicy};
use jitbull_chaos::{BreakerConfig, BreakerStats, CircuitBreaker, FaultInjector, Quarantine};
use jitbull_jit::engine::EngineConfig;
use jitbull_telemetry::{Collector, Event};

use crate::error::PoolError;
use crate::queue::{BoundedQueue, PushError};
use crate::swap::EpochCell;
use crate::worker;

/// Shared dyn-collector handle: workers, publishers, and the submit path
/// all record into the same recorder.
pub type SharedCollector = Arc<Mutex<dyn Collector + Send>>;

/// Pool sizing and comparator configuration.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Worker threads, each owning an engine (minimum 1).
    pub workers: usize,
    /// Queue capacity; submissions beyond it are rejected with
    /// [`PoolError::Overload`].
    pub capacity: usize,
    /// Δ-comparator thresholds shared by every worker's guard.
    pub compare: CompareConfig,
    /// Which Δ-extractor implementation every worker's guard runs.
    pub extractor: ExtractorMode,
    /// DNA memo cache shared by every worker's extractor. The default is
    /// one fresh store per pool; handing the same handle to several pools
    /// shares extraction work across them. Extraction is independent of
    /// the VDC database, so the memo stays warm across hot swaps.
    pub memo: DnaMemo,
    /// Fault injector threaded through every worker (dequeue hook, the
    /// engine's pipeline, the guard's comparator) and the reload path.
    /// Disabled by default — zero overhead.
    pub faults: FaultInjector,
    /// JIT circuit-breaker tuning. The default window/threshold tolerate
    /// isolated compilation failures; a genuine failure burst trips
    /// engine-wide interpreter degradation until a probe succeeds.
    pub breaker: BreakerConfig,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            workers: 4,
            capacity: 64,
            compare: CompareConfig::default(),
            extractor: ExtractorMode::default(),
            memo: DnaMemo::default(),
            faults: FaultInjector::disabled(),
            breaker: BreakerConfig::default(),
        }
    }
}

/// One script-serving request.
#[derive(Debug, Clone)]
pub struct Request {
    /// The script source to execute.
    pub source: String,
    /// Per-request engine configuration (tier thresholds, vulnerability
    /// set, comparator mode, …).
    pub config: EngineConfig,
    /// Maximum time the request may wait in the queue before the worker
    /// degrades it to interpreter-only execution (`None` = never).
    pub deadline: Option<Duration>,
    /// Fault injection: the serving worker panics instead of executing
    /// (soak tests exercise the isolate-and-respawn path with this).
    pub chaos_panic: bool,
}

impl Request {
    /// A request with the default engine configuration and no deadline.
    #[must_use]
    pub fn new(source: impl Into<String>) -> Self {
        Request {
            source: source.into(),
            config: EngineConfig::default(),
            deadline: None,
            chaos_panic: false,
        }
    }

    /// Replaces the engine configuration.
    #[must_use]
    pub fn with_config(mut self, config: EngineConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the queue-wait deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Arms the fault injector.
    #[must_use]
    pub fn with_chaos_panic(mut self) -> Self {
        self.chaos_panic = true;
        self
    }
}

/// What a worker produced for one request.
#[derive(Debug, Clone)]
pub struct PoolResponse {
    /// Worker index that served the request.
    pub worker: usize,
    /// Epoch of the database snapshot the verdicts came from. Always
    /// `>= min_epoch` — the no-stale-verdict guarantee.
    pub db_epoch: u64,
    /// Generation of that snapshot (ties the response to exact content).
    pub db_generation: u64,
    /// Epoch current when the request was submitted.
    pub min_epoch: u64,
    /// Whether the deadline lapsed and the run fell back to
    /// interpreter-only execution.
    pub degraded: bool,
    /// Lines the script printed.
    pub printed: Vec<String>,
    /// Simulated cycles the run consumed.
    pub cycles: u64,
    /// Functions that reached the optimizing tier (`Nr_JIT`).
    pub nr_jit: usize,
    /// Functions with ≥1 pass disabled (`Nr_DisJIT`).
    pub nr_disjit: usize,
    /// Functions whose optimizing JIT was vetoed (`Nr_NoJIT`).
    pub nr_nojit: usize,
    /// Simulated cycles spent in JITBULL analysis.
    pub analysis_cycles: u64,
    /// Distinct CVEs any function's DNA matched, sorted.
    pub matched_cves: Vec<String>,
    /// Microseconds spent waiting in the queue.
    pub wait_micros: u64,
    /// Microseconds the worker spent executing.
    pub run_micros: u64,
    /// Whether the run was degraded to interpreter-only because the JIT
    /// circuit breaker was open (subset of `degraded`).
    pub breaker_degraded: bool,
    /// Compilations this run abandoned (panic, broken graph, or watchdog
    /// expiry) — each recovered by per-function fallback.
    pub compile_failures: u64,
}

/// One-shot response slot shared between a [`Ticket`] and the worker-side
/// [`Responder`].
#[derive(Debug)]
struct TicketShared {
    slot: Mutex<Option<Result<PoolResponse, PoolError>>>,
    ready: Condvar,
}

/// The caller's handle to a submitted request.
#[derive(Debug)]
pub struct Ticket {
    shared: Arc<TicketShared>,
}

impl Ticket {
    fn new() -> (Ticket, Responder) {
        let shared = Arc::new(TicketShared {
            slot: Mutex::new(None),
            ready: Condvar::new(),
        });
        (
            Ticket {
                shared: Arc::clone(&shared),
            },
            Responder {
                shared,
                sent: false,
            },
        )
    }

    /// Blocks until the request resolves. Every accepted request
    /// resolves: the worker responds, or — if it panics or the pool
    /// drops the job — the responder's drop delivers
    /// [`PoolError::Panicked`] / [`PoolError::ShuttingDown`].
    pub fn wait(self) -> Result<PoolResponse, PoolError> {
        let mut slot = self.shared.slot.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            slot = self
                .shared
                .ready
                .wait(slot)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Non-blocking check; returns the resolution if available.
    pub fn try_wait(&self) -> Option<Result<PoolResponse, PoolError>> {
        self.shared
            .slot
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
    }
}

/// Worker-side half of the one-shot. If dropped unanswered (worker panic
/// unwinding, queue dropped at shutdown), delivers [`PoolError::Panicked`]
/// so the ticket can never hang.
#[derive(Debug)]
pub(crate) struct Responder {
    shared: Arc<TicketShared>,
    sent: bool,
}

impl Responder {
    pub(crate) fn send(mut self, result: Result<PoolResponse, PoolError>) {
        self.deliver(result);
        self.sent = true;
    }

    fn deliver(&self, result: Result<PoolResponse, PoolError>) {
        let mut slot = self.shared.slot.lock().unwrap_or_else(|e| e.into_inner());
        *slot = Some(result);
        drop(slot);
        self.shared.ready.notify_one();
    }
}

impl Drop for Responder {
    fn drop(&mut self) {
        if !self.sent {
            self.deliver(Err(PoolError::Panicked));
        }
    }
}

/// A queued unit of work (request + submit-time stamps + response slot).
#[derive(Debug)]
pub(crate) struct Job {
    pub(crate) request: Request,
    pub(crate) enqueued_at: Instant,
    pub(crate) min_epoch: u64,
    pub(crate) responder: Responder,
}

/// Lock-free counters shared by the pool handle and its workers.
#[derive(Debug, Default)]
pub(crate) struct StatsInner {
    pub(crate) submitted: AtomicU64,
    pub(crate) rejected: AtomicU64,
    pub(crate) served: AtomicU64,
    pub(crate) degraded: AtomicU64,
    pub(crate) breaker_degraded: AtomicU64,
    pub(crate) compile_failures: AtomicU64,
    pub(crate) worker_restarts: AtomicU64,
    pub(crate) hotswaps: AtomicU64,
    /// Simulated busy cycles per worker (index = worker).
    pub(crate) worker_cycles: Vec<AtomicU64>,
}

/// A point-in-time copy of the pool's counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolStats {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests refused with [`PoolError::Overload`].
    pub rejected: u64,
    /// Requests a worker finished (success or script error).
    pub served: u64,
    /// Served requests that fell back to interpreter-only execution.
    pub degraded: u64,
    /// Degradations forced by the open JIT circuit breaker (subset of
    /// `degraded`).
    pub breaker_degraded: u64,
    /// Compilations abandoned across all workers (panic / broken graph /
    /// watchdog), each recovered by per-function fallback.
    pub compile_failures: u64,
    /// Worker panics recovered by respawn.
    pub worker_restarts: u64,
    /// Database snapshots published.
    pub hotswaps: u64,
    /// Simulated busy cycles per worker.
    pub worker_cycles: Vec<u64>,
}

impl PoolStats {
    /// Load-balance quality: total busy simulated cycles divided by the
    /// busiest worker's cycles. Equals the worker count under perfect
    /// balance and 1.0 when one worker did everything — the pool's
    /// scaling headline on any host, independent of physical core count.
    #[must_use]
    pub fn cycle_speedup(&self) -> f64 {
        let total: u64 = self.worker_cycles.iter().sum();
        let max = self.worker_cycles.iter().copied().max().unwrap_or(0);
        if max == 0 {
            return 0.0;
        }
        total as f64 / max as f64
    }
}

/// The concurrent script-serving runtime.
///
/// `workers` threads each own a JIT engine and a guard over the current
/// database snapshot; a bounded queue feeds them; [`Pool::install`] /
/// [`Pool::remove_cve`] / [`Pool::reload_from_text`] hot-swap the
/// database mid-traffic via [`EpochCell`].
pub struct Pool {
    queue: Arc<BoundedQueue<Job>>,
    cell: Arc<EpochCell>,
    /// The mutable master copy; publishers mutate it under this lock and
    /// publish an immutable snapshot. Holding the lock across the publish
    /// keeps epoch order identical to content order.
    master: Mutex<DnaDatabase>,
    stats: Arc<StatsInner>,
    collector: Option<SharedCollector>,
    /// Shared per-pool fault injector (clones in every worker).
    faults: FaultInjector,
    /// Engine-wide JIT circuit breaker shared by every worker.
    breaker: CircuitBreaker,
    /// Pool-wide function quarantine, surviving worker respawns.
    quarantine: Quarantine,
    /// Graceful-drain deadline: set once by
    /// [`Pool::shutdown_with_deadline`]; workers serve remaining queued
    /// requests interpreter-only after it lapses.
    drain_by: Arc<OnceLock<Instant>>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl Pool {
    /// Starts a pool serving from `db`.
    #[must_use]
    pub fn new(config: PoolConfig, db: DnaDatabase) -> Self {
        Pool::build(config, db, None)
    }

    /// Starts a pool that records telemetry into `collector`.
    #[must_use]
    pub fn with_collector(config: PoolConfig, db: DnaDatabase, collector: SharedCollector) -> Self {
        Pool::build(config, db, Some(collector))
    }

    fn build(config: PoolConfig, db: DnaDatabase, collector: Option<SharedCollector>) -> Self {
        let workers = config.workers.max(1);
        let queue = Arc::new(BoundedQueue::new(config.capacity));
        let cell = Arc::new(EpochCell::new(db.snapshot()));
        let stats = Arc::new(StatsInner {
            worker_cycles: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            ..Default::default()
        });
        let breaker = CircuitBreaker::new(config.breaker);
        let quarantine = Quarantine::default();
        let drain_by = Arc::new(OnceLock::new());
        let handles = (0..workers)
            .map(|ix| {
                let ctx = worker::WorkerCtx {
                    index: ix,
                    queue: Arc::clone(&queue),
                    cell: Arc::clone(&cell),
                    stats: Arc::clone(&stats),
                    collector: collector.clone(),
                    compare: config.compare,
                    extractor: config.extractor,
                    memo: config.memo.clone(),
                    faults: config.faults.clone(),
                    breaker: breaker.clone(),
                    quarantine: quarantine.clone(),
                    drain_by: Arc::clone(&drain_by),
                };
                std::thread::Builder::new()
                    .name(format!("jitbull-pool-worker-{ix}"))
                    .spawn(move || worker::supervise(ctx))
                    .expect("spawn pool worker")
            })
            .collect();
        Pool {
            queue,
            cell,
            master: Mutex::new(db),
            stats,
            collector,
            faults: config.faults,
            breaker,
            quarantine,
            drain_by,
            handles,
        }
    }

    fn record(&self, event: Event) {
        if let Some(c) = &self.collector {
            c.lock().unwrap_or_else(|e| e.into_inner()).record(event);
        }
    }

    /// Submits a request. Non-blocking: a full queue yields
    /// [`PoolError::Overload`] immediately (backpressure), a closed pool
    /// yields [`PoolError::ShuttingDown`].
    ///
    /// # Errors
    ///
    /// [`PoolError::Overload`] / [`PoolError::ShuttingDown`] as above.
    pub fn submit(&self, request: Request) -> Result<Ticket, PoolError> {
        let (ticket, responder) = Ticket::new();
        let job = Job {
            request,
            enqueued_at: Instant::now(),
            min_epoch: self.cell.epoch(),
            responder,
        };
        match self.queue.try_push(job) {
            Ok(depth) => {
                self.stats.submitted.fetch_add(1, Ordering::Relaxed);
                self.record(Event::PoolSubmitted {
                    depth: depth as u64,
                });
                Ok(ticket)
            }
            Err(PushError::Full(job, depth)) => {
                // Mark answered so the drop doesn't report a panic.
                job.responder.send(Err(PoolError::Overload { depth }));
                self.stats.rejected.fetch_add(1, Ordering::Relaxed);
                self.record(Event::PoolRejected {
                    depth: depth as u64,
                });
                Err(PoolError::Overload { depth })
            }
            Err(PushError::Closed(job)) => {
                job.responder.send(Err(PoolError::ShuttingDown));
                Err(PoolError::ShuttingDown)
            }
        }
    }

    fn publish_master(&self, master: &DnaDatabase) -> u64 {
        let snap = master.snapshot();
        let entries = snap.len() as u64;
        let generation = snap.generation();
        let epoch = self.cell.publish(snap);
        self.stats.hotswaps.fetch_add(1, Ordering::Relaxed);
        self.record(Event::PoolHotSwap {
            epoch,
            entries,
            generation,
        });
        epoch
    }

    /// Installs a VDC entry and publishes the new snapshot mid-traffic.
    /// Returns the publication epoch.
    pub fn install(&self, cve: impl Into<String>, function: impl Into<String>, dna: Dna) -> u64 {
        let mut master = self.master.lock().unwrap_or_else(|e| e.into_inner());
        master.install(cve, function, dna);
        self.publish_master(&master)
    }

    /// Removes a CVE's entries and publishes. Returns `(entries removed,
    /// publication epoch)`.
    pub fn remove_cve(&self, cve: &str) -> (usize, u64) {
        let mut master = self.master.lock().unwrap_or_else(|e| e.into_inner());
        let removed = master.remove_cve(cve);
        let epoch = self.publish_master(&master);
        (removed, epoch)
    }

    /// Replaces the whole database from maintainer-update text and
    /// publishes. Returns the publication epoch.
    ///
    /// # Errors
    ///
    /// Propagates [`DbError`]; the failure kind is also recorded as an
    /// [`Event::PoolReloadFailed`] and the previous database keeps
    /// serving untouched.
    pub fn reload_from_text(&self, text: &str, n_slots: usize) -> Result<u64, DbError> {
        match DnaDatabase::from_text(text, n_slots) {
            Ok(db) => {
                let mut master = self.master.lock().unwrap_or_else(|e| e.into_inner());
                *master = db;
                Ok(self.publish_master(&master))
            }
            Err(e) => {
                self.record(Event::PoolReloadFailed { kind: e.kind() });
                Err(e)
            }
        }
    }

    /// [`Pool::reload_from_text`] hardened for transient faults: parses
    /// through the pool's fault injector and retries with seeded
    /// exponential backoff. The swap is all-or-nothing — a partial or
    /// failed parse never publishes, so the previous snapshot keeps
    /// serving through every retry and past final failure. Each retry is
    /// recorded as an [`Event::ReloadRetry`]; a success that needed
    /// retries as an [`Event::ReloadRecovered`].
    ///
    /// Returns the publication epoch and the [`LoadReport`] (non-empty
    /// warnings only under [`LoadMode::Partial`]).
    ///
    /// # Errors
    ///
    /// The final attempt's [`DbError`] once the policy's attempts are
    /// exhausted (also recorded as [`Event::PoolReloadFailed`]).
    pub fn reload_with_retry(
        &self,
        text: &str,
        n_slots: usize,
        mode: LoadMode,
        policy: &RetryPolicy,
    ) -> Result<(u64, LoadReport), DbError> {
        let (result, retries) = retry_with(
            policy,
            |_| DnaDatabase::from_text_faulted(text, n_slots, mode, &self.faults),
            |attempt, backoff_micros, err: &DbError| {
                self.record(Event::ReloadRetry {
                    attempt,
                    backoff_micros,
                    kind: err.kind(),
                });
            },
        );
        match result {
            Ok((db, report)) => {
                let mut master = self.master.lock().unwrap_or_else(|e| e.into_inner());
                *master = db;
                let epoch = self.publish_master(&master);
                if retries.attempts > 1 {
                    self.record(Event::ReloadRecovered {
                        attempts: retries.attempts,
                    });
                }
                Ok((epoch, report))
            }
            Err(e) => {
                self.record(Event::PoolReloadFailed { kind: e.kind() });
                Err(e)
            }
        }
    }

    /// A snapshot of the shared JIT circuit breaker's health.
    #[must_use]
    pub fn breaker_stats(&self) -> BreakerStats {
        self.breaker.stats()
    }

    /// Functions pinned no-go by the pool-wide quarantine, sorted.
    #[must_use]
    pub fn quarantined(&self) -> Vec<String> {
        self.quarantine.quarantined()
    }

    /// The currently published `(epoch, snapshot)` pair.
    #[must_use]
    pub fn published(&self) -> (u64, Arc<DnaDatabase>) {
        self.cell.load()
    }

    /// The current publication epoch.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.cell.epoch()
    }

    /// Current queue depth (racy; for gauges).
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// A snapshot of the pool's counters.
    #[must_use]
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            submitted: self.stats.submitted.load(Ordering::Relaxed),
            rejected: self.stats.rejected.load(Ordering::Relaxed),
            served: self.stats.served.load(Ordering::Relaxed),
            degraded: self.stats.degraded.load(Ordering::Relaxed),
            breaker_degraded: self.stats.breaker_degraded.load(Ordering::Relaxed),
            compile_failures: self.stats.compile_failures.load(Ordering::Relaxed),
            worker_restarts: self.stats.worker_restarts.load(Ordering::Relaxed),
            hotswaps: self.stats.hotswaps.load(Ordering::Relaxed),
            worker_cycles: self
                .stats
                .worker_cycles
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
        }
    }

    /// Stops accepting requests, drains the queue, joins every worker,
    /// and returns the final counters.
    pub fn shutdown(mut self) -> PoolStats {
        self.queue.close();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
        self.stats()
    }

    /// Graceful drain: stops accepting, serves already-queued requests
    /// normally until `deadline` from now, and resolves whatever is
    /// still queued after that as interpreter-only (degraded) responses.
    /// No accepted ticket is ever dropped — late requests get a correct,
    /// cheaper answer instead of an error.
    pub fn shutdown_with_deadline(self, deadline: Duration) -> PoolStats {
        let _ = self.drain_by.set(Instant::now() + deadline);
        self.shutdown()
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.queue.close();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

//! Atomic-epoch publication of immutable database snapshots.
//!
//! The serving pool's hot-swap primitive: a publisher replaces the
//! current [`DnaDatabase`] snapshot and bumps a monotonically increasing
//! *epoch*; readers cheaply detect staleness by comparing epochs and only
//! take the lock to reload when the epoch actually moved.
//!
//! # The no-stale-verdict argument
//!
//! * The epoch is bumped *while holding the slot lock*, immediately after
//!   the new snapshot is stored — so any `load()` observes a consistent
//!   `(epoch, snapshot)` pair: the epoch it returns was published with
//!   exactly that snapshot.
//! * Epochs only increase. A request stamped with `min_epoch = epoch()`
//!   at submit time is served by a worker whose cached pair satisfies
//!   `cached_epoch == epoch()` *at or after dequeue*, and dequeue
//!   happens-after submit — therefore the serving epoch is `>= min_epoch`
//!   and the response can never reflect a database older than the one
//!   visible when the request entered the pool.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use jitbull::DnaDatabase;

/// A hot-swappable `(epoch, Arc<DnaDatabase>)` cell.
#[derive(Debug)]
pub struct EpochCell {
    /// Bumped under `slot`'s lock on every publish; read lock-free.
    epoch: AtomicU64,
    slot: Mutex<Arc<DnaDatabase>>,
}

impl EpochCell {
    /// Creates a cell publishing `db` at epoch 1.
    #[must_use]
    pub fn new(db: Arc<DnaDatabase>) -> Self {
        EpochCell {
            epoch: AtomicU64::new(1),
            slot: Mutex::new(db),
        }
    }

    /// The current epoch (lock-free fast path for staleness checks).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Publishes a new snapshot, returning the epoch it was published
    /// under. The store and the epoch bump happen under the slot lock, so
    /// concurrent [`EpochCell::load`] calls always see matching pairs.
    pub fn publish(&self, db: Arc<DnaDatabase>) -> u64 {
        let mut slot = self.slot.lock().unwrap_or_else(|e| e.into_inner());
        *slot = db;
        self.epoch.fetch_add(1, Ordering::Release) + 1
    }

    /// The current `(epoch, snapshot)` pair, read atomically.
    #[must_use]
    pub fn load(&self) -> (u64, Arc<DnaDatabase>) {
        let slot = self.slot.lock().unwrap_or_else(|e| e.into_inner());
        (self.epoch.load(Ordering::Acquire), Arc::clone(&slot))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jitbull::dna::chain;
    use jitbull::Dna;

    fn db_with(cve: &str) -> DnaDatabase {
        let mut dna = Dna::with_slots(4);
        dna.deltas[1].removed.insert(chain(&["a", "b"]));
        let mut db = DnaDatabase::new();
        db.install(cve, "f", dna);
        db
    }

    #[test]
    fn publish_bumps_epoch_and_swaps_content() {
        let cell = EpochCell::new(db_with("CVE-1").snapshot());
        assert_eq!(cell.epoch(), 1);
        let (e, snap) = cell.load();
        assert_eq!(e, 1);
        assert_eq!(snap.cves(), vec!["CVE-1"]);
        let e2 = cell.publish(db_with("CVE-2").snapshot());
        assert_eq!(e2, 2);
        let (e, snap) = cell.load();
        assert_eq!(e, 2);
        assert_eq!(snap.cves(), vec!["CVE-2"]);
    }

    #[test]
    fn loads_never_see_torn_pairs_under_concurrent_publishes() {
        let cell = Arc::new(EpochCell::new(db_with("CVE-0").snapshot()));
        // Publisher installs CVE-<epoch> so content encodes the epoch.
        let publisher = {
            let cell = Arc::clone(&cell);
            std::thread::spawn(move || {
                for i in 1..=200u64 {
                    let e = cell.publish(db_with(&format!("CVE-{}", i + 1)).snapshot());
                    assert_eq!(e, i + 1);
                }
            })
        };
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let cell = Arc::clone(&cell);
                std::thread::spawn(move || {
                    let mut last = 0;
                    for _ in 0..500 {
                        let (e, snap) = cell.load();
                        assert!(e >= last, "epoch went backwards");
                        last = e;
                        // The pair is consistent: content matches epoch.
                        assert_eq!(snap.cves(), vec![format!("CVE-{e}")]);
                    }
                })
            })
            .collect();
        publisher.join().unwrap();
        for r in readers {
            r.join().unwrap();
        }
    }
}

//! Typed pool failures. Every submitted request resolves to exactly one
//! of: a [`crate::PoolResponse`], or one of these errors — there is no
//! silent-drop path.

use std::fmt;

/// Why a request could not be served.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PoolError {
    /// The queue was at capacity; the request was refused at submit time
    /// (backpressure — the caller should shed or retry later).
    Overload {
        /// Queue depth at the moment of rejection.
        depth: usize,
    },
    /// The pool is shutting down and no longer accepts requests.
    ShuttingDown,
    /// The worker serving this request panicked. The request is lost but
    /// the worker was respawned and the pool keeps serving.
    Panicked,
    /// The script itself failed to parse/compile/run.
    Script(String),
}

impl PoolError {
    /// Stable lower-case label for metrics and logs.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            PoolError::Overload { .. } => "overload",
            PoolError::ShuttingDown => "shutting_down",
            PoolError::Panicked => "panicked",
            PoolError::Script(_) => "script",
        }
    }
}

impl fmt::Display for PoolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PoolError::Overload { depth } => {
                write!(f, "pool overloaded: queue at capacity ({depth} waiting)")
            }
            PoolError::ShuttingDown => write!(f, "pool is shutting down"),
            PoolError::Panicked => write!(f, "worker panicked while serving the request"),
            PoolError::Script(e) => write!(f, "script error: {e}"),
        }
    }
}

impl std::error::Error for PoolError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_and_display_are_stable() {
        assert_eq!(PoolError::Overload { depth: 7 }.kind(), "overload");
        assert_eq!(PoolError::ShuttingDown.kind(), "shutting_down");
        assert_eq!(PoolError::Panicked.kind(), "panicked");
        assert_eq!(PoolError::Script("x".into()).kind(), "script");
        assert!(PoolError::Overload { depth: 7 }.to_string().contains('7'));
    }
}

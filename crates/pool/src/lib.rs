//! # jitbull-pool — concurrent script-serving with hot-swappable VDC DNA
//!
//! The paper evaluates JITBULL inside one browser process; this crate
//! lifts it to the server-side shape the same mechanism would take in
//! production: N worker threads, each owning a JIT [`Engine`], serve
//! scripts from a bounded queue while the operator installs and removes
//! VDC DNA **mid-traffic** as vulnerability windows open and close.
//!
//! Hand-rolled on `std::thread` / `Mutex` / `Condvar` / atomics — no
//! external dependencies, consistent with the repo's offline-build
//! stance.
//!
//! Three guarantees, each independently tested:
//!
//! 1. **No lost responses.** Every accepted request resolves its
//!    [`Ticket`] — normally with a [`PoolResponse`], or with a typed
//!    [`PoolError`] on overload, script failure, worker panic, or
//!    shutdown. The worker-side responder reports on drop, so even an
//!    unwinding panic answers.
//! 2. **No stale verdicts.** Database changes publish immutable
//!    snapshots through an atomic-epoch cell ([`swap::EpochCell`]);
//!    every response carries the epoch it was served under, provably
//!    `>=` the epoch current at submit time.
//! 3. **Graceful degradation.** Requests that outwait their deadline
//!    fall back to interpreter-only execution (the paper's no-JIT
//!    scenario generalized to load shedding), over-capacity submissions
//!    are refused fast, and a panicking worker is isolated and respawned
//!    without dropping the pool.
//!
//! # Examples
//!
//! ```
//! use jitbull_pool::{Pool, PoolConfig, Request};
//! use jitbull::DnaDatabase;
//!
//! let pool = Pool::new(PoolConfig { workers: 2, ..Default::default() },
//!                      DnaDatabase::new());
//! let ticket = pool.submit(Request::new("print(1 + 2);")).unwrap();
//! let response = ticket.wait().unwrap();
//! assert_eq!(response.printed, vec!["3"]);
//! pool.shutdown();
//! ```
//!
//! [`Engine`]: jitbull_jit::engine::Engine

pub mod error;
pub mod pool;
pub mod queue;
pub mod swap;
mod worker;

pub use error::PoolError;
pub use pool::{Pool, PoolConfig, PoolResponse, PoolStats, Request, SharedCollector, Ticket};
pub use swap::EpochCell;

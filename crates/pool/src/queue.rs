//! A bounded MPMC queue (mutex + condvar, no dependencies).
//!
//! Semantics chosen for a serving frontier rather than a work pipeline:
//!
//! * **Fail-fast backpressure** — `try_push` on a full queue returns the
//!   item immediately instead of blocking the producer; the pool turns
//!   that into a typed [`crate::PoolError::Overload`].
//! * **Drain-on-close** — after `close()`, producers are refused but
//!   consumers keep popping until the queue is empty, then observe
//!   `None`. Nothing accepted is ever dropped.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a `try_push` did not enqueue.
#[derive(Debug)]
pub enum PushError<T> {
    /// The queue held `capacity` items; the rejected item is returned.
    Full(T, usize),
    /// The queue was closed; the rejected item is returned.
    Closed(T),
}

#[derive(Debug)]
struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// The queue. Shared via `Arc`; all methods take `&self`.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    capacity: usize,
    not_empty: Condvar,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items (minimum 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
            }),
            capacity: capacity.max(1),
            not_empty: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Enqueues without blocking. On success returns the queue depth
    /// *including* the new item.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] after
    /// [`BoundedQueue::close`]; both hand the item back.
    pub fn try_push(&self, item: T) -> Result<usize, PushError<T>> {
        let mut st = self.lock();
        if st.closed {
            return Err(PushError::Closed(item));
        }
        if st.items.len() >= self.capacity {
            return Err(PushError::Full(item, st.items.len()));
        }
        st.items.push_back(item);
        let depth = st.items.len();
        drop(st);
        self.not_empty.notify_one();
        Ok(depth)
    }

    /// Blocks until an item is available or the queue is closed *and*
    /// drained; `None` means "no more work, ever".
    pub fn pop(&self) -> Option<T> {
        let mut st = self.lock();
        loop {
            if let Some(item) = st.items.pop_front() {
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = self.not_empty.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Refuses further pushes and wakes every blocked consumer. Items
    /// already queued remain poppable.
    pub fn close(&self) {
        self.lock().closed = true;
        self.not_empty.notify_all();
    }

    /// Current depth (racy by nature; for gauges).
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// Whether the queue is currently empty (racy; for gauges).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_fifo() {
        let q = BoundedQueue::new(4);
        assert_eq!(q.try_push(1).unwrap(), 1);
        assert_eq!(q.try_push(2).unwrap(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn full_queue_rejects_without_blocking() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        match q.try_push(3) {
            Err(PushError::Full(item, depth)) => {
                assert_eq!(item, 3);
                assert_eq!(depth, 2);
            }
            other => panic!("expected Full, got {other:?}"),
        }
    }

    #[test]
    fn close_drains_then_terminates() {
        let q = Arc::new(BoundedQueue::new(8));
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        assert!(matches!(q.try_push(3), Err(PushError::Closed(3))));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q = Arc::new(BoundedQueue::<u32>::new(1));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        std::thread::sleep(std::time::Duration::from_millis(10));
        q.close();
        assert_eq!(consumer.join().unwrap(), None);
    }

    #[test]
    fn concurrent_producers_and_consumers_lose_nothing() {
        let q = Arc::new(BoundedQueue::new(1024));
        let producers: Vec<_> = (0..4u32)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..100u32 {
                        while q.try_push(p * 1000 + i).is_err() {
                            std::thread::yield_now();
                        }
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = q.pop() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut all: Vec<u32> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        let mut expected: Vec<u32> = (0..4u32)
            .flat_map(|p| (0..100u32).map(move |i| p * 1000 + i))
            .collect();
        expected.sort_unstable();
        assert_eq!(all, expected);
    }
}

//! The function quarantine list.
//!
//! A function whose Ion compilation fails catastrophically (panic,
//! watchdog expiry) earns a *strike*; at the configured threshold it is
//! quarantined — pinned to no-go so the engine never retries a
//! compilation that keeps blowing up. The list is **monotonic**: strikes
//! and quarantine membership only grow, which is the invariant the chaos
//! property sweep asserts.

use std::collections::{BTreeSet, HashMap};
use std::sync::{Arc, Mutex, MutexGuard};

#[derive(Debug, Default)]
struct Inner {
    strikes: HashMap<String, u32>,
    quarantined: BTreeSet<String>,
}

/// Shared strike list. Cloning shares state — a pool hands one clone to
/// every worker so quarantine decisions survive across requests.
#[derive(Debug, Clone)]
pub struct Quarantine {
    inner: Arc<Mutex<Inner>>,
    threshold: u32,
}

impl Default for Quarantine {
    /// Two strikes — "panics twice" — per the paper-repro failure model.
    fn default() -> Self {
        Quarantine::with_threshold(2)
    }
}

impl Quarantine {
    /// A quarantine list pinning functions after `threshold` strikes
    /// (minimum 1).
    #[must_use]
    pub fn with_threshold(threshold: u32) -> Self {
        Quarantine {
            inner: Arc::new(Mutex::new(Inner::default())),
            threshold: threshold.max(1),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Records one compilation catastrophe for `function`. Returns the
    /// strike count, and quarantines the function when it reaches the
    /// threshold.
    pub fn strike(&self, function: &str) -> u32 {
        let mut inner = self.lock();
        let strikes = inner.strikes.entry(function.to_string()).or_insert(0);
        *strikes += 1;
        let strikes = *strikes;
        if strikes >= self.threshold {
            inner.quarantined.insert(function.to_string());
        }
        strikes
    }

    /// Whether `function` is pinned no-go.
    #[must_use]
    pub fn is_quarantined(&self, function: &str) -> bool {
        self.lock().quarantined.contains(function)
    }

    /// Strikes recorded against `function` so far.
    #[must_use]
    pub fn strikes(&self, function: &str) -> u32 {
        self.lock().strikes.get(function).copied().unwrap_or(0)
    }

    /// Quarantined function names, sorted.
    #[must_use]
    pub fn quarantined(&self) -> Vec<String> {
        self.lock().quarantined.iter().cloned().collect()
    }

    /// Number of quarantined functions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock().quarantined.len()
    }

    /// Whether nothing is quarantined.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured strike threshold.
    #[must_use]
    pub fn threshold(&self) -> u32 {
        self.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_strikes_quarantine() {
        let q = Quarantine::default();
        assert_eq!(q.strike("hot"), 1);
        assert!(!q.is_quarantined("hot"));
        assert_eq!(q.strike("hot"), 2);
        assert!(q.is_quarantined("hot"));
        assert!(!q.is_quarantined("cold"));
    }

    #[test]
    fn membership_is_monotonic() {
        let q = Quarantine::with_threshold(1);
        q.strike("a");
        q.strike("b");
        let before = q.quarantined();
        q.strike("a"); // extra strikes never remove anything
        let after = q.quarantined();
        assert!(before.iter().all(|f| after.contains(f)));
        assert_eq!(after, vec!["a".to_string(), "b".to_string()]);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn clones_share_the_list() {
        let q = Quarantine::default();
        let worker_view = q.clone();
        q.strike("f");
        worker_view.strike("f");
        assert!(q.is_quarantined("f"));
        assert_eq!(worker_view.strikes("f"), 2);
    }
}

//! Retry with exponential backoff and seeded jitter.
//!
//! Built for DB hot-swap: a transient reload fault must never leave the
//! old snapshot unserved or publish a partial database, so the pool
//! retries the load a bounded number of times, backing off between
//! attempts. Jitter comes from `jitbull-prng` seeded by the policy, so a
//! given policy produces the same backoff schedule every run — the chaos
//! ladder's determinism check covers the schedule too.

use std::time::Duration;

use jitbull_prng::Rng;

/// Backoff tuning. The schedule for attempt `k` (1-based) is
/// `base_micros * factor^(k-1)`, multiplied by a jitter factor uniform in
/// `[1 - jitter, 1 + jitter]` drawn from the seeded stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts (first try included; minimum 1).
    pub max_attempts: u32,
    /// Backoff before the first retry, in microseconds.
    pub base_micros: u64,
    /// Exponential growth factor per retry.
    pub factor: u32,
    /// Jitter amplitude in `[0, 1]` (0 = none).
    pub jitter: f64,
    /// Seed for the jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_micros: 100,
            factor: 2,
            jitter: 0.25,
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// The full deterministic backoff schedule (one entry per retry,
    /// i.e. `max_attempts - 1` entries), in microseconds.
    #[must_use]
    pub fn schedule(&self) -> Vec<u64> {
        let mut rng = Rng::seed_from_u64(self.seed ^ 0xC0FF_EE00_D15E_A5E5);
        let jitter = self.jitter.clamp(0.0, 1.0);
        (1..self.max_attempts.max(1))
            .map(|k| {
                let base = self
                    .base_micros
                    .saturating_mul(u64::from(self.factor.max(1)).saturating_pow(k - 1));
                let scale = 1.0 + jitter * (2.0 * rng.next_f64() - 1.0);
                (base as f64 * scale).round().max(0.0) as u64
            })
            .collect()
    }
}

/// What a retried operation went through.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RetryReport {
    /// Attempts made (1 = first try succeeded).
    pub attempts: u32,
    /// Microseconds backed off before each retry actually made.
    pub backoffs_micros: Vec<u64>,
    /// Whether the final attempt succeeded.
    pub recovered: bool,
}

/// Runs `op` up to `policy.max_attempts` times, sleeping the scheduled
/// backoff between attempts and reporting each failure through
/// `on_retry(attempt, backoff_micros, &error)` before backing off.
///
/// Returns the last result plus the [`RetryReport`]. Success on the first
/// attempt performs zero sleeps and zero callbacks.
///
/// # Errors
///
/// Returns the final attempt's error when every attempt failed.
pub fn retry_with<T, E>(
    policy: &RetryPolicy,
    mut op: impl FnMut(u32) -> Result<T, E>,
    mut on_retry: impl FnMut(u32, u64, &E),
) -> (Result<T, E>, RetryReport) {
    let schedule = policy.schedule();
    let max = policy.max_attempts.max(1);
    let mut report = RetryReport::default();
    let mut attempt = 1;
    loop {
        report.attempts = attempt;
        match op(attempt) {
            Ok(value) => {
                report.recovered = true;
                return (Ok(value), report);
            }
            Err(err) => {
                if attempt >= max {
                    return (Err(err), report);
                }
                let backoff = schedule.get((attempt - 1) as usize).copied().unwrap_or(0);
                on_retry(attempt, backoff, &err);
                report.backoffs_micros.push(backoff);
                std::thread::sleep(Duration::from_micros(backoff));
                attempt += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_and_exponential() {
        let policy = RetryPolicy {
            max_attempts: 5,
            base_micros: 100,
            factor: 2,
            jitter: 0.25,
            seed: 9,
        };
        let a = policy.schedule();
        let b = policy.schedule();
        assert_eq!(a, b);
        assert_eq!(a.len(), 4);
        for (k, micros) in a.iter().enumerate() {
            let base = 100u64 << k;
            let lo = (base as f64 * 0.75) as u64;
            let hi = (base as f64 * 1.25).ceil() as u64;
            assert!(
                (lo..=hi).contains(micros),
                "attempt {k}: {micros} outside [{lo}, {hi}]"
            );
        }
        let other = RetryPolicy { seed: 10, ..policy };
        assert_ne!(a, other.schedule());
    }

    #[test]
    fn zero_jitter_gives_exact_exponential() {
        let policy = RetryPolicy {
            max_attempts: 4,
            base_micros: 10,
            factor: 3,
            jitter: 0.0,
            seed: 0,
        };
        assert_eq!(policy.schedule(), vec![10, 30, 90]);
    }

    #[test]
    fn first_try_success_does_not_back_off() {
        let policy = RetryPolicy::default();
        let (out, report) = retry_with(&policy, |_| Ok::<_, ()>(42), |_, _, _| panic!("no retry"));
        assert_eq!(out.unwrap(), 42);
        assert_eq!(report.attempts, 1);
        assert!(report.recovered);
        assert!(report.backoffs_micros.is_empty());
    }

    #[test]
    fn transient_failures_recover_with_backoffs_recorded() {
        let policy = RetryPolicy {
            base_micros: 1,
            jitter: 0.0,
            ..RetryPolicy::default()
        };
        let mut retries = Vec::new();
        let (out, report) = retry_with(
            &policy,
            |attempt| {
                if attempt < 3 {
                    Err("transient")
                } else {
                    Ok("loaded")
                }
            },
            |attempt, backoff, err| retries.push((attempt, backoff, *err)),
        );
        assert_eq!(out.unwrap(), "loaded");
        assert_eq!(report.attempts, 3);
        assert!(report.recovered);
        assert_eq!(report.backoffs_micros, vec![1, 2]);
        assert_eq!(retries, vec![(1, 1, "transient"), (2, 2, "transient")]);
    }

    #[test]
    fn exhausted_retries_return_the_last_error() {
        let policy = RetryPolicy {
            max_attempts: 3,
            base_micros: 1,
            jitter: 0.0,
            ..RetryPolicy::default()
        };
        let (out, report) = retry_with(&policy, Err::<(), u32>, |_, _, _| {});
        assert_eq!(out.unwrap_err(), 3);
        assert_eq!(report.attempts, 3);
        assert!(!report.recovered);
        assert_eq!(report.backoffs_micros.len(), 2);
    }
}

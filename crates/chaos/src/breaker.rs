//! The JIT circuit breaker.
//!
//! Tracks compilation outcomes in a sliding window. Too many failures
//! trips the breaker: subsequent requests are admitted in interpreter-only
//! (degraded) mode for a cooldown, after which a single half-open *probe*
//! request runs with the JIT re-enabled. A clean probe re-arms Ion for
//! everyone; a failed probe re-opens the breaker for another cooldown.
//!
//! Counting is request-based rather than wall-clock-based so fault-
//! injection runs replay identically — the tentpole's determinism
//! acceptance criterion rules out `Instant`-driven state here.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex, MutexGuard};

/// Tuning for [`CircuitBreaker`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Sliding window length (reported outcomes remembered).
    pub window: usize,
    /// Failures within the window that trip the breaker.
    pub threshold: u32,
    /// Degraded admissions to serve after a trip before probing.
    pub cooldown: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        // Wide enough that the pool test-suite's scripted panics (1–2 per
        // round) never trip it by accident; narrow enough that a sick
        // engine degrades within a dozen requests.
        BreakerConfig {
            window: 16,
            threshold: 4,
            cooldown: 8,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Closed,
    Open { remaining: u32 },
    HalfOpen { probing: bool },
}

impl Mode {
    fn name(self) -> &'static str {
        match self {
            Mode::Closed => "closed",
            Mode::Open { .. } => "open",
            Mode::HalfOpen { .. } => "half_open",
        }
    }
}

#[derive(Debug)]
struct State {
    config: BreakerConfig,
    recent: VecDeque<bool>, // true = failure
    mode: Mode,
    trips: u64,
    probes: u64,
    rearms: u64,
    degraded: u64,
    transitions: Vec<Transition>,
}

impl State {
    fn transition(&mut self, to: Mode) {
        self.transitions.push((self.mode.name(), to.name()));
        self.mode = to;
    }
}

/// A snapshot of breaker health for stats/telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerStats {
    /// Current state name (`"closed"` / `"open"` / `"half_open"`).
    pub state: &'static str,
    /// Times the breaker tripped open (including failed probes).
    pub trips: u64,
    /// Half-open probes dispatched.
    pub probes: u64,
    /// Times a clean probe re-armed the JIT.
    pub rearms: u64,
    /// Admissions served degraded because the breaker was open.
    pub degraded: u64,
}

/// `(from, to)` state names for each transition, in order.
pub type Transition = (&'static str, &'static str);

/// The breaker. Cloning shares state (one breaker per pool).
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    inner: Arc<Mutex<State>>,
}

impl Default for CircuitBreaker {
    fn default() -> Self {
        CircuitBreaker::new(BreakerConfig::default())
    }
}

impl CircuitBreaker {
    /// A closed breaker with the given tuning.
    #[must_use]
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            inner: Arc::new(Mutex::new(State {
                config,
                recent: VecDeque::new(),
                mode: Mode::Closed,
                trips: 0,
                probes: 0,
                rearms: 0,
                degraded: 0,
                transitions: Vec::new(),
            })),
        }
    }

    fn lock(&self) -> MutexGuard<'_, State> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Admits one request, returning a [`Permit`] that says whether the
    /// JIT may run and that MUST be resolved (report or drop). A permit
    /// dropped without a report — e.g. a worker panic unwinding through
    /// the serve loop — counts as a failure, so a crashing JIT cannot
    /// starve the window or wedge a half-open probe.
    #[must_use]
    pub fn admit(&self) -> Permit {
        let mut st = self.lock();
        let mut probe = false;
        let jit = match st.mode {
            Mode::Closed => true,
            Mode::Open { remaining } => {
                if remaining <= 1 {
                    st.transition(Mode::HalfOpen { probing: false });
                } else {
                    st.mode = Mode::Open {
                        remaining: remaining - 1,
                    };
                }
                st.degraded += 1;
                false
            }
            Mode::HalfOpen { probing: false } => {
                st.mode = Mode::HalfOpen { probing: true };
                st.probes += 1;
                probe = true;
                true
            }
            Mode::HalfOpen { probing: true } => {
                st.degraded += 1;
                false
            }
        };
        drop(st);
        Permit {
            breaker: self.clone(),
            jit,
            probe,
            resolved: !jit,
        }
    }

    fn report(&self, failed: bool, probe: bool) {
        let mut st = self.lock();
        if probe {
            // Only the probe permit resolves a half-open probe; anything
            // else (the probe straggling in after a manual state change)
            // is ignored.
            if st.mode == (Mode::HalfOpen { probing: true }) {
                if failed {
                    st.trips += 1;
                    let cooldown = st.config.cooldown.max(1);
                    st.transition(Mode::Open {
                        remaining: cooldown,
                    });
                } else {
                    st.rearms += 1;
                    st.transition(Mode::Closed);
                }
            }
            return;
        }
        // Non-probe reports only count while closed; a report straggling
        // in after another worker tripped the breaker no longer matters.
        if st.mode == Mode::Closed {
            st.recent.push_back(failed);
            let window = st.config.window;
            while st.recent.len() > window {
                st.recent.pop_front();
            }
            let failures = st.recent.iter().filter(|f| **f).count() as u32;
            if failed && failures >= st.config.threshold {
                st.recent.clear();
                st.trips += 1;
                let cooldown = st.config.cooldown.max(1);
                st.transition(Mode::Open {
                    remaining: cooldown,
                });
            }
        }
    }

    /// Current health snapshot.
    #[must_use]
    pub fn stats(&self) -> BreakerStats {
        let st = self.lock();
        BreakerStats {
            state: st.mode.name(),
            trips: st.trips,
            probes: st.probes,
            rearms: st.rearms,
            degraded: st.degraded,
        }
    }

    /// Drains the transition log accumulated since the last call
    /// (`(from, to)` state-name pairs, in order).
    #[must_use]
    pub fn drain_transitions(&self) -> Vec<Transition> {
        std::mem::take(&mut self.lock().transitions)
    }
}

/// One admission. Resolve with [`Permit::report`] (or [`Permit::cancel`]
/// when the JIT never actually ran); dropping a JIT-enabled permit
/// unresolved reports a failure.
#[derive(Debug)]
pub struct Permit {
    breaker: CircuitBreaker,
    jit: bool,
    probe: bool,
    resolved: bool,
}

impl Permit {
    /// Whether this request may enable the JIT.
    #[must_use]
    pub fn jit_allowed(&self) -> bool {
        self.jit
    }

    /// Reports the compilation outcome (`failed = true` means at least
    /// one compilation failure occurred while serving). No-op for
    /// degraded permits.
    pub fn report(mut self, failed: bool) {
        if !self.resolved {
            self.resolved = true;
            self.breaker.report(failed, self.probe);
        }
    }

    /// Resolves the permit without reporting an outcome — use when the
    /// request ended up not exercising the JIT (e.g. deadline
    /// degradation) so it neither helps nor harms the window. A
    /// cancelled probe frees the probe slot for the next admission
    /// instead of leaving half-open wedged.
    pub fn cancel(mut self) {
        self.resolved = true;
        if self.probe {
            let mut st = self.breaker.lock();
            if st.mode == (Mode::HalfOpen { probing: true }) {
                st.mode = Mode::HalfOpen { probing: false };
            }
        }
    }
}

impl Drop for Permit {
    fn drop(&mut self) {
        if !self.resolved {
            // Unwound mid-serve: count it against the window.
            self.breaker.report(true, self.probe);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tight() -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            window: 8,
            threshold: 2,
            cooldown: 3,
        })
    }

    #[test]
    fn trips_after_threshold_failures() {
        let b = tight();
        b.admit().report(true);
        assert_eq!(b.stats().state, "closed");
        b.admit().report(true);
        assert_eq!(b.stats().state, "open");
        assert_eq!(b.stats().trips, 1);
    }

    #[test]
    fn successes_age_failures_out_of_the_window() {
        let b = tight();
        b.admit().report(true);
        for _ in 0..8 {
            b.admit().report(false);
        }
        b.admit().report(true); // old failure aged out: only 1 in window
        assert_eq!(b.stats().state, "closed");
    }

    #[test]
    fn cooldown_degrades_then_probe_rearms() {
        let b = tight();
        b.admit().report(true);
        b.admit().report(true);
        // Cooldown: 3 degraded admissions.
        for _ in 0..3 {
            let p = b.admit();
            assert!(!p.jit_allowed());
            p.report(true); // degraded reports are no-ops
        }
        // Probe runs with JIT and succeeds.
        let probe = b.admit();
        assert!(probe.jit_allowed());
        assert_eq!(b.stats().state, "half_open");
        probe.report(false);
        let stats = b.stats();
        assert_eq!(stats.state, "closed");
        assert_eq!((stats.probes, stats.rearms, stats.degraded), (1, 1, 3));
    }

    #[test]
    fn failed_probe_reopens() {
        let b = tight();
        b.admit().report(true);
        b.admit().report(true);
        for _ in 0..3 {
            b.admit().report(false);
        }
        let probe = b.admit();
        assert!(probe.jit_allowed());
        probe.report(true);
        assert_eq!(b.stats().state, "open");
        assert_eq!(b.stats().trips, 2);
    }

    #[test]
    fn concurrent_probe_requests_degrade_while_probe_outstanding() {
        let b = tight();
        b.admit().report(true);
        b.admit().report(true);
        for _ in 0..3 {
            let _ = b.admit();
        }
        let probe = b.admit();
        assert!(probe.jit_allowed());
        let bystander = b.admit();
        assert!(!bystander.jit_allowed());
        probe.report(false);
        assert_eq!(b.stats().state, "closed");
    }

    #[test]
    fn stale_closed_report_cannot_resolve_someone_elses_probe() {
        let b = tight();
        let straggler = b.admit(); // admitted while closed
        b.admit().report(true);
        b.admit().report(true); // trips
        for _ in 0..3 {
            let _ = b.admit();
        }
        let probe = b.admit();
        assert!(probe.jit_allowed());
        straggler.report(true); // must NOT be mistaken for the probe result
        assert_eq!(b.stats().state, "half_open");
        probe.report(false);
        assert_eq!(b.stats().state, "closed");
    }

    #[test]
    fn dropped_permit_counts_as_failure() {
        let b = tight();
        b.admit().report(true);
        drop(b.admit()); // simulated worker panic
        assert_eq!(b.stats().state, "open");
    }

    #[test]
    fn cancelled_permit_is_neutral_and_frees_the_probe_slot() {
        let b = tight();
        b.admit().cancel();
        b.admit().report(true);
        b.admit().report(true); // threshold 2: cancel did not count
        assert_eq!(b.stats().state, "open");
        for _ in 0..3 {
            let _ = b.admit();
        }
        let probe = b.admit();
        assert!(probe.jit_allowed());
        probe.cancel(); // probe never ran the JIT: slot must reopen
        let retry = b.admit();
        assert!(retry.jit_allowed(), "probe slot stayed wedged");
        retry.report(false);
        assert_eq!(b.stats().state, "closed");
    }

    #[test]
    fn transition_log_records_the_state_machine() {
        let b = tight();
        b.admit().report(true);
        b.admit().report(true);
        for _ in 0..3 {
            let _ = b.admit();
        }
        b.admit().report(false);
        let log = b.drain_transitions();
        assert_eq!(
            log,
            vec![
                ("closed", "open"),
                ("open", "half_open"),
                ("half_open", "closed"),
            ]
        );
        assert!(b.drain_transitions().is_empty());
    }
}

//! The seeded fault injector.
//!
//! Determinism contract: whether occurrence `n` of a [`FaultSite`] faults
//! is a pure function of `(plan seed, site, n)`. Each site keeps its own
//! atomic occurrence counter, so concurrent workers may *experience* the
//! faults in different orders, but the set of faulted occurrences — and
//! therefore every tally — is identical run to run.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use jitbull_prng::Rng;

/// Where in the engine a fault can be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// One pipeline slot about to run during an Ion compilation.
    PassRun,
    /// One VDC database parse/load attempt.
    DbLoad,
    /// One indexed comparator query.
    ComparatorQuery,
    /// One pool worker about to serve a dequeued request.
    WorkerServe,
    /// One incremental extractor query (DNA memo consultation).
    ExtractQuery,
}

impl FaultSite {
    /// Every site, in index order.
    pub const ALL: [FaultSite; 5] = [
        FaultSite::PassRun,
        FaultSite::DbLoad,
        FaultSite::ComparatorQuery,
        FaultSite::WorkerServe,
        FaultSite::ExtractQuery,
    ];

    fn index(self) -> usize {
        match self {
            FaultSite::PassRun => 0,
            FaultSite::DbLoad => 1,
            FaultSite::ComparatorQuery => 2,
            FaultSite::WorkerServe => 3,
            FaultSite::ExtractQuery => 4,
        }
    }

    /// Stable lower-case name (metric keys, demo output).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::PassRun => "pass_run",
            FaultSite::DbLoad => "db_load",
            FaultSite::ComparatorQuery => "comparator_query",
            FaultSite::WorkerServe => "worker_serve",
            FaultSite::ExtractQuery => "extract_query",
        }
    }
}

/// What goes wrong when a fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The pipeline slot panics mid-compilation.
    PassPanic,
    /// The pipeline slot burns `extra_work` additional work units
    /// (a stalled/pathological pass; the watchdog's prey).
    PassStall {
        /// Extra work units charged to the compilation.
        extra_work: u64,
    },
    /// The slot leaves the IR graph incoherent (caught by the pipeline's
    /// coherency check, abandoning the compilation).
    IrCorrupt,
    /// The DB load fails with a synthetic I/O error.
    DbIo,
    /// The DB load fails with a synthetic parse error.
    DbParse,
    /// The DB text is truncated mid-entry before parsing (a torn read;
    /// strict parsing must refuse the partial file).
    DbTruncate,
    /// The comparator's verdict cache is corrupted in place, generation
    /// stamp included (a torn write).
    CachePoison,
    /// The request is treated as having blown its deadline.
    DeadlineBlowout,
    /// The worker thread panics before serving the request.
    WorkerPanic,
}

impl FaultKind {
    /// Stable lower-case name (tallies, metric keys, demo output).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::PassPanic => "pass_panic",
            FaultKind::PassStall { .. } => "pass_stall",
            FaultKind::IrCorrupt => "ir_corrupt",
            FaultKind::DbIo => "db_io",
            FaultKind::DbParse => "db_parse",
            FaultKind::DbTruncate => "db_truncate",
            FaultKind::CachePoison => "cache_poison",
            FaultKind::DeadlineBlowout => "deadline_blowout",
            FaultKind::WorkerPanic => "worker_panic",
        }
    }

    fn tally_index(self) -> usize {
        match self {
            FaultKind::PassPanic => 0,
            FaultKind::PassStall { .. } => 1,
            FaultKind::IrCorrupt => 2,
            FaultKind::DbIo => 3,
            FaultKind::DbParse => 4,
            FaultKind::DbTruncate => 5,
            FaultKind::CachePoison => 6,
            FaultKind::DeadlineBlowout => 7,
            FaultKind::WorkerPanic => 8,
        }
    }

    const N_KINDS: usize = 9;

    const NAMES: [&'static str; FaultKind::N_KINDS] = [
        "pass_panic",
        "pass_stall",
        "ir_corrupt",
        "db_io",
        "db_parse",
        "db_truncate",
        "cache_poison",
        "deadline_blowout",
        "worker_panic",
    ];
}

/// When a rule fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Trigger {
    /// Fire on occurrences `skip .. skip + count` of the site.
    Nth {
        /// Occurrences to let pass unharmed first.
        skip: u64,
        /// Consecutive occurrences to fault after that.
        count: u64,
    },
    /// Fire on each occurrence independently with this probability,
    /// decided by hashing `(seed, site, occurrence)` — not by a shared
    /// stream, so concurrency cannot perturb the outcome set.
    Rate(f64),
}

/// One fault rule: at `site`, under `trigger`, inject `kind`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRule {
    /// Where the fault applies.
    pub site: FaultSite,
    /// What goes wrong.
    pub kind: FaultKind,
    /// When it fires.
    pub trigger: Trigger,
}

/// A seeded set of fault rules. First matching rule wins per occurrence.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Seed for rate-based triggers (and backoff jitter derived from it).
    pub seed: u64,
    /// The rules, consulted in insertion order.
    pub rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// An empty plan with the given seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            rules: Vec::new(),
        }
    }

    /// Adds a scripted rule: fault occurrences `skip .. skip + count`.
    #[must_use]
    pub fn script(mut self, site: FaultSite, kind: FaultKind, skip: u64, count: u64) -> Self {
        self.rules.push(FaultRule {
            site,
            kind,
            trigger: Trigger::Nth { skip, count },
        });
        self
    }

    /// Adds a rate-based rule: each occurrence faults with probability
    /// `rate`, decided deterministically per occurrence.
    #[must_use]
    pub fn random(mut self, site: FaultSite, kind: FaultKind, rate: f64) -> Self {
        self.rules.push(FaultRule {
            site,
            kind,
            trigger: Trigger::Rate(rate),
        });
        self
    }
}

#[derive(Debug)]
struct Inner {
    plan: FaultPlan,
    occurrences: [AtomicU64; FaultSite::ALL.len()],
    injected: [AtomicU64; FaultKind::N_KINDS],
}

/// Per-kind injected-fault counts, ordered by kind name.
///
/// Comparable across runs: two ladders with the same seed must produce
/// equal tallies (the `repro -- chaos` determinism check relies on this).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ChaosTally {
    /// `(kind name, times injected)`, only kinds with nonzero counts.
    pub counts: Vec<(&'static str, u64)>,
}

impl ChaosTally {
    /// Total faults injected across all kinds.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().map(|(_, n)| n).sum()
    }

    /// Count for one kind name (0 if absent).
    #[must_use]
    pub fn get(&self, kind: &str) -> u64 {
        self.counts
            .iter()
            .find(|(k, _)| *k == kind)
            .map_or(0, |(_, n)| *n)
    }

    /// Merges another tally into this one (per-kind sums).
    pub fn merge(&mut self, other: &ChaosTally) {
        for (kind, n) in &other.counts {
            match self.counts.iter_mut().find(|(k, _)| k == kind) {
                Some((_, mine)) => *mine += n,
                None => self.counts.push((kind, *n)),
            }
        }
        self.counts.sort_by_key(|(k, _)| *k);
    }
}

/// The injector handed to every subsystem. Cloning shares state — all
/// clones draw from the same per-site occurrence counters, which is what
/// threads a single deterministic plan through pool workers.
#[derive(Debug, Clone, Default)]
pub struct FaultInjector {
    inner: Option<Arc<Inner>>,
}

impl FaultInjector {
    /// The no-op injector: [`FaultInjector::fire`] is a single pointer
    /// test. This is the default everywhere.
    #[must_use]
    pub fn disabled() -> Self {
        FaultInjector { inner: None }
    }

    /// An armed injector executing `plan`.
    #[must_use]
    pub fn from_plan(plan: FaultPlan) -> Self {
        FaultInjector {
            inner: Some(Arc::new(Inner {
                plan,
                occurrences: Default::default(),
                injected: Default::default(),
            })),
        }
    }

    /// Whether a plan is armed (false for the zero-overhead path).
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Consumes one occurrence of `site` and returns the fault to inject,
    /// if any. Call sites must be prepared to act on every [`FaultKind`]
    /// their site can be scripted with and ignore the rest.
    #[inline]
    pub fn fire(&self, site: FaultSite) -> Option<FaultKind> {
        let inner = self.inner.as_ref()?;
        let n = inner.occurrences[site.index()].fetch_add(1, Ordering::Relaxed);
        for rule in &inner.plan.rules {
            if rule.site != site {
                continue;
            }
            let hit = match rule.trigger {
                Trigger::Nth { skip, count } => n >= skip && n - skip < count,
                Trigger::Rate(rate) => {
                    // One throwaway generator per (seed, site, occurrence):
                    // the decision must not depend on draw order elsewhere.
                    let salt = (site.index() as u64 + 1).wrapping_mul(0xA24B_AED4_963E_E407);
                    let mut rng = Rng::seed_from_u64(
                        inner.plan.seed ^ salt ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    rng.next_f64() < rate
                }
            };
            if hit {
                inner.injected[rule.kind.tally_index()].fetch_add(1, Ordering::Relaxed);
                return Some(rule.kind);
            }
        }
        None
    }

    /// Occurrences consumed so far at `site` (faulted or not).
    #[must_use]
    pub fn occurrences(&self, site: FaultSite) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.occurrences[site.index()].load(Ordering::Relaxed))
    }

    /// Per-kind injected counts so far.
    #[must_use]
    pub fn tally(&self) -> ChaosTally {
        let mut counts = Vec::new();
        if let Some(inner) = &self.inner {
            for (ix, name) in FaultKind::NAMES.iter().enumerate() {
                let n = inner.injected[ix].load(Ordering::Relaxed);
                if n > 0 {
                    counts.push((*name, n));
                }
            }
        }
        ChaosTally { counts }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_injector_never_fires_and_counts_nothing() {
        let inj = FaultInjector::disabled();
        for site in FaultSite::ALL {
            for _ in 0..100 {
                assert_eq!(inj.fire(site), None);
            }
            assert_eq!(inj.occurrences(site), 0);
        }
        assert_eq!(inj.tally().total(), 0);
    }

    #[test]
    fn scripted_rule_fires_exactly_the_window() {
        let inj = FaultInjector::from_plan(FaultPlan::new(1).script(
            FaultSite::DbLoad,
            FaultKind::DbIo,
            2,
            3,
        ));
        let fired: Vec<bool> = (0..8)
            .map(|_| inj.fire(FaultSite::DbLoad).is_some())
            .collect();
        assert_eq!(fired, [false, false, true, true, true, false, false, false]);
        assert_eq!(inj.tally().get("db_io"), 3);
        // Other sites are untouched.
        assert_eq!(inj.fire(FaultSite::PassRun), None);
    }

    #[test]
    fn rate_rule_is_deterministic_per_occurrence() {
        let draw = |seed| {
            let inj = FaultInjector::from_plan(FaultPlan::new(seed).random(
                FaultSite::PassRun,
                FaultKind::IrCorrupt,
                0.3,
            ));
            (0..200)
                .map(|_| inj.fire(FaultSite::PassRun).is_some())
                .collect::<Vec<_>>()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
        let hits = draw(7).iter().filter(|h| **h).count();
        assert!((30..90).contains(&hits), "rate 0.3 over 200 gave {hits}");
    }

    #[test]
    fn clones_share_occurrence_counters() {
        let a = FaultInjector::from_plan(FaultPlan::new(3).script(
            FaultSite::WorkerServe,
            FaultKind::WorkerPanic,
            1,
            1,
        ));
        let b = a.clone();
        assert_eq!(a.fire(FaultSite::WorkerServe), None);
        assert_eq!(b.fire(FaultSite::WorkerServe), Some(FaultKind::WorkerPanic));
        assert_eq!(a.tally(), b.tally());
        assert_eq!(a.occurrences(FaultSite::WorkerServe), 2);
    }

    #[test]
    fn first_matching_rule_wins() {
        let inj = FaultInjector::from_plan(
            FaultPlan::new(0)
                .script(FaultSite::PassRun, FaultKind::PassPanic, 0, 1)
                .script(FaultSite::PassRun, FaultKind::IrCorrupt, 0, 5),
        );
        assert_eq!(inj.fire(FaultSite::PassRun), Some(FaultKind::PassPanic));
        assert_eq!(inj.fire(FaultSite::PassRun), Some(FaultKind::IrCorrupt));
    }

    #[test]
    fn tallies_merge_and_compare() {
        let mut a = ChaosTally {
            counts: vec![("db_io", 2)],
        };
        let b = ChaosTally {
            counts: vec![("db_io", 1), ("pass_panic", 4)],
        };
        a.merge(&b);
        assert_eq!(a.get("db_io"), 3);
        assert_eq!(a.get("pass_panic"), 4);
        assert_eq!(a.total(), 7);
    }
}

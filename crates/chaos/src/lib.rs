//! # jitbull-chaos — deterministic fault injection + self-healing
//!
//! JITBULL's premise is graceful degradation: when a function's JIT DNA
//! looks dangerous, fall back per-function instead of killing the JIT
//! globally. This crate extends that philosophy from *detection* to
//! *failure*: it provokes engine failures deterministically and supplies
//! the recovery primitives the rest of the stack uses to heal from them.
//!
//! Two halves:
//!
//! * **Provocation** — [`FaultInjector`]: a seeded, zero-overhead-when-
//!   disabled fault source threaded through the JIT pipeline, the
//!   comparator, the VDC loader, and the pool workers. Fault plans are
//!   either scripted ("the 3rd DB load fails with an I/O error") or
//!   rate-based ("0.5% of pass executions stall"), and both are a pure
//!   function of `(seed, site, occurrence index)` — thread interleaving
//!   cannot change which occurrences fault.
//! * **Recovery** — [`CircuitBreaker`] (sliding-window trip, half-open
//!   probe, cooldown), [`Quarantine`] (strike list pinning repeatedly
//!   panicking functions to no-go), and [`retry`] (exponential backoff
//!   with seeded jitter for DB reloads).
//!
//! The crate deliberately depends only on `jitbull-prng`: the engine,
//! comparator, and pool all depend on *it*, so it must sit at the bottom
//! of the workspace graph.
//!
//! # Examples
//!
//! ```
//! use jitbull_chaos::{FaultInjector, FaultKind, FaultPlan, FaultSite};
//!
//! // Script the second and third pipeline-pass executions to panic.
//! let plan = FaultPlan::new(42).script(FaultSite::PassRun, FaultKind::PassPanic, 1, 2);
//! let inj = FaultInjector::from_plan(plan);
//! assert_eq!(inj.fire(FaultSite::PassRun), None);
//! assert_eq!(inj.fire(FaultSite::PassRun), Some(FaultKind::PassPanic));
//! assert_eq!(inj.fire(FaultSite::PassRun), Some(FaultKind::PassPanic));
//! assert_eq!(inj.fire(FaultSite::PassRun), None);
//!
//! // Disabled injectors cost one pointer test per site.
//! let off = FaultInjector::disabled();
//! assert_eq!(off.fire(FaultSite::DbLoad), None);
//! ```

mod breaker;
mod injector;
mod quarantine;
pub mod retry;

pub use breaker::{BreakerConfig, BreakerStats, CircuitBreaker, Permit, Transition};
pub use injector::{
    ChaosTally, FaultInjector, FaultKind, FaultPlan, FaultRule, FaultSite, Trigger,
};
pub use quarantine::Quarantine;
pub use retry::{RetryPolicy, RetryReport};

//! Randomized property tests on the Δ extractor and Δ comparator, driven
//! by the repo's seeded PRNG (deterministic: every run explores the same
//! cases, failures reproduce by seed).

use std::collections::BTreeSet;
use std::sync::Arc;

use jitbull::compare::{compare_chains, CompareConfig};
use jitbull::extract::extract_delta;
use jitbull::index::{compare_ids, fingerprint, prefilter_may_match};
use jitbull::{Chain, ChainInterner};
use jitbull_mir::{MirSnapshot, SnapInstr};
use jitbull_prng::Rng;

const LABELS: &[&str] = &[
    "add",
    "mul",
    "constant:number",
    "parameter0",
    "parameter1",
    "loadelement",
    "boundscheck",
    "initializedlength",
    "unbox:array",
    "return",
    "phi",
];

const CASES: u64 = 128;

/// A random DAG snapshot: instruction `k` may only reference lower ids,
/// so the graph is acyclic by construction (like freshly built MIR).
fn snapshot(rng: &mut Rng) -> MirSnapshot {
    let n = rng.gen_range(1..24usize);
    let instrs = (0..n)
        .map(|id| SnapInstr {
            id: id as u32,
            label: Arc::from(*rng.pick(LABELS)),
            operands: if id == 0 {
                vec![]
            } else {
                (0..rng.gen_range(0..3usize))
                    .map(|_| rng.gen_range(0..id as u32))
                    .collect()
            },
        })
        .collect();
    MirSnapshot { instrs }
}

fn chain_set(rng: &mut Rng) -> BTreeSet<Chain> {
    let n = rng.gen_range(0..12usize);
    (0..n)
        .map(|_| {
            (0..rng.gen_range(2..5usize))
                .map(|_| Arc::from(*rng.pick(LABELS)))
                .collect::<Chain>()
        })
        .collect()
}

/// A pass that changes nothing has empty DNA.
#[test]
fn identical_snapshots_give_empty_delta() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(seed);
        let s = snapshot(&mut rng);
        let delta = extract_delta(&s, &s);
        assert!(delta.is_empty(), "seed {seed}: {delta:?}");
    }
}

/// Renumbering (an id permutation) is invisible to the extractor.
#[test]
fn id_permutation_gives_empty_delta() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(seed);
        let s = snapshot(&mut rng);
        let offset = rng.gen_range(1..1000u32);
        let renumbered = MirSnapshot {
            instrs: s
                .instrs
                .iter()
                .map(|i| SnapInstr {
                    id: i.id + offset,
                    label: i.label.clone(),
                    operands: i.operands.iter().map(|o| o + offset).collect(),
                })
                .collect(),
        };
        let delta = extract_delta(&s, &renumbered);
        assert!(delta.is_empty(), "seed {seed}: {delta:?}");
    }
}

/// Deltas are anti-symmetric: swapping before/after swaps removed and
/// added.
#[test]
fn delta_is_antisymmetric() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(seed);
        let a = snapshot(&mut rng);
        let b = snapshot(&mut rng);
        let ab = extract_delta(&a, &b);
        let ba = extract_delta(&b, &a);
        assert_eq!(ab.removed, ba.added, "seed {seed}");
        assert_eq!(ab.added, ba.removed, "seed {seed}");
    }
}

/// Self-comparison matches exactly when the set clears `Thr`.
#[test]
fn self_comparison_thresholds() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(seed);
        let set = chain_set(&mut rng);
        let thr = rng.gen_range(1..6usize);
        let config = CompareConfig { thr, ratio: 0.5 };
        let matches = compare_chains(&set, &set, &config);
        assert_eq!(matches, set.len() >= thr, "seed {seed}");
    }
}

/// Disjoint chain sets never match.
#[test]
fn disjoint_sets_never_match() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(seed);
        let set = chain_set(&mut rng);
        let config = CompareConfig::default();
        let relabeled: BTreeSet<Chain> = set
            .iter()
            .map(|c| {
                let mut c = c.clone();
                c.push(Arc::from("sentinel-tail"));
                c
            })
            .collect();
        assert!(!compare_chains(&set, &relabeled, &config), "seed {seed}");
    }
}

/// Interner round-trip: every interned chain resolves back to itself,
/// ids are stable under later interning, and equal chains share one id.
#[test]
fn interner_round_trip_stability_and_dedup() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(seed);
        let chains: Vec<Chain> = chain_set(&mut rng).into_iter().collect();
        let mut interner = ChainInterner::new();
        let ids: Vec<u32> = chains.iter().map(|c| interner.intern(c)).collect();
        // Round-trip.
        for (c, &id) in chains.iter().zip(&ids) {
            assert_eq!(interner.resolve(id), Some(c), "seed {seed}");
        }
        // Dedup: distinct chains got distinct ids, equal chains equal ids.
        for (i, a) in chains.iter().enumerate() {
            for (j, b) in chains.iter().enumerate() {
                assert_eq!(a == b, ids[i] == ids[j], "seed {seed}: {i} vs {j}");
            }
        }
        // Stability: interning more chains never moves an existing id.
        let more = chain_set(&mut rng);
        for c in &more {
            interner.intern(c);
        }
        for (c, &id) in chains.iter().zip(&ids) {
            assert_eq!(interner.intern(&c.clone()), id, "seed {seed}");
            assert_eq!(interner.resolve(id), Some(c), "seed {seed}");
        }
    }
}

/// The fingerprint prefilter has no false negatives: whenever two chain
/// sets intersect, their fingerprints share at least one bit.
#[test]
fn fingerprint_never_rejects_intersecting_sets() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(seed);
        let a = chain_set(&mut rng);
        let b = chain_set(&mut rng);
        // Force an intersection half the time by injecting a shared chain.
        let (a, b) = if seed % 2 == 0 && !a.is_empty() {
            let shared = a.iter().next().cloned().unwrap();
            let mut b2 = b.clone();
            b2.insert(shared);
            (a, b2)
        } else {
            (a, b)
        };
        let mut interner = ChainInterner::new();
        let ids_a: Vec<u32> = {
            let mut v: Vec<u32> = a.iter().map(|c| interner.intern(c)).collect();
            v.sort_unstable();
            v
        };
        let ids_b: Vec<u32> = {
            let mut v: Vec<u32> = b.iter().map(|c| interner.intern(c)).collect();
            v.sort_unstable();
            v
        };
        if a.intersection(&b).count() > 0 {
            assert!(
                prefilter_may_match(fingerprint(&ids_a), fingerprint(&ids_b)),
                "seed {seed}: false negative"
            );
        }
    }
}

/// On interned ids, `compare_ids` decides exactly like `compare_chains`
/// does on the chains the ids stand for, across random thresholds.
#[test]
fn compare_ids_agrees_with_compare_chains() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(seed);
        let a = chain_set(&mut rng);
        let b = chain_set(&mut rng);
        let config = CompareConfig {
            thr: rng.gen_range(0..6usize),
            ratio: rng.gen_range(0..101u32) as f64 / 100.0,
        };
        let mut interner = ChainInterner::new();
        let mut ids_a: Vec<u32> = a.iter().map(|c| interner.intern(c)).collect();
        ids_a.sort_unstable();
        let mut ids_b: Vec<u32> = b.iter().map(|c| interner.intern(c)).collect();
        ids_b.sort_unstable();
        assert_eq!(
            compare_ids(&ids_a, &ids_b, &config),
            compare_chains(&a, &b, &config),
            "seed {seed}"
        );
    }
}

/// Adding the same chains to both sides never breaks an existing match
/// (comparator monotonicity under shared growth).
#[test]
fn shared_growth_preserves_matches() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(seed);
        let a = chain_set(&mut rng);
        let b = chain_set(&mut rng);
        let extra = chain_set(&mut rng);
        let config = CompareConfig::default();
        if compare_chains(&a, &b, &config) {
            let a2: BTreeSet<Chain> = a.union(&extra).cloned().collect();
            let b2: BTreeSet<Chain> = b.union(&extra).cloned().collect();
            assert!(compare_chains(&a2, &b2, &config), "seed {seed}");
        }
    }
}

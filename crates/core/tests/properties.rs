//! Property tests on the Δ extractor and Δ comparator.

use std::collections::BTreeSet;
use std::rc::Rc;

use proptest::prelude::*;

use jitbull::compare::{compare_chains, CompareConfig};
use jitbull::extract::extract_delta;
use jitbull::Chain;
use jitbull_mir::{MirSnapshot, SnapInstr};

const LABELS: &[&str] = &[
    "add",
    "mul",
    "constant:number",
    "parameter0",
    "parameter1",
    "loadelement",
    "boundscheck",
    "initializedlength",
    "unbox:array",
    "return",
    "phi",
];

/// A random DAG snapshot: instruction `k` may only reference lower ids,
/// so the graph is acyclic by construction (like freshly built MIR).
fn snapshot() -> impl Strategy<Value = MirSnapshot> {
    proptest::collection::vec(
        (
            0..LABELS.len(),
            proptest::collection::vec(any::<u16>(), 0..3),
        ),
        1..24,
    )
    .prop_map(|nodes| {
        let n = nodes.len() as u32;
        let instrs = nodes
            .into_iter()
            .enumerate()
            .map(|(id, (label, refs))| SnapInstr {
                id: id as u32,
                label: Rc::from(LABELS[label]),
                operands: if id == 0 {
                    vec![]
                } else {
                    refs.into_iter().map(|r| r as u32 % id as u32).collect()
                },
            })
            .collect();
        let _ = n;
        MirSnapshot { instrs }
    })
}

fn chain_set() -> impl Strategy<Value = BTreeSet<Chain>> {
    proptest::collection::btree_set(
        proptest::collection::vec((0..LABELS.len()).prop_map(|i| Rc::from(LABELS[i])), 2..5),
        0..12,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// A pass that changes nothing has empty DNA.
    #[test]
    fn identical_snapshots_give_empty_delta(s in snapshot()) {
        let delta = extract_delta(&s, &s);
        prop_assert!(delta.is_empty(), "{delta:?}");
    }

    /// Renumbering (an id permutation) is invisible to the extractor.
    #[test]
    fn id_permutation_gives_empty_delta(s in snapshot(), offset in 1u32..1000) {
        let renumbered = MirSnapshot {
            instrs: s
                .instrs
                .iter()
                .map(|i| SnapInstr {
                    id: i.id + offset,
                    label: i.label.clone(),
                    operands: i.operands.iter().map(|o| o + offset).collect(),
                })
                .collect(),
        };
        let delta = extract_delta(&s, &renumbered);
        prop_assert!(delta.is_empty(), "{delta:?}");
    }

    /// Deltas are anti-symmetric: swapping before/after swaps removed and
    /// added.
    #[test]
    fn delta_is_antisymmetric(a in snapshot(), b in snapshot()) {
        let ab = extract_delta(&a, &b);
        let ba = extract_delta(&b, &a);
        prop_assert_eq!(ab.removed, ba.added);
        prop_assert_eq!(ab.added, ba.removed);
    }

    /// Self-comparison matches exactly when the set clears `Thr`.
    #[test]
    fn self_comparison_thresholds(set in chain_set(), thr in 1usize..6) {
        let config = CompareConfig { thr, ratio: 0.5 };
        let matches = compare_chains(&set, &set, &config);
        prop_assert_eq!(matches, set.len() >= thr);
    }

    /// Disjoint chain sets never match.
    #[test]
    fn disjoint_sets_never_match(set in chain_set()) {
        let config = CompareConfig::default();
        let relabeled: BTreeSet<Chain> = set
            .iter()
            .map(|c| {
                let mut c = c.clone();
                c.push(Rc::from("sentinel-tail"));
                c
            })
            .collect();
        prop_assert!(!compare_chains(&set, &relabeled, &config));
    }

    /// Adding the same chains to both sides never breaks an existing
    /// match (comparator monotonicity under shared growth).
    #[test]
    fn shared_growth_preserves_matches(a in chain_set(), b in chain_set(), extra in chain_set()) {
        let config = CompareConfig::default();
        if compare_chains(&a, &b, &config) {
            let a2: BTreeSet<Chain> = a.union(&extra).cloned().collect();
            let b2: BTreeSet<Chain> = b.union(&extra).cloned().collect();
            prop_assert!(compare_chains(&a2, &b2, &config));
        }
    }
}

//! Randomized property tests on the Δ extractor and Δ comparator, driven
//! by the repo's seeded PRNG (deterministic: every run explores the same
//! cases, failures reproduce by seed).

use std::collections::BTreeSet;
use std::rc::Rc;

use jitbull::compare::{compare_chains, CompareConfig};
use jitbull::extract::extract_delta;
use jitbull::Chain;
use jitbull_mir::{MirSnapshot, SnapInstr};
use jitbull_prng::Rng;

const LABELS: &[&str] = &[
    "add",
    "mul",
    "constant:number",
    "parameter0",
    "parameter1",
    "loadelement",
    "boundscheck",
    "initializedlength",
    "unbox:array",
    "return",
    "phi",
];

const CASES: u64 = 128;

/// A random DAG snapshot: instruction `k` may only reference lower ids,
/// so the graph is acyclic by construction (like freshly built MIR).
fn snapshot(rng: &mut Rng) -> MirSnapshot {
    let n = rng.gen_range(1..24usize);
    let instrs = (0..n)
        .map(|id| SnapInstr {
            id: id as u32,
            label: Rc::from(*rng.pick(LABELS)),
            operands: if id == 0 {
                vec![]
            } else {
                (0..rng.gen_range(0..3usize))
                    .map(|_| rng.gen_range(0..id as u32))
                    .collect()
            },
        })
        .collect();
    MirSnapshot { instrs }
}

fn chain_set(rng: &mut Rng) -> BTreeSet<Chain> {
    let n = rng.gen_range(0..12usize);
    (0..n)
        .map(|_| {
            (0..rng.gen_range(2..5usize))
                .map(|_| Rc::from(*rng.pick(LABELS)))
                .collect::<Chain>()
        })
        .collect()
}

/// A pass that changes nothing has empty DNA.
#[test]
fn identical_snapshots_give_empty_delta() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(seed);
        let s = snapshot(&mut rng);
        let delta = extract_delta(&s, &s);
        assert!(delta.is_empty(), "seed {seed}: {delta:?}");
    }
}

/// Renumbering (an id permutation) is invisible to the extractor.
#[test]
fn id_permutation_gives_empty_delta() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(seed);
        let s = snapshot(&mut rng);
        let offset = rng.gen_range(1..1000u32);
        let renumbered = MirSnapshot {
            instrs: s
                .instrs
                .iter()
                .map(|i| SnapInstr {
                    id: i.id + offset,
                    label: i.label.clone(),
                    operands: i.operands.iter().map(|o| o + offset).collect(),
                })
                .collect(),
        };
        let delta = extract_delta(&s, &renumbered);
        assert!(delta.is_empty(), "seed {seed}: {delta:?}");
    }
}

/// Deltas are anti-symmetric: swapping before/after swaps removed and
/// added.
#[test]
fn delta_is_antisymmetric() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(seed);
        let a = snapshot(&mut rng);
        let b = snapshot(&mut rng);
        let ab = extract_delta(&a, &b);
        let ba = extract_delta(&b, &a);
        assert_eq!(ab.removed, ba.added, "seed {seed}");
        assert_eq!(ab.added, ba.removed, "seed {seed}");
    }
}

/// Self-comparison matches exactly when the set clears `Thr`.
#[test]
fn self_comparison_thresholds() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(seed);
        let set = chain_set(&mut rng);
        let thr = rng.gen_range(1..6usize);
        let config = CompareConfig { thr, ratio: 0.5 };
        let matches = compare_chains(&set, &set, &config);
        assert_eq!(matches, set.len() >= thr, "seed {seed}");
    }
}

/// Disjoint chain sets never match.
#[test]
fn disjoint_sets_never_match() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(seed);
        let set = chain_set(&mut rng);
        let config = CompareConfig::default();
        let relabeled: BTreeSet<Chain> = set
            .iter()
            .map(|c| {
                let mut c = c.clone();
                c.push(Rc::from("sentinel-tail"));
                c
            })
            .collect();
        assert!(!compare_chains(&set, &relabeled, &config), "seed {seed}");
    }
}

/// Adding the same chains to both sides never breaks an existing match
/// (comparator monotonicity under shared growth).
#[test]
fn shared_growth_preserves_matches() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(seed);
        let a = chain_set(&mut rng);
        let b = chain_set(&mut rng);
        let extra = chain_set(&mut rng);
        let config = CompareConfig::default();
        if compare_chains(&a, &b, &config) {
            let a2: BTreeSet<Chain> = a.union(&extra).cloned().collect();
            let b2: BTreeSet<Chain> = b.union(&extra).cloned().collect();
            assert!(compare_chains(&a2, &b2, &config), "seed {seed}");
        }
    }
}

//! The engine-facing facade: extract DNA from a compilation trace, compare
//! against the database, and account the analysis cost.

use std::cell::RefCell;

use jitbull_chaos::{FaultInjector, FaultKind, FaultSite};
use jitbull_mir::PassTrace;
use jitbull_telemetry::{Collector, Event};

use crate::compare::CompareConfig;
use crate::db::DnaDatabase;
use crate::dna::Dna;
use crate::extract::{extract_dna, trace_work};
use crate::index::{ComparatorIndex, IndexConfig, IndexStats, QueryReceipt};

/// Which Δ-comparator implementation a [`Guard`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ComparatorMode {
    /// The interned / prefiltered / cached comparator pipeline
    /// ([`crate::index`]) — the production path.
    #[default]
    Indexed,
    /// The naive normative loop over [`crate::compare::reference`] —
    /// the oracle the differential harness compares against, and the
    /// baseline the fig6 bench reports speedups over.
    Reference,
}

/// Cycle cost charged per instruction touched during Δ extraction.
pub const EXTRACT_COST_PER_INSTR: u64 = 120;
/// Cycle cost charged per (function-delta × DB-entry-delta) sub-chain
/// comparison unit.
pub const COMPARE_COST_PER_CHAIN: u64 = 60;

/// The result of analysing one compilation.
#[derive(Debug, Clone, PartialEq)]
pub struct Analysis {
    /// Pipeline slots found similar to at least one VDC entry, sorted and
    /// deduplicated (the paper's `DisPass`).
    pub dangerous: Vec<usize>,
    /// Which VDC entries matched: `(cve, function, slots)`.
    pub matches: Vec<(String, String, Vec<usize>)>,
    /// Simulated cycles the analysis consumed (extraction + comparison).
    pub cost_cycles: u64,
    /// The extracted DNA (kept so callers can install it into a DB —
    /// that's exactly how VDC DNA is produced in step 1).
    pub dna: Dna,
}

/// JITBULL's runtime guard: database + comparator configuration.
///
/// # Examples
///
/// ```
/// use jitbull::{Guard, DnaDatabase, CompareConfig};
/// let guard = Guard::new(DnaDatabase::new(), CompareConfig::default());
/// assert!(!guard.enabled());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Guard {
    db: DnaDatabase,
    config: CompareConfig,
    mode: ComparatorMode,
    /// Lazily (re)built comparator index over `db`; interior-mutable so
    /// `analyze(&self)` can populate caches. Cloning a guard clones the
    /// index too — valid, because the clone starts from identical
    /// database content at the same generation.
    index: RefCell<ComparatorIndex>,
    /// Chaos hook: consulted once per indexed query
    /// ([`jitbull_chaos::FaultSite::ComparatorQuery`]). Disabled by
    /// default — a single pointer test on the hot path.
    faults: FaultInjector,
}

impl Guard {
    /// Creates a guard over a database (indexed comparator).
    pub fn new(db: DnaDatabase, config: CompareConfig) -> Self {
        Guard::with_comparator(db, config, ComparatorMode::Indexed)
    }

    /// Creates a guard with an explicit comparator implementation.
    pub fn with_comparator(db: DnaDatabase, config: CompareConfig, mode: ComparatorMode) -> Self {
        Guard {
            db,
            config,
            mode,
            index: RefCell::new(ComparatorIndex::default()),
            faults: FaultInjector::disabled(),
        }
    }

    /// Arms (or disarms) the fault injector consulted per indexed query.
    /// A [`jitbull_chaos::FaultKind::CachePoison`] fault fired here
    /// corrupts the comparator's memoised state *before* the query runs,
    /// exercising the poison-purge recovery path.
    pub fn set_fault_injector(&mut self, faults: FaultInjector) {
        self.faults = faults;
    }

    /// The comparator implementation in use.
    pub fn comparator_mode(&self) -> ComparatorMode {
        self.mode
    }

    /// Switches the comparator implementation.
    pub fn set_comparator_mode(&mut self, mode: ComparatorMode) {
        self.mode = mode;
    }

    /// Replaces the index tuning knobs (cache bound, shard opt-in).
    pub fn set_index_config(&mut self, config: IndexConfig) {
        self.index.borrow_mut().set_config(config);
    }

    /// Cumulative indexed-comparator counters (all zero while the guard
    /// runs in [`ComparatorMode::Reference`]).
    pub fn comparator_stats(&self) -> IndexStats {
        self.index.borrow().stats()
    }

    /// Whether JITBULL processing is active. With an empty database the
    /// engine skips snapshotting entirely — the paper's zero-overhead
    /// empty-DB property.
    pub fn enabled(&self) -> bool {
        !self.db.is_empty()
    }

    /// Immutable database access.
    pub fn db(&self) -> &DnaDatabase {
        &self.db
    }

    /// Mutable database access (install on disclosure, remove on patch).
    ///
    /// The returned guard unconditionally bumps the database generation
    /// when it drops ([`DnaDatabase::touch`]). `install` / `remove_cve`
    /// already bump on content change, but a raw `&mut DnaDatabase` also
    /// allows mutations that bypass them (`*guard.db_mut() = other`,
    /// `std::mem::take`, …) — without the drop bump those would leave the
    /// comparator's verdict cache keyed to a generation whose content no
    /// longer exists, silently serving stale verdicts. The bump-on-drop
    /// makes that unrepresentable at the cost of over-invalidating when
    /// the borrow turns out not to mutate.
    pub fn db_mut(&mut self) -> DbMut<'_> {
        DbMut { db: &mut self.db }
    }

    /// The comparator configuration.
    pub fn config(&self) -> &CompareConfig {
        &self.config
    }

    /// Analyses one compilation trace against every VDC entry (step 2 of
    /// the paper's workflow; Algorithm 2 inside). Dispatches to the
    /// comparator selected by [`Guard::comparator_mode`]; both paths
    /// return identical `dangerous` / `matches` / `dna` (only
    /// `cost_cycles` differs, reflecting the work each actually does).
    pub fn analyze(&self, trace: &PassTrace, n_slots: usize) -> Analysis {
        self.analyze_with_receipt(trace, n_slots).0
    }

    fn analyze_with_receipt(
        &self,
        trace: &PassTrace,
        n_slots: usize,
    ) -> (Analysis, Option<QueryReceipt>) {
        match self.mode {
            ComparatorMode::Reference => (self.analyze_reference(trace, n_slots), None),
            ComparatorMode::Indexed => {
                let (analysis, receipt) = self.analyze_indexed(trace, n_slots);
                (analysis, Some(receipt))
            }
        }
    }

    /// The naive Algorithm 2 loop: full set intersections per (entry,
    /// slot), costed by sub-chain volume. This is the normative oracle —
    /// the indexed path must agree with it on every verdict.
    pub fn analyze_reference(&self, trace: &PassTrace, n_slots: usize) -> Analysis {
        let dna = extract_dna(trace, n_slots);
        let mut cost = trace_work(trace) * EXTRACT_COST_PER_INSTR;
        let mut dangerous: Vec<usize> = Vec::new();
        let mut matches = Vec::new();
        for entry in self.db.entries() {
            let slots = crate::compare::reference(&dna, &entry.dna, &self.config);
            // Comparison cost: proportional to the sub-chain volume on both
            // sides.
            let f_chains: usize = dna
                .deltas
                .iter()
                .map(|d| d.removed.len() + d.added.len())
                .sum();
            let v_chains: usize = entry
                .dna
                .deltas
                .iter()
                .map(|d| d.removed.len() + d.added.len())
                .sum();
            cost += (f_chains + v_chains) as u64 * COMPARE_COST_PER_CHAIN;
            if !slots.is_empty() {
                matches.push((entry.cve.clone(), entry.function.clone(), slots.clone()));
                dangerous.extend(slots);
            }
        }
        dangerous.sort_unstable();
        dangerous.dedup();
        Analysis {
            dangerous,
            matches,
            cost_cycles: cost,
            dna,
        }
    }

    /// The indexed pipeline: ensure the index matches the database
    /// generation, query it (cache → prefilter → interned merges), and
    /// rebuild the entry-keyed result into the reference shape.
    fn analyze_indexed(&self, trace: &PassTrace, n_slots: usize) -> (Analysis, QueryReceipt) {
        let dna = extract_dna(trace, n_slots);
        let mut cost = trace_work(trace) * EXTRACT_COST_PER_INSTR;
        let mut index = self.index.borrow_mut();
        if let Some(FaultKind::CachePoison) = self.faults.fire(FaultSite::ComparatorQuery) {
            // The torn write lands before `ensure` — recovery is the
            // rebuild the zeroed generation stamp forces next line.
            index.poison();
        }
        cost += index.ensure(&self.db);
        let (hits, receipt) = index.query(&dna, &self.config);
        cost += receipt.cost_cycles;
        let entries = self.db.entries();
        let mut dangerous: Vec<usize> = Vec::new();
        let mut matches = Vec::new();
        for (idx, slots) in hits.iter() {
            let entry = &entries[*idx];
            matches.push((entry.cve.clone(), entry.function.clone(), slots.clone()));
            dangerous.extend(slots);
        }
        dangerous.sort_unstable();
        dangerous.dedup();
        (
            Analysis {
                dangerous,
                matches,
                cost_cycles: cost,
                dna,
            },
            receipt,
        )
    }

    /// Like [`Guard::analyze`], additionally reporting the analysis as an
    /// [`Event::GuardAnalyzed`] (preceded, on the indexed path, by an
    /// [`Event::ComparatorQuery`] describing the cache/prefilter/shard
    /// work) to `collector`.
    pub fn analyze_observed(
        &self,
        trace: &PassTrace,
        n_slots: usize,
        collector: &mut dyn Collector,
    ) -> Analysis {
        let purges_before = self.index.borrow().stats().poison_purges;
        let (analysis, receipt) = self.analyze_with_receipt(trace, n_slots);
        let stats_after = self.index.borrow().stats();
        if stats_after.poison_purges > purges_before {
            collector.record(Event::CachePoisonPurged {
                rebuilds: stats_after.rebuilds,
            });
        }
        if let Some(r) = receipt {
            collector.record(Event::ComparatorQuery {
                function: trace.function.clone(),
                cache_hit: r.cache_hit,
                prefilter_rejects: r.prefilter_rejects,
                set_merges: r.set_merges,
                shards: r.shards,
            });
        }
        collector.record(Event::GuardAnalyzed {
            function: trace.function.clone(),
            matches: analysis.matches.len() as u64,
            dangerous: analysis.dangerous.len() as u64,
            cost_cycles: analysis.cost_cycles,
        });
        analysis
    }

    /// Extracts DNA only (step 1: building database entries from a VDC
    /// compilation).
    pub fn extract(trace: &PassTrace, n_slots: usize) -> Dna {
        extract_dna(trace, n_slots)
    }
}

/// Mutable borrow of a [`Guard`]'s database that invalidates verdict
/// caches on drop. Returned by [`Guard::db_mut`]; dereferences to
/// [`DnaDatabase`], so existing `guard.db_mut().install(..)` call sites
/// compile unchanged.
#[derive(Debug)]
pub struct DbMut<'a> {
    db: &'a mut DnaDatabase,
}

impl std::ops::Deref for DbMut<'_> {
    type Target = DnaDatabase;
    fn deref(&self) -> &DnaDatabase {
        self.db
    }
}

impl std::ops::DerefMut for DbMut<'_> {
    fn deref_mut(&mut self) -> &mut DnaDatabase {
        self.db
    }
}

impl Drop for DbMut<'_> {
    fn drop(&mut self) {
        self.db.touch();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jitbull_mir::{MirSnapshot, PassRecord, SnapInstr};
    use std::sync::Arc;

    fn instr(id: u32, label: &str, operands: &[u32]) -> SnapInstr {
        SnapInstr {
            id,
            label: Arc::from(label),
            operands: operands.to_vec(),
        }
    }

    fn guarded_load() -> MirSnapshot {
        MirSnapshot {
            instrs: vec![
                instr(0, "parameter0", &[]),
                instr(1, "parameter1", &[]),
                instr(2, "unbox:array", &[0]),
                instr(3, "initializedlength", &[2]),
                instr(4, "boundscheck", &[1, 3]),
                instr(5, "loadelement", &[2, 4]),
                instr(6, "return", &[5]),
            ],
        }
    }

    fn unguarded_load() -> MirSnapshot {
        MirSnapshot {
            instrs: vec![
                instr(0, "parameter0", &[]),
                instr(1, "parameter1", &[]),
                instr(2, "unbox:array", &[0]),
                instr(5, "loadelement", &[2, 1]),
                instr(6, "return", &[5]),
            ],
        }
    }

    fn trace_removing_check(slot: usize) -> PassTrace {
        PassTrace {
            function: "f".into(),
            records: vec![PassRecord {
                slot,
                name: "GVN",
                before: guarded_load(),
                after: unguarded_load(),
            }],
        }
    }

    #[test]
    fn matching_trace_flags_the_pass() {
        // Build a DB from the "VDC" trace, then analyse an identical trace.
        let cfg = CompareConfig { thr: 1, ratio: 0.5 };
        let vdc_dna = Guard::extract(&trace_removing_check(6), 32);
        let mut db = DnaDatabase::new();
        db.install("CVE-2019-17026", "f", vdc_dna);
        let guard = Guard::new(db, cfg);
        assert!(guard.enabled());
        let analysis = guard.analyze(&trace_removing_check(6), 32);
        assert_eq!(analysis.dangerous, vec![6]);
        assert_eq!(analysis.matches.len(), 1);
        assert!(analysis.cost_cycles > 0);
    }

    #[test]
    fn different_slot_does_not_match() {
        let cfg = CompareConfig { thr: 1, ratio: 0.5 };
        let vdc_dna = Guard::extract(&trace_removing_check(6), 32);
        let mut db = DnaDatabase::new();
        db.install("CVE-2019-17026", "f", vdc_dna);
        let guard = Guard::new(db, cfg);
        let analysis = guard.analyze(&trace_removing_check(9), 32);
        assert!(analysis.dangerous.is_empty());
    }

    #[test]
    fn unrelated_delta_does_not_match() {
        let cfg = CompareConfig::default();
        let vdc_dna = Guard::extract(&trace_removing_check(6), 32);
        let mut db = DnaDatabase::new();
        db.install("CVE-2019-17026", "f", vdc_dna);
        let guard = Guard::new(db, cfg);
        // A benign pass that removed an arithmetic chain instead.
        let before = MirSnapshot {
            instrs: vec![
                instr(0, "parameter0", &[]),
                instr(1, "constant:number", &[]),
                instr(2, "add", &[0, 1]),
                instr(3, "mul", &[2, 2]),
                instr(4, "return", &[3]),
            ],
        };
        let after = MirSnapshot {
            instrs: vec![
                instr(0, "parameter0", &[]),
                instr(1, "constant:number", &[]),
                instr(3, "mul", &[0, 0]),
                instr(4, "return", &[3]),
            ],
        };
        let trace = PassTrace {
            function: "g".into(),
            records: vec![PassRecord {
                slot: 6,
                name: "GVN",
                before,
                after,
            }],
        };
        let analysis = guard.analyze(&trace, 32);
        assert!(analysis.dangerous.is_empty(), "{:?}", analysis.matches);
    }

    #[test]
    fn comparator_modes_agree_on_everything_but_cost() {
        let cfg = CompareConfig { thr: 1, ratio: 0.5 };
        let mut db = DnaDatabase::new();
        db.install("CVE-A", "f", Guard::extract(&trace_removing_check(6), 32));
        db.install("CVE-B", "g", Guard::extract(&trace_removing_check(11), 32));
        let indexed = Guard::with_comparator(db.clone(), cfg, ComparatorMode::Indexed);
        let reference = Guard::with_comparator(db, cfg, ComparatorMode::Reference);
        for trace in [
            trace_removing_check(6),
            trace_removing_check(11),
            trace_removing_check(3),
        ] {
            let a = indexed.analyze(&trace, 32);
            let b = reference.analyze(&trace, 32);
            assert_eq!(a.dangerous, b.dangerous);
            assert_eq!(a.matches, b.matches);
            assert_eq!(a.dna, b.dna);
        }
        let stats = indexed.comparator_stats();
        assert_eq!(stats.queries, 3);
        assert_eq!(reference.comparator_stats().queries, 0);
    }

    #[test]
    fn indexed_cache_hits_on_repeat_and_invalidates_on_change() {
        let cfg = CompareConfig { thr: 1, ratio: 0.5 };
        let mut db = DnaDatabase::new();
        db.install("CVE-A", "f", Guard::extract(&trace_removing_check(6), 32));
        let mut guard = Guard::new(db, cfg);
        let trace = trace_removing_check(6);
        assert_eq!(guard.analyze(&trace, 32).dangerous, vec![6]);
        assert_eq!(guard.analyze(&trace, 32).dangerous, vec![6]);
        assert_eq!(guard.comparator_stats().cache_hits, 1);
        // Removing the CVE must not serve the stale cached verdict.
        guard.db_mut().remove_cve("CVE-A");
        assert!(guard.analyze(&trace, 32).dangerous.is_empty());
    }

    #[test]
    fn cache_poison_is_purged_and_reported() {
        use jitbull_chaos::{FaultPlan, FaultSite as Site};
        let cfg = CompareConfig { thr: 1, ratio: 0.5 };
        let mut db = DnaDatabase::new();
        db.install("CVE-A", "f", Guard::extract(&trace_removing_check(6), 32));
        let mut guard = Guard::new(db, cfg);
        let trace = trace_removing_check(6);
        // Warm the verdict cache.
        assert_eq!(guard.analyze(&trace, 32).dangerous, vec![6]);
        // Poison the comparator state on the next query.
        guard.set_fault_injector(FaultInjector::from_plan(FaultPlan::new(5).script(
            Site::ComparatorQuery,
            FaultKind::CachePoison,
            0,
            1,
        )));
        let mut rec = jitbull_telemetry::Recorder::new();
        let analysis = guard.analyze_observed(&trace, 32, &mut rec);
        assert_eq!(
            analysis.dangerous,
            vec![6],
            "a poisoned cache must cost a rebuild, never a wrong verdict"
        );
        assert_eq!(guard.comparator_stats().poison_purges, 1);
        assert_eq!(rec.metrics().counter("recovery.cache_poison_purged"), 1);
        // The fault window is over: the next query is clean again.
        assert_eq!(guard.analyze(&trace, 32).dangerous, vec![6]);
        assert_eq!(guard.comparator_stats().poison_purges, 1);
    }

    #[test]
    fn multiple_vdcs_union_their_slots() {
        let cfg = CompareConfig { thr: 1, ratio: 0.5 };
        let mut db = DnaDatabase::new();
        db.install("CVE-A", "f", Guard::extract(&trace_removing_check(6), 32));
        db.install("CVE-B", "f", Guard::extract(&trace_removing_check(11), 32));
        let guard = Guard::new(db, cfg);
        let mut trace = trace_removing_check(6);
        trace
            .records
            .push(trace_removing_check(11).records.pop().unwrap());
        let analysis = guard.analyze(&trace, 32);
        assert_eq!(analysis.dangerous, vec![6, 11]);
        assert_eq!(analysis.matches.len(), 2);
    }
}

//! The engine-facing facade: extract DNA from a compilation trace, compare
//! against the database, and account the analysis cost.

use std::cell::RefCell;

use jitbull_chaos::{FaultInjector, FaultKind, FaultSite};
use jitbull_mir::PassTrace;
use jitbull_telemetry::{Collector, Event};

use crate::compare::CompareConfig;
use crate::db::DnaDatabase;
use crate::dna::Dna;
use crate::extract::incremental::{ExtractReceipt, IncrementalExtractor, IncrementalStats};
use crate::extract::memo::{DnaMemo, MemoKey, MemoStats, MEMO_HIT_COST, MEMO_KEY_COST_PER_INSTR};
use crate::extract::{extract_dna, trace_work};
use crate::index::{ComparatorIndex, IndexConfig, IndexStats, QueryReceipt};

/// Which Δ-comparator implementation a [`Guard`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ComparatorMode {
    /// The interned / prefiltered / cached comparator pipeline
    /// ([`crate::index`]) — the production path.
    #[default]
    Indexed,
    /// The naive normative loop over [`crate::compare::reference`] —
    /// the oracle the differential harness compares against, and the
    /// baseline the fig6 bench reports speedups over.
    Reference,
}

/// Which Δ-extractor implementation a [`Guard`] runs. Orthogonal to
/// [`ComparatorMode`]: extraction produces the DNA, comparison judges it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExtractorMode {
    /// The incremental extractor ([`crate::extract::incremental`]) in
    /// front of the shared DNA memo ([`crate::extract::memo`]) — the
    /// production path.
    #[default]
    Incremental,
    /// The naive normative [`crate::extract::extract_dna`] — the
    /// Algorithm 1 oracle the extractor differential harness compares
    /// against, and the baseline the `fig_extract` bench reports
    /// speedups over.
    Reference,
}

/// Cycle cost charged per instruction touched during Δ extraction.
pub const EXTRACT_COST_PER_INSTR: u64 = 120;
/// Cycle cost charged per (function-delta × DB-entry-delta) sub-chain
/// comparison unit.
pub const COMPARE_COST_PER_CHAIN: u64 = 60;

/// The result of analysing one compilation.
#[derive(Debug, Clone, PartialEq)]
pub struct Analysis {
    /// Pipeline slots found similar to at least one VDC entry, sorted and
    /// deduplicated (the paper's `DisPass`).
    pub dangerous: Vec<usize>,
    /// Which VDC entries matched: `(cve, function, slots)`.
    pub matches: Vec<(String, String, Vec<usize>)>,
    /// Simulated cycles the analysis consumed (extraction + comparison).
    pub cost_cycles: u64,
    /// The extracted DNA (kept so callers can install it into a DB —
    /// that's exactly how VDC DNA is produced in step 1).
    pub dna: Dna,
}

/// JITBULL's runtime guard: database + comparator configuration.
///
/// # Examples
///
/// ```
/// use jitbull::{Guard, DnaDatabase, CompareConfig};
/// let guard = Guard::new(DnaDatabase::new(), CompareConfig::default());
/// assert!(!guard.enabled());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Guard {
    db: DnaDatabase,
    config: CompareConfig,
    mode: ComparatorMode,
    extractor: ExtractorMode,
    /// Lazily (re)built comparator index over `db`; interior-mutable so
    /// `analyze(&self)` can populate caches. Cloning a guard clones the
    /// index too — valid, because the clone starts from identical
    /// database content at the same generation.
    index: RefCell<ComparatorIndex>,
    /// Incremental extractor state (interner, run-window cache);
    /// interior-mutable for the same reason as `index`. Cloning forks
    /// the caches — both forks stay exact, they just warm separately.
    incremental: RefCell<IncrementalExtractor>,
    /// Whole-function DNA memo. Clone-shared: guards built from the same
    /// [`DnaMemo`] handle (e.g. all pool workers) alias one store.
    memo: DnaMemo,
    /// Engine context folded into every memo key (vulnerability-config
    /// fingerprint): a different engine build compiles the same MIR
    /// differently, so its DNAs must never collide in the shared memo.
    extract_context: u64,
    /// Chaos hook: consulted once per indexed query
    /// ([`jitbull_chaos::FaultSite::ComparatorQuery`]) and once per
    /// incremental extraction
    /// ([`jitbull_chaos::FaultSite::ExtractQuery`]). Disabled by
    /// default — a single pointer test on the hot path.
    faults: FaultInjector,
}

impl Guard {
    /// Creates a guard over a database (indexed comparator).
    pub fn new(db: DnaDatabase, config: CompareConfig) -> Self {
        Guard::with_comparator(db, config, ComparatorMode::Indexed)
    }

    /// Creates a guard with an explicit comparator implementation.
    pub fn with_comparator(db: DnaDatabase, config: CompareConfig, mode: ComparatorMode) -> Self {
        Guard {
            db,
            config,
            mode,
            extractor: ExtractorMode::default(),
            index: RefCell::new(ComparatorIndex::default()),
            incremental: RefCell::new(IncrementalExtractor::default()),
            memo: DnaMemo::default(),
            extract_context: 0,
            faults: FaultInjector::disabled(),
        }
    }

    /// Arms (or disarms) the fault injector consulted per indexed query.
    /// A [`jitbull_chaos::FaultKind::CachePoison`] fault fired here
    /// corrupts the comparator's memoised state *before* the query runs,
    /// exercising the poison-purge recovery path.
    pub fn set_fault_injector(&mut self, faults: FaultInjector) {
        self.faults = faults;
    }

    /// The comparator implementation in use.
    pub fn comparator_mode(&self) -> ComparatorMode {
        self.mode
    }

    /// Switches the comparator implementation.
    pub fn set_comparator_mode(&mut self, mode: ComparatorMode) {
        self.mode = mode;
    }

    /// The extractor implementation in use.
    pub fn extractor_mode(&self) -> ExtractorMode {
        self.extractor
    }

    /// Switches the extractor implementation.
    pub fn set_extractor_mode(&mut self, mode: ExtractorMode) {
        self.extractor = mode;
    }

    /// Replaces the DNA memo handle (the pool installs one shared memo
    /// into every worker's guard).
    pub fn set_dna_memo(&mut self, memo: DnaMemo) {
        self.memo = memo;
    }

    /// The DNA memo handle (aliases the shared store).
    pub fn dna_memo(&self) -> &DnaMemo {
        &self.memo
    }

    /// Sets the engine-context fingerprint folded into memo keys (the
    /// engine derives it from its vulnerability configuration).
    pub fn set_extract_context(&mut self, context: u64) {
        self.extract_context = context;
    }

    /// Replaces the index tuning knobs (cache bound, shard opt-in).
    pub fn set_index_config(&mut self, config: IndexConfig) {
        self.index.borrow_mut().set_config(config);
    }

    /// Cumulative indexed-comparator counters (all zero while the guard
    /// runs in [`ComparatorMode::Reference`]).
    pub fn comparator_stats(&self) -> IndexStats {
        self.index.borrow().stats()
    }

    /// Cumulative incremental-extractor counters (all zero while the
    /// guard runs in [`ExtractorMode::Reference`]).
    pub fn extractor_stats(&self) -> IncrementalStats {
        self.incremental.borrow().stats()
    }

    /// Cumulative DNA-memo counters for the guard's memo handle.
    pub fn memo_stats(&self) -> MemoStats {
        self.memo.stats()
    }

    /// Whether JITBULL processing is active. With an empty database the
    /// engine skips snapshotting entirely — the paper's zero-overhead
    /// empty-DB property.
    pub fn enabled(&self) -> bool {
        !self.db.is_empty()
    }

    /// Immutable database access.
    pub fn db(&self) -> &DnaDatabase {
        &self.db
    }

    /// Mutable database access (install on disclosure, remove on patch).
    ///
    /// The returned guard unconditionally bumps the database generation
    /// when it drops ([`DnaDatabase::touch`]). `install` / `remove_cve`
    /// already bump on content change, but a raw `&mut DnaDatabase` also
    /// allows mutations that bypass them (`*guard.db_mut() = other`,
    /// `std::mem::take`, …) — without the drop bump those would leave the
    /// comparator's verdict cache keyed to a generation whose content no
    /// longer exists, silently serving stale verdicts. The bump-on-drop
    /// makes that unrepresentable at the cost of over-invalidating when
    /// the borrow turns out not to mutate.
    pub fn db_mut(&mut self) -> DbMut<'_> {
        DbMut { db: &mut self.db }
    }

    /// The comparator configuration.
    pub fn config(&self) -> &CompareConfig {
        &self.config
    }

    /// Analyses one compilation trace against every VDC entry (step 2 of
    /// the paper's workflow; Algorithm 2 inside). Extraction runs in the
    /// implementation selected by [`Guard::extractor_mode`]; comparison
    /// in the one selected by [`Guard::comparator_mode`]. Every
    /// combination returns identical `dangerous` / `matches` / `dna`
    /// (only `cost_cycles` differs, reflecting the work each actually
    /// does).
    pub fn analyze(&self, trace: &PassTrace, n_slots: usize) -> Analysis {
        self.analyze_with_receipts(trace, n_slots).0
    }

    /// Extraction dispatch: the configured extractor produces the DNA
    /// and the simulated cycles it cost; the incremental path
    /// additionally consults the shared memo and returns a receipt.
    fn extract_with_receipt(
        &self,
        trace: &PassTrace,
        n_slots: usize,
    ) -> (Dna, u64, Option<ExtractReceipt>) {
        match self.extractor {
            ExtractorMode::Reference => (
                extract_dna(trace, n_slots),
                trace_work(trace) * EXTRACT_COST_PER_INSTR,
                None,
            ),
            ExtractorMode::Incremental => {
                if let Some(FaultKind::CachePoison) = self.faults.fire(FaultSite::ExtractQuery) {
                    // The torn write lands before the lookup — the
                    // memo's purge-before-serve guarantee is the
                    // recovery path under test.
                    self.memo.poison();
                }
                let key = MemoKey::from_trace(trace, n_slots, self.extract_context);
                let mut cost = 0u64;
                if let Some(k) = &key {
                    cost += k.pre_mir_len() as u64 * MEMO_KEY_COST_PER_INSTR;
                    if let Some(dna) = self.memo.lookup(k) {
                        cost += MEMO_HIT_COST;
                        let receipt = ExtractReceipt {
                            memo_hit: true,
                            cost_cycles: cost,
                            ..ExtractReceipt::default()
                        };
                        return (dna, cost, Some(receipt));
                    }
                }
                let (dna, mut receipt) = self.incremental.borrow_mut().extract_dna(trace, n_slots);
                receipt.cost_cycles += cost;
                if let Some(k) = key {
                    self.memo.insert(k, dna.clone());
                }
                (dna, receipt.cost_cycles, Some(receipt))
            }
        }
    }

    fn analyze_with_receipts(
        &self,
        trace: &PassTrace,
        n_slots: usize,
    ) -> (Analysis, Option<ExtractReceipt>, Option<QueryReceipt>) {
        let (dna, extract_cost, extract_receipt) = self.extract_with_receipt(trace, n_slots);
        match self.mode {
            ComparatorMode::Reference => (
                self.compare_reference(dna, extract_cost),
                extract_receipt,
                None,
            ),
            ComparatorMode::Indexed => {
                let (analysis, receipt) = self.compare_indexed(dna, extract_cost);
                (analysis, extract_receipt, Some(receipt))
            }
        }
    }

    /// The naive Algorithm 2 loop over a pre-extracted DNA: full set
    /// intersections per (entry, slot), costed by sub-chain volume. This
    /// is the normative comparator — the indexed path must agree with it
    /// on every verdict.
    fn compare_reference(&self, dna: Dna, extract_cost: u64) -> Analysis {
        let mut cost = extract_cost;
        let mut dangerous: Vec<usize> = Vec::new();
        let mut matches = Vec::new();
        for entry in self.db.entries() {
            let slots = crate::compare::reference(&dna, &entry.dna, &self.config);
            // Comparison cost: proportional to the sub-chain volume on both
            // sides.
            let f_chains: usize = dna
                .deltas
                .iter()
                .map(|d| d.removed.len() + d.added.len())
                .sum();
            let v_chains: usize = entry
                .dna
                .deltas
                .iter()
                .map(|d| d.removed.len() + d.added.len())
                .sum();
            cost += (f_chains + v_chains) as u64 * COMPARE_COST_PER_CHAIN;
            if !slots.is_empty() {
                matches.push((entry.cve.clone(), entry.function.clone(), slots.clone()));
                dangerous.extend(slots);
            }
        }
        dangerous.sort_unstable();
        dangerous.dedup();
        Analysis {
            dangerous,
            matches,
            cost_cycles: cost,
            dna,
        }
    }

    /// Reference-comparator analysis of one trace (kept as the public
    /// normative entry point; extraction still follows
    /// [`Guard::extractor_mode`]).
    pub fn analyze_reference(&self, trace: &PassTrace, n_slots: usize) -> Analysis {
        let (dna, extract_cost, _) = self.extract_with_receipt(trace, n_slots);
        self.compare_reference(dna, extract_cost)
    }

    /// The indexed pipeline: ensure the index matches the database
    /// generation, query it (cache → prefilter → interned merges), and
    /// rebuild the entry-keyed result into the reference shape.
    fn compare_indexed(&self, dna: Dna, extract_cost: u64) -> (Analysis, QueryReceipt) {
        let mut cost = extract_cost;
        let mut index = self.index.borrow_mut();
        if let Some(FaultKind::CachePoison) = self.faults.fire(FaultSite::ComparatorQuery) {
            // The torn write lands before `ensure` — recovery is the
            // rebuild the zeroed generation stamp forces next line.
            index.poison();
        }
        cost += index.ensure(&self.db);
        let (hits, receipt) = index.query(&dna, &self.config);
        cost += receipt.cost_cycles;
        let entries = self.db.entries();
        let mut dangerous: Vec<usize> = Vec::new();
        let mut matches = Vec::new();
        for (idx, slots) in hits.iter() {
            let entry = &entries[*idx];
            matches.push((entry.cve.clone(), entry.function.clone(), slots.clone()));
            dangerous.extend(slots);
        }
        dangerous.sort_unstable();
        dangerous.dedup();
        (
            Analysis {
                dangerous,
                matches,
                cost_cycles: cost,
                dna,
            },
            receipt,
        )
    }

    /// Like [`Guard::analyze`], additionally reporting the analysis as an
    /// [`Event::GuardAnalyzed`] (preceded, on the incremental path, by an
    /// [`Event::ExtractorQuery`] describing the memo/fast-path work and,
    /// on the indexed path, by an [`Event::ComparatorQuery`] describing
    /// the cache/prefilter/shard work) to `collector`.
    pub fn analyze_observed(
        &self,
        trace: &PassTrace,
        n_slots: usize,
        collector: &mut dyn Collector,
    ) -> Analysis {
        let purges_before = self.index.borrow().stats().poison_purges;
        let memo_purges_before = self.memo.stats().poison_purges;
        let (analysis, extract_receipt, receipt) = self.analyze_with_receipts(trace, n_slots);
        let stats_after = self.index.borrow().stats();
        if stats_after.poison_purges > purges_before {
            collector.record(Event::CachePoisonPurged {
                rebuilds: stats_after.rebuilds,
            });
        }
        let memo_stats_after = self.memo.stats();
        if memo_stats_after.poison_purges > memo_purges_before {
            collector.record(Event::ExtractMemoPurged {
                purges: memo_stats_after.poison_purges,
            });
        }
        if let Some(r) = extract_receipt {
            collector.record(Event::ExtractorQuery {
                function: trace.function.clone(),
                memo_hit: r.memo_hit,
                passes_enumerated: r.passes_enumerated,
                passes_skipped: r.passes_skipped,
                chains_enumerated: r.chains_enumerated,
                chains_skipped: r.chains_skipped,
            });
        }
        if let Some(r) = receipt {
            collector.record(Event::ComparatorQuery {
                function: trace.function.clone(),
                cache_hit: r.cache_hit,
                prefilter_rejects: r.prefilter_rejects,
                set_merges: r.set_merges,
                shards: r.shards,
            });
        }
        collector.record(Event::GuardAnalyzed {
            function: trace.function.clone(),
            matches: analysis.matches.len() as u64,
            dangerous: analysis.dangerous.len() as u64,
            cost_cycles: analysis.cost_cycles,
        });
        analysis
    }

    /// Extracts DNA only (step 1: building database entries from a VDC
    /// compilation).
    pub fn extract(trace: &PassTrace, n_slots: usize) -> Dna {
        extract_dna(trace, n_slots)
    }
}

/// Mutable borrow of a [`Guard`]'s database that invalidates verdict
/// caches on drop. Returned by [`Guard::db_mut`]; dereferences to
/// [`DnaDatabase`], so existing `guard.db_mut().install(..)` call sites
/// compile unchanged.
#[derive(Debug)]
pub struct DbMut<'a> {
    db: &'a mut DnaDatabase,
}

impl std::ops::Deref for DbMut<'_> {
    type Target = DnaDatabase;
    fn deref(&self) -> &DnaDatabase {
        self.db
    }
}

impl std::ops::DerefMut for DbMut<'_> {
    fn deref_mut(&mut self) -> &mut DnaDatabase {
        self.db
    }
}

impl Drop for DbMut<'_> {
    fn drop(&mut self) {
        self.db.touch();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jitbull_mir::{MirSnapshot, PassRecord, SnapInstr};
    use std::sync::Arc;

    fn instr(id: u32, label: &str, operands: &[u32]) -> SnapInstr {
        SnapInstr {
            id,
            label: Arc::from(label),
            operands: operands.to_vec(),
        }
    }

    fn guarded_load() -> MirSnapshot {
        MirSnapshot {
            instrs: vec![
                instr(0, "parameter0", &[]),
                instr(1, "parameter1", &[]),
                instr(2, "unbox:array", &[0]),
                instr(3, "initializedlength", &[2]),
                instr(4, "boundscheck", &[1, 3]),
                instr(5, "loadelement", &[2, 4]),
                instr(6, "return", &[5]),
            ],
        }
    }

    fn unguarded_load() -> MirSnapshot {
        MirSnapshot {
            instrs: vec![
                instr(0, "parameter0", &[]),
                instr(1, "parameter1", &[]),
                instr(2, "unbox:array", &[0]),
                instr(5, "loadelement", &[2, 1]),
                instr(6, "return", &[5]),
            ],
        }
    }

    fn trace_removing_check(slot: usize) -> PassTrace {
        PassTrace {
            function: "f".into(),
            records: vec![PassRecord {
                slot,
                name: "GVN",
                before: guarded_load(),
                after: unguarded_load(),
            }],
        }
    }

    #[test]
    fn matching_trace_flags_the_pass() {
        // Build a DB from the "VDC" trace, then analyse an identical trace.
        let cfg = CompareConfig { thr: 1, ratio: 0.5 };
        let vdc_dna = Guard::extract(&trace_removing_check(6), 32);
        let mut db = DnaDatabase::new();
        db.install("CVE-2019-17026", "f", vdc_dna);
        let guard = Guard::new(db, cfg);
        assert!(guard.enabled());
        let analysis = guard.analyze(&trace_removing_check(6), 32);
        assert_eq!(analysis.dangerous, vec![6]);
        assert_eq!(analysis.matches.len(), 1);
        assert!(analysis.cost_cycles > 0);
    }

    #[test]
    fn different_slot_does_not_match() {
        let cfg = CompareConfig { thr: 1, ratio: 0.5 };
        let vdc_dna = Guard::extract(&trace_removing_check(6), 32);
        let mut db = DnaDatabase::new();
        db.install("CVE-2019-17026", "f", vdc_dna);
        let guard = Guard::new(db, cfg);
        let analysis = guard.analyze(&trace_removing_check(9), 32);
        assert!(analysis.dangerous.is_empty());
    }

    #[test]
    fn unrelated_delta_does_not_match() {
        let cfg = CompareConfig::default();
        let vdc_dna = Guard::extract(&trace_removing_check(6), 32);
        let mut db = DnaDatabase::new();
        db.install("CVE-2019-17026", "f", vdc_dna);
        let guard = Guard::new(db, cfg);
        // A benign pass that removed an arithmetic chain instead.
        let before = MirSnapshot {
            instrs: vec![
                instr(0, "parameter0", &[]),
                instr(1, "constant:number", &[]),
                instr(2, "add", &[0, 1]),
                instr(3, "mul", &[2, 2]),
                instr(4, "return", &[3]),
            ],
        };
        let after = MirSnapshot {
            instrs: vec![
                instr(0, "parameter0", &[]),
                instr(1, "constant:number", &[]),
                instr(3, "mul", &[0, 0]),
                instr(4, "return", &[3]),
            ],
        };
        let trace = PassTrace {
            function: "g".into(),
            records: vec![PassRecord {
                slot: 6,
                name: "GVN",
                before,
                after,
            }],
        };
        let analysis = guard.analyze(&trace, 32);
        assert!(analysis.dangerous.is_empty(), "{:?}", analysis.matches);
    }

    #[test]
    fn comparator_modes_agree_on_everything_but_cost() {
        let cfg = CompareConfig { thr: 1, ratio: 0.5 };
        let mut db = DnaDatabase::new();
        db.install("CVE-A", "f", Guard::extract(&trace_removing_check(6), 32));
        db.install("CVE-B", "g", Guard::extract(&trace_removing_check(11), 32));
        let indexed = Guard::with_comparator(db.clone(), cfg, ComparatorMode::Indexed);
        let reference = Guard::with_comparator(db, cfg, ComparatorMode::Reference);
        for trace in [
            trace_removing_check(6),
            trace_removing_check(11),
            trace_removing_check(3),
        ] {
            let a = indexed.analyze(&trace, 32);
            let b = reference.analyze(&trace, 32);
            assert_eq!(a.dangerous, b.dangerous);
            assert_eq!(a.matches, b.matches);
            assert_eq!(a.dna, b.dna);
        }
        let stats = indexed.comparator_stats();
        assert_eq!(stats.queries, 3);
        assert_eq!(reference.comparator_stats().queries, 0);
    }

    #[test]
    fn indexed_cache_hits_on_repeat_and_invalidates_on_change() {
        let cfg = CompareConfig { thr: 1, ratio: 0.5 };
        let mut db = DnaDatabase::new();
        db.install("CVE-A", "f", Guard::extract(&trace_removing_check(6), 32));
        let mut guard = Guard::new(db, cfg);
        let trace = trace_removing_check(6);
        assert_eq!(guard.analyze(&trace, 32).dangerous, vec![6]);
        assert_eq!(guard.analyze(&trace, 32).dangerous, vec![6]);
        assert_eq!(guard.comparator_stats().cache_hits, 1);
        // Removing the CVE must not serve the stale cached verdict.
        guard.db_mut().remove_cve("CVE-A");
        assert!(guard.analyze(&trace, 32).dangerous.is_empty());
    }

    #[test]
    fn cache_poison_is_purged_and_reported() {
        use jitbull_chaos::{FaultPlan, FaultSite as Site};
        let cfg = CompareConfig { thr: 1, ratio: 0.5 };
        let mut db = DnaDatabase::new();
        db.install("CVE-A", "f", Guard::extract(&trace_removing_check(6), 32));
        let mut guard = Guard::new(db, cfg);
        let trace = trace_removing_check(6);
        // Warm the verdict cache.
        assert_eq!(guard.analyze(&trace, 32).dangerous, vec![6]);
        // Poison the comparator state on the next query.
        guard.set_fault_injector(FaultInjector::from_plan(FaultPlan::new(5).script(
            Site::ComparatorQuery,
            FaultKind::CachePoison,
            0,
            1,
        )));
        let mut rec = jitbull_telemetry::Recorder::new();
        let analysis = guard.analyze_observed(&trace, 32, &mut rec);
        assert_eq!(
            analysis.dangerous,
            vec![6],
            "a poisoned cache must cost a rebuild, never a wrong verdict"
        );
        assert_eq!(guard.comparator_stats().poison_purges, 1);
        assert_eq!(rec.metrics().counter("recovery.cache_poison_purged"), 1);
        // The fault window is over: the next query is clean again.
        assert_eq!(guard.analyze(&trace, 32).dangerous, vec![6]);
        assert_eq!(guard.comparator_stats().poison_purges, 1);
    }

    #[test]
    fn extractor_modes_agree_on_everything_but_cost() {
        let cfg = CompareConfig { thr: 1, ratio: 0.5 };
        let mut db = DnaDatabase::new();
        db.install("CVE-A", "f", Guard::extract(&trace_removing_check(6), 32));
        db.install("CVE-B", "g", Guard::extract(&trace_removing_check(11), 32));
        let mut incremental = Guard::new(db.clone(), cfg);
        incremental.set_extractor_mode(ExtractorMode::Incremental);
        let mut reference = Guard::new(db, cfg);
        reference.set_extractor_mode(ExtractorMode::Reference);
        for trace in [
            trace_removing_check(6),
            trace_removing_check(11),
            trace_removing_check(3),
        ] {
            let a = incremental.analyze(&trace, 32);
            let b = reference.analyze(&trace, 32);
            assert_eq!(a.dangerous, b.dangerous);
            assert_eq!(a.matches, b.matches);
            assert_eq!(a.dna, b.dna, "extractor modes must emit identical DNA");
        }
        assert_eq!(incremental.memo_stats().lookups, 3);
        assert_eq!(
            reference.memo_stats().lookups,
            0,
            "the reference extractor must bypass the memo entirely"
        );
    }

    #[test]
    fn memo_hits_on_repeat_analysis_and_costs_less() {
        let cfg = CompareConfig { thr: 1, ratio: 0.5 };
        let mut db = DnaDatabase::new();
        db.install("CVE-A", "f", Guard::extract(&trace_removing_check(6), 32));
        let guard = Guard::new(db, cfg);
        let trace = trace_removing_check(6);
        let cold = guard.analyze(&trace, 32);
        let warm = guard.analyze(&trace, 32);
        assert_eq!(cold.dangerous, warm.dangerous);
        assert_eq!(cold.dna, warm.dna);
        let stats = guard.memo_stats();
        assert_eq!(stats.lookups, 2);
        assert_eq!(stats.hits, 1);
        assert!(
            warm.cost_cycles < cold.cost_cycles,
            "memo hit ({}) must be cheaper than the cold extraction ({})",
            warm.cost_cycles,
            cold.cost_cycles
        );
    }

    #[test]
    fn extract_context_change_invalidates_the_memo() {
        let cfg = CompareConfig { thr: 1, ratio: 0.5 };
        let mut guard = Guard::new(DnaDatabase::new(), cfg);
        let trace = trace_removing_check(6);
        guard.analyze(&trace, 32);
        guard.analyze(&trace, 32);
        assert_eq!(guard.memo_stats().hits, 1);
        // A new vulnerability context keys a different memo entry: the
        // same trace must be re-extracted, never served stale.
        guard.set_extract_context(0xdead_beef);
        guard.analyze(&trace, 32);
        assert_eq!(guard.memo_stats().hits, 1);
        assert_eq!(guard.memo_stats().lookups, 3);
    }

    #[test]
    fn extract_memo_poison_is_purged_and_reported() {
        use jitbull_chaos::{FaultPlan, FaultSite as Site};
        let cfg = CompareConfig { thr: 1, ratio: 0.5 };
        let mut db = DnaDatabase::new();
        db.install("CVE-A", "f", Guard::extract(&trace_removing_check(6), 32));
        let mut guard = Guard::new(db, cfg);
        let trace = trace_removing_check(6);
        // Warm the memo.
        assert_eq!(guard.analyze(&trace, 32).dangerous, vec![6]);
        // Poison the memo on the next extraction query.
        guard.set_fault_injector(FaultInjector::from_plan(FaultPlan::new(5).script(
            Site::ExtractQuery,
            FaultKind::CachePoison,
            0,
            1,
        )));
        let mut rec = jitbull_telemetry::Recorder::new();
        let analysis = guard.analyze_observed(&trace, 32, &mut rec);
        assert_eq!(
            analysis.dangerous,
            vec![6],
            "a poisoned memo must cost a re-extraction, never a wrong verdict"
        );
        assert_eq!(guard.memo_stats().poison_purges, 1);
        assert_eq!(rec.metrics().counter("recovery.extract_memo_purged"), 1);
        // The fault window is over: the next analysis re-warms cleanly.
        assert_eq!(guard.analyze(&trace, 32).dangerous, vec![6]);
        assert_eq!(guard.memo_stats().poison_purges, 1);
    }

    #[test]
    fn multiple_vdcs_union_their_slots() {
        let cfg = CompareConfig { thr: 1, ratio: 0.5 };
        let mut db = DnaDatabase::new();
        db.install("CVE-A", "f", Guard::extract(&trace_removing_check(6), 32));
        db.install("CVE-B", "f", Guard::extract(&trace_removing_check(11), 32));
        let guard = Guard::new(db, cfg);
        let mut trace = trace_removing_check(6);
        trace
            .records
            .push(trace_removing_check(11).records.pop().unwrap());
        let analysis = guard.analyze(&trace, 32);
        assert_eq!(analysis.dangerous, vec![6, 11]);
        assert_eq!(analysis.matches.len(), 2);
    }
}

//! The engine-facing facade: extract DNA from a compilation trace, compare
//! against the database, and account the analysis cost.

use jitbull_mir::PassTrace;
use jitbull_telemetry::{Collector, Event};

use crate::compare::{dangerous_passes, CompareConfig};
use crate::db::DnaDatabase;
use crate::dna::Dna;
use crate::extract::{extract_dna, trace_work};

/// Cycle cost charged per instruction touched during Δ extraction.
pub const EXTRACT_COST_PER_INSTR: u64 = 120;
/// Cycle cost charged per (function-delta × DB-entry-delta) sub-chain
/// comparison unit.
pub const COMPARE_COST_PER_CHAIN: u64 = 60;

/// The result of analysing one compilation.
#[derive(Debug, Clone, PartialEq)]
pub struct Analysis {
    /// Pipeline slots found similar to at least one VDC entry, sorted and
    /// deduplicated (the paper's `DisPass`).
    pub dangerous: Vec<usize>,
    /// Which VDC entries matched: `(cve, function, slots)`.
    pub matches: Vec<(String, String, Vec<usize>)>,
    /// Simulated cycles the analysis consumed (extraction + comparison).
    pub cost_cycles: u64,
    /// The extracted DNA (kept so callers can install it into a DB —
    /// that's exactly how VDC DNA is produced in step 1).
    pub dna: Dna,
}

/// JITBULL's runtime guard: database + comparator configuration.
///
/// # Examples
///
/// ```
/// use jitbull::{Guard, DnaDatabase, CompareConfig};
/// let guard = Guard::new(DnaDatabase::new(), CompareConfig::default());
/// assert!(!guard.enabled());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Guard {
    db: DnaDatabase,
    config: CompareConfig,
}

impl Guard {
    /// Creates a guard over a database.
    pub fn new(db: DnaDatabase, config: CompareConfig) -> Self {
        Guard { db, config }
    }

    /// Whether JITBULL processing is active. With an empty database the
    /// engine skips snapshotting entirely — the paper's zero-overhead
    /// empty-DB property.
    pub fn enabled(&self) -> bool {
        !self.db.is_empty()
    }

    /// Immutable database access.
    pub fn db(&self) -> &DnaDatabase {
        &self.db
    }

    /// Mutable database access (install on disclosure, remove on patch).
    pub fn db_mut(&mut self) -> &mut DnaDatabase {
        &mut self.db
    }

    /// The comparator configuration.
    pub fn config(&self) -> &CompareConfig {
        &self.config
    }

    /// Analyses one compilation trace against every VDC entry (step 2 of
    /// the paper's workflow; Algorithm 2 inside).
    pub fn analyze(&self, trace: &PassTrace, n_slots: usize) -> Analysis {
        let dna = extract_dna(trace, n_slots);
        let mut cost = trace_work(trace) * EXTRACT_COST_PER_INSTR;
        let mut dangerous: Vec<usize> = Vec::new();
        let mut matches = Vec::new();
        for entry in self.db.entries() {
            let slots = dangerous_passes(&dna, &entry.dna, &self.config);
            // Comparison cost: proportional to the sub-chain volume on both
            // sides.
            let f_chains: usize = dna
                .deltas
                .iter()
                .map(|d| d.removed.len() + d.added.len())
                .sum();
            let v_chains: usize = entry
                .dna
                .deltas
                .iter()
                .map(|d| d.removed.len() + d.added.len())
                .sum();
            cost += (f_chains + v_chains) as u64 * COMPARE_COST_PER_CHAIN;
            if !slots.is_empty() {
                matches.push((entry.cve.clone(), entry.function.clone(), slots.clone()));
                dangerous.extend(slots);
            }
        }
        dangerous.sort_unstable();
        dangerous.dedup();
        Analysis {
            dangerous,
            matches,
            cost_cycles: cost,
            dna,
        }
    }

    /// Like [`Guard::analyze`], additionally reporting the analysis as an
    /// [`Event::GuardAnalyzed`] to `collector`.
    pub fn analyze_observed(
        &self,
        trace: &PassTrace,
        n_slots: usize,
        collector: &mut dyn Collector,
    ) -> Analysis {
        let analysis = self.analyze(trace, n_slots);
        collector.record(Event::GuardAnalyzed {
            function: trace.function.clone(),
            matches: analysis.matches.len() as u64,
            dangerous: analysis.dangerous.len() as u64,
            cost_cycles: analysis.cost_cycles,
        });
        analysis
    }

    /// Extracts DNA only (step 1: building database entries from a VDC
    /// compilation).
    pub fn extract(trace: &PassTrace, n_slots: usize) -> Dna {
        extract_dna(trace, n_slots)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jitbull_mir::{MirSnapshot, PassRecord, SnapInstr};
    use std::rc::Rc;

    fn instr(id: u32, label: &str, operands: &[u32]) -> SnapInstr {
        SnapInstr {
            id,
            label: Rc::from(label),
            operands: operands.to_vec(),
        }
    }

    fn guarded_load() -> MirSnapshot {
        MirSnapshot {
            instrs: vec![
                instr(0, "parameter0", &[]),
                instr(1, "parameter1", &[]),
                instr(2, "unbox:array", &[0]),
                instr(3, "initializedlength", &[2]),
                instr(4, "boundscheck", &[1, 3]),
                instr(5, "loadelement", &[2, 4]),
                instr(6, "return", &[5]),
            ],
        }
    }

    fn unguarded_load() -> MirSnapshot {
        MirSnapshot {
            instrs: vec![
                instr(0, "parameter0", &[]),
                instr(1, "parameter1", &[]),
                instr(2, "unbox:array", &[0]),
                instr(5, "loadelement", &[2, 1]),
                instr(6, "return", &[5]),
            ],
        }
    }

    fn trace_removing_check(slot: usize) -> PassTrace {
        PassTrace {
            function: "f".into(),
            records: vec![PassRecord {
                slot,
                name: "GVN",
                before: guarded_load(),
                after: unguarded_load(),
            }],
        }
    }

    #[test]
    fn matching_trace_flags_the_pass() {
        // Build a DB from the "VDC" trace, then analyse an identical trace.
        let cfg = CompareConfig { thr: 1, ratio: 0.5 };
        let vdc_dna = Guard::extract(&trace_removing_check(6), 32);
        let mut db = DnaDatabase::new();
        db.install("CVE-2019-17026", "f", vdc_dna);
        let guard = Guard::new(db, cfg);
        assert!(guard.enabled());
        let analysis = guard.analyze(&trace_removing_check(6), 32);
        assert_eq!(analysis.dangerous, vec![6]);
        assert_eq!(analysis.matches.len(), 1);
        assert!(analysis.cost_cycles > 0);
    }

    #[test]
    fn different_slot_does_not_match() {
        let cfg = CompareConfig { thr: 1, ratio: 0.5 };
        let vdc_dna = Guard::extract(&trace_removing_check(6), 32);
        let mut db = DnaDatabase::new();
        db.install("CVE-2019-17026", "f", vdc_dna);
        let guard = Guard::new(db, cfg);
        let analysis = guard.analyze(&trace_removing_check(9), 32);
        assert!(analysis.dangerous.is_empty());
    }

    #[test]
    fn unrelated_delta_does_not_match() {
        let cfg = CompareConfig::default();
        let vdc_dna = Guard::extract(&trace_removing_check(6), 32);
        let mut db = DnaDatabase::new();
        db.install("CVE-2019-17026", "f", vdc_dna);
        let guard = Guard::new(db, cfg);
        // A benign pass that removed an arithmetic chain instead.
        let before = MirSnapshot {
            instrs: vec![
                instr(0, "parameter0", &[]),
                instr(1, "constant:number", &[]),
                instr(2, "add", &[0, 1]),
                instr(3, "mul", &[2, 2]),
                instr(4, "return", &[3]),
            ],
        };
        let after = MirSnapshot {
            instrs: vec![
                instr(0, "parameter0", &[]),
                instr(1, "constant:number", &[]),
                instr(3, "mul", &[0, 0]),
                instr(4, "return", &[3]),
            ],
        };
        let trace = PassTrace {
            function: "g".into(),
            records: vec![PassRecord {
                slot: 6,
                name: "GVN",
                before,
                after,
            }],
        };
        let analysis = guard.analyze(&trace, 32);
        assert!(analysis.dangerous.is_empty(), "{:?}", analysis.matches);
    }

    #[test]
    fn multiple_vdcs_union_their_slots() {
        let cfg = CompareConfig { thr: 1, ratio: 0.5 };
        let mut db = DnaDatabase::new();
        db.install("CVE-A", "f", Guard::extract(&trace_removing_check(6), 32));
        db.install("CVE-B", "f", Guard::extract(&trace_removing_check(11), 32));
        let guard = Guard::new(db, cfg);
        let mut trace = trace_removing_check(6);
        trace
            .records
            .push(trace_removing_check(11).records.pop().unwrap());
        let analysis = guard.analyze(&trace, 32);
        assert_eq!(analysis.dangerous, vec![6, 11]);
        assert_eq!(analysis.matches.len(), 2);
    }
}

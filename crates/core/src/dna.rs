//! JIT DNA types: per-pass deltas and whole-function DNA vectors.
//!
//! A [`Chain`] is a sequence of opcode labels along instruction-dependency
//! edges. A [`PassDelta`] (`Δ_i` in the paper) is the pair
//! `(δ_i^-, δ_i^+)` of removed and added sub-chains for pass `i`, and a
//! [`Dna`] is the vector `(Δ_1 … Δ_n)` over all pipeline slots.

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

use crate::error::DbError;

/// A dependency chain: opcode labels from a user instruction down through
/// its operands (e.g. `["boundscheck", "initializedlength", "unbox:array"]`).
pub type Chain = Vec<Arc<str>>;

/// The modifications one optimization pass made: removed (`δ^-`) and added
/// (`δ^+`) sub-chains.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PassDelta {
    /// Sub-chains present before the pass but gone after (`δ_i^-`).
    pub removed: BTreeSet<Chain>,
    /// Sub-chains introduced by the pass (`δ_i^+`).
    pub added: BTreeSet<Chain>,
}

impl PassDelta {
    /// Whether the pass changed nothing (chain-wise).
    pub fn is_empty(&self) -> bool {
        self.removed.is_empty() && self.added.is_empty()
    }
}

/// A function's JIT DNA: one [`PassDelta`] per pipeline slot.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Dna {
    /// `deltas[i]` is `Δ_{i+1}` for pipeline slot `i`.
    pub deltas: Vec<PassDelta>,
}

impl Dna {
    /// Creates a DNA vector with `n` empty deltas.
    pub fn with_slots(n: usize) -> Self {
        Dna {
            deltas: vec![PassDelta::default(); n],
        }
    }

    /// Number of pipeline slots covered.
    pub fn len(&self) -> usize {
        self.deltas.len()
    }

    /// Whether no slots are covered.
    pub fn is_empty(&self) -> bool {
        self.deltas.is_empty()
    }

    /// Whether every delta is empty (compilation that changed nothing).
    pub fn is_trivial(&self) -> bool {
        self.deltas.iter().all(PassDelta::is_empty)
    }

    /// A 64-bit structural hash over slot indices, delta sides, and
    /// chain labels (FNV-1a over label bytes with explicit length and
    /// side framing). Equal DNAs always hash equal; the comparator's
    /// query cache uses this as its key and verifies candidates by full
    /// equality, so a collision costs a cache miss, never a wrong
    /// verdict.
    #[must_use]
    pub fn structural_hash(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        fn mix(h: &mut u64, bytes: &[u8]) {
            for &b in bytes {
                *h ^= u64::from(b);
                *h = h.wrapping_mul(PRIME);
            }
        }
        fn mix_chains(h: &mut u64, side: u8, chains: &BTreeSet<Chain>) {
            for chain in chains {
                mix(h, &[side]);
                mix(h, &(chain.len() as u64).to_le_bytes());
                for label in chain {
                    mix(h, &(label.len() as u64).to_le_bytes());
                    mix(h, label.as_bytes());
                }
            }
        }
        let mut h = OFFSET;
        mix(&mut h, &(self.deltas.len() as u64).to_le_bytes());
        for (i, d) in self.deltas.iter().enumerate() {
            if d.is_empty() {
                continue;
            }
            mix(&mut h, &(i as u64).to_le_bytes());
            mix_chains(&mut h, b'-', &d.removed);
            mix_chains(&mut h, b'+', &d.added);
        }
        h
    }

    /// Serialises to the compact line-oriented text format used for
    /// maintainer-shipped DNA updates. Inverse of [`Dna::from_text`].
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (i, d) in self.deltas.iter().enumerate() {
            if d.is_empty() {
                continue;
            }
            for chain in &d.removed {
                out.push_str(&format!("{i} - {}\n", chain.join(">")));
            }
            for chain in &d.added {
                out.push_str(&format!("{i} + {}\n", chain.join(">")));
            }
        }
        out
    }

    /// Parses the [`Dna::to_text`] format. `n_slots` sizes the vector
    /// (lines referencing larger slots are rejected).
    ///
    /// # Errors
    ///
    /// Returns a [`DbError::Parse`] pinned to the first malformed line.
    pub fn from_text(text: &str, n_slots: usize) -> Result<Self, DbError> {
        let mut dna = Dna::with_slots(n_slots);
        for (ln, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.splitn(3, ' ');
            let slot: usize = parts
                .next()
                .ok_or_else(|| DbError::parse(ln + 1, "missing slot"))?
                .parse()
                .map_err(|_| DbError::parse(ln + 1, "bad slot index"))?;
            if slot >= n_slots {
                return Err(DbError::parse(ln + 1, format!("slot {slot} out of range")));
            }
            let sign = parts
                .next()
                .ok_or_else(|| DbError::parse(ln + 1, "missing sign"))?;
            let chain_text = parts
                .next()
                .ok_or_else(|| DbError::parse(ln + 1, "missing chain"))?;
            let chain: Chain = chain_text.split('>').map(Arc::from).collect();
            match sign {
                "-" => {
                    dna.deltas[slot].removed.insert(chain);
                }
                "+" => {
                    dna.deltas[slot].added.insert(chain);
                }
                other => return Err(DbError::parse(ln + 1, format!("bad sign `{other}`"))),
            }
        }
        Ok(dna)
    }
}

impl fmt::Display for Dna {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, d) in self.deltas.iter().enumerate() {
            if d.is_empty() {
                continue;
            }
            writeln!(f, "pass {i}: -{} +{}", d.removed.len(), d.added.len())?;
        }
        Ok(())
    }
}

/// Builds a chain from `&str` labels (test/bench convenience).
pub fn chain(labels: &[&str]) -> Chain {
    labels.iter().map(|l| Arc::from(*l)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_round_trip() {
        let mut dna = Dna::with_slots(4);
        dna.deltas[1]
            .removed
            .insert(chain(&["boundscheck", "initializedlength"]));
        dna.deltas[1].added.insert(chain(&["constant:number"]));
        dna.deltas[3].removed.insert(chain(&["add", "parameter0"]));
        let text = dna.to_text();
        let back = Dna::from_text(&text, 4).unwrap();
        assert_eq!(dna, back);
    }

    #[test]
    fn from_text_rejects_bad_input() {
        assert!(Dna::from_text("9 - a>b", 4).is_err());
        assert!(Dna::from_text("x - a", 4).is_err());
        assert!(Dna::from_text("1 ? a", 4).is_err());
        assert!(Dna::from_text("1 -", 4).is_err());
    }

    #[test]
    fn from_text_skips_comments_and_blanks() {
        let dna = Dna::from_text("# comment\n\n0 - a>b\n", 2).unwrap();
        assert_eq!(dna.deltas[0].removed.len(), 1);
    }

    #[test]
    fn structural_hash_tracks_content() {
        let mut a = Dna::with_slots(4);
        a.deltas[1]
            .removed
            .insert(chain(&["boundscheck", "initializedlength"]));
        let mut b = a.clone();
        assert_eq!(a.structural_hash(), b.structural_hash());
        // Moving the chain to the other side changes the hash.
        b.deltas[1].removed.clear();
        b.deltas[1]
            .added
            .insert(chain(&["boundscheck", "initializedlength"]));
        assert_ne!(a.structural_hash(), b.structural_hash());
        // Moving it to another slot changes the hash.
        let mut c = Dna::with_slots(4);
        c.deltas[2]
            .removed
            .insert(chain(&["boundscheck", "initializedlength"]));
        assert_ne!(a.structural_hash(), c.structural_hash());
        // Label-boundary framing: ["ab","c"] must differ from ["a","bc"].
        let mut d = Dna::with_slots(4);
        d.deltas[0].removed.insert(chain(&["ab", "c"]));
        let mut e = Dna::with_slots(4);
        e.deltas[0].removed.insert(chain(&["a", "bc"]));
        assert_ne!(d.structural_hash(), e.structural_hash());
    }

    #[test]
    fn triviality() {
        assert!(Dna::with_slots(3).is_trivial());
        let mut d = Dna::with_slots(3);
        d.deltas[0].added.insert(chain(&["x"]));
        assert!(!d.is_trivial());
        assert!(!d.deltas[0].is_empty());
    }

    #[test]
    fn display_summarises() {
        let mut d = Dna::with_slots(2);
        d.deltas[1].removed.insert(chain(&["a"]));
        assert_eq!(d.to_string(), "pass 1: -1 +0\n");
    }
}

//! The go / no-go policy (paper §V, scenarios 1–3).

use jitbull_telemetry::{Collector, Event, Verdict};

/// JITBULL's verdict for one compilation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Decision {
    /// Scenario 1: no dangerous passes — use the optimized code as-is.
    Go,
    /// Scenario 2: all dangerous passes can be disabled — recompile the
    /// function with exactly these pipeline slots turned off.
    Recompile(Vec<usize>),
    /// Scenario 3: at least one dangerous pass is mandatory — abandon
    /// optimized compilation for this function only.
    NoJit(Vec<usize>),
}

impl Decision {
    /// Whether the function may run its fully-optimized code.
    pub fn is_go(&self) -> bool {
        matches!(self, Decision::Go)
    }

    /// The dangerous pass slots (empty for [`Decision::Go`]).
    pub fn dangerous_passes(&self) -> &[usize] {
        match self {
            Decision::Go => &[],
            Decision::Recompile(p) | Decision::NoJit(p) => p,
        }
    }
}

/// Applies the paper's three-scenario policy to a dangerous-pass list.
/// `disableable(slot)` answers whether the engine can turn that pipeline
/// slot off.
pub fn decide(dangerous: Vec<usize>, disableable: impl Fn(usize) -> bool) -> Decision {
    if dangerous.is_empty() {
        Decision::Go
    } else if dangerous.iter().all(|&p| disableable(p)) {
        Decision::Recompile(dangerous)
    } else {
        Decision::NoJit(dangerous)
    }
}

/// Like [`decide`], additionally reporting the verdict for `function` as
/// an [`Event::PolicyDecision`] to `collector`.
pub fn decide_observed(
    dangerous: Vec<usize>,
    disableable: impl Fn(usize) -> bool,
    function: &str,
    collector: &mut dyn Collector,
) -> Decision {
    let decision = decide(dangerous, disableable);
    let verdict = match &decision {
        Decision::Go => Verdict::Go,
        Decision::Recompile(_) => Verdict::Recompile,
        Decision::NoJit(_) => Verdict::NoJit,
    };
    collector.record(Event::PolicyDecision {
        function: function.to_owned(),
        verdict,
        slots: decision.dangerous_passes().to_vec(),
    });
    decision
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_list_is_go() {
        let d = decide(vec![], |_| true);
        assert_eq!(d, Decision::Go);
        assert!(d.is_go());
        assert!(d.dangerous_passes().is_empty());
    }

    #[test]
    fn all_disableable_recompiles() {
        let d = decide(vec![3, 7], |_| true);
        assert_eq!(d, Decision::Recompile(vec![3, 7]));
        assert_eq!(d.dangerous_passes(), &[3, 7]);
    }

    #[test]
    fn any_mandatory_forces_nojit() {
        let d = decide(vec![0, 7], |slot| slot != 0);
        assert_eq!(d, Decision::NoJit(vec![0, 7]));
        assert!(!d.is_go());
    }
}

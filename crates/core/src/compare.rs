//! The Δ comparator (paper §IV-E, Algorithm 2).

use std::collections::BTreeSet;

use crate::dna::{Chain, Dna, PassDelta};

/// Comparator thresholds. The paper chose `Thr = 3` common sub-chains and
/// `Ratio = 50 %` "to optimize for a high detection rate, thanks to our
/// low overhead in case of a false positive detection".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompareConfig {
    /// Minimum number of common sub-chains (`Thr`).
    pub thr: usize,
    /// Minimum fraction of the maximum possible common sub-chains
    /// (`Ratio`).
    pub ratio: f64,
}

impl Default for CompareConfig {
    fn default() -> Self {
        CompareConfig { thr: 3, ratio: 0.5 }
    }
}

/// `COMPARECHAINS` from Algorithm 2: are two sub-chain sets similar?
///
/// `EqChains = |δ^f ∩ δ^{f'}|` must reach both the absolute threshold and
/// `Ratio × min(|δ^f|, |δ^{f'}|)`.
pub fn compare_chains(a: &BTreeSet<Chain>, b: &BTreeSet<Chain>, config: &CompareConfig) -> bool {
    let max_eq = a.len().min(b.len());
    if max_eq == 0 {
        return false;
    }
    let eq = a.intersection(b).count();
    eq >= config.thr && (eq as f64) >= config.ratio * (max_eq as f64)
}

/// Whether pass deltas `Δ_i^f` and `Δ_i^{f'}` are similar: either the
/// removed or the added sub-chain sets match.
pub fn deltas_similar(a: &PassDelta, b: &PassDelta, config: &CompareConfig) -> bool {
    compare_chains(&a.removed, &b.removed, config) || compare_chains(&a.added, &b.added, config)
}

/// Compares a function's DNA against one VDC DNA, returning the pipeline
/// slots whose deltas are similar (the `DisPass` contribution of this VDC).
pub fn dangerous_passes(f: &Dna, vdc: &Dna, config: &CompareConfig) -> Vec<usize> {
    let n = f.len().min(vdc.len());
    (0..n)
        .filter(|&i| deltas_similar(&f.deltas[i], &vdc.deltas[i], config))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dna::chain;

    fn set(chains: &[&[&str]]) -> BTreeSet<Chain> {
        chains.iter().map(|c| chain(c)).collect()
    }

    #[test]
    fn requires_absolute_threshold() {
        let cfg = CompareConfig::default();
        let a = set(&[&["a", "b"], &["c", "d"]]);
        let b = a.clone();
        // Only 2 common chains < Thr=3 even though ratio is 100 %.
        assert!(!compare_chains(&a, &b, &cfg));
    }

    #[test]
    fn requires_ratio() {
        let cfg = CompareConfig::default();
        // 3 common chains but the smaller set has 8 chains → ratio 37.5 %.
        let common: Vec<Vec<&str>> = vec![vec!["a", "b"], vec!["c", "d"], vec!["e", "f"]];
        let mut a: BTreeSet<Chain> = common.iter().map(|c| chain(c)).collect();
        let mut b = a.clone();
        for i in 0..5 {
            a.insert(chain(&["x", Box::leak(format!("a{i}").into_boxed_str())]));
            b.insert(chain(&["y", Box::leak(format!("b{i}").into_boxed_str())]));
        }
        assert_eq!(a.len(), 8);
        assert!(!compare_chains(&a, &b, &cfg));
        // With ratio satisfied (3 of min(3+2)=5 → 60 %), it matches.
        let a2: BTreeSet<Chain> = common.iter().map(|c| chain(c)).collect();
        let mut b2 = a2.clone();
        b2.insert(chain(&["y", "z"]));
        b2.insert(chain(&["y", "w"]));
        assert!(compare_chains(&a2, &b2, &cfg));
    }

    #[test]
    fn empty_sets_never_match() {
        let cfg = CompareConfig::default();
        let empty = BTreeSet::new();
        assert!(!compare_chains(&empty, &empty, &cfg));
        let a = set(&[&["a", "b"]]);
        assert!(!compare_chains(&a, &empty, &cfg));
    }

    #[test]
    fn delta_similarity_on_either_side() {
        let cfg = CompareConfig { thr: 1, ratio: 0.5 };
        let mut a = PassDelta::default();
        let mut b = PassDelta::default();
        a.added = set(&[&["p", "q"]]);
        b.added = set(&[&["p", "q"]]);
        assert!(deltas_similar(&a, &b, &cfg));
        // Or on the removed side.
        let mut c = PassDelta::default();
        let mut d = PassDelta::default();
        c.removed = set(&[&["r", "s"]]);
        d.removed = set(&[&["r", "s"]]);
        assert!(deltas_similar(&c, &d, &cfg));
        assert!(!deltas_similar(&a, &c, &cfg));
    }

    #[test]
    fn dangerous_passes_reports_slots() {
        let cfg = CompareConfig { thr: 1, ratio: 0.5 };
        let mut f = Dna::with_slots(4);
        let mut v = Dna::with_slots(4);
        f.deltas[2].removed = set(&[&["boundscheck", "initializedlength"]]);
        v.deltas[2].removed = set(&[&["boundscheck", "initializedlength"]]);
        f.deltas[3].added = set(&[&["m", "n"]]);
        v.deltas[3].added = set(&[&["x", "y"]]);
        assert_eq!(dangerous_passes(&f, &v, &cfg), vec![2]);
    }

    #[test]
    fn default_config_matches_paper() {
        let cfg = CompareConfig::default();
        assert_eq!(cfg.thr, 3);
        assert!((cfg.ratio - 0.5).abs() < f64::EPSILON);
    }
}

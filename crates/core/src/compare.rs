//! The Δ comparator (paper §IV-E, Algorithm 2).
//!
//! This module is the **normative** implementation: it computes full
//! `BTreeSet` intersections exactly as the paper's pseudo-code does, and
//! [`reference`] is the oracle the differential harness
//! (`tests/comparator_differential.rs`) checks the indexed comparator
//! ([`crate::index`]) against. Production queries go through the index;
//! keep this path boring and obviously correct.

use std::collections::BTreeSet;

use crate::dna::{Chain, Dna, PassDelta};

/// Comparator thresholds. The paper chose `Thr = 3` common sub-chains and
/// `Ratio = 50 %` "to optimize for a high detection rate, thanks to our
/// low overhead in case of a false positive detection".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompareConfig {
    /// Minimum number of common sub-chains (`Thr`).
    pub thr: usize,
    /// Minimum fraction of the maximum possible common sub-chains
    /// (`Ratio`).
    pub ratio: f64,
}

impl Default for CompareConfig {
    fn default() -> Self {
        CompareConfig { thr: 3, ratio: 0.5 }
    }
}

/// `COMPARECHAINS` from Algorithm 2: are two sub-chain sets similar?
///
/// `EqChains = |δ^f ∩ δ^{f'}|` must reach both the absolute threshold and
/// `Ratio × min(|δ^f|, |δ^{f'}|)`.
///
/// When either side is empty, `max_eq == 0` and the function returns
/// `false` immediately — even for `thr == 0` / `ratio == 0.0`
/// configurations where the threshold inequalities would be vacuously
/// satisfied. An empty delta carries no signal, so it never matches.
pub fn compare_chains(a: &BTreeSet<Chain>, b: &BTreeSet<Chain>, config: &CompareConfig) -> bool {
    let max_eq = a.len().min(b.len());
    if max_eq == 0 {
        return false;
    }
    let eq = a.intersection(b).count();
    eq >= config.thr && (eq as f64) >= config.ratio * (max_eq as f64)
}

/// Whether pass deltas `Δ_i^f` and `Δ_i^{f'}` are similar: either the
/// removed or the added sub-chain sets match.
pub fn deltas_similar(a: &PassDelta, b: &PassDelta, config: &CompareConfig) -> bool {
    compare_chains(&a.removed, &b.removed, config) || compare_chains(&a.added, &b.added, config)
}

/// Compares a function's DNA against one VDC DNA, returning the pipeline
/// slots whose deltas are similar (the `DisPass` contribution of this VDC).
pub fn dangerous_passes(f: &Dna, vdc: &Dna, config: &CompareConfig) -> Vec<usize> {
    let n = f.len().min(vdc.len());
    (0..n)
        .filter(|&i| deltas_similar(&f.deltas[i], &vdc.deltas[i], config))
        .collect()
}

/// The naive, normative Algorithm 2 implementation — an alias of
/// [`dangerous_passes`] under the name the rest of the repo uses for the
/// oracle path. The indexed comparator ([`crate::index`]) must return
/// byte-identical results to this function for every input; the
/// differential harness enforces that.
pub fn reference(f: &Dna, vdc: &Dna, config: &CompareConfig) -> Vec<usize> {
    dangerous_passes(f, vdc, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dna::chain;

    fn set(chains: &[&[&str]]) -> BTreeSet<Chain> {
        chains.iter().map(|c| chain(c)).collect()
    }

    #[test]
    fn requires_absolute_threshold() {
        let cfg = CompareConfig::default();
        let a = set(&[&["a", "b"], &["c", "d"]]);
        let b = a.clone();
        // Only 2 common chains < Thr=3 even though ratio is 100 %.
        assert!(!compare_chains(&a, &b, &cfg));
    }

    #[test]
    fn requires_ratio() {
        let cfg = CompareConfig::default();
        // 3 common chains but the smaller set has 8 chains → ratio 37.5 %.
        let common: Vec<Vec<&str>> = vec![vec!["a", "b"], vec!["c", "d"], vec!["e", "f"]];
        let mut a: BTreeSet<Chain> = common.iter().map(|c| chain(c)).collect();
        let mut b = a.clone();
        for i in 0..5 {
            a.insert(chain(&["x", Box::leak(format!("a{i}").into_boxed_str())]));
            b.insert(chain(&["y", Box::leak(format!("b{i}").into_boxed_str())]));
        }
        assert_eq!(a.len(), 8);
        assert!(!compare_chains(&a, &b, &cfg));
        // With ratio satisfied (3 of min(3+2)=5 → 60 %), it matches.
        let a2: BTreeSet<Chain> = common.iter().map(|c| chain(c)).collect();
        let mut b2 = a2.clone();
        b2.insert(chain(&["y", "z"]));
        b2.insert(chain(&["y", "w"]));
        assert!(compare_chains(&a2, &b2, &cfg));
    }

    #[test]
    fn empty_sets_never_match() {
        let cfg = CompareConfig::default();
        let empty = BTreeSet::new();
        assert!(!compare_chains(&empty, &empty, &cfg));
        let a = set(&[&["a", "b"]]);
        assert!(!compare_chains(&a, &empty, &cfg));
        assert!(!compare_chains(&empty, &a, &cfg));
    }

    #[test]
    fn max_eq_zero_early_return_beats_degenerate_thresholds() {
        // With thr == 0 and ratio == 0.0 every threshold inequality is
        // vacuously true; only the `max_eq == 0` early return keeps empty
        // sets from matching everything.
        let cfg = CompareConfig { thr: 0, ratio: 0.0 };
        let empty = BTreeSet::new();
        let a = set(&[&["a", "b"]]);
        assert!(!compare_chains(&empty, &empty, &cfg));
        assert!(!compare_chains(&a, &empty, &cfg));
        assert!(!compare_chains(&empty, &a, &cfg));
        // Non-empty disjoint sets DO match under the degenerate config —
        // the early return only guards emptiness.
        let b = set(&[&["c", "d"]]);
        assert!(compare_chains(&a, &b, &cfg));
    }

    #[test]
    fn empty_delta_sides_never_contribute() {
        let cfg = CompareConfig { thr: 0, ratio: 0.0 };
        // Both deltas fully empty: neither side can match.
        assert!(!deltas_similar(
            &PassDelta::default(),
            &PassDelta::default(),
            &cfg
        ));
        // One populated side against an empty counterpart: still no match.
        let populated = PassDelta {
            removed: set(&[&["a", "b"]]),
            added: set(&[&["c", "d"]]),
        };
        assert!(!deltas_similar(&populated, &PassDelta::default(), &cfg));
        assert!(!deltas_similar(&PassDelta::default(), &populated, &cfg));
    }

    #[test]
    fn trivial_dna_entries_flag_nothing() {
        let cfg = CompareConfig { thr: 0, ratio: 0.0 };
        let trivial = Dna::with_slots(4);
        let mut real = Dna::with_slots(4);
        real.deltas[1].removed = set(&[&["boundscheck", "initializedlength"]]);
        assert!(dangerous_passes(&real, &trivial, &cfg).is_empty());
        assert!(dangerous_passes(&trivial, &real, &cfg).is_empty());
        assert!(dangerous_passes(&trivial, &trivial, &cfg).is_empty());
    }

    #[test]
    fn reference_is_dangerous_passes() {
        let cfg = CompareConfig { thr: 1, ratio: 0.5 };
        let mut f = Dna::with_slots(4);
        let mut v = Dna::with_slots(4);
        f.deltas[2].removed = set(&[&["boundscheck", "initializedlength"]]);
        v.deltas[2].removed = set(&[&["boundscheck", "initializedlength"]]);
        assert_eq!(reference(&f, &v, &cfg), dangerous_passes(&f, &v, &cfg));
        assert_eq!(reference(&f, &v, &cfg), vec![2]);
    }

    #[test]
    fn delta_similarity_on_either_side() {
        let cfg = CompareConfig { thr: 1, ratio: 0.5 };
        let mut a = PassDelta::default();
        let mut b = PassDelta::default();
        a.added = set(&[&["p", "q"]]);
        b.added = set(&[&["p", "q"]]);
        assert!(deltas_similar(&a, &b, &cfg));
        // Or on the removed side.
        let mut c = PassDelta::default();
        let mut d = PassDelta::default();
        c.removed = set(&[&["r", "s"]]);
        d.removed = set(&[&["r", "s"]]);
        assert!(deltas_similar(&c, &d, &cfg));
        assert!(!deltas_similar(&a, &c, &cfg));
    }

    #[test]
    fn dangerous_passes_reports_slots() {
        let cfg = CompareConfig { thr: 1, ratio: 0.5 };
        let mut f = Dna::with_slots(4);
        let mut v = Dna::with_slots(4);
        f.deltas[2].removed = set(&[&["boundscheck", "initializedlength"]]);
        v.deltas[2].removed = set(&[&["boundscheck", "initializedlength"]]);
        f.deltas[3].added = set(&[&["m", "n"]]);
        v.deltas[3].added = set(&[&["x", "y"]]);
        assert_eq!(dangerous_passes(&f, &v, &cfg), vec![2]);
    }

    #[test]
    fn default_config_matches_paper() {
        let cfg = CompareConfig::default();
        assert_eq!(cfg.thr, 3);
        assert!((cfg.ratio - 0.5).abs() < f64::EPSILON);
    }
}

//! The indexed Δ comparator: interner, fingerprint prefilter, query
//! cache, and sharded parallel scan.
//!
//! [`crate::compare::reference`] (the naive Algorithm 2 loop) recomputes
//! full `BTreeSet<Chain>` intersections for every (function, VDC, slot)
//! triple, so its cost is `O(entries × slots × chains × chain-length)`
//! string comparisons per Ion compilation — the runtime overhead the
//! paper's Figure 6 measures as the database grows. This module makes the
//! same decision procedure cheap without changing a single verdict:
//!
//! 1. **Chain interner** ([`ChainInterner`]): every distinct [`Chain`] is
//!    mapped to a dense `u32` id, so each `BTreeSet<Chain>` becomes a
//!    sorted `Vec<u32>` and set intersection becomes a linear merge over
//!    machine words instead of lexicographic string-vector comparisons.
//! 2. **Fingerprint prefilter** ([`fingerprint`]): each delta side also
//!    carries a 64-bit Bloom-style hash of its chain ids. If the two
//!    fingerprints share no bit the sets share no chain, so the (slot,
//!    VDC) pair is rejected without touching the id vectors. The filter
//!    has false *positives* (a shared bit does not imply a shared chain)
//!    but never false negatives, so it can only skip work, never change
//!    the answer.
//! 3. **Query cache**: verdicts are memoised per function DNA, keyed by
//!    [`Dna::structural_hash`] and verified by full equality (a hash
//!    collision degrades to a miss, never to a wrong verdict). The cache
//!    is invalidated wholesale whenever the database's generation counter
//!    moves (see [`DnaDatabase::generation`]).
//! 4. **Sharded scan**: an opt-in `std::thread::scope` fan-out that
//!    splits database entries across worker threads once the scan's
//!    `entries × slots` work estimate exceeds
//!    [`IndexConfig::parallel_threshold`]. Only the interned (`u32`/`u64`)
//!    representation crosses the shard boundary — the interner itself
//!    stays on the query thread, so shards race over plain integers.
//!
//! The simulated-cycle cost model mirrors the work actually done (hash,
//! intern, prefilter, merge), so `repro` figures built on
//! [`QueryReceipt::cost_cycles`] show the same shape a wall clock does.
//! Sharding divides wall-clock latency, not simulated cycles: the
//! receipt charges total work, wherever it ran.

use std::collections::HashMap;
use std::sync::Arc;

use crate::compare::CompareConfig;
use crate::db::DnaDatabase;
use crate::dna::{Chain, Dna, PassDelta};

/// Cycles charged per chain for structurally hashing a query DNA.
pub const HASH_COST_PER_CHAIN: u64 = 2;
/// Cycles charged per chain for interning (build or query side).
pub const INTERN_COST_PER_CHAIN: u64 = 8;
/// Cycles charged per fingerprint prefilter check.
pub const PREFILTER_COST: u64 = 2;
/// Cycles charged per id touched by a linear-merge intersection.
pub const MERGE_COST_PER_ID: u64 = 3;
/// Flat cycles charged for serving a verdict from the query cache.
pub const CACHE_HIT_COST: u64 = 25;

/// Maps each distinct [`Chain`] to a dense `u32` id.
///
/// Ids are assigned in first-seen order and are stable for the lifetime
/// of the interner: interning more chains never changes an existing id.
#[derive(Debug, Clone, Default)]
pub struct ChainInterner {
    ids: HashMap<Chain, u32>,
    chains: Vec<Chain>,
}

impl ChainInterner {
    /// An empty interner.
    #[must_use]
    pub fn new() -> Self {
        ChainInterner::default()
    }

    /// The id for `chain`, allocating one on first sight.
    pub fn intern(&mut self, chain: &Chain) -> u32 {
        if let Some(&id) = self.ids.get(chain) {
            return id;
        }
        let id = u32::try_from(self.chains.len()).expect("interner overflow");
        self.chains.push(chain.clone());
        self.ids.insert(chain.clone(), id);
        id
    }

    /// The chain behind `id`, if allocated.
    #[must_use]
    pub fn resolve(&self, id: u32) -> Option<&Chain> {
        self.chains.get(id as usize)
    }

    /// Number of distinct chains interned.
    #[must_use]
    pub fn len(&self) -> usize {
        self.chains.len()
    }

    /// Whether nothing has been interned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.chains.is_empty()
    }
}

/// SplitMix64 finalizer — the same mixer `jitbull-prng` uses.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A 64-bit Bloom-style fingerprint over chain ids (two bits per id).
///
/// Guarantee: if sets `A ⊇ B` then `fingerprint(A) & fingerprint(B) ==
/// fingerprint(B)` — a superset's fingerprint covers the subset's bits —
/// so two sets with a common element always share at least one bit and
/// [`prefilter_may_match`] never rejects a pair the comparator would
/// match.
#[must_use]
pub fn fingerprint(ids: &[u32]) -> u64 {
    ids.iter().fold(0u64, |fp, &id| {
        let h = mix64(u64::from(id));
        fp | (1u64 << (h & 63)) | (1u64 << ((h >> 6) & 63))
    })
}

/// Whether two fingerprinted sets can possibly intersect.
#[inline]
#[must_use]
pub fn prefilter_may_match(fp_a: u64, fp_b: u64) -> bool {
    fp_a & fp_b != 0
}

/// Number of common ids between two sorted, duplicate-free id slices.
#[must_use]
pub fn intersection_count(a: &[u32], b: &[u32]) -> usize {
    let (mut i, mut j, mut eq) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                eq += 1;
                i += 1;
                j += 1;
            }
        }
    }
    eq
}

/// `COMPARECHAINS` over interned id sets — decision-identical to
/// [`crate::compare::compare_chains`] on the chains the ids stand for
/// (same thresholds, same float expression).
#[must_use]
pub fn compare_ids(a: &[u32], b: &[u32], config: &CompareConfig) -> bool {
    let max_eq = a.len().min(b.len());
    if max_eq == 0 {
        return false;
    }
    let eq = intersection_count(a, b);
    eq >= config.thr && (eq as f64) >= config.ratio * (max_eq as f64)
}

/// One pass delta in interned form: sorted id vectors plus per-side
/// fingerprints.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IndexedDelta {
    /// Interned `δ⁻`, sorted ascending (set semantics preserved: the
    /// source `BTreeSet` holds distinct chains and interning is
    /// injective, so ids are distinct).
    pub removed: Vec<u32>,
    /// Interned `δ⁺`, sorted ascending.
    pub added: Vec<u32>,
    /// Fingerprint of `removed`.
    pub removed_fp: u64,
    /// Fingerprint of `added`.
    pub added_fp: u64,
}

impl IndexedDelta {
    /// Interns one [`PassDelta`].
    pub fn from_delta(delta: &PassDelta, interner: &mut ChainInterner) -> Self {
        let mut removed: Vec<u32> = delta.removed.iter().map(|c| interner.intern(c)).collect();
        removed.sort_unstable();
        let mut added: Vec<u32> = delta.added.iter().map(|c| interner.intern(c)).collect();
        added.sort_unstable();
        let removed_fp = fingerprint(&removed);
        let added_fp = fingerprint(&added);
        IndexedDelta {
            removed,
            added,
            removed_fp,
            added_fp,
        }
    }
}

/// One database entry in interned form.
#[derive(Debug, Clone)]
pub struct IndexedEntry {
    /// Per-slot interned deltas (same slot indexing as the source
    /// [`Dna`]).
    pub slots: Vec<IndexedDelta>,
    /// Total chains across all slots (cost accounting).
    pub chains: u64,
}

/// Tuning knobs for the index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexConfig {
    /// Scan-work estimate (`entries × query slots`) above which the scan
    /// shards across threads. The default (`usize::MAX`) keeps the scan
    /// sequential — sharding is opt-in because spawning threads per
    /// query only pays off for databases far larger than the paper's
    /// one-or-two-window steady state.
    pub parallel_threshold: usize,
    /// Worker threads for a sharded scan (clamped to the entry count).
    /// Deliberately *not* clamped to the host's core count: sharding is
    /// already opt-in via `parallel_threshold`, and a deterministic shard
    /// count keeps scan behaviour reproducible across machines. Callers
    /// that care should set this to their core count.
    pub max_shards: usize,
    /// Distinct query DNAs cached before the cache is reset wholesale.
    /// `0` disables caching entirely.
    pub max_cache_entries: usize,
}

impl Default for IndexConfig {
    fn default() -> Self {
        IndexConfig {
            parallel_threshold: usize::MAX,
            max_shards: 8,
            max_cache_entries: 4096,
        }
    }
}

/// What one [`ComparatorIndex::query`] did, for telemetry and the
/// simulated cost model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryReceipt {
    /// Whether the verdict came from the query cache.
    pub cache_hit: bool,
    /// (slot, entry) delta sides rejected by the fingerprint prefilter.
    pub prefilter_rejects: u64,
    /// Linear-merge intersections actually performed.
    pub set_merges: u64,
    /// Worker threads used (`0` = sequential scan).
    pub shards: u64,
    /// Simulated cycles the query consumed.
    pub cost_cycles: u64,
}

/// Cumulative counters across an index's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexStats {
    /// Queries served.
    pub queries: u64,
    /// Queries answered from the cache.
    pub cache_hits: u64,
    /// Prefilter rejections.
    pub prefilter_rejects: u64,
    /// Merges performed.
    pub set_merges: u64,
    /// Queries that ran sharded.
    pub sharded_scans: u64,
    /// Index rebuilds (database generation changes observed).
    pub rebuilds: u64,
    /// Rebuilds that additionally discarded a poisoned verdict cache
    /// (see [`ComparatorIndex::poison`]).
    pub poison_purges: u64,
}

/// Per-entry dangerous-slot lists, in database-entry order; entries with
/// no similar slot are omitted. Index positions refer to
/// [`DnaDatabase::entries`] at the generation the query ran against.
pub type EntryMatches = Vec<(usize, Vec<usize>)>;

#[derive(Debug, Clone, Copy, Default)]
struct ScanCounters {
    prefilter_rejects: u64,
    set_merges: u64,
    cost: u64,
}

fn side_similar(
    a: &[u32],
    b: &[u32],
    fp_a: u64,
    fp_b: u64,
    config: &CompareConfig,
    counters: &mut ScanCounters,
) -> bool {
    if a.is_empty() || b.is_empty() {
        // `max_eq == 0`: the reference comparator's early return.
        return false;
    }
    if config.thr >= 1 && !prefilter_may_match(fp_a, fp_b) {
        // Disjoint fingerprints ⇒ empty intersection ⇒ `eq == 0 < thr`.
        counters.prefilter_rejects += 1;
        counters.cost += PREFILTER_COST;
        return false;
    }
    counters.set_merges += 1;
    counters.cost += PREFILTER_COST + (a.len() + b.len()) as u64 * MERGE_COST_PER_ID;
    compare_ids(a, b, config)
}

fn delta_pair_similar(
    f: &IndexedDelta,
    v: &IndexedDelta,
    config: &CompareConfig,
    counters: &mut ScanCounters,
) -> bool {
    side_similar(
        &f.removed,
        &v.removed,
        f.removed_fp,
        v.removed_fp,
        config,
        counters,
    ) || side_similar(&f.added, &v.added, f.added_fp, v.added_fp, config, counters)
}

fn dangerous_slots_indexed(
    query: &[IndexedDelta],
    entry: &[IndexedDelta],
    config: &CompareConfig,
    counters: &mut ScanCounters,
) -> Vec<usize> {
    let n = query.len().min(entry.len());
    (0..n)
        .filter(|&i| delta_pair_similar(&query[i], &entry[i], config, counters))
        .collect()
}

/// The comparator index over one [`DnaDatabase`]'s entries.
///
/// Built lazily: [`ComparatorIndex::ensure`] re-interns the database
/// whenever its generation counter has moved (install / `remove_cve` /
/// wholesale replacement), which also drops every cached verdict — a
/// query can therefore never observe a database state other than the one
/// it was answered against.
#[derive(Debug, Clone, Default)]
pub struct ComparatorIndex {
    interner: ChainInterner,
    entries: Vec<IndexedEntry>,
    /// Database generation this index reflects (`0` = never built;
    /// real generations start at 1).
    generation: u64,
    /// structural hash → (query DNA, verdicts) buckets. Equality on the
    /// stored DNA guards against hash collisions.
    cache: HashMap<u64, Vec<(Dna, Arc<EntryMatches>)>>,
    cached: usize,
    /// Set by [`ComparatorIndex::poison`]; cleared (and counted) by the
    /// rebuild that discards the poisoned state.
    poisoned: bool,
    stats: IndexStats,
    config: IndexConfig,
}

impl ComparatorIndex {
    /// An empty index with the given tuning knobs.
    #[must_use]
    pub fn new(config: IndexConfig) -> Self {
        ComparatorIndex {
            config,
            ..ComparatorIndex::default()
        }
    }

    /// Cumulative counters.
    #[must_use]
    pub fn stats(&self) -> IndexStats {
        self.stats
    }

    /// The tuning knobs in effect.
    #[must_use]
    pub fn config(&self) -> IndexConfig {
        self.config
    }

    /// Replaces the tuning knobs (drops the cache: cached verdicts are
    /// still valid, but this keeps reconfiguration semantics trivial).
    pub fn set_config(&mut self, config: IndexConfig) {
        self.config = config;
        self.cache.clear();
        self.cached = 0;
    }

    /// Corrupts the index in place, modelling a torn write over the
    /// comparator's memoised state: every cached verdict is overwritten
    /// with garbage and the generation stamp is zeroed. Because real
    /// database generations start at 1, the zeroed stamp can never equal
    /// any database's generation — the next [`ComparatorIndex::ensure`]
    /// is therefore *guaranteed* to rebuild from the authoritative
    /// database and discard the garbage, which is exactly the recovery
    /// property the chaos harness asserts: a poisoned cache costs one
    /// rebuild, never a wrong verdict.
    pub fn poison(&mut self) {
        for bucket in self.cache.values_mut() {
            for (_, verdict) in bucket.iter_mut() {
                *verdict = Arc::new(vec![(usize::MAX, vec![usize::MAX])]);
            }
        }
        self.generation = 0;
        self.poisoned = true;
    }

    /// Rebuilds the index if `db` has changed generation since the last
    /// build. Returns the simulated cycles the rebuild cost (0 when the
    /// index was already current).
    pub fn ensure(&mut self, db: &DnaDatabase) -> u64 {
        if self.generation == db.generation() {
            return 0;
        }
        if self.poisoned {
            self.poisoned = false;
            self.stats.poison_purges += 1;
        }
        self.interner = ChainInterner::new();
        self.cache.clear();
        self.cached = 0;
        let mut cost = 0u64;
        self.entries = db
            .entries()
            .iter()
            .map(|e| {
                let slots: Vec<IndexedDelta> = e
                    .dna
                    .deltas
                    .iter()
                    .map(|d| IndexedDelta::from_delta(d, &mut self.interner))
                    .collect();
                let chains: u64 = slots
                    .iter()
                    .map(|s| (s.removed.len() + s.added.len()) as u64)
                    .sum();
                cost += chains * INTERN_COST_PER_CHAIN;
                IndexedEntry { slots, chains }
            })
            .collect();
        self.generation = db.generation();
        self.stats.rebuilds += 1;
        cost
    }

    /// Answers Algorithm 2 for `dna` against every indexed entry.
    ///
    /// Returns the per-entry dangerous slots (database-entry order,
    /// non-matching entries omitted) plus a [`QueryReceipt`] describing
    /// the work done. Decision-identical to running
    /// [`crate::compare::reference`] against each entry.
    pub fn query(
        &mut self,
        dna: &Dna,
        config: &CompareConfig,
    ) -> (Arc<EntryMatches>, QueryReceipt) {
        self.stats.queries += 1;
        let f_chains: u64 = dna
            .deltas
            .iter()
            .map(|d| (d.removed.len() + d.added.len()) as u64)
            .sum();
        let mut receipt = QueryReceipt {
            cost_cycles: f_chains * HASH_COST_PER_CHAIN,
            ..QueryReceipt::default()
        };
        let caching = self.config.max_cache_entries > 0;
        let hash = dna.structural_hash();
        if caching {
            if let Some(bucket) = self.cache.get(&hash) {
                if let Some((_, result)) = bucket.iter().find(|(key, _)| key == dna) {
                    receipt.cache_hit = true;
                    receipt.cost_cycles += CACHE_HIT_COST;
                    self.stats.cache_hits += 1;
                    return (Arc::clone(result), receipt);
                }
            }
        }

        // Miss: intern the query side, then scan.
        receipt.cost_cycles += f_chains * INTERN_COST_PER_CHAIN;
        let query: Vec<IndexedDelta> = dna
            .deltas
            .iter()
            .map(|d| IndexedDelta::from_delta(d, &mut self.interner))
            .collect();
        let work = self.entries.len().saturating_mul(query.len());
        let shards = self.shard_count(work);
        let (matches, counters) = if shards > 1 {
            self.stats.sharded_scans += 1;
            receipt.shards = shards as u64;
            scan_parallel(&self.entries, &query, config, shards)
        } else {
            scan_sequential(&self.entries, &query, config)
        };
        receipt.prefilter_rejects = counters.prefilter_rejects;
        receipt.set_merges = counters.set_merges;
        receipt.cost_cycles += counters.cost;
        self.stats.prefilter_rejects += counters.prefilter_rejects;
        self.stats.set_merges += counters.set_merges;

        let result = Arc::new(matches);
        if caching {
            if self.cached >= self.config.max_cache_entries {
                self.cache.clear();
                self.cached = 0;
            }
            self.cache
                .entry(hash)
                .or_default()
                .push((dna.clone(), Arc::clone(&result)));
            self.cached += 1;
        }
        (result, receipt)
    }

    fn shard_count(&self, work: usize) -> usize {
        if work < self.config.parallel_threshold || self.entries.len() < 2 {
            return 1;
        }
        self.config.max_shards.min(self.entries.len()).max(1)
    }
}

fn scan_sequential(
    entries: &[IndexedEntry],
    query: &[IndexedDelta],
    config: &CompareConfig,
) -> (EntryMatches, ScanCounters) {
    let mut counters = ScanCounters::default();
    let mut matches = EntryMatches::new();
    for (idx, entry) in entries.iter().enumerate() {
        let slots = dangerous_slots_indexed(query, &entry.slots, config, &mut counters);
        if !slots.is_empty() {
            matches.push((idx, slots));
        }
    }
    (matches, counters)
}

/// Splits `entries` into `shards` contiguous ranges and scans them on
/// scoped worker threads. Only interned data crosses the thread
/// boundary; results come back in entry order, so the output is
/// byte-identical to [`scan_sequential`].
fn scan_parallel(
    entries: &[IndexedEntry],
    query: &[IndexedDelta],
    config: &CompareConfig,
    shards: usize,
) -> (EntryMatches, ScanCounters) {
    let chunk = entries.len().div_ceil(shards);
    let per_shard: Vec<(EntryMatches, ScanCounters)> = std::thread::scope(|scope| {
        let handles: Vec<_> = entries
            .chunks(chunk)
            .enumerate()
            .map(|(shard, slice)| {
                let base = shard * chunk;
                scope.spawn(move || {
                    let mut counters = ScanCounters::default();
                    let mut matches = EntryMatches::new();
                    for (off, entry) in slice.iter().enumerate() {
                        let slots =
                            dangerous_slots_indexed(query, &entry.slots, config, &mut counters);
                        if !slots.is_empty() {
                            matches.push((base + off, slots));
                        }
                    }
                    (matches, counters)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("comparator shard panicked"))
            .collect()
    });
    let mut matches = EntryMatches::new();
    let mut counters = ScanCounters::default();
    for (m, c) in per_shard {
        matches.extend(m);
        counters.prefilter_rejects += c.prefilter_rejects;
        counters.set_merges += c.set_merges;
        counters.cost += c.cost;
    }
    (matches, counters)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dna::chain;
    use std::collections::BTreeSet;

    fn set(chains: &[&[&str]]) -> BTreeSet<Chain> {
        chains.iter().map(|c| chain(c)).collect()
    }

    fn dna_with(slot: usize, removed: &[&[&str]], added: &[&[&str]]) -> Dna {
        let mut dna = Dna::with_slots(8);
        dna.deltas[slot].removed = set(removed);
        dna.deltas[slot].added = set(added);
        dna
    }

    #[test]
    fn interner_round_trips_and_dedups() {
        let mut interner = ChainInterner::new();
        let a = chain(&["boundscheck", "initializedlength"]);
        let b = chain(&["add", "parameter0"]);
        let ia = interner.intern(&a);
        let ib = interner.intern(&b);
        assert_ne!(ia, ib);
        assert_eq!(interner.intern(&a), ia);
        assert_eq!(interner.len(), 2);
        assert_eq!(interner.resolve(ia), Some(&a));
        assert_eq!(interner.resolve(ib), Some(&b));
        assert_eq!(interner.resolve(99), None);
    }

    #[test]
    fn compare_ids_mirrors_compare_chains_thresholds() {
        let cfg = CompareConfig::default();
        // 3 shared ids of min-set 3 → Thr and Ratio both satisfied.
        assert!(compare_ids(&[1, 2, 3], &[1, 2, 3, 9, 10], &cfg));
        // 2 shared < Thr.
        assert!(!compare_ids(&[1, 2], &[1, 2], &cfg));
        // 3 shared of min-set 8 → ratio 37.5 % < 50 %.
        assert!(!compare_ids(
            &[1, 2, 3, 4, 5, 6, 7, 8],
            &[1, 2, 3, 14, 15, 16, 17, 18],
            &cfg
        ));
        // Empty side never matches.
        assert!(!compare_ids(&[], &[], &cfg));
        assert!(!compare_ids(&[1], &[], &cfg));
    }

    #[test]
    fn fingerprint_never_rejects_intersecting_sets() {
        // Any two sets sharing an id share that id's bits.
        for shared in 0..512u32 {
            let a = fingerprint(&[shared, shared + 1000]);
            let b = fingerprint(&[shared, shared + 2000]);
            assert!(prefilter_may_match(a, b), "id {shared}");
        }
    }

    #[test]
    fn query_matches_reference_on_a_small_db() {
        let cfg = CompareConfig { thr: 1, ratio: 0.5 };
        let vdc = dna_with(3, &[&["boundscheck", "initializedlength"]], &[]);
        let other = dna_with(5, &[&["add", "mul"]], &[]);
        let mut db = DnaDatabase::new();
        db.install("CVE-A", "f", vdc.clone());
        db.install("CVE-B", "g", other);
        let mut index = ComparatorIndex::new(IndexConfig::default());
        index.ensure(&db);
        let (matches, receipt) = index.query(&vdc, &cfg);
        assert_eq!(*matches, vec![(0, vec![3])]);
        assert!(!receipt.cache_hit);
        assert!(receipt.cost_cycles > 0);
        // Reference agrees.
        for (i, e) in db.entries().iter().enumerate() {
            let slots = crate::compare::reference(&vdc, &e.dna, &cfg);
            match matches.iter().find(|(idx, _)| *idx == i) {
                Some((_, s)) => assert_eq!(*s, slots),
                None => assert!(slots.is_empty()),
            }
        }
    }

    #[test]
    fn cache_hits_on_repeat_and_invalidates_on_change() {
        let cfg = CompareConfig { thr: 1, ratio: 0.5 };
        let vdc = dna_with(3, &[&["boundscheck", "initializedlength"]], &[]);
        let mut db = DnaDatabase::new();
        db.install("CVE-A", "f", vdc.clone());
        let mut index = ComparatorIndex::new(IndexConfig::default());
        index.ensure(&db);
        let (first, r1) = index.query(&vdc, &cfg);
        let (second, r2) = index.query(&vdc, &cfg);
        assert!(!r1.cache_hit);
        assert!(r2.cache_hit);
        assert_eq!(first, second);
        assert_eq!(index.stats().cache_hits, 1);
        // A database change rebuilds and forgets the cache.
        db.remove_cve("CVE-A");
        assert!(index.ensure(&db) == 0 || index.stats().rebuilds >= 1);
        let (after, r3) = index.query(&vdc, &cfg);
        assert!(!r3.cache_hit);
        assert!(after.is_empty());
    }

    #[test]
    fn parallel_scan_agrees_with_sequential() {
        let cfg = CompareConfig { thr: 1, ratio: 0.5 };
        let mut db = DnaDatabase::new();
        for i in 0..16 {
            let slot = i % 8;
            let label = format!("op{i}");
            let mut dna = Dna::with_slots(8);
            dna.deltas[slot].removed = set(&[
                &[label.as_str(), "x"],
                &["boundscheck", "initializedlength"],
            ]);
            db.install(format!("CVE-{i}"), "f", dna);
        }
        let query = dna_with(
            2,
            &[&["boundscheck", "initializedlength"], &["op2", "x"]],
            &[],
        );
        let mut seq = ComparatorIndex::new(IndexConfig {
            max_cache_entries: 0,
            ..IndexConfig::default()
        });
        seq.ensure(&db);
        let (expected, _) = seq.query(&query, &cfg);
        let mut par = ComparatorIndex::new(IndexConfig {
            parallel_threshold: 0,
            max_shards: 4,
            max_cache_entries: 0,
        });
        par.ensure(&db);
        let (got, receipt) = par.query(&query, &cfg);
        assert_eq!(expected, got);
        assert!(receipt.shards >= 2, "{receipt:?}");
        assert_eq!(par.stats().sharded_scans, 1);
    }

    #[test]
    fn zero_cache_config_disables_caching() {
        let cfg = CompareConfig { thr: 1, ratio: 0.5 };
        let vdc = dna_with(3, &[&["boundscheck", "initializedlength"]], &[]);
        let mut db = DnaDatabase::new();
        db.install("CVE-A", "f", vdc.clone());
        let mut index = ComparatorIndex::new(IndexConfig {
            max_cache_entries: 0,
            ..IndexConfig::default()
        });
        index.ensure(&db);
        let (_, r1) = index.query(&vdc, &cfg);
        let (_, r2) = index.query(&vdc, &cfg);
        assert!(!r1.cache_hit && !r2.cache_hit);
        assert_eq!(index.stats().cache_hits, 0);
    }

    #[test]
    fn poisoned_cache_is_purged_not_served() {
        let cfg = CompareConfig { thr: 1, ratio: 0.5 };
        let vdc = dna_with(3, &[&["boundscheck", "initializedlength"]], &[]);
        let mut db = DnaDatabase::new();
        db.install("CVE-A", "f", vdc.clone());
        let mut index = ComparatorIndex::new(IndexConfig::default());
        index.ensure(&db);
        let (clean, _) = index.query(&vdc, &cfg);
        assert_eq!(*clean, vec![(0, vec![3])]);
        index.poison();
        // The poisoned generation stamp (0) can never match a real
        // database generation, so ensure() must rebuild and purge.
        let cost = index.ensure(&db);
        assert!(cost > 0, "poisoned index must rebuild");
        assert_eq!(index.stats().poison_purges, 1);
        let (after, receipt) = index.query(&vdc, &cfg);
        assert!(!receipt.cache_hit, "garbage verdicts must not be served");
        assert_eq!(*after, *clean);
        // A second ensure with no new poison is a no-op.
        assert_eq!(index.ensure(&db), 0);
        assert_eq!(index.stats().poison_purges, 1);
    }
}

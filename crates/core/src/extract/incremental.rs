//! The incremental Δ-extractor: the fast production path for
//! Algorithm 1, mirroring what [`crate::index`] did for Algorithm 2.
//!
//! [`super::extract_delta`] (the normative reference) enumerates every
//! root-to-leaf chain of *both* snapshots of *every* pass and then
//! materialises, windows, and deduplicates label sub-chains through a
//! `BTreeSet<Chain>` — even for the many passes that changed nothing.
//! This module computes the same deltas, chain for chain, by diffing
//! structurally first and touching strings only where the IR actually
//! changed:
//!
//! 1. **Edge-multiset fast path**: a pass's label-pair edge multisets
//!    ([`super::edge_counts`]) are compared before anything else. Equal
//!    multisets mean both directed changed-edge sets are empty, which
//!    means the reference's `diff_subchains` emits nothing regardless of
//!    what the chains look like — so the delta is empty and chain
//!    enumeration is skipped entirely. Most pipeline slots take this
//!    path on real workloads.
//! 2. **One-sided skip**: removed and added sub-chains depend on
//!    *directed* multiplicity drops. A side whose changed-edge set is
//!    empty contributes nothing, so its snapshot is never enumerated.
//! 3. **Id-path enumeration with cached reuse**: when a side must be
//!    enumerated, the DFS visits nodes in exactly the reference order
//!    with the same [`super::MAX_CHAINS`] / [`super::MAX_CHAIN_LEN`]
//!    caps, but records instruction-id paths instead of label vectors.
//!    Because nothing mutates the IR between two pipeline slots, a
//!    record's `after` snapshot equals the next record's `before`; the
//!    last enumeration is kept and reused when the snapshots compare
//!    equal (full structural equality — reuse can never be wrong).
//! 4. **Interned runs and memoised windows**: changed-edge runs along a
//!    path are materialised once, interned into the shared
//!    [`ChainInterner`], and expanded into their contiguous windows via
//!    a per-run-id cache. Duplicate sub-chains — the overwhelmingly
//!    common case, since every window of every chain through a changed
//!    region repeats — are deduplicated as `u32` ids and resolved back
//!    to label chains exactly once at the end.
//!
//! Exactness argument, step by step: (1) and (2) only ever *conclude
//! empty* when the reference provably emits empty; (3) walks the same
//! paths in the same order under the same caps, so the emitted chain
//! *set* is identical even when the caps bind; (4) is a pure
//! representation change — run → windows is deterministic, and the final
//! `BTreeSet` dedup is order-independent. The differential harness
//! (`tests/extract_differential.rs`) locks this in against tens of
//! thousands of random snapshot pairs.

use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::Arc;

use jitbull_mir::{MirSnapshot, PassTrace};

use crate::dna::{Chain, Dna, PassDelta};
use crate::index::ChainInterner;

use super::{build_graph, changed_edges, edge_counts, DepGraph, MAX_CHAINS, MAX_CHAIN_LEN};

/// Cycles charged per instruction for building and comparing a pass's
/// edge multisets (paid by every traced pass — the fast path's price).
pub const EDGE_DIFF_COST_PER_INSTR: u64 = 6;
/// Cycles charged per instruction of a snapshot whose chains were
/// actually enumerated (id-path DFS, no string materialisation).
pub const ENUM_COST_PER_INSTR: u64 = 24;
/// Cycles charged per id-path scanned for changed-edge runs.
pub const SCAN_COST_PER_CHAIN: u64 = 2;
/// Cycles charged per label when materialising and interning a
/// changed-edge run or one of its windows.
pub const RUN_INTERN_COST_PER_LABEL: u64 = 8;
/// Flat cycles charged when a run's window expansion is served from the
/// per-run-id cache.
pub const RUN_CACHE_HIT_COST: u64 = 2;

/// What one incremental extraction did (telemetry + simulated cost).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExtractReceipt {
    /// Whether the whole-function DNA came from the shared
    /// [`crate::extract::memo::DnaMemo`] (set by the guard, not here).
    pub memo_hit: bool,
    /// Traced passes whose chains were enumerated (≥1 side changed).
    pub passes_enumerated: u64,
    /// Traced passes proven empty by the edge-multiset fast path.
    pub passes_skipped: u64,
    /// Enumerated paths that crossed ≥1 changed edge (materialised).
    pub chains_enumerated: u64,
    /// Enumerated paths with no changed edge (integer scan only).
    pub chains_skipped: u64,
    /// Simulated cycles the extraction consumed.
    pub cost_cycles: u64,
}

/// Cumulative counters across an extractor's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IncrementalStats {
    /// Traces extracted.
    pub traces: u64,
    /// Passes whose chains were enumerated.
    pub passes_enumerated: u64,
    /// Passes proven empty without enumeration.
    pub passes_skipped: u64,
    /// Paths that crossed a changed edge.
    pub chains_enumerated: u64,
    /// Paths with no changed edge.
    pub chains_skipped: u64,
    /// Run window expansions served from the cache.
    pub run_cache_hits: u64,
    /// Snapshot enumerations reused from the previous record.
    pub enum_reuses: u64,
}

/// One enumerated snapshot: its graph labels plus the id paths the
/// reference DFS would have emitted, in emission order.
#[derive(Debug, Clone)]
struct EnumCache {
    snapshot: MirSnapshot,
    labels: HashMap<u32, Arc<str>>,
    paths: Vec<Vec<u32>>,
}

/// The incremental Δ-extractor. Interner and window caches persist
/// across passes, functions, and recompiles, so repeated changed regions
/// (the same GVN rewrite firing on every hot function, say) are
/// materialised once per process, not once per compilation.
#[derive(Debug, Clone, Default)]
pub struct IncrementalExtractor {
    interner: ChainInterner,
    /// run chain id → interned ids of all its contiguous windows (≥2).
    run_windows: HashMap<u32, Arc<Vec<u32>>>,
    /// Last enumerated snapshot, reused when the next record's
    /// counterpart compares structurally equal.
    enum_cache: Option<EnumCache>,
    stats: IncrementalStats,
}

impl IncrementalExtractor {
    /// An empty extractor.
    #[must_use]
    pub fn new() -> Self {
        IncrementalExtractor::default()
    }

    /// Cumulative counters.
    #[must_use]
    pub fn stats(&self) -> IncrementalStats {
        self.stats
    }

    /// Distinct sub-chains interned so far.
    #[must_use]
    pub fn interned_chains(&self) -> usize {
        self.interner.len()
    }

    /// Incremental Algorithm 1 over a whole trace. Chain-for-chain equal
    /// to [`super::extract_dna`].
    pub fn extract_dna(&mut self, trace: &PassTrace, n_slots: usize) -> (Dna, ExtractReceipt) {
        self.stats.traces += 1;
        let mut dna = Dna::with_slots(n_slots);
        let mut receipt = ExtractReceipt::default();
        for record in &trace.records {
            if record.slot < n_slots {
                dna.deltas[record.slot] =
                    self.delta_with_receipt(&record.before, &record.after, &mut receipt);
            }
        }
        (dna, receipt)
    }

    /// Incremental Algorithm 1 for one pass. Chain-for-chain equal to
    /// [`super::extract_delta`].
    pub fn extract_delta(&mut self, before: &MirSnapshot, after: &MirSnapshot) -> PassDelta {
        let mut receipt = ExtractReceipt::default();
        self.delta_with_receipt(before, after, &mut receipt)
    }

    fn delta_with_receipt(
        &mut self,
        before: &MirSnapshot,
        after: &MirSnapshot,
        receipt: &mut ExtractReceipt,
    ) -> PassDelta {
        let work = (before.len() + after.len()) as u64;
        receipt.cost_cycles += work * EDGE_DIFF_COST_PER_INSTR;
        let counts_before = edge_counts(before);
        let counts_after = edge_counts(after);
        if counts_before == counts_after {
            // No label-pair multiplicity moved in either direction, so
            // the reference's changed-edge sets are both empty and its
            // diff emits nothing — whatever the chains are.
            receipt.passes_skipped += 1;
            self.stats.passes_skipped += 1;
            return PassDelta::default();
        }
        receipt.passes_enumerated += 1;
        self.stats.passes_enumerated += 1;
        let removed_changed = changed_edges(&counts_before, &counts_after);
        let added_changed = changed_edges(&counts_after, &counts_before);
        PassDelta {
            removed: self.side(before, &removed_changed, receipt),
            added: self.side(after, &added_changed, receipt),
        }
    }

    /// One delta side: enumerate (or reuse) the snapshot's id paths, then
    /// collect interned windows of every maximal changed-edge run.
    fn side(
        &mut self,
        ir: &MirSnapshot,
        changed: &HashSet<(Arc<str>, Arc<str>)>,
        receipt: &mut ExtractReceipt,
    ) -> BTreeSet<Chain> {
        if changed.is_empty() {
            // An empty changed set can never start a run.
            return BTreeSet::new();
        }
        self.ensure_enumerated(ir, receipt);
        let cache = self.enum_cache.as_ref().expect("just enumerated");
        let unknown: Arc<str> = Arc::from("?");
        let label = |id: u32| {
            cache
                .labels
                .get(&id)
                .cloned()
                .unwrap_or_else(|| unknown.clone())
        };
        // Per-id-pair changed verdicts, memoised so each distinct edge
        // pays the label-pair hash once and every revisit is an integer
        // lookup.
        let mut pair_changed: HashMap<(u32, u32), bool> = HashMap::new();
        let mut out_ids: HashSet<u32> = HashSet::new();
        let mut run_lookups: Vec<(usize, usize)> = Vec::new();
        for path in &cache.paths {
            receipt.cost_cycles += SCAN_COST_PER_CHAIN;
            run_lookups.clear();
            let mut start: Option<usize> = None;
            for k in 0..path.len().saturating_sub(1) {
                let edge_changed = *pair_changed
                    .entry((path[k], path[k + 1]))
                    .or_insert_with(|| changed.contains(&(label(path[k]), label(path[k + 1]))));
                if edge_changed {
                    if start.is_none() {
                        start = Some(k);
                    }
                } else if let Some(s) = start.take() {
                    if k + 1 - s >= 2 {
                        run_lookups.push((s, k + 1));
                    }
                }
            }
            if let Some(s) = start {
                if path.len() - s >= 2 {
                    run_lookups.push((s, path.len()));
                }
            }
            if run_lookups.is_empty() {
                receipt.chains_skipped += 1;
                self.stats.chains_skipped += 1;
                continue;
            }
            receipt.chains_enumerated += 1;
            self.stats.chains_enumerated += 1;
            for &(s, e) in &run_lookups {
                let run: Chain = path[s..e].iter().map(|&id| label(id)).collect();
                receipt.cost_cycles += run.len() as u64 * RUN_INTERN_COST_PER_LABEL;
                let run_id = self.interner.intern(&run);
                let windows = match self.run_windows.get(&run_id) {
                    Some(w) => {
                        receipt.cost_cycles += RUN_CACHE_HIT_COST;
                        self.stats.run_cache_hits += 1;
                        Arc::clone(w)
                    }
                    None => {
                        let mut ids = Vec::new();
                        for len in 2..=run.len() {
                            for start in 0..=(run.len() - len) {
                                let window: Chain = run[start..start + len].to_vec();
                                receipt.cost_cycles +=
                                    window.len() as u64 * RUN_INTERN_COST_PER_LABEL;
                                ids.push(self.interner.intern(&window));
                            }
                        }
                        let ids = Arc::new(ids);
                        self.run_windows.insert(run_id, Arc::clone(&ids));
                        ids
                    }
                };
                out_ids.extend(windows.iter().copied());
            }
        }
        out_ids
            .into_iter()
            .map(|id| self.interner.resolve(id).expect("id just interned").clone())
            .collect()
    }

    /// Makes `enum_cache` hold `ir`'s id paths, reusing the previous
    /// enumeration when the snapshots compare equal (adjacent trace
    /// records share a snapshot: nothing mutates the IR between slots).
    fn ensure_enumerated(&mut self, ir: &MirSnapshot, receipt: &mut ExtractReceipt) {
        if let Some(cache) = &self.enum_cache {
            if cache.snapshot == *ir {
                self.stats.enum_reuses += 1;
                return;
            }
        }
        receipt.cost_cycles += ir.len() as u64 * ENUM_COST_PER_INSTR;
        let graph = build_graph(ir);
        let paths = enumerate_id_paths(&graph);
        self.enum_cache = Some(EnumCache {
            snapshot: ir.clone(),
            labels: graph.labels,
            paths,
        });
    }
}

/// The reference DFS ([`super::make_chains`]) emitting instruction-id
/// paths instead of label chains: same root order, same cycle guard,
/// same emission points, same caps — so the path *set* is identical to
/// the reference's chain set even when [`MAX_CHAINS`] binds.
fn enumerate_id_paths(g: &DepGraph) -> Vec<Vec<u32>> {
    let mut paths = Vec::new();
    for &root in &g.roots {
        let mut path: Vec<u32> = vec![root];
        dfs_ids(g, root, &mut path, &mut paths);
        if paths.len() >= MAX_CHAINS {
            break;
        }
    }
    paths
}

fn dfs_ids(g: &DepGraph, node: u32, path: &mut Vec<u32>, paths: &mut Vec<Vec<u32>>) {
    if paths.len() >= MAX_CHAINS {
        return;
    }
    let deps = g.deps.get(&node).map(Vec::as_slice).unwrap_or(&[]);
    let extendable: Vec<u32> = deps.iter().copied().filter(|d| !path.contains(d)).collect();
    if extendable.is_empty() || path.len() >= MAX_CHAIN_LEN {
        paths.push(path.clone());
        return;
    }
    for d in extendable {
        path.push(d);
        dfs_ids(g, d, path, paths);
        path.pop();
        if paths.len() >= MAX_CHAINS {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jitbull_mir::{PassRecord, SnapInstr};

    fn instr(id: u32, label: &str, operands: &[u32]) -> SnapInstr {
        SnapInstr {
            id,
            label: Arc::from(label),
            operands: operands.to_vec(),
        }
    }

    fn snap(instrs: Vec<SnapInstr>) -> MirSnapshot {
        MirSnapshot { instrs }
    }

    fn guarded() -> MirSnapshot {
        snap(vec![
            instr(0, "parameter0", &[]),
            instr(1, "parameter1", &[]),
            instr(2, "initializedlength", &[0]),
            instr(3, "boundscheck", &[1, 2]),
            instr(4, "loadelement", &[0, 3]),
            instr(5, "return", &[4]),
        ])
    }

    fn unguarded() -> MirSnapshot {
        snap(vec![
            instr(0, "parameter0", &[]),
            instr(1, "parameter1", &[]),
            instr(4, "loadelement", &[0, 1]),
            instr(5, "return", &[4]),
        ])
    }

    #[test]
    fn agrees_with_reference_on_the_worked_example() {
        let before = snap(vec![
            instr(3, "d", &[]),
            instr(2, "c", &[3]),
            instr(1, "b", &[2]),
            instr(0, "a", &[1]),
        ]);
        let after = snap(vec![
            instr(4, "e", &[]),
            instr(2, "c", &[4]),
            instr(1, "b", &[2]),
        ]);
        let mut inc = IncrementalExtractor::new();
        assert_eq!(
            inc.extract_delta(&before, &after),
            super::super::extract_delta(&before, &after)
        );
    }

    #[test]
    fn fast_path_skips_unchanged_passes() {
        let s = guarded();
        let mut inc = IncrementalExtractor::new();
        let delta = inc.extract_delta(&s, &s);
        assert!(delta.is_empty());
        assert_eq!(inc.stats().passes_skipped, 1);
        assert_eq!(inc.stats().passes_enumerated, 0);
    }

    #[test]
    fn renumbering_takes_the_fast_path() {
        let before = snap(vec![
            instr(0, "parameter0", &[]),
            instr(1, "constant:number", &[]),
            instr(2, "add", &[0, 1]),
            instr(3, "return", &[2]),
        ]);
        let after = snap(vec![
            instr(10, "parameter0", &[]),
            instr(11, "constant:number", &[]),
            instr(12, "add", &[10, 11]),
            instr(13, "return", &[12]),
        ]);
        let mut inc = IncrementalExtractor::new();
        assert!(inc.extract_delta(&before, &after).is_empty());
        assert_eq!(inc.stats().passes_skipped, 1);
    }

    #[test]
    fn changed_pass_agrees_and_costs_less_than_reference() {
        let mut inc = IncrementalExtractor::new();
        let delta = inc.extract_delta(&guarded(), &unguarded());
        assert_eq!(delta, super::super::extract_delta(&guarded(), &unguarded()));
        assert!(!delta.is_empty());
        assert_eq!(inc.stats().passes_enumerated, 1);
    }

    #[test]
    fn run_window_cache_hits_on_repeat_deltas() {
        let mut inc = IncrementalExtractor::new();
        let first = inc.extract_delta(&guarded(), &unguarded());
        assert_eq!(inc.stats().run_cache_hits, 0);
        // Same structural change again: every run's windows are cached.
        let second = inc.extract_delta(&guarded(), &unguarded());
        assert_eq!(first, second);
        assert!(inc.stats().run_cache_hits > 0);
    }

    #[test]
    fn adjacent_records_reuse_the_enumeration() {
        let mid = unguarded();
        let end = snap(vec![instr(0, "parameter0", &[]), instr(5, "return", &[0])]);
        let trace = PassTrace {
            function: "f".into(),
            records: vec![
                PassRecord {
                    slot: 0,
                    name: "GVN",
                    before: guarded(),
                    after: mid.clone(),
                },
                PassRecord {
                    slot: 1,
                    name: "DCE",
                    before: mid,
                    after: end,
                },
            ],
        };
        let mut inc = IncrementalExtractor::new();
        let (dna, receipt) = inc.extract_dna(&trace, 4);
        assert_eq!(dna, super::super::extract_dna(&trace, 4));
        assert_eq!(receipt.passes_enumerated, 2);
        // Record 0's `after` enumeration serves record 1's `before`.
        assert!(inc.stats().enum_reuses >= 1, "{:?}", inc.stats());
    }

    #[test]
    fn trace_receipt_counts_fast_and_slow_passes() {
        let s = guarded();
        let trace = PassTrace {
            function: "f".into(),
            records: vec![
                PassRecord {
                    slot: 0,
                    name: "Renumber",
                    before: s.clone(),
                    after: s.clone(),
                },
                PassRecord {
                    slot: 2,
                    name: "GVN",
                    before: s,
                    after: unguarded(),
                },
            ],
        };
        let mut inc = IncrementalExtractor::new();
        let (dna, receipt) = inc.extract_dna(&trace, 4);
        assert_eq!(dna, super::super::extract_dna(&trace, 4));
        assert_eq!(receipt.passes_skipped, 1);
        assert_eq!(receipt.passes_enumerated, 1);
        assert!(receipt.cost_cycles > 0);
        assert!(
            receipt.cost_cycles
                < super::super::trace_work(&trace) * crate::guard::EXTRACT_COST_PER_INSTR,
            "incremental must undercut the reference cost model"
        );
    }

    #[test]
    fn caps_agree_with_reference_on_pathological_graphs() {
        // The wide layered graph from the reference cap test, as the
        // `before` of a pass that removes one leaf edge — the chain cap
        // binds, and the emitted set must still match exactly.
        let mut instrs = Vec::new();
        for i in 0..6u32 {
            instrs.push(instr(i, "leaf", &[]));
        }
        let mut prev: Vec<u32> = (0..6).collect();
        let mut next_id = 6u32;
        for _ in 0..5 {
            let mut cur = Vec::new();
            for _ in 0..6 {
                instrs.push(instr(next_id, "mid", &prev.clone()));
                cur.push(next_id);
                next_id += 1;
            }
            prev = cur;
        }
        instrs.push(instr(next_id, "root", &prev));
        let before = snap(instrs.clone());
        // After: drop one leaf's edge by re-pointing a first-layer node.
        let mut after_instrs = instrs;
        after_instrs[6] = instr(6, "mid", &[1, 2, 3, 4, 5]);
        let after = snap(after_instrs);
        let mut inc = IncrementalExtractor::new();
        assert_eq!(
            inc.extract_delta(&before, &after),
            super::super::extract_delta(&before, &after)
        );
    }
}

//! The shared DNA memo: whole-function extraction results keyed by what
//! determines them, so recompiling a hot function skips Algorithm 1
//! entirely.
//!
//! The optimization pipeline is a pure function of three inputs: the
//! pre-pipeline MIR snapshot, the sequence of slots that actually run
//! (the pass schedule — disabled slots change it), and the engine's
//! vulnerability context (injected incorrect transforms change what
//! passes do). A [`MemoKey`] captures exactly those three, so two traces
//! with equal keys are byte-identical and share one DNA.
//!
//! Safety properties, mirroring the comparator's query cache:
//!
//! * **Collision-proof**: entries are bucketed by a 64-bit structural
//!   hash but verified by full key equality — a collision degrades to a
//!   miss, never to a wrong DNA.
//! * **Invalidation by construction**: a pass-schedule or vulnerability
//!   change produces a *different key*, so stale entries are simply
//!   never looked up again (and are bounded by the wholesale clear).
//! * **Poison recovery**: [`DnaMemo::poison`] models a torn write over
//!   the shared state (the chaos layer fires it at
//!   `FaultSite::ExtractQuery`). Every entry is garbled *and* the memo
//!   is flagged; the next access purges everything before serving, so a
//!   poisoned memo costs one full re-extraction per function, never a
//!   wrong DNA.
//!
//! The handle is `Arc`-shared ([`DnaMemo::clone`] aliases the same
//! store), which is how the serving pool gives every worker the same
//! memo: a function compiled on worker 0 is a memo hit on worker 3, and
//! the memo survives database hot-swaps because it keys on compilation
//! inputs, not database content.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use jitbull_mir::{MirSnapshot, PassTrace};

use crate::dna::{chain, Dna};

/// Cycles charged per pre-pipeline MIR instruction for hashing a memo
/// key.
pub const MEMO_KEY_COST_PER_INSTR: u64 = 1;
/// Flat cycles charged for serving a whole-function DNA from the memo.
pub const MEMO_HIT_COST: u64 = 40;

/// Default bound on memoised functions before a wholesale clear.
pub const DEFAULT_MEMO_ENTRIES: usize = 1024;

/// Everything that determines a traced compilation's DNA.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoKey {
    /// The MIR entering the pipeline (the first record's `before`).
    pre_mir: MirSnapshot,
    /// The slots that ran, in order, with their pass names.
    schedule: Vec<(usize, &'static str)>,
    /// Pipeline length the DNA was sized to.
    n_slots: usize,
    /// Engine context (vulnerability-config fingerprint): the same MIR
    /// under a different set of injected bugs compiles differently.
    context: u64,
}

impl MemoKey {
    /// Builds the key for a trace, or `None` for an untraced (empty)
    /// compilation — there is nothing to memoise there.
    #[must_use]
    pub fn from_trace(trace: &PassTrace, n_slots: usize, context: u64) -> Option<MemoKey> {
        let first = trace.records.first()?;
        Some(MemoKey {
            pre_mir: first.before.clone(),
            schedule: trace.records.iter().map(|r| (r.slot, r.name)).collect(),
            n_slots,
            context,
        })
    }

    /// Pre-pipeline MIR size (cost accounting).
    #[must_use]
    pub fn pre_mir_len(&self) -> usize {
        self.pre_mir.len()
    }

    /// FNV-1a structural hash over all key components. Equal keys always
    /// hash equal; the memo verifies bucket candidates by full equality.
    #[must_use]
    pub fn structural_hash(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        fn mix(h: &mut u64, bytes: &[u8]) {
            for &b in bytes {
                *h ^= u64::from(b);
                *h = h.wrapping_mul(PRIME);
            }
        }
        let mut h = OFFSET;
        mix(&mut h, &(self.n_slots as u64).to_le_bytes());
        mix(&mut h, &self.context.to_le_bytes());
        mix(&mut h, &(self.schedule.len() as u64).to_le_bytes());
        for (slot, name) in &self.schedule {
            mix(&mut h, &(*slot as u64).to_le_bytes());
            mix(&mut h, &(name.len() as u64).to_le_bytes());
            mix(&mut h, name.as_bytes());
        }
        mix(&mut h, &(self.pre_mir.instrs.len() as u64).to_le_bytes());
        for i in &self.pre_mir.instrs {
            mix(&mut h, &i.id.to_le_bytes());
            mix(&mut h, &(i.label.len() as u64).to_le_bytes());
            mix(&mut h, i.label.as_bytes());
            mix(&mut h, &(i.operands.len() as u64).to_le_bytes());
            for o in &i.operands {
                mix(&mut h, &o.to_le_bytes());
            }
        }
        h
    }
}

/// Cumulative counters across a memo's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Lookups performed.
    pub lookups: u64,
    /// Lookups served from the memo.
    pub hits: u64,
    /// Entries stored.
    pub insertions: u64,
    /// Wholesale clears forced by the entry bound.
    pub evictions: u64,
    /// Poisoned states detected and discarded before serving.
    pub poison_purges: u64,
}

#[derive(Debug)]
struct MemoInner {
    /// structural hash → (key, DNA) buckets; key equality guards
    /// against collisions.
    entries: HashMap<u64, Vec<(MemoKey, Dna)>>,
    cached: usize,
    max_entries: usize,
    poisoned: bool,
    stats: MemoStats,
}

impl MemoInner {
    fn purge_if_poisoned(&mut self) {
        if self.poisoned {
            self.entries.clear();
            self.cached = 0;
            self.poisoned = false;
            self.stats.poison_purges += 1;
        }
    }
}

/// A clone-shared, mutex-protected DNA memo (see the module docs).
///
/// # Examples
///
/// ```
/// use jitbull::extract::memo::DnaMemo;
/// let memo = DnaMemo::new();
/// let alias = memo.clone();
/// assert_eq!(memo.len(), alias.len());
/// ```
#[derive(Debug, Clone)]
pub struct DnaMemo {
    inner: Arc<Mutex<MemoInner>>,
}

impl Default for DnaMemo {
    fn default() -> Self {
        DnaMemo::with_capacity(DEFAULT_MEMO_ENTRIES)
    }
}

impl DnaMemo {
    /// A memo with the default entry bound.
    #[must_use]
    pub fn new() -> Self {
        DnaMemo::default()
    }

    /// A memo bounded to `max_entries` functions (`0` disables
    /// memoisation entirely — every lookup misses, nothing is stored).
    #[must_use]
    pub fn with_capacity(max_entries: usize) -> Self {
        DnaMemo {
            inner: Arc::new(Mutex::new(MemoInner {
                entries: HashMap::new(),
                cached: 0,
                max_entries,
                poisoned: false,
                stats: MemoStats::default(),
            })),
        }
    }

    /// The memoised DNA for `key`, if present and the memo is healthy.
    #[must_use]
    pub fn lookup(&self, key: &MemoKey) -> Option<Dna> {
        let mut inner = self.inner.lock().expect("memo lock");
        inner.purge_if_poisoned();
        inner.stats.lookups += 1;
        if inner.max_entries == 0 {
            return None;
        }
        let hash = key.structural_hash();
        let found = inner
            .entries
            .get(&hash)
            .and_then(|bucket| bucket.iter().find(|(k, _)| k == key))
            .map(|(_, dna)| dna.clone());
        if found.is_some() {
            inner.stats.hits += 1;
        }
        found
    }

    /// Stores one extraction result.
    pub fn insert(&self, key: MemoKey, dna: Dna) {
        let mut inner = self.inner.lock().expect("memo lock");
        inner.purge_if_poisoned();
        if inner.max_entries == 0 {
            return;
        }
        if inner.cached >= inner.max_entries {
            inner.entries.clear();
            inner.cached = 0;
            inner.stats.evictions += 1;
        }
        let hash = key.structural_hash();
        let bucket = inner.entries.entry(hash).or_default();
        if bucket.iter().any(|(k, _)| *k == key) {
            return;
        }
        bucket.push((key, dna));
        inner.cached += 1;
        inner.stats.insertions += 1;
    }

    /// Corrupts the memo in place (a torn write over the shared state):
    /// every stored DNA is overwritten with garbage and the memo is
    /// flagged poisoned. The next access — lookup or insert — discards
    /// everything before touching it, so the garbage can never be
    /// served.
    pub fn poison(&self) {
        let mut inner = self.inner.lock().expect("memo lock");
        let mut garbage = Dna::with_slots(1);
        garbage.deltas[0].removed.insert(chain(&["<poisoned>"]));
        for bucket in inner.entries.values_mut() {
            for (_, dna) in bucket.iter_mut() {
                *dna = garbage.clone();
            }
        }
        inner.poisoned = true;
    }

    /// Discards every entry (e.g. on an explicit operator flush).
    pub fn purge(&self) {
        let mut inner = self.inner.lock().expect("memo lock");
        inner.entries.clear();
        inner.cached = 0;
        inner.poisoned = false;
    }

    /// Memoised functions currently stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().expect("memo lock").cached
    }

    /// Whether nothing is memoised.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cumulative counters.
    #[must_use]
    pub fn stats(&self) -> MemoStats {
        self.inner.lock().expect("memo lock").stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jitbull_mir::{PassRecord, SnapInstr};
    use std::sync::Arc as StdArc;

    fn snap(labels: &[&str]) -> MirSnapshot {
        MirSnapshot {
            instrs: labels
                .iter()
                .enumerate()
                .map(|(i, l)| SnapInstr {
                    id: i as u32,
                    label: StdArc::from(*l),
                    operands: if i == 0 { vec![] } else { vec![i as u32 - 1] },
                })
                .collect(),
        }
    }

    fn trace(labels: &[&str], slot: usize, name: &'static str) -> PassTrace {
        PassTrace {
            function: "f".into(),
            records: vec![PassRecord {
                slot,
                name,
                before: snap(labels),
                after: snap(&labels[..labels.len() - 1]),
            }],
        }
    }

    fn some_dna() -> Dna {
        let mut dna = Dna::with_slots(4);
        dna.deltas[1].removed.insert(chain(&["a", "b"]));
        dna
    }

    #[test]
    fn hit_requires_equal_key() {
        let memo = DnaMemo::new();
        let t = trace(&["return", "add", "parameter0"], 2, "GVN");
        let key = MemoKey::from_trace(&t, 8, 7).unwrap();
        assert!(memo.lookup(&key).is_none());
        memo.insert(key.clone(), some_dna());
        assert_eq!(memo.lookup(&key), Some(some_dna()));
        assert_eq!(memo.len(), 1);
        // Different schedule → different key → miss.
        let other =
            MemoKey::from_trace(&trace(&["return", "add", "parameter0"], 3, "DCE"), 8, 7).unwrap();
        assert!(memo.lookup(&other).is_none());
        // Different context → miss.
        let ctx = MemoKey::from_trace(&t, 8, 8).unwrap();
        assert!(memo.lookup(&ctx).is_none());
        // Different pre-MIR → miss.
        let mir =
            MemoKey::from_trace(&trace(&["return", "mul", "parameter0"], 2, "GVN"), 8, 7).unwrap();
        assert!(memo.lookup(&mir).is_none());
        let stats = memo.stats();
        assert_eq!(stats.lookups, 5);
        assert_eq!(stats.hits, 1);
    }

    #[test]
    fn clones_share_the_store() {
        let memo = DnaMemo::new();
        let alias = memo.clone();
        let key = MemoKey::from_trace(&trace(&["return", "add"], 1, "GVN"), 8, 0).unwrap();
        memo.insert(key.clone(), some_dna());
        assert_eq!(alias.lookup(&key), Some(some_dna()));
    }

    #[test]
    fn empty_trace_has_no_key() {
        let t = PassTrace {
            function: "f".into(),
            records: vec![],
        };
        assert!(MemoKey::from_trace(&t, 8, 0).is_none());
    }

    #[test]
    fn zero_capacity_disables_memoisation() {
        let memo = DnaMemo::with_capacity(0);
        let key = MemoKey::from_trace(&trace(&["return", "add"], 1, "GVN"), 8, 0).unwrap();
        memo.insert(key.clone(), some_dna());
        assert!(memo.lookup(&key).is_none());
        assert!(memo.is_empty());
    }

    #[test]
    fn bound_forces_wholesale_clear() {
        let memo = DnaMemo::with_capacity(2);
        for i in 0..3usize {
            let labels: Vec<String> = (0..=i).map(|k| format!("op{k}")).collect();
            let refs: Vec<&str> = labels.iter().map(String::as_str).collect();
            let key = MemoKey::from_trace(&trace(&refs, 1, "GVN"), 8, 0).unwrap();
            memo.insert(key, some_dna());
        }
        assert_eq!(memo.stats().evictions, 1);
        assert_eq!(memo.len(), 1);
    }

    #[test]
    fn poisoned_memo_is_purged_not_served() {
        let memo = DnaMemo::new();
        let key = MemoKey::from_trace(&trace(&["return", "add"], 1, "GVN"), 8, 0).unwrap();
        memo.insert(key.clone(), some_dna());
        memo.poison();
        // The garbled entry must never come back.
        assert!(memo.lookup(&key).is_none());
        assert_eq!(memo.stats().poison_purges, 1);
        // The memo is healthy again and usable.
        memo.insert(key.clone(), some_dna());
        assert_eq!(memo.lookup(&key), Some(some_dna()));
        assert_eq!(memo.stats().poison_purges, 1);
    }

    #[test]
    fn purge_empties_without_counting_poison() {
        let memo = DnaMemo::new();
        let key = MemoKey::from_trace(&trace(&["return", "add"], 1, "GVN"), 8, 0).unwrap();
        memo.insert(key.clone(), some_dna());
        memo.purge();
        assert!(memo.is_empty());
        assert_eq!(memo.stats().poison_purges, 0);
    }
}

//! The Δ extractor (paper §IV-D, Algorithm 1).
//!
//! For a pass `i` with IR snapshots `IR_{i-1}` and `IR_i`:
//!
//! 1. Build instruction dependency graphs `G_{i-1}`, `G_i`: every
//!    instruction with operands enters the graph; an instruction used as an
//!    operand is a *dependency* of its user; roots are instructions no one
//!    uses.
//! 2. Enumerate all root-to-leaf dependency chains.
//! 3. Diff: an edge of an old chain that no longer exists (by opcode-label
//!    pair) after the pass is *removed*; maximal runs of removed edges form
//!    the removed sub-chains `δ_i^-`. Added sub-chains `δ_i^+` are computed
//!    symmetrically.
//!
//! Edges are identified by their *(user-label, operand-label)* pair rather
//! than instruction ids, so pure renumbering passes produce empty deltas
//! and structurally identical exploit variants (renamed variables,
//! different literals) produce identical chains.
//!
//! Divergence from the paper, documented in DESIGN.md: chain enumeration
//! is capped ([`MAX_CHAINS`], [`MAX_CHAIN_LEN`]) because root-to-leaf path
//! counts can grow exponentially in pathological DAGs; the caps are far
//! above what the evaluation workloads produce.

pub mod incremental;
pub mod memo;

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use jitbull_mir::{MirSnapshot, PassTrace};

use crate::dna::{Chain, Dna, PassDelta};

/// Maximum number of chains enumerated per graph.
pub const MAX_CHAINS: usize = 4096;
/// Maximum chain length (nodes).
pub const MAX_CHAIN_LEN: usize = 48;

/// A dependency graph over one snapshot.
pub(crate) struct DepGraph {
    /// node id -> label
    pub(crate) labels: HashMap<u32, Arc<str>>,
    /// node id -> dependencies (operands)
    pub(crate) deps: HashMap<u32, Vec<u32>>,
    /// ids that are not a dependency of anyone
    pub(crate) roots: Vec<u32>,
}

pub(crate) fn build_graph(ir: &MirSnapshot) -> DepGraph {
    let mut labels: HashMap<u32, Arc<str>> = HashMap::new();
    let mut deps: HashMap<u32, Vec<u32>> = HashMap::new();
    let mut is_dep: HashSet<u32> = HashSet::new();
    let mut in_graph: HashSet<u32> = HashSet::new();
    // Label every instruction up front so operand nodes resolve.
    for i in &ir.instrs {
        labels.insert(i.id, i.label.clone());
    }
    for v in &ir.instrs {
        if v.operands.is_empty() {
            continue;
        }
        in_graph.insert(v.id);
        let entry = deps.entry(v.id).or_default();
        for &o in &v.operands {
            entry.push(o);
            is_dep.insert(o);
            in_graph.insert(o);
        }
    }
    let mut roots: Vec<u32> = in_graph
        .iter()
        .copied()
        .filter(|id| !is_dep.contains(id))
        .collect();
    roots.sort_unstable();
    DepGraph {
        labels,
        deps,
        roots,
    }
}

/// Enumerates root-to-leaf chains as (label sequence) paths, capped.
fn make_chains(g: &DepGraph) -> Vec<Chain> {
    let mut chains = Vec::new();
    let unknown: Arc<str> = Arc::from("?");
    for &root in &g.roots {
        let mut path: Vec<u32> = vec![root];
        dfs(g, root, &mut path, &mut chains, &unknown);
        if chains.len() >= MAX_CHAINS {
            break;
        }
    }
    chains
}

fn dfs(g: &DepGraph, node: u32, path: &mut Vec<u32>, chains: &mut Vec<Chain>, unknown: &Arc<str>) {
    if chains.len() >= MAX_CHAINS {
        return;
    }
    let deps = g.deps.get(&node).map(Vec::as_slice).unwrap_or(&[]);
    // Leaf, cycle guard, or depth cap: emit the current path.
    let extendable: Vec<u32> = deps.iter().copied().filter(|d| !path.contains(d)).collect();
    if extendable.is_empty() || path.len() >= MAX_CHAIN_LEN {
        chains.push(
            path.iter()
                .map(|id| g.labels.get(id).cloned().unwrap_or_else(|| unknown.clone()))
                .collect(),
        );
        return;
    }
    for d in extendable {
        path.push(d);
        dfs(g, d, path, chains, unknown);
        path.pop();
        if chains.len() >= MAX_CHAINS {
            return;
        }
    }
}

/// Instruction-level label-pair edge multiset of a snapshot. Counting
/// multiplicities (rather than set membership) keeps a removal visible
/// even when an identically-labeled edge survives elsewhere in the
/// function — e.g. one of two `loadelement→boundscheck` accesses losing
/// its check.
pub(crate) fn edge_counts(ir: &MirSnapshot) -> HashMap<(Arc<str>, Arc<str>), usize> {
    let mut labels: HashMap<u32, Arc<str>> = HashMap::new();
    for i in &ir.instrs {
        labels.insert(i.id, i.label.clone());
    }
    let unknown: Arc<str> = Arc::from("?");
    let mut counts = HashMap::new();
    for i in &ir.instrs {
        for o in &i.operands {
            let from = i.label.clone();
            let to = labels.get(o).cloned().unwrap_or_else(|| unknown.clone());
            *counts.entry((from, to)).or_insert(0) += 1;
        }
    }
    counts
}

/// Edges whose multiplicity strictly dropped from `from` to `to`.
pub(crate) fn changed_edges(
    from: &HashMap<(Arc<str>, Arc<str>), usize>,
    to: &HashMap<(Arc<str>, Arc<str>), usize>,
) -> HashSet<(Arc<str>, Arc<str>)> {
    from.iter()
        .filter(|(k, n)| to.get(*k).copied().unwrap_or(0) < **n)
        .map(|(k, _)| k.clone())
        .collect()
}

/// Collects maximal runs of edges from `chains` that are *not* in
/// `other_edges`, as label sub-chains.
fn diff_subchains(
    chains: &[Chain],
    changed: &HashSet<(Arc<str>, Arc<str>)>,
) -> std::collections::BTreeSet<Chain> {
    let mut out = std::collections::BTreeSet::new();
    let mut emit = |run: &[Arc<str>]| {
        // Every contiguous window of the changed run is a sub-chain; the
        // maximal run itself is the longest of them. Counting all windows
        // gives the comparator the granularity the paper's Thr=3 assumes
        // on real-engine-sized IR.
        for len in 2..=run.len() {
            for start in 0..=(run.len() - len) {
                out.insert(run[start..start + len].to_vec());
            }
        }
    };
    for c in chains {
        let mut run: Vec<Arc<str>> = Vec::new();
        for w in c.windows(2) {
            let edge = (w[0].clone(), w[1].clone());
            if !changed.contains(&edge) {
                if run.len() >= 2 {
                    emit(&run);
                }
                run.clear();
            } else {
                if run.is_empty() {
                    run.push(w[0].clone());
                }
                run.push(w[1].clone());
            }
        }
        if run.len() >= 2 {
            emit(&run);
        }
    }
    out
}

/// Computes `Δ_i = (δ_i^-, δ_i^+)` for one pass from its before/after
/// snapshots (Algorithm 1).
///
/// # Examples
///
/// The paper's worked example — `A→B→C→D` becoming `B→C→E` — yields
/// `δ^- = {A→B, C→D}` and `δ^+ = {C→E}`; see this module's tests.
pub fn extract_delta(before: &MirSnapshot, after: &MirSnapshot) -> PassDelta {
    let g_before = build_graph(before);
    let g_after = build_graph(after);
    let chains_before = make_chains(&g_before);
    let chains_after = make_chains(&g_after);
    let counts_before = edge_counts(before);
    let counts_after = edge_counts(after);
    PassDelta {
        removed: diff_subchains(
            &chains_before,
            &changed_edges(&counts_before, &counts_after),
        ),
        added: diff_subchains(&chains_after, &changed_edges(&counts_after, &counts_before)),
    }
}

/// Extracts the full DNA vector `(Δ_1 … Δ_n)` from a compilation trace.
/// `n_slots` is the pipeline length; slots the trace does not cover stay
/// empty.
pub fn extract_dna(trace: &PassTrace, n_slots: usize) -> Dna {
    let mut dna = Dna::with_slots(n_slots);
    for record in &trace.records {
        if record.slot < n_slots {
            dna.deltas[record.slot] = extract_delta(&record.before, &record.after);
        }
    }
    dna
}

/// Rough work estimate for one trace (instructions touched), used by the
/// guard's cycle-cost accounting.
pub fn trace_work(trace: &PassTrace) -> u64 {
    trace
        .records
        .iter()
        .map(|r| (r.before.len() + r.after.len()) as u64)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use jitbull_mir::SnapInstr;

    fn instr(id: u32, label: &str, operands: &[u32]) -> SnapInstr {
        SnapInstr {
            id,
            label: Arc::from(label),
            operands: operands.to_vec(),
        }
    }

    fn snap(instrs: Vec<SnapInstr>) -> MirSnapshot {
        MirSnapshot { instrs }
    }

    #[test]
    fn paper_worked_example() {
        // Chain A→B→C→D becomes B→C→E.
        // Encode as: ids 0..3 labeled a,b,c,d with a depending on b, etc.
        let before = snap(vec![
            instr(3, "d", &[]),
            instr(2, "c", &[3]),
            instr(1, "b", &[2]),
            instr(0, "a", &[1]),
        ]);
        let after = snap(vec![
            instr(4, "e", &[]),
            instr(2, "c", &[4]),
            instr(1, "b", &[2]),
        ]);
        let delta = extract_delta(&before, &after);
        let removed: Vec<String> = delta.removed.iter().map(|c| c.join(">")).collect();
        let added: Vec<String> = delta.added.iter().map(|c| c.join(">")).collect();
        assert_eq!(removed, vec!["a>b", "c>d"]);
        assert_eq!(added, vec!["c>e"]);
    }

    #[test]
    fn renumbering_produces_empty_delta() {
        let before = snap(vec![
            instr(0, "parameter0", &[]),
            instr(1, "constant:number", &[]),
            instr(2, "add", &[0, 1]),
            instr(3, "return", &[2]),
        ]);
        // Same structure, different ids.
        let after = snap(vec![
            instr(10, "parameter0", &[]),
            instr(11, "constant:number", &[]),
            instr(12, "add", &[10, 11]),
            instr(13, "return", &[12]),
        ]);
        let delta = extract_delta(&before, &after);
        assert!(delta.is_empty(), "{delta:?}");
    }

    #[test]
    fn removing_a_guard_yields_removed_subchain() {
        // return(load(array, check(idx, len(array)))) and the check gets
        // removed, load now takes idx directly.
        let before = snap(vec![
            instr(0, "parameter0", &[]),
            instr(1, "parameter1", &[]),
            instr(2, "initializedlength", &[0]),
            instr(3, "boundscheck", &[1, 2]),
            instr(4, "loadelement", &[0, 3]),
            instr(5, "return", &[4]),
        ]);
        let after = snap(vec![
            instr(0, "parameter0", &[]),
            instr(1, "parameter1", &[]),
            instr(4, "loadelement", &[0, 1]),
            instr(5, "return", &[4]),
        ]);
        let delta = extract_delta(&before, &after);
        assert!(
            delta
                .removed
                .iter()
                .any(|c| c.iter().any(|l| &**l == "boundscheck")),
            "expected a removed sub-chain through boundscheck: {delta:?}"
        );
        assert!(
            delta
                .added
                .iter()
                .any(|c| c.iter().any(|l| &**l == "loadelement")),
            "loadelement gained a new direct edge: {delta:?}"
        );
    }

    #[test]
    fn identical_snapshots_empty_delta() {
        let s = snap(vec![
            instr(0, "parameter0", &[]),
            instr(1, "neg", &[0]),
            instr(2, "return", &[1]),
        ]);
        assert!(extract_delta(&s, &s).is_empty());
    }

    #[test]
    fn cycles_do_not_hang() {
        // Phi cycles: 1 depends on 2, 2 depends on 1.
        let s = snap(vec![
            instr(1, "phi", &[2]),
            instr(2, "add", &[1]),
            instr(3, "return", &[1]),
        ]);
        let g = build_graph(&s);
        let chains = make_chains(&g);
        assert!(!chains.is_empty());
        for c in &chains {
            assert!(c.len() <= MAX_CHAIN_LEN);
        }
    }

    #[test]
    fn chain_cap_is_respected() {
        // A wide layered graph that would explode combinatorially.
        let mut instrs = Vec::new();
        // Layer 0: 8 leaves.
        for i in 0..8u32 {
            instrs.push(instr(i, "leaf", &[]));
        }
        // 6 layers, each node depends on all nodes of the previous layer.
        let mut prev: Vec<u32> = (0..8).collect();
        let mut next_id = 8u32;
        for _ in 0..6 {
            let mut cur = Vec::new();
            for _ in 0..8 {
                instrs.push(instr(next_id, "mid", &prev.clone()));
                cur.push(next_id);
                next_id += 1;
            }
            prev = cur;
        }
        instrs.push(instr(next_id, "root", &prev));
        let g = build_graph(&snap(instrs));
        let chains = make_chains(&g);
        assert!(chains.len() <= MAX_CHAINS);
    }

    #[test]
    fn extract_dna_covers_slots() {
        use jitbull_mir::{PassRecord, PassTrace};
        let before = snap(vec![
            instr(0, "parameter0", &[]),
            instr(1, "neg", &[0]),
            instr(2, "return", &[1]),
        ]);
        let after = snap(vec![instr(0, "parameter0", &[]), instr(2, "return", &[0])]);
        let trace = PassTrace {
            function: "f".into(),
            records: vec![PassRecord {
                slot: 2,
                name: "DCE",
                before: before.clone(),
                after,
            }],
        };
        let dna = extract_dna(&trace, 5);
        assert_eq!(dna.len(), 5);
        assert!(!dna.deltas[2].is_empty());
        assert!(dna.deltas[0].is_empty());
        assert!(trace_work(&trace) > 0);
    }
}

//! # jitbull — Go/No-Go policy for JIT engines
//!
//! Reproduction of the core contribution of *JITBULL: Securing JavaScript
//! Runtime with a Go/No-Go Policy for JIT Engine* (DSN 2024): protect a JS
//! runtime during a vulnerability window by fingerprinting what each JIT
//! optimization pass *did* to a function's IR (its **JIT DNA**) and
//! comparing it against the DNA of known vulnerability demonstrator codes
//! (VDCs).
//!
//! The crate is engine-agnostic: it consumes only
//! [`jitbull_mir::PassTrace`] — a sequence of before/after IR snapshots —
//! mirroring the paper's claim that the approach ports to any pass-based
//! JIT (IonMonkey, TurboFan, Chakra).
//!
//! Modules map one-to-one onto the paper's architecture:
//!
//! * [`extract`] — the **Δ extractor** (§IV-D, Algorithm 1): dependency
//!   graph → root-to-leaf chains → removed/added sub-chains per pass.
//!   [`extract::incremental`] is the fast structural-diff implementation
//!   and [`extract::memo`] the shared DNA memo cache in front of it; the
//!   top-level functions remain the normative oracle.
//! * [`dna`] — `Δ_i` / DNA vector types and their textual serialisation
//!   (the update format a maintainer would ship to users).
//! * [`compare`] — the **Δ comparator** (§IV-E, Algorithm 2) with the
//!   paper's `Thr = 3`, `Ratio = 50 %` defaults.
//! * [`db`] — the VDC DNA database (install on disclosure, remove on
//!   patch).
//! * [`policy`] — the go / recompile-without-passes / no-JIT decision
//!   (§V's three scenarios).
//! * [`index`] — the fast comparator pipeline (chain interner, Bloom-style
//!   fingerprint prefilter, DNA-keyed query cache, opt-in sharded scan)
//!   that must agree with [`compare`] on every verdict.
//! * [`guard`] — the engine-facing facade gluing the above together, with
//!   the analysis cycle-cost accounting used by the benchmark harness.
//!
//! # Examples
//!
//! ```
//! use jitbull::{Guard, DnaDatabase, CompareConfig};
//!
//! let mut guard = Guard::new(DnaDatabase::new(), CompareConfig::default());
//! // With an empty database the guard is disabled: zero overhead.
//! assert!(!guard.enabled());
//! ```

pub mod compare;
pub mod db;
pub mod dna;
pub mod error;
pub mod extract;
pub mod guard;
pub mod index;
pub mod policy;

pub use compare::{compare_chains, CompareConfig};
pub use db::{DnaDatabase, LoadMode, LoadReport, VdcEntry};
pub use dna::{Chain, Dna, PassDelta};
pub use error::DbError;
pub use extract::incremental::{ExtractReceipt, IncrementalExtractor, IncrementalStats};
pub use extract::memo::{DnaMemo, MemoKey, MemoStats};
pub use extract::{extract_delta, extract_dna};
pub use guard::{Analysis, ComparatorMode, DbMut, ExtractorMode, Guard};
pub use index::{ChainInterner, ComparatorIndex, IndexConfig, IndexStats, QueryReceipt};
pub use policy::{decide, decide_observed, Decision};

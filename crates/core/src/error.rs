//! Typed database errors.
//!
//! The maintainer-update pipeline has two failure domains: the wire
//! format can be malformed (a parse error, pinned to a line) and the
//! file it travels in can be unreadable (an I/O error). Before this type
//! existed, [`crate::DnaDatabase::from_text`] reported the former as a
//! bare `String` and [`crate::DnaDatabase::load_from`] squeezed it into
//! `io::ErrorKind::InvalidData` — which meant a serving pool reloading a
//! VDC feed mid-traffic could not tell "retry the read" apart from "the
//! vendor shipped a corrupt update" without string matching. [`DbError`]
//! carries the distinction, and [`DbError::kind`] gives telemetry a
//! stable label to count reload failures under.

use std::fmt;

/// Why a DNA database (or a single DNA vector) failed to load.
#[derive(Debug)]
pub enum DbError {
    /// The underlying file could not be read.
    Io(std::io::Error),
    /// The update text is malformed. `line` is 1-based within the text
    /// that was being parsed; database loads rebase entry-body errors to
    /// the absolute file line.
    Parse {
        /// 1-based line number the parser stopped at (0 when unknown).
        line: usize,
        /// What was wrong with it.
        msg: String,
    },
}

impl DbError {
    /// Builds a parse error pinned to a 1-based line.
    #[must_use]
    pub fn parse(line: usize, msg: impl Into<String>) -> Self {
        DbError::Parse {
            line,
            msg: msg.into(),
        }
    }

    /// Stable lower-case label for metrics (`"io"` / `"parse"`).
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            DbError::Io(_) => "io",
            DbError::Parse { .. } => "parse",
        }
    }
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Io(e) => write!(f, "database i/o error: {e}"),
            DbError::Parse { line: 0, msg } => write!(f, "database parse error: {msg}"),
            DbError::Parse { line, msg } => {
                write!(f, "database parse error at line {line}: {msg}")
            }
        }
    }
}

impl std::error::Error for DbError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DbError::Io(e) => Some(e),
            DbError::Parse { .. } => None,
        }
    }
}

impl From<std::io::Error> for DbError {
    fn from(e: std::io::Error) -> Self {
        DbError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_and_display_are_stable() {
        let io = DbError::from(std::io::Error::new(std::io::ErrorKind::NotFound, "gone"));
        assert_eq!(io.kind(), "io");
        assert!(io.to_string().contains("gone"));
        let parse = DbError::parse(3, "bad sign");
        assert_eq!(parse.kind(), "parse");
        assert_eq!(
            parse.to_string(),
            "database parse error at line 3: bad sign"
        );
        let unpinned = DbError::parse(0, "content before first @entry");
        assert!(!unpinned.to_string().contains("line"));
    }

    #[test]
    fn io_errors_keep_their_source() {
        use std::error::Error as _;
        let io = DbError::from(std::io::Error::other("x"));
        assert!(io.source().is_some());
        assert!(DbError::parse(1, "y").source().is_none());
    }
}

//! The VDC DNA database.
//!
//! Entries are installed when a vulnerability is disclosed (one entry per
//! JITed function of the demonstrator code) and removed when the security
//! patch lands — the database therefore holds only the vulnerabilities in
//! their *vulnerability window*, typically one or two at a time (§VI-D).

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::dna::Dna;
use crate::error::DbError;

/// Process-wide generation source. Every observable content change of
/// any [`DnaDatabase`] draws a fresh value, so two *different* database
/// states can never share a generation — which is what lets the
/// comparator index treat generation equality as cache validity even
/// across wholesale database replacement (`*guard.db_mut() = other`).
static NEXT_GENERATION: AtomicU64 = AtomicU64::new(1);

fn next_generation() -> u64 {
    NEXT_GENERATION.fetch_add(1, Ordering::Relaxed)
}

/// One demonstrator-code function's DNA, tagged by vulnerability.
#[derive(Debug, Clone, PartialEq)]
pub struct VdcEntry {
    /// Vulnerability identifier (e.g. `CVE-2019-17026`).
    pub cve: String,
    /// Which JITed function of the demonstrator this DNA came from.
    pub function: String,
    /// The extracted DNA vector.
    pub dna: Dna,
}

/// The in-memory DNA database, preloaded at runtime startup (§V).
#[derive(Debug, Clone)]
pub struct DnaDatabase {
    entries: Vec<VdcEntry>,
    /// Bumped (from [`next_generation`]) on every content change; the
    /// comparator index compares this against the generation it was
    /// built from to decide whether its interned entries and cached
    /// verdicts are still valid.
    generation: u64,
}

impl Default for DnaDatabase {
    fn default() -> Self {
        DnaDatabase::new()
    }
}

/// Equality is content equality — two databases holding the same entries
/// compare equal regardless of their mutation history.
impl PartialEq for DnaDatabase {
    fn eq(&self, other: &Self) -> bool {
        self.entries == other.entries
    }
}

impl DnaDatabase {
    /// Creates an empty database.
    pub fn new() -> Self {
        DnaDatabase {
            entries: Vec::new(),
            generation: next_generation(),
        }
    }

    /// The current generation. Strictly increases across this database's
    /// content changes; unique process-wide per content change (trivial
    /// installs and no-op removals leave it untouched).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Installs one VDC function's DNA. Trivial DNA (a compilation whose
    /// passes changed nothing) is skipped — it would match everything and
    /// carries no signal.
    pub fn install(&mut self, cve: impl Into<String>, function: impl Into<String>, dna: Dna) {
        if dna.is_trivial() {
            return;
        }
        self.entries.push(VdcEntry {
            cve: cve.into(),
            function: function.into(),
            dna,
        });
        self.generation = next_generation();
    }

    /// Removes every entry belonging to a vulnerability (models applying
    /// its patch). Returns how many entries were removed.
    pub fn remove_cve(&mut self, cve: &str) -> usize {
        let before = self.entries.len();
        self.entries.retain(|e| e.cve != cve);
        let removed = before - self.entries.len();
        if removed > 0 {
            self.generation = next_generation();
        }
        removed
    }

    /// Unconditionally draws a fresh generation, marking the content as
    /// potentially changed.
    ///
    /// [`crate::Guard::db_mut`] calls this when its borrow ends: any code
    /// path that *could* have mutated the database through a mutable
    /// borrow invalidates downstream verdict caches, whether or not it
    /// went through [`DnaDatabase::install`] / [`DnaDatabase::remove_cve`].
    /// Conservative (a read-only mutable borrow also invalidates), but it
    /// makes a stale cached verdict impossible by construction.
    pub fn touch(&mut self) {
        self.generation = next_generation();
    }

    /// An immutable, shareable snapshot of the current database state.
    ///
    /// The snapshot keeps this database's generation, so a comparator
    /// index built against either is valid for both — they hold the same
    /// content. Chains inside entries are `Arc<str>`-backed, so the clone
    /// shares label storage; the per-entry structure is copied. Snapshots
    /// are `Send + Sync`: this is the hand-off type the serving pool
    /// publishes to worker threads on a VDC hot-swap.
    #[must_use]
    pub fn snapshot(&self) -> std::sync::Arc<DnaDatabase> {
        std::sync::Arc::new(self.clone())
    }

    /// All entries.
    pub fn entries(&self) -> &[VdcEntry] {
        &self.entries
    }

    /// Number of entries (functions, not vulnerabilities).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the database is empty (JITBULL disabled — zero overhead).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Distinct vulnerability ids present.
    pub fn cves(&self) -> Vec<&str> {
        let mut cves: Vec<&str> = self.entries.iter().map(|e| e.cve.as_str()).collect();
        cves.dedup();
        cves.sort_unstable();
        cves.dedup();
        cves
    }

    /// Serialises the whole database to the maintainer-update text format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            out.push_str(&format!("@entry {} {}\n", e.cve, e.function));
            out.push_str(&e.dna.to_text());
        }
        out
    }

    /// Parses [`DnaDatabase::to_text`] output.
    ///
    /// # Errors
    ///
    /// Returns a [`DbError::Parse`] for the first malformed line. Entry
    /// bodies are parsed by [`Dna::from_text`], whose line numbers count
    /// from the start of that body.
    pub fn from_text(text: &str, n_slots: usize) -> Result<Self, DbError> {
        let mut db = DnaDatabase::new();
        let mut current: Option<(String, String, String)> = None;
        let flush = |db: &mut DnaDatabase,
                     cur: &mut Option<(String, String, String)>|
         -> Result<(), DbError> {
            if let Some((cve, function, body)) = cur.take() {
                let dna = Dna::from_text(&body, n_slots)?;
                db.entries.push(VdcEntry { cve, function, dna });
            }
            Ok(())
        };
        for (ln, line) in text.lines().enumerate() {
            if let Some(rest) = line.strip_prefix("@entry ") {
                flush(&mut db, &mut current)?;
                let mut parts = rest.splitn(2, ' ');
                let cve = parts.next().unwrap_or_default().to_owned();
                let function = parts
                    .next()
                    .ok_or_else(|| {
                        DbError::parse(ln + 1, format!("malformed @entry line: {line}"))
                    })?
                    .to_owned();
                current = Some((cve, function, String::new()));
            } else if let Some((_, _, body)) = &mut current {
                body.push_str(line);
                body.push('\n');
            } else if !line.trim().is_empty() {
                return Err(DbError::parse(
                    ln + 1,
                    format!("content before first @entry: {line}"),
                ));
            }
        }
        flush(&mut db, &mut current)?;
        Ok(db)
    }
}

impl DnaDatabase {
    /// Writes the database to a file in the update text format.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save_to(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_text())
    }

    /// Reads a database previously written by [`DnaDatabase::save_to`].
    ///
    /// # Errors
    ///
    /// Returns [`DbError::Io`] when the file cannot be read and
    /// [`DbError::Parse`] when its content is malformed — the caller can
    /// tell "retry the read" apart from "the update itself is corrupt".
    pub fn load_from(path: impl AsRef<std::path::Path>, n_slots: usize) -> Result<Self, DbError> {
        let text = std::fs::read_to_string(path)?;
        DnaDatabase::from_text(&text, n_slots)
    }
}

impl fmt::Display for DnaDatabase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dna database: {} entries across {} vulnerabilities",
            self.len(),
            self.cves().len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dna::chain;

    fn sample_dna() -> Dna {
        let mut dna = Dna::with_slots(8);
        dna.deltas[3]
            .removed
            .insert(chain(&["boundscheck", "initializedlength", "unbox:array"]));
        dna
    }

    #[test]
    fn install_and_remove() {
        let mut db = DnaDatabase::new();
        assert!(db.is_empty());
        db.install("CVE-2019-17026", "trigger", sample_dna());
        db.install("CVE-2019-17026", "helper", sample_dna());
        db.install("CVE-2019-9810", "pwn", sample_dna());
        assert_eq!(db.len(), 3);
        assert_eq!(db.cves(), vec!["CVE-2019-17026", "CVE-2019-9810"]);
        assert_eq!(db.remove_cve("CVE-2019-17026"), 2);
        assert_eq!(db.len(), 1);
        assert!(!db.is_empty());
    }

    #[test]
    fn trivial_dna_is_not_installed() {
        let mut db = DnaDatabase::new();
        let g0 = db.generation();
        db.install("CVE-X", "f", Dna::with_slots(8));
        assert!(db.is_empty());
        // A skipped install leaves the content — and the generation —
        // untouched.
        assert_eq!(db.generation(), g0);
    }

    #[test]
    fn generation_moves_with_content_only() {
        let mut db = DnaDatabase::new();
        let g0 = db.generation();
        db.install("CVE-1", "f", sample_dna());
        let g1 = db.generation();
        assert!(g1 > g0);
        assert_eq!(db.remove_cve("CVE-nope"), 0);
        assert_eq!(db.generation(), g1, "no-op removal must not invalidate");
        assert_eq!(db.remove_cve("CVE-1"), 1);
        assert!(db.generation() > g1);
        // Distinct instances never share a generation.
        assert_ne!(
            DnaDatabase::new().generation(),
            DnaDatabase::new().generation()
        );
        // Equality ignores generations.
        assert_eq!(DnaDatabase::new(), DnaDatabase::new());
    }

    #[test]
    fn text_round_trip() {
        let mut db = DnaDatabase::new();
        db.install("CVE-2019-17026", "trigger", sample_dna());
        db.install("CVE-2019-9810", "pwn", sample_dna());
        let text = db.to_text();
        let back = DnaDatabase::from_text(&text, 8).unwrap();
        assert_eq!(db, back);
    }

    #[test]
    fn from_text_rejects_garbage() {
        assert!(DnaDatabase::from_text("not an entry", 8).is_err());
        assert!(DnaDatabase::from_text("@entry onlyone", 8).is_err());
    }

    #[test]
    fn file_round_trip() {
        let mut db = DnaDatabase::new();
        db.install("CVE-2019-17026", "trigger", sample_dna());
        let dir = std::env::temp_dir().join("jitbull-db-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("update.dnadb");
        db.save_to(&path).unwrap();
        let back = DnaDatabase::load_from(&path, 8).unwrap();
        assert_eq!(db, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_garbage_file() {
        let dir = std::env::temp_dir().join("jitbull-db-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.dnadb");
        std::fs::write(&path, "not a database").unwrap();
        assert!(DnaDatabase::load_from(&path, 8).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn snapshot_shares_generation_and_content() {
        let mut db = DnaDatabase::new();
        db.install("CVE-1", "f", sample_dna());
        let snap = db.snapshot();
        assert_eq!(*snap, db);
        assert_eq!(snap.generation(), db.generation());
        // Mutating the original does not disturb the snapshot.
        db.remove_cve("CVE-1");
        assert_eq!(snap.len(), 1);
        assert!(db.generation() > snap.generation());
    }

    /// The database (and everything inside it) must be shareable across
    /// threads: the serving pool publishes `Arc<DnaDatabase>` snapshots
    /// to worker threads, and a guard must be movable into a worker.
    #[test]
    fn dna_types_are_thread_safe() {
        fn send_sync<T: Send + Sync>() {}
        fn send<T: Send>() {}
        send_sync::<DnaDatabase>();
        send_sync::<VdcEntry>();
        send_sync::<Dna>();
        send_sync::<crate::Analysis>();
        send_sync::<crate::CompareConfig>();
        send::<crate::Guard>();
    }

    #[test]
    fn display_summarises() {
        let mut db = DnaDatabase::new();
        db.install("CVE-1", "f", sample_dna());
        assert_eq!(
            db.to_string(),
            "dna database: 1 entries across 1 vulnerabilities"
        );
    }
}

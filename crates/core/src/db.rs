//! The VDC DNA database.
//!
//! Entries are installed when a vulnerability is disclosed (one entry per
//! JITed function of the demonstrator code) and removed when the security
//! patch lands — the database therefore holds only the vulnerabilities in
//! their *vulnerability window*, typically one or two at a time (§VI-D).

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use jitbull_chaos::{FaultInjector, FaultKind, FaultSite};

use crate::dna::Dna;
use crate::error::DbError;

/// How [`DnaDatabase::from_text_checked`] treats malformed entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LoadMode {
    /// Any malformed line aborts the whole load (the default — a corrupt
    /// maintainer update must never be half-applied silently).
    #[default]
    Strict,
    /// Malformed VDC entries are skipped; each skip is collected as a
    /// line-numbered warning in the [`LoadReport`]. The well-formed
    /// remainder still loads — the degraded-but-serving recovery mode.
    Partial,
}

/// What a checked load did: entries loaded, entries skipped, and the
/// line-numbered reasons for every skip. Warnings carry *absolute* file
/// line numbers (entry-body parse errors are rebased from body-relative
/// to file position), so a maintainer can go straight to the bad line.
#[derive(Debug, Default)]
pub struct LoadReport {
    /// One [`DbError::Parse`] per skipped entry / stray line, in file
    /// order. Empty under [`LoadMode::Strict`] (strict aborts instead).
    pub warnings: Vec<DbError>,
    /// Entries parsed and installed.
    pub loaded: usize,
    /// Entries discarded as malformed.
    pub skipped: usize,
}

impl LoadReport {
    /// Whether the load was pristine (nothing skipped, no warnings).
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.warnings.is_empty() && self.skipped == 0
    }
}

/// Rebases an entry-body parse error (lines counted from the body start)
/// to the absolute file line. `body_start` is the 1-based file line of
/// the body's first line; an unpinned error (line 0) is pinned to the
/// `@entry` header just above it.
fn rebase(e: DbError, body_start: usize) -> DbError {
    match e {
        DbError::Parse { line: 0, msg } => DbError::Parse {
            line: body_start.saturating_sub(1),
            msg,
        },
        DbError::Parse { line, msg } => DbError::Parse {
            line: body_start + line - 1,
            msg,
        },
        other => other,
    }
}

/// Models a torn read: keeps the first half of the lines and appends a
/// malformed `@entry` header, so a strict parse can never mistake the
/// prefix for a complete update.
fn torn_text(text: &str) -> String {
    let lines: Vec<&str> = text.lines().collect();
    let mut out = String::new();
    for line in &lines[..lines.len() / 2] {
        out.push_str(line);
        out.push('\n');
    }
    out.push_str("@entry torn\n");
    out
}

/// Process-wide generation source. Every observable content change of
/// any [`DnaDatabase`] draws a fresh value, so two *different* database
/// states can never share a generation — which is what lets the
/// comparator index treat generation equality as cache validity even
/// across wholesale database replacement (`*guard.db_mut() = other`).
static NEXT_GENERATION: AtomicU64 = AtomicU64::new(1);

fn next_generation() -> u64 {
    NEXT_GENERATION.fetch_add(1, Ordering::Relaxed)
}

/// One demonstrator-code function's DNA, tagged by vulnerability.
#[derive(Debug, Clone, PartialEq)]
pub struct VdcEntry {
    /// Vulnerability identifier (e.g. `CVE-2019-17026`).
    pub cve: String,
    /// Which JITed function of the demonstrator this DNA came from.
    pub function: String,
    /// The extracted DNA vector.
    pub dna: Dna,
}

/// The in-memory DNA database, preloaded at runtime startup (§V).
#[derive(Debug, Clone)]
pub struct DnaDatabase {
    entries: Vec<VdcEntry>,
    /// Bumped (from [`next_generation`]) on every content change; the
    /// comparator index compares this against the generation it was
    /// built from to decide whether its interned entries and cached
    /// verdicts are still valid.
    generation: u64,
}

impl Default for DnaDatabase {
    fn default() -> Self {
        DnaDatabase::new()
    }
}

/// Equality is content equality — two databases holding the same entries
/// compare equal regardless of their mutation history.
impl PartialEq for DnaDatabase {
    fn eq(&self, other: &Self) -> bool {
        self.entries == other.entries
    }
}

impl DnaDatabase {
    /// Creates an empty database.
    pub fn new() -> Self {
        DnaDatabase {
            entries: Vec::new(),
            generation: next_generation(),
        }
    }

    /// The current generation. Strictly increases across this database's
    /// content changes; unique process-wide per content change (trivial
    /// installs and no-op removals leave it untouched).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Installs one VDC function's DNA. Trivial DNA (a compilation whose
    /// passes changed nothing) is skipped — it would match everything and
    /// carries no signal.
    pub fn install(&mut self, cve: impl Into<String>, function: impl Into<String>, dna: Dna) {
        if dna.is_trivial() {
            return;
        }
        self.entries.push(VdcEntry {
            cve: cve.into(),
            function: function.into(),
            dna,
        });
        self.generation = next_generation();
    }

    /// Removes every entry belonging to a vulnerability (models applying
    /// its patch). Returns how many entries were removed.
    pub fn remove_cve(&mut self, cve: &str) -> usize {
        let before = self.entries.len();
        self.entries.retain(|e| e.cve != cve);
        let removed = before - self.entries.len();
        if removed > 0 {
            self.generation = next_generation();
        }
        removed
    }

    /// Unconditionally draws a fresh generation, marking the content as
    /// potentially changed.
    ///
    /// [`crate::Guard::db_mut`] calls this when its borrow ends: any code
    /// path that *could* have mutated the database through a mutable
    /// borrow invalidates downstream verdict caches, whether or not it
    /// went through [`DnaDatabase::install`] / [`DnaDatabase::remove_cve`].
    /// Conservative (a read-only mutable borrow also invalidates), but it
    /// makes a stale cached verdict impossible by construction.
    pub fn touch(&mut self) {
        self.generation = next_generation();
    }

    /// An immutable, shareable snapshot of the current database state.
    ///
    /// The snapshot keeps this database's generation, so a comparator
    /// index built against either is valid for both — they hold the same
    /// content. Chains inside entries are `Arc<str>`-backed, so the clone
    /// shares label storage; the per-entry structure is copied. Snapshots
    /// are `Send + Sync`: this is the hand-off type the serving pool
    /// publishes to worker threads on a VDC hot-swap.
    #[must_use]
    pub fn snapshot(&self) -> std::sync::Arc<DnaDatabase> {
        std::sync::Arc::new(self.clone())
    }

    /// All entries.
    pub fn entries(&self) -> &[VdcEntry] {
        &self.entries
    }

    /// Number of entries (functions, not vulnerabilities).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the database is empty (JITBULL disabled — zero overhead).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Distinct vulnerability ids present.
    pub fn cves(&self) -> Vec<&str> {
        let mut cves: Vec<&str> = self.entries.iter().map(|e| e.cve.as_str()).collect();
        cves.dedup();
        cves.sort_unstable();
        cves.dedup();
        cves
    }

    /// Serialises the whole database to the maintainer-update text format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            out.push_str(&format!("@entry {} {}\n", e.cve, e.function));
            out.push_str(&e.dna.to_text());
        }
        out
    }

    /// Parses [`DnaDatabase::to_text`] output under [`LoadMode::Strict`].
    ///
    /// # Errors
    ///
    /// Returns a [`DbError::Parse`] for the first malformed line, with
    /// the absolute file line number.
    pub fn from_text(text: &str, n_slots: usize) -> Result<Self, DbError> {
        DnaDatabase::from_text_checked(text, n_slots, LoadMode::Strict).map(|(db, _)| db)
    }

    /// Parses [`DnaDatabase::to_text`] output under an explicit
    /// [`LoadMode`], reporting what was loaded and what was skipped.
    ///
    /// # Errors
    ///
    /// Under [`LoadMode::Strict`], any malformed line aborts with a
    /// [`DbError::Parse`] (absolute file line). Under
    /// [`LoadMode::Partial`], malformed entries become [`LoadReport`]
    /// warnings instead and the call only fails on I/O-level problems
    /// (none for in-memory text).
    pub fn from_text_checked(
        text: &str,
        n_slots: usize,
        mode: LoadMode,
    ) -> Result<(Self, LoadReport), DbError> {
        let mut db = DnaDatabase::new();
        let mut report = LoadReport::default();
        // (cve, function, body, 1-based file line the body starts at)
        let mut current: Option<(String, String, String, usize)> = None;
        // Partial mode: body lines of a malformed entry being discarded.
        let mut skipping = false;
        fn flush(
            db: &mut DnaDatabase,
            cur: &mut Option<(String, String, String, usize)>,
            n_slots: usize,
            mode: LoadMode,
            report: &mut LoadReport,
        ) -> Result<(), DbError> {
            if let Some((cve, function, body, body_start)) = cur.take() {
                match Dna::from_text(&body, n_slots) {
                    Ok(dna) => {
                        db.entries.push(VdcEntry { cve, function, dna });
                        report.loaded += 1;
                    }
                    Err(e) => {
                        let e = rebase(e, body_start);
                        match mode {
                            LoadMode::Strict => return Err(e),
                            LoadMode::Partial => {
                                report.warnings.push(e);
                                report.skipped += 1;
                            }
                        }
                    }
                }
            }
            Ok(())
        }
        for (ln, line) in text.lines().enumerate() {
            let file_line = ln + 1;
            if let Some(rest) = line.strip_prefix("@entry ") {
                flush(&mut db, &mut current, n_slots, mode, &mut report)?;
                skipping = false;
                let mut parts = rest.splitn(2, ' ');
                let cve = parts.next().unwrap_or_default().to_owned();
                match parts.next() {
                    Some(function) => {
                        current = Some((cve, function.to_owned(), String::new(), file_line + 1));
                    }
                    None => {
                        let e = DbError::parse(file_line, format!("malformed @entry line: {line}"));
                        match mode {
                            LoadMode::Strict => return Err(e),
                            LoadMode::Partial => {
                                report.warnings.push(e);
                                report.skipped += 1;
                                skipping = true;
                            }
                        }
                    }
                }
            } else if let Some((_, _, body, _)) = &mut current {
                body.push_str(line);
                body.push('\n');
            } else if skipping || line.trim().is_empty() {
                // Body of an already-reported malformed entry, or a blank
                // leading line — nothing more to say about either.
            } else {
                let e = DbError::parse(file_line, format!("content before first @entry: {line}"));
                match mode {
                    LoadMode::Strict => return Err(e),
                    LoadMode::Partial => report.warnings.push(e),
                }
            }
        }
        flush(&mut db, &mut current, n_slots, mode, &mut report)?;
        Ok((db, report))
    }

    /// [`DnaDatabase::from_text_checked`] behind a fault-injection gate:
    /// one [`FaultSite::DbLoad`] occurrence is consumed, and an armed
    /// plan can fail the load with a synthetic I/O or parse error or tear
    /// the text mid-entry before parsing. With a disabled injector this
    /// is exactly `from_text_checked`.
    ///
    /// # Errors
    ///
    /// Everything `from_text_checked` returns, plus the injected
    /// failures themselves.
    pub fn from_text_faulted(
        text: &str,
        n_slots: usize,
        mode: LoadMode,
        faults: &FaultInjector,
    ) -> Result<(Self, LoadReport), DbError> {
        if DnaDatabase::fault_gate(faults)? {
            DnaDatabase::from_text_checked(&torn_text(text), n_slots, mode)
        } else {
            DnaDatabase::from_text_checked(text, n_slots, mode)
        }
    }

    /// Consumes one `DbLoad` fault occurrence. `Ok(true)` means "tear
    /// the text before parsing"; injected I/O / parse faults surface as
    /// the corresponding [`DbError`].
    fn fault_gate(faults: &FaultInjector) -> Result<bool, DbError> {
        match faults.fire(FaultSite::DbLoad) {
            Some(FaultKind::DbIo) => Err(DbError::Io(std::io::Error::other(
                "chaos: injected database i/o fault",
            ))),
            Some(FaultKind::DbParse) => {
                Err(DbError::parse(0, "chaos: injected database parse fault"))
            }
            Some(FaultKind::DbTruncate) => Ok(true),
            _ => Ok(false),
        }
    }
}

impl DnaDatabase {
    /// Writes the database to a file in the update text format.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save_to(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_text())
    }

    /// Reads a database previously written by [`DnaDatabase::save_to`].
    ///
    /// # Errors
    ///
    /// Returns [`DbError::Io`] when the file cannot be read and
    /// [`DbError::Parse`] when its content is malformed — the caller can
    /// tell "retry the read" apart from "the update itself is corrupt".
    pub fn load_from(path: impl AsRef<std::path::Path>, n_slots: usize) -> Result<Self, DbError> {
        DnaDatabase::load_from_checked(path, n_slots, LoadMode::Strict).map(|(db, _)| db)
    }

    /// [`DnaDatabase::load_from`] with an explicit [`LoadMode`] and a
    /// [`LoadReport`] describing skipped entries.
    ///
    /// # Errors
    ///
    /// [`DbError::Io`] when the file cannot be read; parse failures per
    /// the chosen mode (see [`DnaDatabase::from_text_checked`]).
    pub fn load_from_checked(
        path: impl AsRef<std::path::Path>,
        n_slots: usize,
        mode: LoadMode,
    ) -> Result<(Self, LoadReport), DbError> {
        let text = std::fs::read_to_string(path)?;
        DnaDatabase::from_text_checked(&text, n_slots, mode)
    }

    /// [`DnaDatabase::load_from_checked`] behind a fault-injection gate
    /// (see [`DnaDatabase::from_text_faulted`]). An injected I/O fault
    /// fails the load before the file is even read — modelling an
    /// unreadable update file.
    ///
    /// # Errors
    ///
    /// Everything `load_from_checked` returns, plus the injected
    /// failures themselves.
    pub fn load_from_faulted(
        path: impl AsRef<std::path::Path>,
        n_slots: usize,
        mode: LoadMode,
        faults: &FaultInjector,
    ) -> Result<(Self, LoadReport), DbError> {
        let truncate = DnaDatabase::fault_gate(faults)?;
        let text = std::fs::read_to_string(path)?;
        if truncate {
            DnaDatabase::from_text_checked(&torn_text(&text), n_slots, mode)
        } else {
            DnaDatabase::from_text_checked(&text, n_slots, mode)
        }
    }
}

impl fmt::Display for DnaDatabase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dna database: {} entries across {} vulnerabilities",
            self.len(),
            self.cves().len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dna::chain;

    fn sample_dna() -> Dna {
        let mut dna = Dna::with_slots(8);
        dna.deltas[3]
            .removed
            .insert(chain(&["boundscheck", "initializedlength", "unbox:array"]));
        dna
    }

    #[test]
    fn install_and_remove() {
        let mut db = DnaDatabase::new();
        assert!(db.is_empty());
        db.install("CVE-2019-17026", "trigger", sample_dna());
        db.install("CVE-2019-17026", "helper", sample_dna());
        db.install("CVE-2019-9810", "pwn", sample_dna());
        assert_eq!(db.len(), 3);
        assert_eq!(db.cves(), vec!["CVE-2019-17026", "CVE-2019-9810"]);
        assert_eq!(db.remove_cve("CVE-2019-17026"), 2);
        assert_eq!(db.len(), 1);
        assert!(!db.is_empty());
    }

    #[test]
    fn trivial_dna_is_not_installed() {
        let mut db = DnaDatabase::new();
        let g0 = db.generation();
        db.install("CVE-X", "f", Dna::with_slots(8));
        assert!(db.is_empty());
        // A skipped install leaves the content — and the generation —
        // untouched.
        assert_eq!(db.generation(), g0);
    }

    #[test]
    fn generation_moves_with_content_only() {
        let mut db = DnaDatabase::new();
        let g0 = db.generation();
        db.install("CVE-1", "f", sample_dna());
        let g1 = db.generation();
        assert!(g1 > g0);
        assert_eq!(db.remove_cve("CVE-nope"), 0);
        assert_eq!(db.generation(), g1, "no-op removal must not invalidate");
        assert_eq!(db.remove_cve("CVE-1"), 1);
        assert!(db.generation() > g1);
        // Distinct instances never share a generation.
        assert_ne!(
            DnaDatabase::new().generation(),
            DnaDatabase::new().generation()
        );
        // Equality ignores generations.
        assert_eq!(DnaDatabase::new(), DnaDatabase::new());
    }

    #[test]
    fn text_round_trip() {
        let mut db = DnaDatabase::new();
        db.install("CVE-2019-17026", "trigger", sample_dna());
        db.install("CVE-2019-9810", "pwn", sample_dna());
        let text = db.to_text();
        let back = DnaDatabase::from_text(&text, 8).unwrap();
        assert_eq!(db, back);
    }

    #[test]
    fn from_text_rejects_garbage() {
        assert!(DnaDatabase::from_text("not an entry", 8).is_err());
        assert!(DnaDatabase::from_text("@entry onlyone", 8).is_err());
    }

    #[test]
    fn file_round_trip() {
        let mut db = DnaDatabase::new();
        db.install("CVE-2019-17026", "trigger", sample_dna());
        let dir = std::env::temp_dir().join("jitbull-db-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("update.dnadb");
        db.save_to(&path).unwrap();
        let back = DnaDatabase::load_from(&path, 8).unwrap();
        assert_eq!(db, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn partial_mode_skips_malformed_entries_with_absolute_lines() {
        let text =
            "@entry CVE-GOOD f\n3 - a>b\n@entry CVE-BAD g\n9 - a>b\n@entry CVE-ALSO h\n2 - c>d\n";
        // Strict aborts, pinned to the absolute file line of the bad body.
        match DnaDatabase::from_text_checked(text, 8, LoadMode::Strict) {
            Err(DbError::Parse { line, .. }) => assert_eq!(line, 4),
            other => panic!("expected strict parse failure, got {other:?}"),
        }
        // Partial loads the good entries and files one warning per skip.
        let (db, report) = DnaDatabase::from_text_checked(text, 8, LoadMode::Partial).unwrap();
        assert_eq!(db.len(), 2);
        assert_eq!(db.cves(), vec!["CVE-ALSO", "CVE-GOOD"]);
        assert_eq!((report.loaded, report.skipped), (2, 1));
        assert!(!report.is_clean());
        match &report.warnings[..] {
            [DbError::Parse { line, .. }] => assert_eq!(*line, 4),
            other => panic!("expected one line-4 warning, got {other:?}"),
        }
    }

    #[test]
    fn partial_mode_skips_malformed_headers_and_their_bodies() {
        let text = "@entry torn\n3 - a>b\n@entry CVE-OK f\n2 - c>d\n";
        assert!(DnaDatabase::from_text(text, 8).is_err());
        let (db, report) = DnaDatabase::from_text_checked(text, 8, LoadMode::Partial).unwrap();
        assert_eq!(db.len(), 1);
        assert_eq!(report.skipped, 1);
        match &report.warnings[..] {
            [DbError::Parse { line, msg }] => {
                assert_eq!(*line, 1);
                assert!(msg.contains("malformed @entry"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn faulted_load_injects_io_parse_and_truncation() {
        use jitbull_chaos::{FaultInjector, FaultKind, FaultPlan, FaultSite};
        let mut db = DnaDatabase::new();
        db.install("CVE-1", "f", sample_dna());
        db.install("CVE-2", "g", sample_dna());
        let text = db.to_text();

        let io = FaultInjector::from_plan(FaultPlan::new(1).script(
            FaultSite::DbLoad,
            FaultKind::DbIo,
            0,
            1,
        ));
        let err = DnaDatabase::from_text_faulted(&text, 8, LoadMode::Strict, &io).unwrap_err();
        assert_eq!(err.kind(), "io");
        // The window is over: the second attempt succeeds untouched.
        let (back, report) =
            DnaDatabase::from_text_faulted(&text, 8, LoadMode::Strict, &io).unwrap();
        assert_eq!(back, db);
        assert!(report.is_clean());

        let parse = FaultInjector::from_plan(FaultPlan::new(2).script(
            FaultSite::DbLoad,
            FaultKind::DbParse,
            0,
            1,
        ));
        let err = DnaDatabase::from_text_faulted(&text, 8, LoadMode::Strict, &parse).unwrap_err();
        assert_eq!(err.kind(), "parse");

        // A torn read must never parse as a complete update under Strict…
        let torn = FaultInjector::from_plan(FaultPlan::new(3).script(
            FaultSite::DbLoad,
            FaultKind::DbTruncate,
            0,
            2,
        ));
        assert!(DnaDatabase::from_text_faulted(&text, 8, LoadMode::Strict, &torn).is_err());
        // …while Partial salvages the intact prefix and reports the tear.
        let (prefix, report) =
            DnaDatabase::from_text_faulted(&text, 8, LoadMode::Partial, &torn).unwrap();
        assert!(prefix.len() < db.len());
        assert!(!report.warnings.is_empty());

        // Disabled injector: plain checked load, no occurrences consumed.
        let off = FaultInjector::disabled();
        let (clean, _) = DnaDatabase::from_text_faulted(&text, 8, LoadMode::Strict, &off).unwrap();
        assert_eq!(clean, db);
        assert_eq!(off.occurrences(FaultSite::DbLoad), 0);
    }

    #[test]
    fn load_rejects_garbage_file() {
        let dir = std::env::temp_dir().join("jitbull-db-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.dnadb");
        std::fs::write(&path, "not a database").unwrap();
        assert!(DnaDatabase::load_from(&path, 8).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn snapshot_shares_generation_and_content() {
        let mut db = DnaDatabase::new();
        db.install("CVE-1", "f", sample_dna());
        let snap = db.snapshot();
        assert_eq!(*snap, db);
        assert_eq!(snap.generation(), db.generation());
        // Mutating the original does not disturb the snapshot.
        db.remove_cve("CVE-1");
        assert_eq!(snap.len(), 1);
        assert!(db.generation() > snap.generation());
    }

    /// The database (and everything inside it) must be shareable across
    /// threads: the serving pool publishes `Arc<DnaDatabase>` snapshots
    /// to worker threads, and a guard must be movable into a worker.
    #[test]
    fn dna_types_are_thread_safe() {
        fn send_sync<T: Send + Sync>() {}
        fn send<T: Send>() {}
        send_sync::<DnaDatabase>();
        send_sync::<VdcEntry>();
        send_sync::<Dna>();
        send_sync::<crate::Analysis>();
        send_sync::<crate::CompareConfig>();
        send::<crate::Guard>();
    }

    #[test]
    fn display_summarises() {
        let mut db = DnaDatabase::new();
        db.install("CVE-1", "f", sample_dna());
        assert_eq!(
            db.to_string(),
            "dna database: 1 entries across 1 vulnerabilities"
        );
    }
}

//! A bounded ring buffer: the event store never grows past its capacity,
//! evicting the oldest entries and counting what it dropped — long
//! campaigns cannot exhaust memory through telemetry.

use std::collections::VecDeque;

/// A fixed-capacity FIFO that evicts its oldest element on overflow.
#[derive(Debug, Clone)]
pub struct RingBuffer<T> {
    buf: VecDeque<T>,
    capacity: usize,
    dropped: u64,
}

impl<T> RingBuffer<T> {
    /// Creates a buffer holding at most `capacity` elements (min 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        RingBuffer {
            buf: VecDeque::with_capacity(capacity),
            capacity,
            dropped: 0,
        }
    }

    /// Appends `value`, evicting (and counting) the oldest element when
    /// the buffer is full.
    pub fn push(&mut self, value: T) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(value);
    }

    /// Elements currently held, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.buf.iter()
    }

    /// Number of elements currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer holds nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// How many elements eviction has discarded so far.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Discards all held elements (the dropped count is unaffected).
    pub fn clear(&mut self) {
        self.buf.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_the_newest_on_overflow() {
        let mut r = RingBuffer::new(3);
        for i in 0..5 {
            r.push(i);
        }
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![2, 3, 4]);
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
    }

    #[test]
    fn under_capacity_drops_nothing() {
        let mut r = RingBuffer::new(8);
        r.push("a");
        r.push("b");
        assert_eq!(r.len(), 2);
        assert_eq!(r.dropped(), 0);
        assert_eq!(r.capacity(), 8);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut r = RingBuffer::new(0);
        r.push(1);
        r.push(2);
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![2]);
        assert_eq!(r.dropped(), 1);
    }

    #[test]
    fn clear_empties_but_keeps_drop_count() {
        let mut r = RingBuffer::new(2);
        for i in 0..4 {
            r.push(i);
        }
        assert_eq!(r.dropped(), 2);
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 2);
    }
}

//! The metrics registry: named counters, gauges, and log₂-bucketed
//! histograms. Everything is a plain integer — the simulated cycle model
//! is integral, and integers keep export deterministic.

use std::collections::BTreeMap;

/// Number of histogram buckets: bucket 0 holds zeros, bucket `i ≥ 1`
/// holds values `v` with `2^(i-1) <= v < 2^i`, up to bucket 64 for the
/// largest `u64` values.
pub const N_BUCKETS: usize = 65;

/// A log₂-bucketed histogram over `u64` samples.
#[derive(Debug, Clone)]
pub struct Histogram {
    counts: [u64; N_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: [0; N_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

/// The bucket index a value falls into.
#[must_use]
pub fn bucket_index(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// The half-open value range `[lo, hi)` bucket `i` covers (bucket 0 is
/// `[0, 1)`; the last bucket's `hi` saturates to `u64::MAX`).
#[must_use]
pub fn bucket_range(i: usize) -> (u64, u64) {
    match i {
        0 => (0, 1),
        1..=63 => (1u64 << (i - 1), 1u64 << i),
        _ => (1u64 << 63, u64::MAX),
    }
}

impl Histogram {
    /// Records one sample.
    pub fn observe(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Total samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean sample, or 0 with no samples.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest sample (0 with no samples).
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Non-empty buckets, as `(lo, hi, count)` with `[lo, hi)` the value
    /// range.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(i, c)| {
                let (lo, hi) = bucket_range(i);
                (lo, hi, *c)
            })
    }

    /// An upper bound for the `q`-quantile (`0.0..=1.0`): the `hi` edge of
    /// the bucket where the cumulative count crosses `q * count`.
    #[must_use]
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target.max(1) {
                return bucket_range(i).1;
            }
        }
        u64::MAX
    }
}

/// A registry of named metrics. Names are free-form dotted paths
/// (`"engine.compile.ion"`); ordering is lexicographic in every export.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Registry::default()
    }

    /// Adds `delta` to counter `name` (created at 0). Saturates at
    /// `u64::MAX` instead of wrapping — a telemetry counter must never
    /// turn a huge total into a small lie.
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        match self.counters.get_mut(name) {
            Some(c) => *c = c.saturating_add(delta),
            None => {
                self.counters.insert(name.to_owned(), delta);
            }
        }
    }

    /// Increments counter `name` by one.
    pub fn counter_inc(&mut self, name: &str) {
        self.counter_add(name, 1);
    }

    /// Reads counter `name` (0 when never written).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets gauge `name` to `value`.
    pub fn gauge_set(&mut self, name: &str, value: i64) {
        match self.gauges.get_mut(name) {
            Some(g) => *g = value,
            None => {
                self.gauges.insert(name.to_owned(), value);
            }
        }
    }

    /// Reads gauge `name`.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.get(name).copied()
    }

    /// Records `value` into histogram `name` (created empty).
    pub fn observe(&mut self, name: &str, value: u64) {
        match self.histograms.get_mut(name) {
            Some(h) => h.observe(value),
            None => {
                let mut h = Histogram::default();
                h.observe(value);
                self.histograms.insert(name.to_owned(), h);
            }
        }
    }

    /// Reads histogram `name`.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters, lexicographic by name.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// All gauges, lexicographic by name.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, i64)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// All histograms, lexicographic by name.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_saturate() {
        let mut r = Registry::new();
        r.counter_inc("a");
        r.counter_add("a", 2);
        assert_eq!(r.counter("a"), 3);
        assert_eq!(r.counter("missing"), 0);
        // Overflow saturates rather than wrapping.
        r.counter_add("big", u64::MAX - 1);
        r.counter_add("big", 5);
        assert_eq!(r.counter("big"), u64::MAX);
    }

    #[test]
    fn gauges_overwrite() {
        let mut r = Registry::new();
        assert_eq!(r.gauge("g"), None);
        r.gauge_set("g", 7);
        r.gauge_set("g", -3);
        assert_eq!(r.gauge("g"), Some(-3));
    }

    #[test]
    fn histogram_bucketing_is_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        // Ranges tile the axis: each bucket's hi is the next one's lo.
        for i in 0..N_BUCKETS - 1 {
            assert_eq!(bucket_range(i).1, bucket_range(i + 1).0, "bucket {i}");
        }
    }

    #[test]
    fn histogram_stats() {
        let mut h = Histogram::default();
        for v in [0u64, 1, 2, 3, 100] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 106);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 21.2).abs() < 1e-9);
        let buckets: Vec<_> = h.buckets().collect();
        // 0 | 1 | 2,3 | 100
        assert_eq!(buckets.len(), 4);
        assert_eq!(buckets[0], (0, 1, 1));
        assert_eq!(buckets[2], (2, 4, 2));
        // Median upper bound: the 2,3 bucket's hi edge.
        assert_eq!(h.quantile_upper_bound(0.5), 4);
    }

    #[test]
    fn histogram_sum_saturates() {
        let mut h = Histogram::default();
        h.observe(u64::MAX);
        h.observe(u64::MAX);
        assert_eq!(h.sum(), u64::MAX);
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn registry_via_observe() {
        let mut r = Registry::new();
        r.observe("lat", 5);
        r.observe("lat", 9);
        assert_eq!(r.histogram("lat").unwrap().count(), 2);
        assert!(r.histogram("other").is_none());
        assert!(!r.is_empty());
    }
}

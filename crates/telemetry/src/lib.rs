//! # jitbull-telemetry — engine-wide observability
//!
//! The paper's whole mechanism is a sequence of runtime decisions — tier
//! promotions, per-pass IR deltas, dangerous-pass matches, go /
//! recompile-without-passes / no-JIT verdicts — and this crate makes them
//! observable without touching the numbers the figures are built from.
//! It is dependency-free and hand-rolled (no `tracing`), consistent with
//! the repo's offline-build stance.
//!
//! Three layers:
//!
//! * [`Event`] — the typed event taxonomy ([`event`]), stored in a
//!   bounded [`RingBuffer`] so telemetry can never exhaust memory;
//! * [`Registry`] — named counters / gauges / log₂ histograms
//!   ([`metrics`]), updated automatically as events arrive;
//! * [`export`] — text and JSON renderings of a [`Recorder`]'s state.
//!
//! The engine-facing surface is the [`Collector`] trait. Producers hold
//! an `Option<Rc<RefCell<dyn Collector>>>` and skip event construction
//! entirely when none is attached, so an unobserved engine does no
//! telemetry work at all — preserving the paper's zero-overhead
//! empty-database property (§V). [`NoopCollector`] exists for call sites
//! that want a `&mut dyn Collector` unconditionally; its `record` is an
//! empty inline function.
//!
//! # Examples
//!
//! ```
//! use jitbull_telemetry::{Collector, Event, Recorder, Tier};
//!
//! let mut rec = Recorder::new();
//! rec.record(Event::TierPromoted { function: "hot".into(), tier: Tier::Ion });
//! assert_eq!(rec.metrics().counter("engine.promoted.ion"), 1);
//! assert_eq!(rec.events().len(), 1);
//! ```

pub mod event;
pub mod export;
pub mod metrics;
pub mod ring;

pub use event::{Event, Tier, Verdict};
pub use export::{export_json, export_text};
pub use metrics::{Histogram, Registry};
pub use ring::RingBuffer;

/// Receives telemetry events. Implemented by [`Recorder`] (stores and
/// aggregates) and [`NoopCollector`] (discards).
pub trait Collector {
    /// Ingests one event.
    fn record(&mut self, event: Event);
}

/// A collector that discards everything. `record` is an empty `#[inline]`
/// body, so passing it compiles down to nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopCollector;

impl Collector for NoopCollector {
    #[inline]
    fn record(&mut self, _event: Event) {}
}

/// Default event-ring capacity for [`Recorder::new`].
pub const DEFAULT_EVENT_CAPACITY: usize = 4096;

/// Per-slot aggregation of [`Event::PassApplied`] — the cycle-attribution
/// table behind `repro -- obs`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SlotStat {
    /// Pass name as of the last application seen for this slot.
    pub name: &'static str,
    /// Times the slot ran.
    pub applications: u64,
    /// Simulated compile cycles attributed to the slot.
    pub cycles: u64,
    /// Net instructions removed across applications.
    pub instrs_removed: u64,
    /// Net instructions added across applications.
    pub instrs_added: u64,
}

/// The default collector: a bounded event ring plus a metrics registry
/// that aggregates every event as it arrives.
#[derive(Debug, Clone)]
pub struct Recorder {
    events: RingBuffer<Event>,
    metrics: Registry,
    slots: Vec<SlotStat>,
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new()
    }
}

impl Recorder {
    /// A recorder with the default event capacity.
    #[must_use]
    pub fn new() -> Self {
        Recorder::with_capacity(DEFAULT_EVENT_CAPACITY)
    }

    /// A recorder whose event ring holds at most `capacity` events.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Recorder {
            events: RingBuffer::new(capacity),
            metrics: Registry::new(),
            slots: Vec::new(),
        }
    }

    /// The stored events (oldest first, bounded).
    #[must_use]
    pub fn events(&self) -> &RingBuffer<Event> {
        &self.events
    }

    /// The aggregated metrics.
    #[must_use]
    pub fn metrics(&self) -> &Registry {
        &self.metrics
    }

    /// Mutable metrics access, for producers that export gauges directly
    /// (database size, fuel used, …).
    pub fn metrics_mut(&mut self) -> &mut Registry {
        &mut self.metrics
    }

    /// Per-slot cycle attribution, indexed by pipeline slot. Slots that
    /// never ran have `applications == 0`.
    #[must_use]
    pub fn slot_stats(&self) -> &[SlotStat] {
        &self.slots
    }

    /// Whether nothing at all was recorded (events, metrics, slots).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.metrics.is_empty() && self.slots.is_empty()
    }

    fn aggregate(&mut self, event: &Event) {
        self.metrics
            .counter_inc(&format!("events.{}", event.kind()));
        match event {
            Event::CompileStarted { tier, .. } => {
                self.metrics
                    .counter_inc(&format!("engine.compile.{}", tier.name()));
            }
            Event::TierPromoted { tier, .. } => {
                self.metrics
                    .counter_inc(&format!("engine.promoted.{}", tier.name()));
            }
            Event::PassApplied {
                slot,
                name,
                instrs_removed,
                instrs_added,
                cycles,
            } => {
                self.metrics.counter_add("pipeline.cycles", *cycles);
                self.metrics.observe("pipeline.slot_cycles", *cycles);
                if self.slots.len() <= *slot {
                    self.slots.resize(*slot + 1, SlotStat::default());
                }
                let s = &mut self.slots[*slot];
                s.name = name;
                s.applications += 1;
                s.cycles = s.cycles.saturating_add(*cycles);
                s.instrs_removed = s.instrs_removed.saturating_add(*instrs_removed);
                s.instrs_added = s.instrs_added.saturating_add(*instrs_added);
            }
            Event::ComparatorQuery {
                cache_hit,
                prefilter_rejects,
                set_merges,
                shards,
                ..
            } => {
                self.metrics.counter_inc("comparator.queries");
                self.metrics.counter_inc(if *cache_hit {
                    "comparator.cache_hits"
                } else {
                    "comparator.cache_misses"
                });
                self.metrics
                    .counter_add("comparator.prefilter_rejects", *prefilter_rejects);
                self.metrics
                    .counter_add("comparator.set_merges", *set_merges);
                if *shards > 1 {
                    self.metrics.counter_inc("comparator.sharded_scans");
                }
                self.metrics.counter_add("comparator.shards", *shards);
            }
            Event::ExtractorQuery {
                memo_hit,
                passes_enumerated,
                passes_skipped,
                chains_enumerated,
                chains_skipped,
                ..
            } => {
                self.metrics.counter_inc("extract.queries");
                self.metrics.counter_inc(if *memo_hit {
                    "extract.memo_hits"
                } else {
                    "extract.memo_misses"
                });
                self.metrics
                    .counter_add("extract.passes_enumerated", *passes_enumerated);
                self.metrics
                    .counter_add("extract.passes_skipped", *passes_skipped);
                self.metrics
                    .counter_add("extract.chains_enumerated", *chains_enumerated);
                self.metrics
                    .counter_add("extract.chains_skipped", *chains_skipped);
            }
            Event::GuardAnalyzed {
                matches,
                dangerous,
                cost_cycles,
                ..
            } => {
                self.metrics.counter_inc("guard.analyses");
                self.metrics.counter_add("guard.matches", *matches);
                self.metrics
                    .counter_add("guard.dangerous_slots", *dangerous);
                self.metrics.counter_add("guard.cycles", *cost_cycles);
                self.metrics.observe("guard.cost_cycles", *cost_cycles);
            }
            Event::PolicyDecision { verdict, .. } => {
                self.metrics
                    .counter_inc(&format!("policy.{}", verdict.name()));
            }
            Event::ExploitOutcome { clean, .. } => {
                self.metrics.counter_inc(if *clean {
                    "runs.clean"
                } else {
                    "runs.compromised"
                });
            }
            Event::FuzzSeed {
                find, script_error, ..
            } => {
                self.metrics.counter_inc("fuzz.seeds");
                if *find {
                    self.metrics.counter_inc("fuzz.finds");
                }
                if *script_error {
                    self.metrics.counter_inc("fuzz.script_errors");
                }
            }
            Event::FuzzCampaignFinished { .. } => {
                self.metrics.counter_inc("fuzz.campaigns");
            }
            Event::PoolSubmitted { depth } => {
                self.metrics.counter_inc("pool.submitted");
                self.metrics.gauge_set("pool.queue_depth", *depth as i64);
            }
            Event::PoolRejected { depth } => {
                self.metrics.counter_inc("pool.rejected");
                self.metrics.gauge_set("pool.queue_depth", *depth as i64);
            }
            Event::PoolServed {
                degraded,
                wait_micros,
                run_micros,
                ..
            } => {
                self.metrics.counter_inc("pool.served");
                if *degraded {
                    self.metrics.counter_inc("pool.degraded");
                }
                self.metrics.observe("pool.wait_us", *wait_micros);
                self.metrics.observe("pool.service_us", *run_micros);
            }
            Event::PoolHotSwap { epoch, entries, .. } => {
                self.metrics.counter_inc("pool.hotswaps");
                self.metrics.gauge_set("pool.db_entries", *entries as i64);
                self.metrics.gauge_set("pool.db_epoch", *epoch as i64);
            }
            Event::PoolWorkerRestarted { .. } => {
                self.metrics.counter_inc("pool.worker_restarts");
            }
            Event::PoolReloadFailed { kind } => {
                self.metrics
                    .counter_inc(&format!("pool.reload_failed.{kind}"));
            }
            Event::ChaosInjected { site, fault } => {
                self.metrics.counter_inc("chaos.injected");
                self.metrics.counter_inc(&format!("chaos.injected.{fault}"));
                self.metrics.counter_inc(&format!("chaos.site.{site}"));
            }
            Event::WatchdogExpired { budget, spent, .. } => {
                self.metrics.counter_inc("recovery.watchdog_expired");
                self.metrics
                    .gauge_set("recovery.watchdog_budget", *budget as i64);
                self.metrics.observe("recovery.watchdog_spent", *spent);
            }
            Event::CompileFailed { cause, .. } => {
                self.metrics.counter_inc("recovery.compile_failed");
                self.metrics
                    .counter_inc(&format!("recovery.compile_failed.{cause}"));
            }
            Event::FunctionQuarantined { .. } => {
                self.metrics.counter_inc("recovery.quarantined");
            }
            Event::BreakerTransition { to, .. } => {
                self.metrics
                    .counter_inc(&format!("recovery.breaker_to.{to}"));
                match *to {
                    "open" => self.metrics.counter_inc("recovery.breaker_trips"),
                    "closed" => self.metrics.counter_inc("recovery.breaker_rearms"),
                    _ => self.metrics.counter_inc("recovery.breaker_probes"),
                }
            }
            Event::ReloadRetry {
                backoff_micros,
                kind,
                ..
            } => {
                self.metrics.counter_inc("recovery.reload_retries");
                self.metrics
                    .counter_inc(&format!("recovery.reload_retries.{kind}"));
                self.metrics
                    .observe("recovery.reload_backoff_us", *backoff_micros);
            }
            Event::ReloadRecovered { .. } => {
                self.metrics.counter_inc("recovery.reload_recovered");
            }
            Event::CachePoisonPurged { .. } => {
                self.metrics.counter_inc("recovery.cache_poison_purged");
            }
            Event::ExtractMemoPurged { .. } => {
                self.metrics.counter_inc("recovery.extract_memo_purged");
            }
            Event::TriageRound { neutralized, .. } => {
                self.metrics.counter_inc("triage.rounds");
                if *neutralized {
                    self.metrics.counter_inc("triage.neutralized");
                }
            }
        }
    }
}

impl Collector for Recorder {
    fn record(&mut self, event: Event) {
        self.aggregate(&event);
        self.events.push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_aggregates_events_into_metrics() {
        let mut rec = Recorder::new();
        rec.record(Event::CompileStarted {
            function: "f".into(),
            tier: Tier::Ion,
        });
        rec.record(Event::TierPromoted {
            function: "f".into(),
            tier: Tier::Ion,
        });
        rec.record(Event::PassApplied {
            slot: 6,
            name: "GVN",
            instrs_removed: 3,
            instrs_added: 1,
            cycles: 40,
        });
        rec.record(Event::PassApplied {
            slot: 6,
            name: "GVN",
            instrs_removed: 1,
            instrs_added: 0,
            cycles: 10,
        });
        rec.record(Event::PolicyDecision {
            function: "f".into(),
            verdict: Verdict::Recompile,
            slots: vec![6],
        });
        let m = rec.metrics();
        assert_eq!(m.counter("engine.compile.ion"), 1);
        assert_eq!(m.counter("engine.promoted.ion"), 1);
        assert_eq!(m.counter("policy.recompile"), 1);
        assert_eq!(m.counter("pipeline.cycles"), 50);
        assert_eq!(m.counter("events.pass_applied"), 2);
        let slot = &rec.slot_stats()[6];
        assert_eq!(slot.name, "GVN");
        assert_eq!(slot.applications, 2);
        assert_eq!(slot.cycles, 50);
        assert_eq!(slot.instrs_removed, 4);
        assert_eq!(rec.events().len(), 5);
    }

    #[test]
    fn extractor_events_aggregate_into_extract_metrics() {
        let mut rec = Recorder::new();
        rec.record(Event::ExtractorQuery {
            function: "f".into(),
            memo_hit: false,
            passes_enumerated: 2,
            passes_skipped: 9,
            chains_enumerated: 5,
            chains_skipped: 7,
        });
        rec.record(Event::ExtractorQuery {
            function: "f".into(),
            memo_hit: true,
            passes_enumerated: 0,
            passes_skipped: 0,
            chains_enumerated: 0,
            chains_skipped: 0,
        });
        rec.record(Event::ExtractMemoPurged { purges: 1 });
        let m = rec.metrics();
        assert_eq!(m.counter("extract.queries"), 2);
        assert_eq!(m.counter("extract.memo_hits"), 1);
        assert_eq!(m.counter("extract.memo_misses"), 1);
        assert_eq!(m.counter("extract.passes_enumerated"), 2);
        assert_eq!(m.counter("extract.passes_skipped"), 9);
        assert_eq!(m.counter("extract.chains_enumerated"), 5);
        assert_eq!(m.counter("extract.chains_skipped"), 7);
        assert_eq!(m.counter("recovery.extract_memo_purged"), 1);
    }

    #[test]
    fn pool_events_aggregate_into_pool_metrics() {
        let mut rec = Recorder::new();
        rec.record(Event::PoolSubmitted { depth: 3 });
        rec.record(Event::PoolRejected { depth: 8 });
        rec.record(Event::PoolServed {
            worker: 1,
            degraded: true,
            wait_micros: 120,
            run_micros: 900,
        });
        rec.record(Event::PoolServed {
            worker: 0,
            degraded: false,
            wait_micros: 10,
            run_micros: 400,
        });
        rec.record(Event::PoolHotSwap {
            epoch: 2,
            entries: 5,
            generation: 42,
        });
        rec.record(Event::PoolWorkerRestarted { worker: 1 });
        rec.record(Event::PoolReloadFailed { kind: "parse" });
        let m = rec.metrics();
        assert_eq!(m.counter("pool.submitted"), 1);
        assert_eq!(m.counter("pool.rejected"), 1);
        assert_eq!(m.counter("pool.served"), 2);
        assert_eq!(m.counter("pool.degraded"), 1);
        assert_eq!(m.counter("pool.hotswaps"), 1);
        assert_eq!(m.counter("pool.worker_restarts"), 1);
        assert_eq!(m.counter("pool.reload_failed.parse"), 1);
        assert_eq!(m.gauge("pool.queue_depth"), Some(8));
        assert_eq!(m.gauge("pool.db_entries"), Some(5));
        assert_eq!(m.gauge("pool.db_epoch"), Some(2));
        assert_eq!(m.histogram("pool.wait_us").unwrap().count(), 2);
        assert_eq!(m.histogram("pool.service_us").unwrap().count(), 2);
    }

    #[test]
    fn chaos_and_recovery_events_aggregate() {
        let mut rec = Recorder::new();
        rec.record(Event::ChaosInjected {
            site: "pass_run",
            fault: "pass_panic",
        });
        rec.record(Event::ChaosInjected {
            site: "db_load",
            fault: "db_io",
        });
        rec.record(Event::WatchdogExpired {
            function: "hot".into(),
            budget: 5_000,
            spent: 5_000,
        });
        rec.record(Event::CompileFailed {
            function: "hot".into(),
            cause: "panic",
        });
        rec.record(Event::FunctionQuarantined {
            function: "hot".into(),
            strikes: 2,
        });
        rec.record(Event::BreakerTransition {
            from: "closed",
            to: "open",
        });
        rec.record(Event::BreakerTransition {
            from: "open",
            to: "half_open",
        });
        rec.record(Event::BreakerTransition {
            from: "half_open",
            to: "closed",
        });
        rec.record(Event::ReloadRetry {
            attempt: 1,
            backoff_micros: 120,
            kind: "io",
        });
        rec.record(Event::ReloadRecovered { attempts: 2 });
        rec.record(Event::CachePoisonPurged { rebuilds: 2 });
        let m = rec.metrics();
        assert_eq!(m.counter("chaos.injected"), 2);
        assert_eq!(m.counter("chaos.injected.pass_panic"), 1);
        assert_eq!(m.counter("chaos.site.db_load"), 1);
        assert_eq!(m.counter("recovery.watchdog_expired"), 1);
        assert_eq!(m.counter("recovery.compile_failed.panic"), 1);
        assert_eq!(m.counter("recovery.quarantined"), 1);
        assert_eq!(m.counter("recovery.breaker_trips"), 1);
        assert_eq!(m.counter("recovery.breaker_probes"), 1);
        assert_eq!(m.counter("recovery.breaker_rearms"), 1);
        assert_eq!(m.counter("recovery.reload_retries.io"), 1);
        assert_eq!(m.counter("recovery.reload_recovered"), 1);
        assert_eq!(m.counter("recovery.cache_poison_purged"), 1);
        assert_eq!(m.gauge("recovery.watchdog_budget"), Some(5_000));
        assert_eq!(
            m.histogram("recovery.reload_backoff_us").unwrap().count(),
            1
        );
    }

    #[test]
    fn noop_collector_discards() {
        let mut noop = NoopCollector;
        noop.record(Event::ExploitOutcome {
            clean: true,
            status: "clean".into(),
        });
        // Nothing to observe; the type has no state at all.
        assert_eq!(std::mem::size_of::<NoopCollector>(), 0);
    }

    #[test]
    fn recorder_ring_is_bounded() {
        let mut rec = Recorder::with_capacity(2);
        for i in 0..5u64 {
            rec.record(Event::FuzzSeed {
                seed: i,
                find: false,
                script_error: false,
            });
        }
        assert_eq!(rec.events().len(), 2);
        assert_eq!(rec.events().dropped(), 3);
        // Metrics still saw every event.
        assert_eq!(rec.metrics().counter("fuzz.seeds"), 5);
    }
}

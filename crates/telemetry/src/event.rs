//! The typed event taxonomy: everything the engine, the guard, the
//! fuzzer, and the workload harness can report about themselves.
//!
//! Events are deliberately *flat* — plain fields, no references into
//! engine state — so a ring buffer of them is a self-contained record of
//! a run that exporters can serialize without touching the engine again.

/// An execution tier a function can be promoted into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tier {
    /// Baseline (unoptimized machine code) tier.
    Baseline,
    /// Optimizing (Ion-like) tier.
    Ion,
}

impl Tier {
    /// Lower-case name, used in metric keys and exports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Tier::Baseline => "baseline",
            Tier::Ion => "ion",
        }
    }
}

/// The JITBULL policy verdict for one analyzed compilation (paper §V).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Verdict {
    /// Scenario 1: use the optimized code as-is.
    Go,
    /// Scenario 2: recompile with the dangerous slots disabled.
    Recompile,
    /// Scenario 3: abandon optimized compilation for the function.
    NoJit,
}

impl Verdict {
    /// Lower-case name, used in metric keys and exports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Verdict::Go => "go",
            Verdict::Recompile => "recompile",
            Verdict::NoJit => "nojit",
        }
    }
}

/// One structured telemetry event.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A tier compilation began for `function`.
    CompileStarted {
        /// Source-level function name.
        function: String,
        /// Target tier.
        tier: Tier,
    },
    /// `function` finished compiling and now executes in `tier`.
    TierPromoted {
        /// Source-level function name.
        function: String,
        /// Tier reached.
        tier: Tier,
    },
    /// One pipeline slot ran during an optimizing compilation.
    PassApplied {
        /// Pipeline slot index (`0..N_SLOTS`).
        slot: usize,
        /// Pass name (several slots may share one, e.g. GVN).
        name: &'static str,
        /// Instructions the slot removed (net, by IR size).
        instrs_removed: u64,
        /// Instructions the slot added (net, by IR size).
        instrs_added: u64,
        /// Simulated compile cycles attributed to the slot.
        cycles: u64,
    },
    /// The indexed comparator served one guard query (emitted before the
    /// matching [`Event::GuardAnalyzed`]; absent on the reference path).
    ComparatorQuery {
        /// Function whose DNA was queried.
        function: String,
        /// Whether the verdict came from the DNA-keyed query cache.
        cache_hit: bool,
        /// (entry, slot, side) comparisons skipped by the fingerprint
        /// prefilter.
        prefilter_rejects: u64,
        /// Full interned-id set merges actually performed.
        set_merges: u64,
        /// Scan shards used (1 = sequential).
        shards: u64,
    },
    /// The incremental extractor served one guard extraction (emitted
    /// before the matching [`Event::GuardAnalyzed`]; absent on the
    /// reference path).
    ExtractorQuery {
        /// Function whose trace was extracted.
        function: String,
        /// Whether the DNA came straight from the shared memo cache.
        memo_hit: bool,
        /// Passes whose changed subgraphs were actually enumerated.
        passes_enumerated: u64,
        /// Passes skipped by the edge-multiset fast path.
        passes_skipped: u64,
        /// Chains walked through changed subgraphs.
        chains_enumerated: u64,
        /// Chains skipped because no changed edge touched them.
        chains_skipped: u64,
    },
    /// The JITBULL guard analyzed one compilation trace.
    GuardAnalyzed {
        /// Function whose trace was analyzed.
        function: String,
        /// VDC entries that matched.
        matches: u64,
        /// Distinct dangerous slots flagged.
        dangerous: u64,
        /// Simulated cycles the analysis consumed.
        cost_cycles: u64,
    },
    /// The go / recompile-without-passes / no-JIT policy decided.
    PolicyDecision {
        /// Function the verdict applies to.
        function: String,
        /// The verdict.
        verdict: Verdict,
        /// The dangerous slots behind the verdict (empty for `Go`).
        slots: Vec<usize>,
    },
    /// A run finished; what the simulated process experienced.
    ExploitOutcome {
        /// `false` when the run crashed or executed sprayed shellcode.
        clean: bool,
        /// Human-readable status (`"clean"`, crash site, …).
        status: String,
    },
    /// One fuzzer seed finished executing.
    FuzzSeed {
        /// The generator seed.
        seed: u64,
        /// Whether the program compromised the runtime (a find).
        find: bool,
        /// Whether it ended in a benign script error.
        script_error: bool,
    },
    /// A fuzzing campaign completed.
    FuzzCampaignFinished {
        /// Seeds executed.
        executed: u64,
        /// Security-relevant finds.
        finds: u64,
        /// Benign script errors.
        script_errors: u64,
    },
    /// A request entered the serving pool's queue.
    PoolSubmitted {
        /// Queue depth right after the enqueue (includes this request).
        depth: u64,
    },
    /// The pool refused a request because the queue was at capacity.
    PoolRejected {
        /// Queue depth at the moment of rejection.
        depth: u64,
    },
    /// A worker finished serving one request.
    PoolServed {
        /// Worker index that served it.
        worker: usize,
        /// Whether the request was past its deadline and fell back to
        /// interpreter-only execution.
        degraded: bool,
        /// Microseconds the request waited in the queue.
        wait_micros: u64,
        /// Microseconds the worker spent executing it.
        run_micros: u64,
    },
    /// A new database snapshot was published to the workers.
    PoolHotSwap {
        /// The epoch the snapshot was published under.
        epoch: u64,
        /// Entries in the new snapshot.
        entries: u64,
        /// The snapshot's database generation.
        generation: u64,
    },
    /// A worker thread panicked while serving and was respawned.
    PoolWorkerRestarted {
        /// Worker index that was restarted.
        worker: usize,
    },
    /// A database reload (e.g. `Pool::reload_from_text`) failed.
    PoolReloadFailed {
        /// Stable failure label (`DbError::kind`: `"io"` / `"parse"`).
        kind: &'static str,
    },
    /// The chaos layer injected one fault (armed runs only; a disabled
    /// injector emits nothing).
    ChaosInjected {
        /// Injection site name (`FaultSite::name`).
        site: &'static str,
        /// Fault kind name (`FaultKind::name`).
        fault: &'static str,
    },
    /// The compilation watchdog expired: the function fell back to
    /// interpreter-only execution and the remaining compile work was
    /// abandoned.
    WatchdogExpired {
        /// Function whose compilation was cut off.
        function: String,
        /// The configured cycle budget.
        budget: u64,
        /// Simulated cycles actually charged (capped at the budget).
        spent: u64,
    },
    /// One Ion compilation failed without producing optimized code.
    CompileFailed {
        /// Function that failed to compile.
        function: String,
        /// Stable failure label: `"panic"`, `"broken"`, or `"watchdog"`.
        cause: &'static str,
    },
    /// A function crossed the quarantine strike threshold and is now
    /// pinned no-go.
    FunctionQuarantined {
        /// The quarantined function.
        function: String,
        /// Strikes accumulated when quarantine triggered.
        strikes: u32,
    },
    /// The pool's JIT circuit breaker changed state.
    BreakerTransition {
        /// State left (`"closed"` / `"open"` / `"half_open"`).
        from: &'static str,
        /// State entered.
        to: &'static str,
    },
    /// A database reload attempt failed and will be retried after a
    /// backoff.
    ReloadRetry {
        /// The attempt that failed (1-based).
        attempt: u32,
        /// Microseconds backed off before the next attempt.
        backoff_micros: u64,
        /// Failure label (`DbError::kind`: `"io"` / `"parse"`).
        kind: &'static str,
    },
    /// A retried database reload eventually succeeded and was published.
    ReloadRecovered {
        /// Attempts it took (≥ 2; first-try successes emit nothing).
        attempts: u32,
    },
    /// The comparator detected a poisoned verdict cache (torn generation
    /// stamp) and discarded it via a full index rebuild.
    CachePoisonPurged {
        /// Index rebuilds performed so far, purges included.
        rebuilds: u64,
    },
    /// The extractor detected a poisoned DNA memo (torn write) and
    /// discarded every cached entry before serving anything.
    ExtractMemoPurged {
        /// Memo poison purges performed so far.
        purges: u64,
    },
    /// One iteration of the fuzzer's install-until-neutralized triage loop.
    TriageRound {
        /// The find's seed.
        seed: u64,
        /// Round index (0-based).
        round: u64,
        /// Database entries after this round's installs.
        db_entries: u64,
        /// Whether the find is neutralized as of this round.
        neutralized: bool,
    },
}

impl Event {
    /// Stable kind tag (used by exporters and per-kind counters).
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Event::CompileStarted { .. } => "compile_started",
            Event::TierPromoted { .. } => "tier_promoted",
            Event::PassApplied { .. } => "pass_applied",
            Event::ComparatorQuery { .. } => "comparator_query",
            Event::ExtractorQuery { .. } => "extractor_query",
            Event::GuardAnalyzed { .. } => "guard_analyzed",
            Event::PolicyDecision { .. } => "policy_decision",
            Event::ExploitOutcome { .. } => "exploit_outcome",
            Event::FuzzSeed { .. } => "fuzz_seed",
            Event::FuzzCampaignFinished { .. } => "fuzz_campaign_finished",
            Event::PoolSubmitted { .. } => "pool_submitted",
            Event::PoolRejected { .. } => "pool_rejected",
            Event::PoolServed { .. } => "pool_served",
            Event::PoolHotSwap { .. } => "pool_hotswap",
            Event::PoolWorkerRestarted { .. } => "pool_worker_restarted",
            Event::PoolReloadFailed { .. } => "pool_reload_failed",
            Event::ChaosInjected { .. } => "chaos_injected",
            Event::WatchdogExpired { .. } => "watchdog_expired",
            Event::CompileFailed { .. } => "compile_failed",
            Event::FunctionQuarantined { .. } => "function_quarantined",
            Event::BreakerTransition { .. } => "breaker_transition",
            Event::ReloadRetry { .. } => "reload_retry",
            Event::ReloadRecovered { .. } => "reload_recovered",
            Event::CachePoisonPurged { .. } => "cache_poison_purged",
            Event::ExtractMemoPurged { .. } => "extract_memo_purged",
            Event::TriageRound { .. } => "triage_round",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_and_names_are_stable() {
        assert_eq!(Tier::Baseline.name(), "baseline");
        assert_eq!(Tier::Ion.name(), "ion");
        assert_eq!(Verdict::Go.name(), "go");
        assert_eq!(Verdict::Recompile.name(), "recompile");
        assert_eq!(Verdict::NoJit.name(), "nojit");
        let ev = Event::PolicyDecision {
            function: "f".into(),
            verdict: Verdict::Go,
            slots: vec![],
        };
        assert_eq!(ev.kind(), "policy_decision");
    }
}

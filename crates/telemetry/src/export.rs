//! Text and JSON renderings of a [`Recorder`]'s state. The JSON writer is
//! hand-rolled (the crate has no dependencies); it emits only objects,
//! arrays, strings, integers, and bools, all of which serialize exactly.

use std::fmt::Write as _;

use crate::event::Event;
use crate::Recorder;

/// Renders the recorder as an indented, human-readable report: metrics
/// first (counters, gauges, histograms), then per-slot cycle attribution,
/// then the retained event tail.
#[must_use]
pub fn export_text(rec: &Recorder) -> String {
    let mut out = String::new();
    let m = rec.metrics();

    out.push_str("counters:\n");
    for (name, v) in m.counters() {
        let _ = writeln!(out, "  {name:<32} {v}");
    }
    let mut any_gauge = false;
    for (name, v) in m.gauges() {
        if !any_gauge {
            out.push_str("gauges:\n");
            any_gauge = true;
        }
        let _ = writeln!(out, "  {name:<32} {v}");
    }
    let mut any_hist = false;
    for (name, h) in m.histograms() {
        if !any_hist {
            out.push_str("histograms:\n");
            any_hist = true;
        }
        let _ = writeln!(
            out,
            "  {name:<32} count={} sum={} min={} max={} mean={:.1}",
            h.count(),
            h.sum(),
            h.min(),
            h.max(),
            h.mean()
        );
        for (lo, hi, c) in h.buckets() {
            let _ = writeln!(out, "    [{lo}, {hi})  {c}");
        }
    }

    let slots = rec.slot_stats();
    if slots.iter().any(|s| s.applications > 0) {
        out.push_str("slots:\n");
        let _ = writeln!(
            out,
            "  {:>4}  {:<24} {:>6} {:>10} {:>8} {:>8}",
            "slot", "pass", "runs", "cycles", "removed", "added"
        );
        for (i, s) in slots.iter().enumerate() {
            if s.applications == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "  {:>4}  {:<24} {:>6} {:>10} {:>8} {:>8}",
                i, s.name, s.applications, s.cycles, s.instrs_removed, s.instrs_added
            );
        }
    }

    let events = rec.events();
    if !events.is_empty() {
        let _ = writeln!(
            out,
            "events ({} retained, {} dropped):",
            events.len(),
            events.dropped()
        );
        for ev in events.iter() {
            let _ = writeln!(out, "  {}", event_line(ev));
        }
    }
    out
}

fn event_line(ev: &Event) -> String {
    match ev {
        Event::CompileStarted { function, tier } => {
            format!("compile_started  fn={function} tier={}", tier.name())
        }
        Event::TierPromoted { function, tier } => {
            format!("tier_promoted    fn={function} tier={}", tier.name())
        }
        Event::PassApplied {
            slot,
            name,
            instrs_removed,
            instrs_added,
            cycles,
        } => format!(
            "pass_applied     slot={slot} pass={name} -{instrs_removed}/+{instrs_added} cycles={cycles}"
        ),
        Event::ComparatorQuery {
            function,
            cache_hit,
            prefilter_rejects,
            set_merges,
            shards,
        } => format!(
            "comparator_query fn={function} cache_hit={cache_hit} prefilter_rejects={prefilter_rejects} merges={set_merges} shards={shards}"
        ),
        Event::ExtractorQuery {
            function,
            memo_hit,
            passes_enumerated,
            passes_skipped,
            chains_enumerated,
            chains_skipped,
        } => format!(
            "extractor_query  fn={function} memo_hit={memo_hit} passes={passes_enumerated}/{passes_skipped} chains={chains_enumerated}/{chains_skipped}"
        ),
        Event::GuardAnalyzed {
            function,
            matches,
            dangerous,
            cost_cycles,
        } => format!(
            "guard_analyzed   fn={function} matches={matches} dangerous={dangerous} cycles={cost_cycles}"
        ),
        Event::PolicyDecision {
            function,
            verdict,
            slots,
        } => format!(
            "policy_decision  fn={function} verdict={} slots={slots:?}",
            verdict.name()
        ),
        Event::ExploitOutcome { clean, status } => {
            format!("exploit_outcome  clean={clean} status={status}")
        }
        Event::FuzzSeed {
            seed,
            find,
            script_error,
        } => format!("fuzz_seed        seed={seed} find={find} script_error={script_error}"),
        Event::FuzzCampaignFinished {
            executed,
            finds,
            script_errors,
        } => format!(
            "fuzz_campaign    executed={executed} finds={finds} script_errors={script_errors}"
        ),
        Event::PoolSubmitted { depth } => format!("pool_submitted   depth={depth}"),
        Event::PoolRejected { depth } => format!("pool_rejected    depth={depth}"),
        Event::PoolServed {
            worker,
            degraded,
            wait_micros,
            run_micros,
        } => format!(
            "pool_served      worker={worker} degraded={degraded} wait_us={wait_micros} run_us={run_micros}"
        ),
        Event::PoolHotSwap {
            epoch,
            entries,
            generation,
        } => format!("pool_hotswap     epoch={epoch} entries={entries} generation={generation}"),
        Event::PoolWorkerRestarted { worker } => {
            format!("pool_worker_restarted worker={worker}")
        }
        Event::PoolReloadFailed { kind } => format!("pool_reload_failed kind={kind}"),
        Event::ChaosInjected { site, fault } => {
            format!("chaos_injected   site={site} fault={fault}")
        }
        Event::WatchdogExpired {
            function,
            budget,
            spent,
        } => format!("watchdog_expired fn={function} budget={budget} spent={spent}"),
        Event::CompileFailed { function, cause } => {
            format!("compile_failed   fn={function} cause={cause}")
        }
        Event::FunctionQuarantined { function, strikes } => {
            format!("quarantined      fn={function} strikes={strikes}")
        }
        Event::BreakerTransition { from, to } => {
            format!("breaker          {from} -> {to}")
        }
        Event::ReloadRetry {
            attempt,
            backoff_micros,
            kind,
        } => format!("reload_retry     attempt={attempt} backoff_us={backoff_micros} kind={kind}"),
        Event::ReloadRecovered { attempts } => {
            format!("reload_recovered attempts={attempts}")
        }
        Event::CachePoisonPurged { rebuilds } => {
            format!("cache_poison_purged rebuilds={rebuilds}")
        }
        Event::ExtractMemoPurged { purges } => {
            format!("extract_memo_purged purges={purges}")
        }
        Event::TriageRound {
            seed,
            round,
            db_entries,
            neutralized,
        } => format!(
            "triage_round     seed={seed} round={round} db_entries={db_entries} neutralized={neutralized}"
        ),
    }
}

/// Escapes `s` for inclusion inside a JSON string literal.
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_event_json(out: &mut String, ev: &Event) {
    out.push_str("{\"kind\":");
    push_json_str(out, ev.kind());
    match ev {
        Event::CompileStarted { function, tier } | Event::TierPromoted { function, tier } => {
            out.push_str(",\"function\":");
            push_json_str(out, function);
            out.push_str(",\"tier\":");
            push_json_str(out, tier.name());
        }
        Event::PassApplied {
            slot,
            name,
            instrs_removed,
            instrs_added,
            cycles,
        } => {
            let _ = write!(out, ",\"slot\":{slot},\"name\":");
            push_json_str(out, name);
            let _ = write!(
                out,
                ",\"instrs_removed\":{instrs_removed},\"instrs_added\":{instrs_added},\"cycles\":{cycles}"
            );
        }
        Event::ComparatorQuery {
            function,
            cache_hit,
            prefilter_rejects,
            set_merges,
            shards,
        } => {
            out.push_str(",\"function\":");
            push_json_str(out, function);
            let _ = write!(
                out,
                ",\"cache_hit\":{cache_hit},\"prefilter_rejects\":{prefilter_rejects},\"set_merges\":{set_merges},\"shards\":{shards}"
            );
        }
        Event::ExtractorQuery {
            function,
            memo_hit,
            passes_enumerated,
            passes_skipped,
            chains_enumerated,
            chains_skipped,
        } => {
            out.push_str(",\"function\":");
            push_json_str(out, function);
            let _ = write!(
                out,
                ",\"memo_hit\":{memo_hit},\"passes_enumerated\":{passes_enumerated},\"passes_skipped\":{passes_skipped},\"chains_enumerated\":{chains_enumerated},\"chains_skipped\":{chains_skipped}"
            );
        }
        Event::GuardAnalyzed {
            function,
            matches,
            dangerous,
            cost_cycles,
        } => {
            out.push_str(",\"function\":");
            push_json_str(out, function);
            let _ = write!(
                out,
                ",\"matches\":{matches},\"dangerous\":{dangerous},\"cost_cycles\":{cost_cycles}"
            );
        }
        Event::PolicyDecision {
            function,
            verdict,
            slots,
        } => {
            out.push_str(",\"function\":");
            push_json_str(out, function);
            out.push_str(",\"verdict\":");
            push_json_str(out, verdict.name());
            out.push_str(",\"slots\":[");
            for (i, s) in slots.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{s}");
            }
            out.push(']');
        }
        Event::ExploitOutcome { clean, status } => {
            let _ = write!(out, ",\"clean\":{clean},\"status\":");
            push_json_str(out, status);
        }
        Event::FuzzSeed {
            seed,
            find,
            script_error,
        } => {
            let _ = write!(
                out,
                ",\"seed\":{seed},\"find\":{find},\"script_error\":{script_error}"
            );
        }
        Event::FuzzCampaignFinished {
            executed,
            finds,
            script_errors,
        } => {
            let _ = write!(
                out,
                ",\"executed\":{executed},\"finds\":{finds},\"script_errors\":{script_errors}"
            );
        }
        Event::PoolSubmitted { depth } | Event::PoolRejected { depth } => {
            let _ = write!(out, ",\"depth\":{depth}");
        }
        Event::PoolServed {
            worker,
            degraded,
            wait_micros,
            run_micros,
        } => {
            let _ = write!(
                out,
                ",\"worker\":{worker},\"degraded\":{degraded},\"wait_micros\":{wait_micros},\"run_micros\":{run_micros}"
            );
        }
        Event::PoolHotSwap {
            epoch,
            entries,
            generation,
        } => {
            let _ = write!(
                out,
                ",\"epoch\":{epoch},\"entries\":{entries},\"generation\":{generation}"
            );
        }
        Event::PoolWorkerRestarted { worker } => {
            let _ = write!(out, ",\"worker\":{worker}");
        }
        Event::PoolReloadFailed { kind } => {
            out.push_str(",\"kind\":");
            push_json_str(out, kind);
        }
        Event::ChaosInjected { site, fault } => {
            out.push_str(",\"site\":");
            push_json_str(out, site);
            out.push_str(",\"fault\":");
            push_json_str(out, fault);
        }
        Event::WatchdogExpired {
            function,
            budget,
            spent,
        } => {
            out.push_str(",\"function\":");
            push_json_str(out, function);
            let _ = write!(out, ",\"budget\":{budget},\"spent\":{spent}");
        }
        Event::CompileFailed { function, cause } => {
            out.push_str(",\"function\":");
            push_json_str(out, function);
            out.push_str(",\"cause\":");
            push_json_str(out, cause);
        }
        Event::FunctionQuarantined { function, strikes } => {
            out.push_str(",\"function\":");
            push_json_str(out, function);
            let _ = write!(out, ",\"strikes\":{strikes}");
        }
        Event::BreakerTransition { from, to } => {
            out.push_str(",\"from\":");
            push_json_str(out, from);
            out.push_str(",\"to\":");
            push_json_str(out, to);
        }
        Event::ReloadRetry {
            attempt,
            backoff_micros,
            kind,
        } => {
            let _ = write!(
                out,
                ",\"attempt\":{attempt},\"backoff_micros\":{backoff_micros},\"kind\":"
            );
            push_json_str(out, kind);
        }
        Event::ReloadRecovered { attempts } => {
            let _ = write!(out, ",\"attempts\":{attempts}");
        }
        Event::CachePoisonPurged { rebuilds } => {
            let _ = write!(out, ",\"rebuilds\":{rebuilds}");
        }
        Event::ExtractMemoPurged { purges } => {
            let _ = write!(out, ",\"purges\":{purges}");
        }
        Event::TriageRound {
            seed,
            round,
            db_entries,
            neutralized,
        } => {
            let _ = write!(
                out,
                ",\"seed\":{seed},\"round\":{round},\"db_entries\":{db_entries},\"neutralized\":{neutralized}"
            );
        }
    }
    out.push('}');
}

/// Renders the recorder as a single JSON object:
/// `{"counters":{...},"gauges":{...},"histograms":{...},"slots":[...],"events":{...}}`.
#[must_use]
pub fn export_json(rec: &Recorder) -> String {
    let mut out = String::new();
    let m = rec.metrics();

    out.push_str("{\"counters\":{");
    for (i, (name, v)) in m.counters().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_str(&mut out, name);
        let _ = write!(out, ":{v}");
    }
    out.push_str("},\"gauges\":{");
    for (i, (name, v)) in m.gauges().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_str(&mut out, name);
        let _ = write!(out, ":{v}");
    }
    out.push_str("},\"histograms\":{");
    for (i, (name, h)) in m.histograms().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_str(&mut out, name);
        let _ = write!(
            out,
            ":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[",
            h.count(),
            h.sum(),
            h.min(),
            h.max()
        );
        for (j, (lo, hi, c)) in h.buckets().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"lo\":{lo},\"hi\":{hi},\"count\":{c}}}");
        }
        out.push_str("]}");
    }
    out.push_str("},\"slots\":[");
    let mut first = true;
    for (i, s) in rec.slot_stats().iter().enumerate() {
        if s.applications == 0 {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{{\"slot\":{i},\"name\":");
        push_json_str(&mut out, s.name);
        let _ = write!(
            out,
            ",\"applications\":{},\"cycles\":{},\"instrs_removed\":{},\"instrs_added\":{}}}",
            s.applications, s.cycles, s.instrs_removed, s.instrs_added
        );
    }
    out.push_str("],\"events\":{");
    let _ = write!(
        out,
        "\"retained\":{},\"dropped\":{},\"items\":[",
        rec.events().len(),
        rec.events().dropped()
    );
    for (i, ev) in rec.events().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_event_json(&mut out, ev);
    }
    out.push_str("]}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Collector, Tier, Verdict};

    fn sample_recorder() -> Recorder {
        let mut rec = Recorder::new();
        rec.record(Event::TierPromoted {
            function: "hot\"fn".into(),
            tier: Tier::Ion,
        });
        rec.record(Event::PassApplied {
            slot: 2,
            name: "GVN",
            instrs_removed: 3,
            instrs_added: 0,
            cycles: 44,
        });
        rec.record(Event::PolicyDecision {
            function: "hot\"fn".into(),
            verdict: Verdict::Recompile,
            slots: vec![2, 5],
        });
        rec.metrics_mut().gauge_set("db.entries", 4);
        rec
    }

    #[test]
    fn text_export_lists_sections() {
        let text = export_text(&sample_recorder());
        assert!(text.contains("counters:"));
        assert!(text.contains("engine.promoted.ion"));
        assert!(text.contains("gauges:"));
        assert!(text.contains("db.entries"));
        assert!(text.contains("slots:"));
        assert!(text.contains("GVN"));
        assert!(text.contains("events (3 retained, 0 dropped):"));
    }

    #[test]
    fn json_export_escapes_and_balances() {
        let json = export_json(&sample_recorder());
        // Quote in the function name is escaped.
        assert!(json.contains("hot\\\"fn"));
        assert!(json.contains("\"verdict\":\"recompile\""));
        assert!(json.contains("\"slots\":[2,5]"));
        // Structurally sound: balanced braces/brackets outside strings.
        let (mut depth, mut in_str, mut esc) = (0i64, false, false);
        for c in json.chars() {
            if esc {
                esc = false;
                continue;
            }
            match c {
                '\\' if in_str => esc = true,
                '"' => in_str = !in_str,
                '{' | '[' if !in_str => depth += 1,
                '}' | ']' if !in_str => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0);
        }
        assert_eq!(depth, 0);
        assert!(!in_str);
    }

    #[test]
    fn empty_recorder_exports_cleanly() {
        let rec = Recorder::new();
        assert_eq!(export_text(&rec), "counters:\n");
        assert_eq!(
            export_json(&rec),
            "{\"counters\":{},\"gauges\":{},\"histograms\":{},\"slots\":[],\"events\":{\"retained\":0,\"dropped\":0,\"items\":[]}}"
        );
    }
}

//! MIR → LIR lowering (paper step ⑤), including out-of-SSA translation.
//!
//! Phis become **parallel move groups** placed at the end of each
//! predecessor (the MIR pipeline's mandatory critical-edge splitting
//! guarantees a predecessor of a phi block has that block as its only
//! successor). Parallel moves are sequentialized with the classic
//! worklist algorithm, breaking cycles through a scratch register.

use std::collections::HashMap;

use jitbull_mir::{InstrId, MOpcode, MirFunction, TypeHint};

use crate::lir::{GuardRefs, LBlock, LBlockId, LFunction, LInstr, LOp, VReg};

/// Lowers optimized MIR to (unallocated) LIR.
pub fn lower(mir: &MirFunction) -> LFunction {
    let mut f = LFunction {
        name: mir.name.clone(),
        blocks: vec![LBlock::default(); mir.block_count()],
        n_vregs: mir.id_bound(),
        locs: Vec::new(),
        spill_slots: 0,
    };
    // Opcode kinds per MIR id, for guard-reference capture.
    let mut kinds: HashMap<InstrId, &MOpcode> = HashMap::new();
    for b in &mir.blocks {
        for i in b.iter_all() {
            kinds.insert(i.id, &i.op);
        }
    }
    // 1. Straight-line lowering of every block body.
    for (bi, block) in mir.blocks.iter().enumerate() {
        let out = &mut f.blocks[bi].instrs;
        for i in &block.instrs {
            let args: Vec<VReg> = i.operands.iter().map(|o| VReg(o.0)).collect();
            match &i.op {
                MOpcode::Goto(t) => {
                    out.push(LInstr::new(LOp::Jump(LBlockId(t.0)), None, vec![]));
                }
                MOpcode::Test {
                    then_block,
                    else_block,
                } => {
                    out.push(LInstr::new(
                        LOp::Branch {
                            then_block: LBlockId(then_block.0),
                            else_block: LBlockId(else_block.0),
                        },
                        None,
                        args,
                    ));
                }
                MOpcode::Return => {
                    out.push(LInstr::new(LOp::Return, None, args));
                }
                MOpcode::Phi => unreachable!("phis live in the phi list"),
                op => {
                    let mut instr = LInstr::new(LOp::Op(op.clone()), Some(VReg(i.id.0)), args);
                    instr.guards = capture_guards(op, &i.operands, &kinds);
                    out.push(instr);
                }
            }
        }
    }

    // 2. Out-of-SSA: emit parallel move groups on each incoming edge of
    // every phi block, at the end of the predecessor (before its
    // terminator).
    for block in &mir.blocks {
        if block.phis.is_empty() {
            continue;
        }
        for (j, pred) in block.phi_preds.iter().enumerate() {
            let moves: Vec<(VReg, VReg)> = block
                .phis
                .iter()
                .map(|phi| (VReg(phi.id.0), VReg(phi.operands[j].0)))
                .collect();
            let seq = sequentialize(&moves, &mut f);
            let pred_block = &mut f.blocks[pred.0 as usize];
            let at = pred_block.instrs.len().saturating_sub(1);
            for (k, m) in seq.into_iter().enumerate() {
                pred_block.instrs.insert(at + k, m);
            }
        }
    }
    debug_assert_eq!(f.validate(), Ok(()));
    f
}

/// Captures which guards (by vreg) vouch for this operation's memory
/// access, mirroring the MIR executor's def-kind checks.
fn capture_guards(
    op: &MOpcode,
    operands: &[InstrId],
    kinds: &HashMap<InstrId, &MOpcode>,
) -> GuardRefs {
    let is_unbox_array =
        |id: InstrId| matches!(kinds.get(&id), Some(MOpcode::Unbox(TypeHint::Array)));
    let is_bounds = |id: InstrId| matches!(kinds.get(&id), Some(MOpcode::BoundsCheck));
    match op {
        MOpcode::LoadElement | MOpcode::StoreElement => {
            let base = operands[0];
            let idx = operands[1];
            GuardRefs {
                bounds: is_bounds(idx).then_some(VReg(idx.0)),
                unbox: is_unbox_array(base).then_some(VReg(base.0)),
            }
        }
        MOpcode::InitializedLength | MOpcode::ArrayLength => {
            let base = operands[0];
            GuardRefs {
                bounds: None,
                unbox: is_unbox_array(base).then_some(VReg(base.0)),
            }
        }
        _ => GuardRefs::default(),
    }
}

/// Sequentializes a parallel move group `dst_i ← src_i`, breaking cycles
/// through a fresh scratch vreg. Classic algorithm: emit moves whose
/// destination is not a pending source; when stuck, rotate a cycle via
/// the scratch register.
fn sequentialize(moves: &[(VReg, VReg)], f: &mut LFunction) -> Vec<LInstr> {
    let mut pending: Vec<(VReg, VReg)> = moves.iter().copied().filter(|(d, s)| d != s).collect();
    let mut out = Vec::new();
    while !pending.is_empty() {
        let ready = pending
            .iter()
            .position(|(d, _)| !pending.iter().any(|(_, s)| s == d));
        match ready {
            Some(k) => {
                let (d, s) = pending.remove(k);
                out.push(LInstr::mov(d, s));
            }
            None => {
                // Pure cycle: move one destination into scratch, rewrite
                // the source that referenced it, and continue.
                let scratch = f.fresh_vreg();
                let (d, s) = pending.remove(0);
                out.push(LInstr::mov(scratch, d));
                for (_, src) in pending.iter_mut() {
                    if *src == d {
                        *src = scratch;
                    }
                }
                out.push(LInstr::mov(d, s));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use jitbull_frontend::parse_program;
    use jitbull_mir::build_mir;
    use jitbull_vm::compile_program;

    fn mir_of(src: &str, name: &str) -> MirFunction {
        let p = parse_program(src).unwrap();
        let m = compile_program(&p).unwrap();
        build_mir(&m, m.function_id(name).unwrap()).unwrap()
    }

    #[test]
    fn lowers_straight_line() {
        let mir = mir_of("function f(a, b) { return a * b + 1; }", "f");
        let f = lower(&mir);
        assert_eq!(f.validate(), Ok(()));
        let text = f.to_string();
        assert!(text.contains("mul"), "{text}");
        assert!(text.contains("ret"), "{text}");
    }

    #[test]
    fn loop_phis_become_edge_moves() {
        let mir = mir_of(
            "function f(n) { var t = 0; for (var i = 0; i < n; i++) { t = t + i; } return t; }",
            "f",
        );
        let f = lower(&mir);
        assert_eq!(f.validate(), Ok(()));
        let moves = f
            .blocks
            .iter()
            .flat_map(|b| b.instrs.iter())
            .filter(|i| matches!(i.op, LOp::Move))
            .count();
        assert!(moves >= 2, "expected phi moves\n{f}");
        // Moves sit before terminators.
        for b in &f.blocks {
            for (i, instr) in b.instrs.iter().enumerate() {
                if matches!(instr.op, LOp::Move) {
                    assert!(i + 1 < b.instrs.len());
                }
            }
        }
    }

    #[test]
    fn guard_refs_are_captured() {
        let mir = mir_of("function f(a, i) { return a[i]; }", "f");
        let f = lower(&mir);
        let load = f
            .blocks
            .iter()
            .flat_map(|b| b.instrs.iter())
            .find(|i| matches!(&i.op, LOp::Op(MOpcode::LoadElement)))
            .unwrap();
        assert!(load.guards.bounds.is_some());
        assert!(load.guards.unbox.is_some());
    }

    #[test]
    fn parallel_move_cycle_breaks_with_scratch() {
        // swap: a <- b, b <- a
        let mut f = LFunction {
            name: "t".into(),
            blocks: vec![],
            n_vregs: 2,
            locs: vec![],
            spill_slots: 0,
        };
        let seq = sequentialize(&[(VReg(0), VReg(1)), (VReg(1), VReg(0))], &mut f);
        assert_eq!(seq.len(), 3, "{seq:?}");
        assert_eq!(f.n_vregs, 3); // scratch allocated
                                  // Simulate to verify the swap.
        let mut vals = [10, 20, 0];
        for m in &seq {
            let d = m.dst.unwrap().0 as usize;
            let s = m.args[0].0 as usize;
            vals[d] = vals[s];
        }
        assert_eq!(vals[0], 20);
        assert_eq!(vals[1], 10);
    }

    #[test]
    fn parallel_move_chain_orders_correctly() {
        // a <- b, b <- c: must move a<-b first.
        let mut f = LFunction {
            name: "t".into(),
            blocks: vec![],
            n_vregs: 3,
            locs: vec![],
            spill_slots: 0,
        };
        let seq = sequentialize(&[(VReg(0), VReg(1)), (VReg(1), VReg(2))], &mut f);
        assert_eq!(seq.len(), 2);
        let mut vals = vec![1, 2, 3];
        for m in &seq {
            let d = m.dst.unwrap().0 as usize;
            let s = m.args[0].0 as usize;
            vals[d] = vals[s];
        }
        assert_eq!(vals, vec![2, 3, 3]);
    }

    #[test]
    fn self_moves_are_dropped() {
        let mut f = LFunction {
            name: "t".into(),
            blocks: vec![],
            n_vregs: 1,
            locs: vec![],
            spill_slots: 0,
        };
        let seq = sequentialize(&[(VReg(0), VReg(0))], &mut f);
        assert!(seq.is_empty());
    }
}

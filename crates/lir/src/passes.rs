//! LIR-level backend passes (paper step ⑥: "This representation … also
//! undergoes optimization passes, but focuses on binary code
//! generation").

use crate::lir::{LBlockId, LFunction, LOp, Loc};

/// Jump threading: a block consisting of nothing but `jmp T` is skipped
/// by retargeting its predecessors directly at `T`, to a fixpoint.
/// Orphaned blocks are left in place (the executor never reaches them).
pub fn thread_jumps(f: &mut LFunction) {
    // target(b) = where b ultimately lands if it is a pure trampoline.
    let resolve = |f: &LFunction, mut b: LBlockId| -> LBlockId {
        let mut hops = 0;
        loop {
            let block = &f.blocks[b.0 as usize];
            match (&block.instrs.as_slice(), hops > f.blocks.len()) {
                (_, true) => return b, // cycle of empty jumps; keep
                ([only], false) => match only.op {
                    LOp::Jump(t) if t != b => {
                        b = t;
                        hops += 1;
                    }
                    _ => return b,
                },
                _ => return b,
            }
        }
    };
    for bi in 0..f.blocks.len() {
        let mut retargets: Vec<(usize, LOp)> = Vec::new();
        if let Some(term) = f.blocks[bi].instrs.last() {
            let new_op = match &term.op {
                LOp::Jump(t) => {
                    let r = resolve(f, *t);
                    (r != *t).then_some(LOp::Jump(r))
                }
                LOp::Branch {
                    then_block,
                    else_block,
                } => {
                    let rt_ = resolve(f, *then_block);
                    let re = resolve(f, *else_block);
                    (rt_ != *then_block || re != *else_block).then_some(LOp::Branch {
                        then_block: rt_,
                        else_block: re,
                    })
                }
                _ => None,
            };
            if let Some(op) = new_op {
                retargets.push((f.blocks[bi].instrs.len() - 1, op));
            }
        }
        for (at, op) in retargets {
            f.blocks[bi].instrs[at].op = op;
        }
    }
}

/// Removes moves whose source and destination were allocated to the same
/// location (runs after register allocation).
pub fn eliminate_redundant_moves(f: &mut LFunction) {
    if f.locs.is_empty() {
        // Pre-allocation invocation: only self-moves can be removed.
        for b in &mut f.blocks {
            b.instrs
                .retain(|i| !(matches!(i.op, LOp::Move) && i.dst == Some(i.args[0])));
        }
        return;
    }
    let loc = |f: &LFunction, v: crate::lir::VReg| -> Loc { f.locs[v.0 as usize] };
    for bi in 0..f.blocks.len() {
        let keep: Vec<bool> = f.blocks[bi]
            .instrs
            .iter()
            .map(|i| {
                !(matches!(i.op, LOp::Move)
                    && loc(f, i.dst.expect("move has dst")) == loc(f, i.args[0]))
            })
            .collect();
        let mut k = 0;
        f.blocks[bi].instrs.retain(|_| {
            let keep_it = keep[k];
            k += 1;
            keep_it
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lir::{LBlock, LInstr, VReg};
    use jitbull_mir::{ConstVal, MOpcode};

    fn ret_block(v: VReg) -> LBlock {
        LBlock {
            instrs: vec![
                LInstr::new(
                    LOp::Op(MOpcode::Constant(ConstVal::Number(1.0))),
                    Some(v),
                    vec![],
                ),
                LInstr::new(LOp::Return, None, vec![v]),
            ],
        }
    }

    #[test]
    fn threads_through_trampolines() {
        // L0 -> L1 (jump-only) -> L2 (return).
        let mut f = LFunction {
            name: "t".into(),
            blocks: vec![
                LBlock {
                    instrs: vec![LInstr::new(LOp::Jump(LBlockId(1)), None, vec![])],
                },
                LBlock {
                    instrs: vec![LInstr::new(LOp::Jump(LBlockId(2)), None, vec![])],
                },
                ret_block(VReg(0)),
            ],
            n_vregs: 1,
            locs: vec![],
            spill_slots: 0,
        };
        thread_jumps(&mut f);
        assert_eq!(
            f.blocks[0].instrs.last().unwrap().op,
            LOp::Jump(LBlockId(2))
        );
        assert_eq!(f.validate(), Ok(()));
    }

    #[test]
    fn removes_same_location_moves_after_allocation() {
        let mut f = LFunction {
            name: "t".into(),
            blocks: vec![LBlock {
                instrs: vec![
                    LInstr::new(
                        LOp::Op(MOpcode::Constant(ConstVal::Number(2.0))),
                        Some(VReg(0)),
                        vec![],
                    ),
                    LInstr::mov(VReg(1), VReg(0)),
                    LInstr::new(LOp::Return, None, vec![VReg(1)]),
                ],
            }],
            n_vregs: 2,
            locs: vec![Loc::Reg(3), Loc::Reg(3)], // coalesced by chance
            spill_slots: 0,
        };
        eliminate_redundant_moves(&mut f);
        assert_eq!(f.blocks[0].instrs.len(), 2, "{f}");
    }

    #[test]
    fn keeps_moves_between_distinct_locations() {
        let mut f = LFunction {
            name: "t".into(),
            blocks: vec![LBlock {
                instrs: vec![
                    LInstr::mov(VReg(1), VReg(0)),
                    LInstr::new(LOp::Return, None, vec![VReg(1)]),
                ],
            }],
            n_vregs: 2,
            locs: vec![Loc::Reg(0), Loc::Spill(0)],
            spill_slots: 1,
        };
        eliminate_redundant_moves(&mut f);
        assert_eq!(f.blocks[0].instrs.len(), 2);
    }
}

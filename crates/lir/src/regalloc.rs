//! Linear-scan register allocation (paper step ⑥'s backend half).
//!
//! Liveness is computed by backward dataflow over the LIR CFG; each vreg
//! gets one conservative interval covering every position where it may
//! be live (including whole blocks it is live-into/out-of, which safely
//! handles loops). Intervals are then scanned in start order over
//! [`N_REGS`] simulated machine registers; when the register file is
//! exhausted the interval with the furthest end is spilled to a stack
//! slot.
//!
//! The executor reads both register and spill operands uniformly, so the
//! allocation's *correctness* contract is purely that no two
//! simultaneously-live vregs share a register — checked by tests and a
//! `debug_assert`.

use std::collections::{HashMap, HashSet};

use crate::lir::{LFunction, Loc, VReg};

/// Number of simulated machine registers.
pub const N_REGS: u8 = 16;

/// The result of allocation: a location per vreg plus the spill-slot
/// count.
#[derive(Debug, Clone, PartialEq)]
pub struct Allocation {
    /// `locs[v]` is where vreg `v` lives.
    pub locs: Vec<Loc>,
    /// Number of spill slots used.
    pub spill_slots: u16,
    /// Live interval per vreg (positions), exposed for tests/inspection.
    pub intervals: Vec<(u32, u32)>,
}

/// Computes per-block live-in/live-out sets (backward dataflow).
fn liveness(f: &LFunction) -> (Vec<HashSet<VReg>>, Vec<HashSet<VReg>>) {
    let n = f.blocks.len();
    let mut live_in: Vec<HashSet<VReg>> = vec![HashSet::new(); n];
    let mut live_out: Vec<HashSet<VReg>> = vec![HashSet::new(); n];
    let mut changed = true;
    while changed {
        changed = false;
        for b in (0..n).rev() {
            let mut out = HashSet::new();
            for s in f.blocks[b].successors() {
                out.extend(live_in[s.0 as usize].iter().copied());
            }
            let mut live = out.clone();
            for i in f.blocks[b].instrs.iter().rev() {
                if let Some(d) = i.dst {
                    live.remove(&d);
                }
                for a in &i.args {
                    live.insert(*a);
                }
            }
            if live != live_in[b] || out != live_out[b] {
                live_in[b] = live;
                live_out[b] = out;
                changed = true;
            }
        }
    }
    (live_in, live_out)
}

/// Runs linear scan and returns the allocation.
pub fn allocate(f: &LFunction) -> Allocation {
    let (live_in, live_out) = liveness(f);
    // Linear positions per instruction, block extents.
    let mut pos = 0u32;
    let mut block_range: Vec<(u32, u32)> = Vec::with_capacity(f.blocks.len());
    let mut touch: HashMap<VReg, (u32, u32)> = HashMap::new();
    let record = |v: VReg, p: u32, touch: &mut HashMap<VReg, (u32, u32)>| {
        let e = touch.entry(v).or_insert((p, p));
        e.0 = e.0.min(p);
        e.1 = e.1.max(p);
    };
    for (bi, b) in f.blocks.iter().enumerate() {
        let start = pos;
        for i in &b.instrs {
            if let Some(d) = i.dst {
                record(d, pos, &mut touch);
            }
            for a in &i.args {
                record(*a, pos, &mut touch);
            }
            pos += 1;
        }
        let end = pos.saturating_sub(1).max(start);
        block_range.push((start, end));
        // Conservative widening: anything live across the block's
        // boundary covers the whole block.
        for v in &live_in[bi] {
            record(*v, start, &mut touch);
        }
        for v in &live_out[bi] {
            record(*v, end, &mut touch);
        }
        let _ = bi;
    }
    // Extend intervals over every block a vreg is live-through.
    for (bi, (start, end)) in block_range.iter().enumerate() {
        for v in live_in[bi].intersection(&live_out[bi]) {
            let e = touch.entry(*v).or_insert((*start, *end));
            e.0 = e.0.min(*start);
            e.1 = e.1.max(*end);
        }
    }

    let mut intervals: Vec<(u32, u32)> = vec![(0, 0); f.n_vregs as usize];
    for (v, (s, e)) in &touch {
        intervals[v.0 as usize] = (*s, *e);
    }
    // Linear scan.
    let mut order: Vec<VReg> = touch.keys().copied().collect();
    order.sort_by_key(|v| intervals[v.0 as usize]);
    let mut locs = vec![Loc::Reg(0); f.n_vregs as usize];
    let mut active: Vec<VReg> = Vec::new(); // holding a register
    let mut free: Vec<u8> = (0..N_REGS).rev().collect();
    let mut spill_slots: u16 = 0;
    for v in order {
        let (start, _) = intervals[v.0 as usize];
        // Expire finished intervals.
        active.retain(|a| {
            if intervals[a.0 as usize].1 < start {
                if let Loc::Reg(r) = locs[a.0 as usize] {
                    free.push(r);
                }
                false
            } else {
                true
            }
        });
        if let Some(r) = free.pop() {
            locs[v.0 as usize] = Loc::Reg(r);
            active.push(v);
        } else {
            // Spill the interval with the furthest end.
            let victim = active
                .iter()
                .copied()
                .max_by_key(|a| intervals[a.0 as usize].1)
                .expect("register file exhausted implies active intervals");
            if intervals[victim.0 as usize].1 > intervals[v.0 as usize].1 {
                // Victim takes the spill slot; v inherits its register.
                let r = match locs[victim.0 as usize] {
                    Loc::Reg(r) => r,
                    Loc::Spill(_) => unreachable!("active vregs hold registers"),
                };
                locs[victim.0 as usize] = Loc::Spill(spill_slots);
                spill_slots += 1;
                locs[v.0 as usize] = Loc::Reg(r);
                active.retain(|a| *a != victim);
                active.push(v);
            } else {
                locs[v.0 as usize] = Loc::Spill(spill_slots);
                spill_slots += 1;
            }
        }
    }
    Allocation {
        locs,
        spill_slots,
        intervals,
    }
}

/// Applies an allocation to the function (records locations and the
/// spill-slot count; instructions keep their vreg names — the executor
/// resolves through `locs`).
pub fn apply(f: &mut LFunction, allocation: &Allocation) {
    f.locs = allocation.locs.clone();
    f.spill_slots = allocation.spill_slots;
    debug_assert!(
        verify(f, allocation),
        "overlapping intervals share a register"
    );
}

/// Checks the allocation invariant: no two vregs with overlapping live
/// intervals share a machine register.
pub fn verify(f: &LFunction, allocation: &Allocation) -> bool {
    let n = f.n_vregs as usize;
    for a in 0..n {
        for b in (a + 1)..n {
            let (s1, e1) = allocation.intervals[a];
            let (s2, e2) = allocation.intervals[b];
            if (s1, e1) == (0, 0) || (s2, e2) == (0, 0) {
                continue; // untouched vreg
            }
            let overlap = s1 <= e2 && s2 <= e1;
            if overlap {
                if let (Loc::Reg(r1), Loc::Reg(r2)) = (allocation.locs[a], allocation.locs[b]) {
                    if r1 == r2 {
                        return false;
                    }
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;
    use jitbull_frontend::parse_program;
    use jitbull_mir::build_mir;
    use jitbull_vm::compile_program;

    fn lir_of(src: &str, name: &str) -> LFunction {
        let p = parse_program(src).unwrap();
        let m = compile_program(&p).unwrap();
        let mir = build_mir(&m, m.function_id(name).unwrap()).unwrap();
        lower(&mir)
    }

    #[test]
    fn small_function_fits_in_registers() {
        let f = lir_of("function f(a, b) { return a * b + a - b; }", "f");
        let alloc = allocate(&f);
        assert_eq!(alloc.spill_slots, 0);
        assert!(verify(&f, &alloc));
    }

    #[test]
    fn loop_allocation_is_sound() {
        let f = lir_of(
            "function f(n, a) { var t = 0; for (var i = 0; i < n; i++) { t = t + a[i & 3] * i; } return t; }",
            "f",
        );
        let alloc = allocate(&f);
        assert!(verify(&f, &alloc), "{f}");
    }

    #[test]
    fn register_pressure_forces_spills() {
        // Build an expression needing > 16 simultaneously-live values.
        let mut src = String::from("function f(a) {\n");
        for i in 0..24 {
            src.push_str(&format!("var x{i} = a * {};\n", i + 2));
        }
        src.push_str("return ");
        for i in 0..24 {
            if i > 0 {
                src.push_str(" + ");
            }
            src.push_str(&format!("x{i} * x{i}"));
        }
        src.push_str(";\n}");
        let f = lir_of(&src, "f");
        let alloc = allocate(&f);
        assert!(alloc.spill_slots > 0, "expected spills");
        assert!(verify(&f, &alloc));
    }

    #[test]
    fn liveness_flows_through_loops() {
        let f = lir_of(
            "function f(n, k) { var t = 0; for (var i = 0; i < n; i++) { t = t + k; } return t; }",
            "f",
        );
        let (live_in, _) = liveness(&f);
        // Some block has live-in values (the loop header carries t/i/n/k).
        assert!(live_in.iter().any(|s| s.len() >= 2), "{live_in:?}");
    }
}

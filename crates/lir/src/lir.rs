//! LIR data structures: a non-SSA register machine representation.

use std::fmt;

use jitbull_mir::MOpcode;

/// A virtual register. Before register allocation each MIR instruction's
/// value lives in the vreg with its instruction id; phi destinations are
/// written from several predecessors (the IR is *not* SSA any more).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VReg(pub u32);

impl fmt::Display for VReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A physical location assigned by the register allocator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Loc {
    /// One of the simulated machine registers.
    Reg(u8),
    /// A stack spill slot.
    Spill(u16),
}

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Loc::Reg(r) => write!(f, "r{r}"),
            Loc::Spill(s) => write!(f, "[sp+{s}]"),
        }
    }
}

/// A LIR basic block id (indexes [`LFunction::blocks`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LBlockId(pub u32);

impl fmt::Display for LBlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// Which guards vouch for a memory access, captured from the MIR
/// def-use graph at lowering time (operand identity is lost once phis
/// become moves). Each entry names the *vreg* the guard instruction
/// writes; the executor keeps a pass/fail flag per vreg.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GuardRefs {
    /// The `boundscheck` vouching for the index, if still present.
    pub bounds: Option<VReg>,
    /// The `unbox:array` vouching for the base, if still present.
    pub unbox: Option<VReg>,
}

/// A LIR operation.
#[derive(Debug, Clone, PartialEq)]
pub enum LOp {
    /// `dst = args[0]` (phi resolution and spills use these).
    Move,
    /// A computational MIR opcode (never a terminator or phi). Operand
    /// roles are the MIR ones; the result goes to `dst`.
    Op(MOpcode),
    /// Unconditional jump.
    Jump(LBlockId),
    /// Conditional jump on `args[0]`'s truthiness.
    Branch {
        /// Taken when truthy.
        then_block: LBlockId,
        /// Taken when falsy.
        else_block: LBlockId,
    },
    /// Return `args[0]`.
    Return,
}

impl LOp {
    /// Whether this ends a block.
    pub fn is_terminator(&self) -> bool {
        matches!(self, LOp::Jump(_) | LOp::Branch { .. } | LOp::Return)
    }
}

/// One LIR instruction.
#[derive(Debug, Clone, PartialEq)]
pub struct LInstr {
    /// The operation.
    pub op: LOp,
    /// Result register, if the operation produces a value.
    pub dst: Option<VReg>,
    /// Argument registers.
    pub args: Vec<VReg>,
    /// Guard references for memory operations.
    pub guards: GuardRefs,
}

impl LInstr {
    /// A plain instruction with no guards.
    pub fn new(op: LOp, dst: Option<VReg>, args: Vec<VReg>) -> Self {
        LInstr {
            op,
            dst,
            args,
            guards: GuardRefs::default(),
        }
    }

    /// A register-to-register move.
    pub fn mov(dst: VReg, src: VReg) -> Self {
        LInstr::new(LOp::Move, Some(dst), vec![src])
    }
}

impl fmt::Display for LInstr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(d) = self.dst {
            write!(f, "{d} = ")?;
        }
        match &self.op {
            LOp::Move => write!(f, "mov {}", self.args[0]),
            LOp::Op(m) => {
                write!(f, "{}", m.mnemonic())?;
                for a in &self.args {
                    write!(f, " {a}")?;
                }
                Ok(())
            }
            LOp::Jump(t) => write!(f, "jmp {t}"),
            LOp::Branch {
                then_block,
                else_block,
            } => write!(f, "br {} ? {then_block} : {else_block}", self.args[0]),
            LOp::Return => write!(f, "ret {}", self.args[0]),
        }
    }
}

/// A LIR basic block.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LBlock {
    /// Instructions; the last one is a terminator.
    pub instrs: Vec<LInstr>,
}

impl LBlock {
    /// The block's successors.
    pub fn successors(&self) -> Vec<LBlockId> {
        match self.instrs.last().map(|i| &i.op) {
            Some(LOp::Jump(t)) => vec![*t],
            Some(LOp::Branch {
                then_block,
                else_block,
            }) => vec![*then_block, *else_block],
            _ => Vec::new(),
        }
    }
}

/// A lowered function.
#[derive(Debug, Clone, PartialEq)]
pub struct LFunction {
    /// Source-level name, for diagnostics.
    pub name: String,
    /// Blocks; entry is block 0. Block ids correspond to the MIR blocks
    /// they were lowered from (jump threading may leave orphans).
    pub blocks: Vec<LBlock>,
    /// Number of virtual registers (flag arrays are sized by this).
    pub n_vregs: u32,
    /// Virtual-register locations; empty until register allocation ran.
    pub locs: Vec<Loc>,
    /// Spill slots used by the allocation.
    pub spill_slots: u16,
}

impl LFunction {
    /// Total instruction count.
    pub fn instr_count(&self) -> usize {
        self.blocks.iter().map(|b| b.instrs.len()).sum()
    }

    /// Allocates a fresh vreg (used for scratch registers in parallel
    /// move resolution).
    pub fn fresh_vreg(&mut self) -> VReg {
        let v = VReg(self.n_vregs);
        self.n_vregs += 1;
        v
    }

    /// Structural sanity check: every block reachable from the entry
    /// ends in a terminator, operands reference valid vregs.
    pub fn validate(&self) -> Result<(), String> {
        let mut seen = vec![false; self.blocks.len()];
        let mut work = vec![LBlockId(0)];
        while let Some(b) = work.pop() {
            if seen[b.0 as usize] {
                continue;
            }
            seen[b.0 as usize] = true;
            let block = &self.blocks[b.0 as usize];
            match block.instrs.last() {
                Some(t) if t.op.is_terminator() => {}
                _ => return Err(format!("{b} lacks a terminator")),
            }
            for (i, instr) in block.instrs.iter().enumerate() {
                if instr.op.is_terminator() && i + 1 != block.instrs.len() {
                    return Err(format!("{b} has a terminator mid-block"));
                }
                for a in &instr.args {
                    if a.0 >= self.n_vregs {
                        return Err(format!("{b}: arg {a} out of range"));
                    }
                }
                if let Some(d) = instr.dst {
                    if d.0 >= self.n_vregs {
                        return Err(format!("{b}: dst {d} out of range"));
                    }
                }
            }
            for s in block.successors() {
                if s.0 as usize >= self.blocks.len() {
                    return Err(format!("{b} jumps to missing {s}"));
                }
                work.push(s);
            }
        }
        Ok(())
    }
}

impl fmt::Display for LFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "lir function `{}` ({} vregs)", self.name, self.n_vregs)?;
        for (i, b) in self.blocks.iter().enumerate() {
            writeln!(f, "L{i}:")?;
            for instr in &b.instrs {
                writeln!(f, "  {instr}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jitbull_mir::{ConstVal, MOpcode};

    #[test]
    fn display_shapes() {
        let i = LInstr::new(
            LOp::Op(MOpcode::Constant(ConstVal::Number(1.0))),
            Some(VReg(3)),
            vec![],
        );
        assert_eq!(i.to_string(), "v3 = constant:number");
        assert_eq!(LInstr::mov(VReg(1), VReg(2)).to_string(), "v1 = mov v2");
        assert_eq!(Loc::Reg(4).to_string(), "r4");
        assert_eq!(Loc::Spill(2).to_string(), "[sp+2]");
    }

    #[test]
    fn validate_catches_missing_terminator() {
        let f = LFunction {
            name: "t".into(),
            blocks: vec![LBlock {
                instrs: vec![LInstr::mov(VReg(0), VReg(0))],
            }],
            n_vregs: 1,
            locs: vec![],
            spill_slots: 0,
        };
        assert!(f.validate().is_err());
    }

    #[test]
    fn validate_accepts_return() {
        let f = LFunction {
            name: "t".into(),
            blocks: vec![LBlock {
                instrs: vec![
                    LInstr::new(
                        LOp::Op(MOpcode::Constant(ConstVal::Undefined)),
                        Some(VReg(0)),
                        vec![],
                    ),
                    LInstr::new(LOp::Return, None, vec![VReg(0)]),
                ],
            }],
            n_vregs: 1,
            locs: vec![],
            spill_slots: 0,
        };
        assert_eq!(f.validate(), Ok(()));
    }
}

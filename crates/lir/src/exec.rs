//! The LIR executor: a register machine over [`Value`] cells with the
//! same raw-vs-guarded memory semantics as the MIR executor (see
//! `jitbull-jit`'s `executor` module) — removed guards leave genuinely
//! exploitable raw accesses.

use std::rc::Rc;

use jitbull_frontend::ast::{BinOp, UnOp};
use jitbull_mir::{CmpOp, ConstVal, MOpcode, TypeHint};
use jitbull_vm::bytecode::Module;
use jitbull_vm::interp::{eval_binop, eval_intrinsic, eval_math, eval_unop, invoke_value};
use jitbull_vm::runtime::{Runtime, ION_COST};
use jitbull_vm::value::ArrId;
use jitbull_vm::{Dispatcher, Value, VmError};

use crate::lir::{GuardRefs, LBlockId, LFunction, LInstr, LOp, Loc, VReg};

struct Machine {
    regs: Vec<Value>,
    spills: Vec<Value>,
    flags: Vec<bool>,
}

impl Machine {
    fn new(f: &LFunction) -> Self {
        Machine {
            regs: vec![Value::Undefined; crate::regalloc::N_REGS as usize],
            spills: vec![Value::Undefined; f.spill_slots as usize],
            flags: vec![true; f.n_vregs as usize],
        }
    }

    fn read(&self, f: &LFunction, v: VReg) -> Value {
        match f.locs[v.0 as usize] {
            Loc::Reg(r) => self.regs[r as usize].clone(),
            Loc::Spill(s) => self.spills[s as usize].clone(),
        }
    }

    fn write(&mut self, f: &LFunction, v: VReg, value: Value) {
        match f.locs[v.0 as usize] {
            Loc::Reg(r) => self.regs[r as usize] = value,
            Loc::Spill(s) => self.spills[s as usize] = value,
        }
    }

    fn flag(&self, guard: Option<VReg>) -> Option<bool> {
        guard.map(|v| self.flags[v.0 as usize])
    }
}

/// Executes one invocation of register-allocated LIR.
///
/// # Errors
///
/// Propagates [`VmError`]s, including crashes from wild raw accesses.
///
/// # Panics
///
/// Panics if the function was not register-allocated (`locs` empty).
pub fn run(
    code: &LFunction,
    rt: &mut Runtime,
    module: &Module,
    this: Value,
    args: &[Value],
    dispatcher: &mut dyn Dispatcher,
) -> Result<Value, VmError> {
    assert_eq!(
        code.locs.len(),
        code.n_vregs as usize,
        "LIR function must be register-allocated before execution"
    );
    rt.enter_call()?;
    let result = run_inner(code, rt, module, this, args, dispatcher);
    rt.exit_call();
    result
}

fn cmp_binop(c: CmpOp) -> BinOp {
    match c {
        CmpOp::Eq => BinOp::Eq,
        CmpOp::Ne => BinOp::Ne,
        CmpOp::StrictEq => BinOp::StrictEq,
        CmpOp::StrictNe => BinOp::StrictNe,
        CmpOp::Lt => BinOp::Lt,
        CmpOp::Le => BinOp::Le,
        CmpOp::Gt => BinOp::Gt,
        CmpOp::Ge => BinOp::Ge,
    }
}

fn const_value(c: &ConstVal) -> Value {
    match c {
        ConstVal::Number(n) => Value::Number(*n),
        ConstVal::Str(s) => Value::Str(s.clone()),
        ConstVal::Bool(b) => Value::Bool(*b),
        ConstVal::Undefined => Value::Undefined,
        ConstVal::Null => Value::Null,
        ConstVal::Func(f) => Value::Function(*f),
    }
}

fn wild(rt: &mut Runtime, msg: String) -> VmError {
    rt.note_crash(&msg);
    VmError::Crash(msg)
}

fn crash_noted(rt: &mut Runtime, e: VmError) -> VmError {
    if let VmError::Crash(msg) = &e {
        rt.note_crash(msg);
    }
    e
}

fn run_inner(
    code: &LFunction,
    rt: &mut Runtime,
    module: &Module,
    this: Value,
    args: &[Value],
    dispatcher: &mut dyn Dispatcher,
) -> Result<Value, VmError> {
    let mut m = Machine::new(code);
    let mut cur = LBlockId(0);
    'blocks: loop {
        let block = &code.blocks[cur.0 as usize];
        for i in &block.instrs {
            rt.consume_op(ION_COST)?;
            match &i.op {
                LOp::Move => {
                    let v = m.read(code, i.args[0]);
                    m.write(code, i.dst.expect("move has dst"), v);
                }
                LOp::Jump(t) => {
                    cur = *t;
                    continue 'blocks;
                }
                LOp::Branch {
                    then_block,
                    else_block,
                } => {
                    cur = if m.read(code, i.args[0]).truthy() {
                        *then_block
                    } else {
                        *else_block
                    };
                    continue 'blocks;
                }
                LOp::Return => return Ok(m.read(code, i.args[0])),
                LOp::Op(op) => {
                    let result = eval_op(code, rt, module, &mut m, i, op, &this, args, dispatcher)?;
                    if let Some(d) = i.dst {
                        m.write(code, d, result);
                    }
                }
            }
        }
        return Err(VmError::Type("lir block fell through".into()));
    }
}

#[allow(clippy::too_many_arguments)]
fn eval_op(
    code: &LFunction,
    rt: &mut Runtime,
    module: &Module,
    m: &mut Machine,
    i: &LInstr,
    op: &MOpcode,
    this: &Value,
    args: &[Value],
    dispatcher: &mut dyn Dispatcher,
) -> Result<Value, VmError> {
    let a = |m: &Machine, k: usize| m.read(code, i.args[k]);
    Ok(match op {
        MOpcode::Parameter(k) => args.get(*k as usize).cloned().unwrap_or(Value::Undefined),
        MOpcode::This => this.clone(),
        MOpcode::Constant(c) => const_value(c),
        MOpcode::Add => eval_binop(BinOp::Add, &a(m, 0), &a(m, 1)),
        MOpcode::Sub => eval_binop(BinOp::Sub, &a(m, 0), &a(m, 1)),
        MOpcode::Mul => eval_binop(BinOp::Mul, &a(m, 0), &a(m, 1)),
        MOpcode::Div => eval_binop(BinOp::Div, &a(m, 0), &a(m, 1)),
        MOpcode::Mod => eval_binop(BinOp::Mod, &a(m, 0), &a(m, 1)),
        MOpcode::Compare(c) => eval_binop(cmp_binop(*c), &a(m, 0), &a(m, 1)),
        MOpcode::BitAnd => eval_binop(BinOp::BitAnd, &a(m, 0), &a(m, 1)),
        MOpcode::BitOr => eval_binop(BinOp::BitOr, &a(m, 0), &a(m, 1)),
        MOpcode::BitXor => eval_binop(BinOp::BitXor, &a(m, 0), &a(m, 1)),
        MOpcode::Lsh => eval_binop(BinOp::Shl, &a(m, 0), &a(m, 1)),
        MOpcode::Rsh => eval_binop(BinOp::Shr, &a(m, 0), &a(m, 1)),
        MOpcode::Ursh => eval_binop(BinOp::Ushr, &a(m, 0), &a(m, 1)),
        MOpcode::BitNot => eval_unop(UnOp::BitNot, &a(m, 0)),
        MOpcode::Neg => eval_unop(UnOp::Neg, &a(m, 0)),
        MOpcode::Not => eval_unop(UnOp::Not, &a(m, 0)),
        MOpcode::ToNumber => eval_unop(UnOp::Plus, &a(m, 0)),
        MOpcode::TypeOf => eval_unop(UnOp::Typeof, &a(m, 0)),
        MOpcode::Call(_) => {
            let callee = a(m, 0);
            let call_args: Vec<Value> = (1..i.args.len()).map(|k| a(m, k)).collect();
            invoke_value(rt, module, callee, Value::Undefined, call_args, dispatcher)?
        }
        MOpcode::CallMethod(_) => {
            let base = a(m, 0);
            let callee = a(m, 1);
            let call_args: Vec<Value> = (2..i.args.len()).map(|k| a(m, k)).collect();
            invoke_value(rt, module, callee, base, call_args, dispatcher)?
        }
        MOpcode::New(_) => {
            let callee = a(m, 0);
            let call_args: Vec<Value> = (1..i.args.len()).map(|k| a(m, k)).collect();
            let obj = Value::Object(rt.alloc_object());
            invoke_value(rt, module, callee, obj.clone(), call_args, dispatcher)?;
            obj
        }
        MOpcode::NewArray(_) => {
            let items: Vec<Value> = (0..i.args.len()).map(|k| a(m, k)).collect();
            Value::Array(rt.heap.alloc_array_from(items))
        }
        MOpcode::NewArrayN => {
            let n = a(m, 0).to_number();
            let n = if n.is_finite() && n >= 0.0 {
                n as usize
            } else {
                0
            };
            Value::Array(rt.heap.alloc_array(n, n, Value::Undefined))
        }
        MOpcode::NewObject => Value::Object(rt.alloc_object()),
        MOpcode::BoundsCheck => {
            let idx = a(m, 0).to_number();
            let len = a(m, 1).to_number();
            let ok = idx >= 0.0 && idx.fract() == 0.0 && idx < len && idx.is_finite();
            m.flags[i.dst.expect("boundscheck has dst").0 as usize] = ok;
            Value::Number(idx)
        }
        MOpcode::TypeGuard(hint) | MOpcode::Unbox(hint) => {
            let v = a(m, 0);
            let ok = match hint {
                TypeHint::Number => matches!(v, Value::Number(_)),
                TypeHint::Int32 => matches!(v, Value::Number(n) if n.fract() == 0.0),
                TypeHint::Bool => matches!(v, Value::Bool(_)),
                TypeHint::Str => matches!(v, Value::Str(_)),
                TypeHint::Array => matches!(v, Value::Array(_)),
                TypeHint::Object => matches!(v, Value::Object(_)),
            };
            m.flags[i.dst.expect("guard has dst").0 as usize] = ok;
            v
        }
        MOpcode::InitializedLength | MOpcode::ArrayLength => {
            let base = a(m, 0);
            match &base {
                Value::Array(arr) => Value::Number(rt.heap.length(*arr) as f64),
                Value::Str(s) => Value::Number(s.chars().count() as f64),
                Value::Object(o) => rt.object(*o).get("length"),
                Value::Number(k) if i.guards.unbox.is_none() => {
                    // Type confusion: the unbox guard was removed.
                    if *k >= 0.0 && k.is_finite() {
                        let v = rt
                            .heap
                            .raw_read(*k as usize)
                            .map_err(|e| crash_noted(rt, e))?;
                        Value::Number(v.to_number())
                    } else {
                        return Err(wild(rt, format!("wild length read at {k}")));
                    }
                }
                _ => Value::Number(0.0),
            }
        }
        MOpcode::SetArrayLength => {
            let base = a(m, 0);
            let v = a(m, 1);
            jitbull_vm::interp::set_length(rt, &base, &v)?;
            v
        }
        MOpcode::LoadElement => element_load(code, rt, m, i, &i.guards)?,
        MOpcode::StoreElement => {
            let v = a(m, 2);
            element_store(code, rt, m, i, &i.guards, v.clone())?;
            v
        }
        MOpcode::LoadProperty(name) => {
            let base = a(m, 0);
            jitbull_vm::interp::get_prop(rt, &base, name)?
        }
        MOpcode::StoreProperty(name) => {
            let base = a(m, 0);
            let v = a(m, 1);
            jitbull_vm::interp::set_prop(rt, &base, Rc::clone(name), v.clone())?;
            v
        }
        MOpcode::LoadGlobal(slot) => rt.globals[*slot as usize].clone(),
        MOpcode::StoreGlobal(slot) => {
            let v = a(m, 0);
            rt.globals[*slot as usize] = v.clone();
            v
        }
        MOpcode::Print => {
            let v = a(m, 0);
            let line = v.to_string();
            rt.printed.push(line);
            Value::Undefined
        }
        MOpcode::MathFunction(mf) => {
            let call_args: Vec<Value> = (0..i.args.len()).map(|k| a(m, k)).collect();
            eval_math(rt, *mf, &call_args)
        }
        MOpcode::Intrinsic(method, _) => {
            let recv = a(m, 0);
            let call_args: Vec<Value> = (1..i.args.len()).map(|k| a(m, k)).collect();
            eval_intrinsic(rt, *method, &recv, &call_args)?
        }
        MOpcode::FromCharCode => {
            let n = a(m, 0).to_number();
            let c = char::from_u32(n as u32).unwrap_or('\u{FFFD}');
            Value::str(c.to_string())
        }
        MOpcode::Goto(_) | MOpcode::Test { .. } | MOpcode::Return | MOpcode::Phi => {
            unreachable!("control flow lowered to LIR terminators")
        }
    })
}

fn element_load(
    code: &LFunction,
    rt: &mut Runtime,
    m: &Machine,
    i: &LInstr,
    guards: &GuardRefs,
) -> Result<Value, VmError> {
    let base = m.read(code, i.args[0]);
    let idx = m.read(code, i.args[1]);
    let base_ok = m.flag(guards.unbox);
    let idx_ok = m.flag(guards.bounds);
    match &base {
        Value::Array(arr) => {
            if base_ok == Some(false) || idx_ok == Some(false) {
                return jitbull_vm::interp::get_elem(rt, &base, &idx);
            }
            raw_read(rt, *arr, idx.to_number())
        }
        Value::Number(k) if guards.unbox.is_none() => {
            let addr = *k + 2.0 + idx.to_number();
            if addr >= 0.0 && addr.is_finite() {
                rt.heap
                    .raw_read(addr as usize)
                    .map_err(|e| crash_noted(rt, e))
            } else {
                Err(wild(rt, format!("wild read through confused pointer {k}")))
            }
        }
        _ => jitbull_vm::interp::get_elem(rt, &base, &idx),
    }
}

fn element_store(
    code: &LFunction,
    rt: &mut Runtime,
    m: &Machine,
    i: &LInstr,
    guards: &GuardRefs,
    value: Value,
) -> Result<(), VmError> {
    let base = m.read(code, i.args[0]);
    let idx = m.read(code, i.args[1]);
    let base_ok = m.flag(guards.unbox);
    let idx_ok = m.flag(guards.bounds);
    match &base {
        Value::Array(arr) => {
            if base_ok == Some(false) || idx_ok == Some(false) {
                return jitbull_vm::interp::set_elem(rt, &base, &idx, value);
            }
            raw_write(rt, *arr, idx.to_number(), value)
        }
        Value::Number(k) if guards.unbox.is_none() => {
            let addr = *k + 2.0 + idx.to_number();
            if addr >= 0.0 && addr.is_finite() {
                rt.heap
                    .raw_write(addr as usize, value)
                    .map_err(|e| crash_noted(rt, e))
            } else {
                Err(wild(rt, format!("wild write through confused pointer {k}")))
            }
        }
        _ => jitbull_vm::interp::set_elem(rt, &base, &idx, value),
    }
}

fn raw_read(rt: &mut Runtime, arr: ArrId, idx: f64) -> Result<Value, VmError> {
    if !(idx >= 0.0 && idx.fract() == 0.0 && idx.is_finite()) {
        return rt.heap.get_elem(arr, idx);
    }
    let addr = rt.heap.elem_addr(arr, idx as usize);
    rt.heap.raw_read(addr).map_err(|e| crash_noted(rt, e))
}

fn raw_write(rt: &mut Runtime, arr: ArrId, idx: f64, value: Value) -> Result<(), VmError> {
    if !(idx >= 0.0 && idx.fract() == 0.0 && idx.is_finite()) {
        return rt.heap.set_elem(arr, idx, value);
    }
    let addr = rt.heap.elem_addr(arr, idx as usize);
    rt.heap
        .raw_write(addr, value)
        .map_err(|e| crash_noted(rt, e))
}
